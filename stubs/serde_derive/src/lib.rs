//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a minimal replacement for the serde derive macros. `#[derive(Serialize)]`
//! generates a real implementation of the vendored `serde::Serialize` trait
//! (tree-structured `serde::Value` output, externally tagged enums, newtype
//! unwrapping — mirroring serde's default representation closely enough for
//! the JSON reports the bench harness emits). `#[derive(Deserialize)]` is
//! accepted and expands to nothing: no code in this workspace deserializes.
//!
//! Supported shapes: non-generic structs (named, tuple, unit) and non-generic
//! enums with unit, tuple and struct variants. Generic types are rejected
//! with a compile error pointing here.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the vendored `serde::Serialize` trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => return compile_error(&msg),
    };
    generate_impl(&item).parse().expect("generated impl parses")
}

/// Accepts `#[derive(Deserialize)]` and expands to nothing.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("valid error")
}

enum Body {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    fields: VariantFields,
}

enum VariantFields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Item {
    name: String,
    body: Body,
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes and visibility.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct/enum, found {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "vendored serde_derive does not support generic type `{name}`"
            ));
        }
    }

    let body = match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::NamedStruct(parse_named_fields(g.stream(), true)?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::TupleStruct(count_top_level_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::UnitStruct,
            other => return Err(format!("unexpected struct body: {other:?}")),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g.stream())?)
            }
            other => return Err(format!("unexpected enum body: {other:?}")),
        },
        other => return Err(format!("expected struct or enum, found `{other}`")),
    };
    Ok(Item { name, body })
}

/// Parses `name: Type, ...` field lists, tolerating attributes and (when
/// `allow_vis` is set) `pub` / `pub(...)` visibility qualifiers.
fn parse_named_fields(stream: TokenStream, allow_vis: bool) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Skip field attributes (doc comments arrive as `#[doc = ...]`).
        while matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            i += 2;
        }
        if allow_vis {
            if let Some(TokenTree::Ident(id)) = tokens.get(i) {
                if id.to_string() == "pub" {
                    i += 1;
                    if let Some(TokenTree::Group(g)) = tokens.get(i) {
                        if g.delimiter() == Delimiter::Parenthesis {
                            i += 1;
                        }
                    }
                }
            }
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected field name, found {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected `:` after `{name}`, found {other:?}")),
        }
        // Skip the type, tracking `<...>` nesting so commas inside generic
        // arguments are not mistaken for field separators.
        let mut angle_depth = 0_i32;
        while let Some(tok) = tokens.get(i) {
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => break,
                    _ => {}
                }
            }
            i += 1;
        }
        i += 1; // past the comma (or the end)
        fields.push(name);
    }
    Ok(fields)
}

/// Counts top-level comma-separated fields of a tuple struct/variant body.
fn count_top_level_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0_i32;
    let mut saw_trailing_comma = false;
    for (idx, tok) in tokens.iter().enumerate() {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    if idx + 1 == tokens.len() {
                        saw_trailing_comma = true;
                    } else {
                        count += 1;
                    }
                }
                _ => {}
            }
        }
    }
    let _ = saw_trailing_comma;
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        while matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            i += 2;
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantFields::Named(parse_named_fields(g.stream(), false)?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantFields::Tuple(count_top_level_fields(g.stream()))
            }
            _ => VariantFields::Unit,
        };
        // Skip an optional `= discriminant` and the trailing comma.
        while let Some(tok) = tokens.get(i) {
            if matches!(tok, TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
        variants.push(Variant { name, fields });
    }
    Ok(variants)
}

fn generate_impl(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::UnitStruct => "::serde::Value::Null".to_string(),
        Body::TupleStruct(1) => "::serde::Serialize::serialize(&self.0)".to_string(),
        Body::TupleStruct(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", elems.join(", "))
        }
        Body::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("(String::from({f:?}), ::serde::Serialize::serialize(&self.{f}))"))
                .collect();
            format!("::serde::Value::Object(vec![{}])", entries.join(", "))
        }
        Body::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        VariantFields::Unit => format!(
                            "{name}::{vname} => ::serde::Value::String(String::from({vname:?}))"
                        ),
                        VariantFields::Tuple(1) => format!(
                            "{name}::{vname}(f0) => ::serde::Value::Object(vec![(String::from({vname:?}), ::serde::Serialize::serialize(f0))])"
                        ),
                        VariantFields::Tuple(n) => {
                            let binds: Vec<String> =
                                (0..*n).map(|i| format!("f{i}")).collect();
                            let elems: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::serialize({b})"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => ::serde::Value::Object(vec![(String::from({vname:?}), ::serde::Value::Array(vec![{}]))])",
                                binds.join(", "),
                                elems.join(", ")
                            )
                        }
                        VariantFields::Named(fields) => {
                            let binds = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(String::from({f:?}), ::serde::Serialize::serialize({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binds} }} => ::serde::Value::Object(vec![(String::from({vname:?}), ::serde::Value::Object(vec![{}]))])",
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn serialize(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}
