//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the small slice of the rand 0.8 API the benchmark generators use:
//! [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`], uniform
//! sampling with [`Rng::gen_range`], and [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — deterministic
//! across runs and platforms, which is all the reproducible benchmark suite
//! needs. The streams differ from the real `StdRng` (ChaCha12), so seeds
//! produce different (but equally well-mixed) circuits than upstream rand.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
}

/// RNGs constructible from a numeric seed.
pub trait SeedableRng: Sized {
    /// Creates an RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Samples a uniformly random `f64` in `[0, 1)`.
    fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.gen_f64() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let value = (rng.next_u64() as u128) % span;
                (self.start as i128 + value as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let value = (rng.next_u64() as u128) % span;
                (start as i128 + value as i128) as $t
            }
        }
    )*};
}
int_range_impls!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + (self.end - self.start) * rng.gen_f64()
    }
}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                state: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.state;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s2 = s2 ^ s0;
            let mut s3 = s3 ^ s1;
            let s1 = s1 ^ s2;
            let s0 = s0 ^ s3;
            s2 ^= t;
            s3 = s3.rotate_left(45);
            self.state = [s0, s1, s2, s3];
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Shuffling for slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.gen_range(0_u32..1000), b.gen_range(0_u32..1000));
        }
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3_u32..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5_i32..5);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x = rng.gen_range(0.25_f64..1.75);
            assert!((0.25..1.75).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle should move something");
    }

    #[test]
    fn values_are_reasonably_spread() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0_u32; 8];
        for _ in 0..8000 {
            counts[rng.gen_range(0_usize..8)] += 1;
        }
        for c in counts {
            assert!((700..1300).contains(&c), "skewed bucket: {counts:?}");
        }
    }
}
