//! Offline stand-in for `serde_json`: renders the vendored [`serde::Value`]
//! tree as JSON text, and parses JSON text back into a [`Value`] tree
//! ([`from_str`]). The derive-based `Deserialize` half of real `serde_json`
//! is not provided — callers that read JSON (e.g. the `bench-gate` baseline
//! loader) extract fields from the parsed [`Value`] explicitly.

pub use serde::Value;

use serde::Serialize;
use std::fmt::Write as _;

/// Error type mirroring `serde_json::Error`.
///
/// Produced only by the parsing half ([`from_str`]); the vendored serializer
/// is infallible and keeps `serde_json::to_string(...)?` call sites
/// source-compatible.
#[derive(Debug)]
pub struct Error {
    message: String,
}

impl Error {
    fn parse(message: impl Into<String>, offset: usize) -> Self {
        Error {
            message: format!("{} at byte {offset}", message.into()),
        }
    }

    fn raw(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.message)
    }
}

impl std::error::Error for Error {}

/// Serializes a value into its [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.serialize()
}

/// Serializes a value to a compact JSON string.
///
/// # Errors
///
/// Never fails; the `Result` mirrors the real `serde_json` signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.serialize(), &mut out, None, 0);
    Ok(out)
}

/// Serializes a value to a pretty-printed JSON string.
///
/// # Errors
///
/// Never fails; the `Result` mirrors the real `serde_json` signature.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.serialize(), &mut out, Some(2), 0);
    Ok(out)
}

fn render(value: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::Float(x) => {
            if x.is_finite() {
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    let _ = write!(out, "{x:.1}");
                } else {
                    let _ = write!(out, "{x}");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::String(s) => escape_into(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                render(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                escape_into(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

/// Serializes a value as one newline-terminated JSON Lines record (compact
/// JSON followed by `\n`), suitable for appending to a `.jsonl` stream where
/// every record must stay on its own line.
///
/// The compact renderer never emits raw newlines (strings escape them as
/// `\n`), so the produced line is always a complete, self-delimiting record.
pub fn to_jsonl_line<T: Serialize + ?Sized>(value: &T) -> String {
    let mut line = to_string(value).expect("serialization is infallible");
    line.push('\n');
    line
}

/// Parses newline-delimited JSON (JSON Lines) into one [`Value`] per
/// non-blank line.
///
/// Blank lines are skipped, so a file whose final record was fully written
/// parses cleanly even without a trailing newline — and a stream truncated
/// *between* records (e.g. by a killed writer) parses up to the truncation
/// point. Only a line that is itself malformed fails.
///
/// # Errors
///
/// Returns an [`Error`] naming the 1-based line number of the first
/// malformed record.
pub fn from_str_jsonl(text: &str) -> Result<Vec<Value>, Error> {
    let mut values = Vec::new();
    for (index, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let value =
            from_str(line).map_err(|e| Error::raw(format!("line {}: {}", index + 1, e.message)))?;
        values.push(value);
    }
    Ok(values)
}

/// Parses JSON text into a [`Value`] tree.
///
/// Supports the full JSON grammar the workspace emits: objects, arrays,
/// strings (with escapes incl. `\uXXXX`), numbers (integers, floats,
/// exponents), booleans and `null`. Numbers without a fraction or exponent
/// that fit `i64` parse as [`Value::Int`], everything else as
/// [`Value::Float`].
///
/// # Errors
///
/// Returns an [`Error`] describing the first offending byte offset on
/// malformed input, including trailing garbage after the top-level value.
pub fn from_str(text: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        text,
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::parse("trailing characters", parser.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    text: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::parse(
                format!("expected '{}'", char::from(byte)),
                self.pos,
            ))
        }
    }

    fn eat_literal(&mut self, literal: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(value)
        } else {
            Err(Error::parse(format!("expected '{literal}'"), self.pos))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.eat_literal("null", Value::Null),
            Some(b't') => self.eat_literal("true", Value::Bool(true)),
            Some(b'f') => self.eat_literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(_) => Err(Error::parse("unexpected character", self.pos)),
            None => Err(Error::parse("unexpected end of input", self.pos)),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::parse("expected ',' or ']'", self.pos)),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            entries.push((key, self.parse_value()?));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error::parse("expected ',' or '}'", self.pos)),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            match self.peek() {
                None => return Err(Error::parse("unterminated string", start)),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self
                        .peek()
                        .ok_or_else(|| Error::parse("unterminated escape", self.pos))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| Error::parse("truncated \\u escape", start))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::parse("invalid \\u escape", start))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by the
                            // workspace serializer; map lone surrogates to
                            // the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(Error::parse("invalid escape", start)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar. Every `pos` mutation lands
                    // on a char boundary (ASCII structural bytes or whole
                    // scalars), so the slice below cannot panic.
                    let c = self.text[self.pos..]
                        .chars()
                        .next()
                        .expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::parse("invalid number", start))?;
        if !is_float {
            if let Ok(int) = text.parse::<i64>() {
                return Ok(Value::Int(int));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::parse("invalid number", start))
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_compact_json() {
        let v = Value::Object(vec![
            ("a".into(), Value::Int(1)),
            (
                "b".into(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
        ]);
        assert_eq!(to_string(&v).unwrap(), r#"{"a":1,"b":[true,null]}"#);
    }

    #[test]
    fn renders_pretty_json() {
        let v = Value::Object(vec![("a".into(), Value::Int(1))]);
        assert_eq!(to_string_pretty(&v).unwrap(), "{\n  \"a\": 1\n}");
    }

    #[test]
    fn escapes_strings() {
        let v = Value::String("a\"b\\c\nd".into());
        assert_eq!(to_string(&v).unwrap(), r#""a\"b\\c\nd""#);
    }

    #[test]
    fn whole_floats_keep_a_decimal_point() {
        assert_eq!(to_string(&2.0_f64).unwrap(), "2.0");
        assert_eq!(to_string(&2.5_f64).unwrap(), "2.5");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }

    #[test]
    fn parses_scalars() {
        assert_eq!(from_str("null").unwrap(), Value::Null);
        assert_eq!(from_str("true").unwrap(), Value::Bool(true));
        assert_eq!(from_str("false").unwrap(), Value::Bool(false));
        assert_eq!(from_str("42").unwrap(), Value::Int(42));
        assert_eq!(from_str("-7").unwrap(), Value::Int(-7));
        assert_eq!(from_str("2.5").unwrap(), Value::Float(2.5));
        assert_eq!(from_str("2.126e-11").unwrap(), Value::Float(2.126e-11));
        assert_eq!(from_str("1E3").unwrap(), Value::Float(1000.0));
        assert_eq!(from_str("\"hi\"").unwrap(), Value::String("hi".into()));
    }

    #[test]
    fn parses_containers_and_whitespace() {
        let v = from_str(" { \"a\" : [ 1 , 2.0 ] , \"b\" : { } } ").unwrap();
        assert_eq!(
            v,
            Value::Object(vec![
                (
                    "a".into(),
                    Value::Array(vec![Value::Int(1), Value::Float(2.0)])
                ),
                ("b".into(), Value::Object(vec![])),
            ])
        );
        assert_eq!(from_str("[]").unwrap(), Value::Array(vec![]));
    }

    #[test]
    fn parses_string_escapes() {
        assert_eq!(
            from_str(r#""a\"b\\c\ndA""#).unwrap(),
            Value::String("a\"b\\c\ndA".into())
        );
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "tru", "1.2.3", "{\"a\":}", "[1] x", "nul"] {
            assert!(from_str(bad).is_err(), "{bad:?} should fail");
        }
        let err = from_str("[1,]").unwrap_err();
        assert!(err.to_string().contains("at byte"));
    }

    #[test]
    fn serializer_output_round_trips() {
        let original = Value::Object(vec![
            ("name".into(), Value::String("QAOA-regular3-30".into())),
            ("fidelity".into(), Value::Float(0.8653)),
            ("stages".into(), Value::Int(12)),
            ("tiny".into(), Value::Float(2.126e-11)),
            (
                "nested".into(),
                Value::Array(vec![Value::Bool(false), Value::Null]),
            ),
        ]);
        for text in [
            to_string(&original).unwrap(),
            to_string_pretty(&original).unwrap(),
        ] {
            assert_eq!(from_str(&text).unwrap(), original);
        }
    }

    #[test]
    fn jsonl_lines_round_trip() {
        let values = [
            Value::Object(vec![("cell".into(), Value::Int(0))]),
            Value::Object(vec![("cell".into(), Value::Float(1.5))]),
        ];
        let mut stream = String::new();
        for v in &values {
            stream.push_str(&to_jsonl_line(v));
        }
        assert_eq!(stream.matches('\n').count(), 2);
        let parsed = from_str_jsonl(&stream).unwrap();
        assert_eq!(parsed, values);
    }

    #[test]
    fn jsonl_skips_blank_lines_and_tolerates_missing_trailing_newline() {
        let parsed = from_str_jsonl("{\"a\":1}\n\n  \n{\"b\":2}").unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[1].get("b").and_then(Value::as_i64), Some(2));
        assert_eq!(from_str_jsonl("").unwrap(), Vec::<Value>::new());
    }

    #[test]
    fn jsonl_reports_the_offending_line() {
        let err = from_str_jsonl("{\"ok\":true}\n{\"broken\":\n{\"ok\":2}").unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn jsonl_strings_with_newlines_stay_on_one_line() {
        let v = Value::Object(vec![("msg".into(), Value::String("a\nb".into()))]);
        let line = to_jsonl_line(&v);
        assert_eq!(line.matches('\n').count(), 1, "only the terminator");
        assert_eq!(from_str_jsonl(&line).unwrap(), vec![v]);
    }

    #[test]
    fn value_accessors_navigate_parsed_trees() {
        let v = from_str(r#"{"x": 1, "y": [2.5, "s"], "z": null}"#).unwrap();
        assert_eq!(v.get("x").and_then(Value::as_i64), Some(1));
        assert_eq!(v.get("x").and_then(Value::as_f64), Some(1.0));
        let y = v.get("y").and_then(Value::as_array).unwrap();
        assert_eq!(y[0].as_f64(), Some(2.5));
        assert_eq!(y[1].as_str(), Some("s"));
        assert!(v.get("z").unwrap().is_null());
        assert!(v.get("missing").is_none());
        assert_eq!(v.as_object().unwrap().len(), 3);
    }
}
