//! Offline stand-in for `serde_json`: renders the vendored [`serde::Value`]
//! tree as JSON text. Only the serialization half is provided — nothing in
//! this workspace parses JSON back.

pub use serde::Value;

use serde::Serialize;
use std::fmt::Write as _;

/// Error type mirroring `serde_json::Error`.
///
/// The vendored serializer is infallible, so this is never constructed; it
/// exists to keep `serde_json::to_string(...)?` call sites source-compatible.
#[derive(Debug)]
pub struct Error(());

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json serialization error")
    }
}

impl std::error::Error for Error {}

/// Serializes a value into its [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.serialize()
}

/// Serializes a value to a compact JSON string.
///
/// # Errors
///
/// Never fails; the `Result` mirrors the real `serde_json` signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.serialize(), &mut out, None, 0);
    Ok(out)
}

/// Serializes a value to a pretty-printed JSON string.
///
/// # Errors
///
/// Never fails; the `Result` mirrors the real `serde_json` signature.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.serialize(), &mut out, Some(2), 0);
    Ok(out)
}

fn render(value: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::Float(x) => {
            if x.is_finite() {
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    let _ = write!(out, "{x:.1}");
                } else {
                    let _ = write!(out, "{x}");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::String(s) => escape_into(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                render(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                escape_into(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_compact_json() {
        let v = Value::Object(vec![
            ("a".into(), Value::Int(1)),
            (
                "b".into(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
        ]);
        assert_eq!(to_string(&v).unwrap(), r#"{"a":1,"b":[true,null]}"#);
    }

    #[test]
    fn renders_pretty_json() {
        let v = Value::Object(vec![("a".into(), Value::Int(1))]);
        assert_eq!(to_string_pretty(&v).unwrap(), "{\n  \"a\": 1\n}");
    }

    #[test]
    fn escapes_strings() {
        let v = Value::String("a\"b\\c\nd".into());
        assert_eq!(to_string(&v).unwrap(), r#""a\"b\\c\nd""#);
    }

    #[test]
    fn whole_floats_keep_a_decimal_point() {
        assert_eq!(to_string(&2.0_f64).unwrap(), "2.0");
        assert_eq!(to_string(&2.5_f64).unwrap(), "2.5");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }
}
