//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment cannot reach crates.io, so the workspace vendors the
//! subset of the criterion 0.5 API its benches use: `criterion_group!` /
//! `criterion_main!`, [`Criterion::benchmark_group`], `sample_size`,
//! `measurement_time`, `bench_with_input` / `bench_function` and
//! [`Bencher::iter`]. Instead of criterion's statistical machinery it runs a
//! fixed number of timed iterations per benchmark and prints the mean and
//! min wall-clock time — enough to compare configurations and to track
//! regressions by eye, with zero external dependencies.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_benchmark(&id, 10, f);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; the vendored harness always runs a
    /// fixed iteration count rather than a time budget.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility (no warm-up phase is run).
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `f` against a borrowed input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.0);
        run_benchmark(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Benchmarks a function with no explicit input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id: BenchmarkId = id.into();
        let label = format!("{}/{}", self.name, id.0);
        run_benchmark(&label, self.sample_size, |b| f(b));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id made of a function name and a parameter, `name/param`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", function_name.into(), parameter))
    }

    /// An id made of a parameter only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times repeated executions of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, samples: usize, mut f: F) {
    // One untimed call warms caches and amortizes lazy setup.
    let mut warmup = Bencher {
        iterations: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut warmup);

    let mut times: Vec<Duration> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut bencher = Bencher {
            iterations: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        times.push(bencher.elapsed);
    }
    let total: Duration = times.iter().sum();
    let mean = total / times.len() as u32;
    let min = times.iter().min().copied().unwrap_or_default();
    println!(
        "  {label:<48} mean {:>12?}  min {:>12?}  ({samples} samples)",
        mean, min
    );
}

/// Declares a benchmark group runner function, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default();
        let mut calls = 0_u32;
        {
            let mut group = c.benchmark_group("test");
            group
                .sample_size(3)
                .measurement_time(Duration::from_secs(1));
            group.bench_with_input(BenchmarkId::new("f", 1), &5_u32, |b, &x| {
                b.iter(|| x + 1);
                calls += 1;
            });
            group.finish();
        }
        // warm-up + 3 samples
        assert_eq!(calls, 4);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).0, "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").0, "x");
    }
}
