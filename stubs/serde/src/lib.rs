//! Offline stand-in for the `serde` facade.
//!
//! The build environment cannot reach crates.io, so the workspace vendors a
//! minimal serialization framework with the same import surface the code
//! uses (`use serde::{Deserialize, Serialize};` plus the derive macros). A
//! [`Serialize`] implementation produces a tree-structured [`Value`] that the
//! vendored `serde_json` renders as JSON. Deserialization is accepted at the
//! derive level but intentionally unimplemented — nothing in this workspace
//! reads serialized data back.

// Let the generated `::serde::...` paths resolve when the derive is used
// inside this crate's own tests.
extern crate self as serde;

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// A serialized value tree (the subset of JSON the workspace needs).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON integer number.
    Int(i64),
    /// JSON floating-point number.
    Float(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric view: `Int` and `Float` values as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// Integer view of an `Int` value.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// String view of a `String` value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view of a `Bool` value.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Element view of an `Array` value.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Entry view of an `Object` value.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Whether the value is JSON `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// Types that can be serialized into a [`Value`] tree.
pub trait Serialize {
    /// Serializes `self` into a [`Value`].
    fn serialize(&self) -> Value;
}

/// Marker trait mirroring `serde::Deserialize`.
///
/// The vendored derive expands `#[derive(Deserialize)]` to nothing, so this
/// trait exists only so that `use serde::Deserialize` keeps resolving.
pub trait Deserialize {}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )*};
}
int_impls!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(v) => v.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize(&self) -> Value {
        Value::Array(vec![self.0.serialize(), self.1.serialize()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize(&self) -> Value {
        Value::Array(vec![
            self.0.serialize(),
            self.1.serialize(),
            self.2.serialize(),
        ])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize, D: Serialize> Serialize for (A, B, C, D) {
    fn serialize(&self) -> Value {
        Value::Array(vec![
            self.0.serialize(),
            self.1.serialize(),
            self.2.serialize(),
            self.3.serialize(),
        ])
    }
}

/// Serializes a map: as a JSON object when every key serializes to a string,
/// otherwise as an array of `[key, value]` pairs.
fn serialize_map<'a, K, V, I>(entries: I) -> Value
where
    K: Serialize + 'a,
    V: Serialize + 'a,
    I: Iterator<Item = (&'a K, &'a V)>,
{
    let pairs: Vec<(Value, Value)> = entries
        .map(|(k, v)| (k.serialize(), v.serialize()))
        .collect();
    if pairs.iter().all(|(k, _)| matches!(k, Value::String(_))) {
        Value::Object(
            pairs
                .into_iter()
                .map(|(k, v)| match k {
                    Value::String(s) => (s, v),
                    _ => unreachable!("checked above"),
                })
                .collect(),
        )
    } else {
        Value::Array(
            pairs
                .into_iter()
                .map(|(k, v)| Value::Array(vec![k, v]))
                .collect(),
        )
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self) -> Value {
        serialize_map(self.iter())
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn serialize(&self) -> Value {
        serialize_map(self.iter())
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, S> Serialize for HashSet<T, S> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Serialize)]
    struct Plain {
        a: u32,
        b: f64,
        c: String,
    }

    #[derive(Serialize)]
    struct Newtype(u32);

    #[derive(Serialize)]
    enum Mixed {
        Unit,
        One(u32),
        Two(u32, bool),
        Named { x: u32 },
    }

    #[test]
    fn named_struct_serializes_to_object() {
        let v = Plain {
            a: 1,
            b: 2.5,
            c: "hi".into(),
        }
        .serialize();
        assert_eq!(
            v,
            Value::Object(vec![
                ("a".into(), Value::Int(1)),
                ("b".into(), Value::Float(2.5)),
                ("c".into(), Value::String("hi".into())),
            ])
        );
    }

    #[test]
    fn newtype_unwraps() {
        assert_eq!(Newtype(7).serialize(), Value::Int(7));
    }

    #[test]
    fn enum_variants_are_externally_tagged() {
        assert_eq!(Mixed::Unit.serialize(), Value::String("Unit".into()));
        assert_eq!(
            Mixed::One(3).serialize(),
            Value::Object(vec![("One".into(), Value::Int(3))])
        );
        assert_eq!(
            Mixed::Two(3, true).serialize(),
            Value::Object(vec![(
                "Two".into(),
                Value::Array(vec![Value::Int(3), Value::Bool(true)])
            )])
        );
        assert_eq!(
            Mixed::Named { x: 9 }.serialize(),
            Value::Object(vec![(
                "Named".into(),
                Value::Object(vec![("x".into(), Value::Int(9))])
            )])
        );
    }

    #[test]
    fn string_keyed_maps_become_objects() {
        let mut m = BTreeMap::new();
        m.insert("k".to_string(), 1_u32);
        assert_eq!(
            m.serialize(),
            Value::Object(vec![("k".into(), Value::Int(1))])
        );
        let mut n = BTreeMap::new();
        n.insert(2_u32, 3_u32);
        assert_eq!(
            n.serialize(),
            Value::Array(vec![Value::Array(vec![Value::Int(2), Value::Int(3)])])
        );
    }
}
