//! Randomized property tests of the routing/schedule invariants every
//! strategy — and the auto-tuning layer on top of them — must preserve.
//!
//! A seeded generator (the vendored PRNG, so runs are reproducible bit for
//! bit) drives random circuits through compile + `validate` under all four
//! routing configurations (greedy, lookahead, multi-AOD scheduler, portfolio
//! auto-tuner) at 1–4 AOD arrays, asserting for every case:
//!
//! * the program validates and preserves the circuit's CZ gates;
//! * no AOD array is ever double-booked (zero intra-AOD window overlaps);
//! * every move group lowers to per-AOD batches that pass
//!   `validate_aod_batches`;
//! * the multi-AOD scheduler never schedules a storage-bound window after
//!   an interaction window within a stage transition;
//! * the auto-tuner's movement wall clock matches the best portfolio
//!   member's (a fortiori never exceeding the worst), and the selected
//!   strategy is recorded in the metadata;
//! * compilation is byte-identical at 1, 2 and 4 worker threads;
//! * the index-pruned free-site search returns the same site as the linear
//!   reference scan after random occupancy churn, under zero, random
//!   nonnegative and shifted-admissible biases.
//!
//! The case count defaults to 200 and is tunable through the
//! `POWERMOVE_PROP_CASES` environment variable (CI pins 500 on the stable
//! leg; local runs can drop it for speed). On a failure the offending
//! circuit is shrunk by halving its gate list while the failure reproduces,
//! so the panic message carries a minimal reproducer.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use powermove_suite::circuit::{Circuit, Qubit};
use powermove_suite::hardware::{validate_aod_batches, AodBatch, Architecture, Zone};
use powermove_suite::powermove::{
    movement_wall_clock, CompilerConfig, PowerMoveCompiler, RoutingConfig,
};
use powermove_suite::schedule::{validate, CompiledProgram, Instruction, Timeline};

/// Default number of random cases; override with `POWERMOVE_PROP_CASES`.
const DEFAULT_CASES: u64 = 200;

fn cases() -> u64 {
    std::env::var("POWERMOVE_PROP_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_CASES)
}

/// One generated gate, kept as data so a failing case can be shrunk and
/// rebuilt.
#[derive(Debug, Clone, Copy)]
enum Op {
    H(u32),
    Rz(u32),
    Cz(u32, u32),
}

/// A reproducible random instance: width plus gate list.
#[derive(Debug, Clone)]
struct RandomInstance {
    num_qubits: u32,
    ops: Vec<Op>,
}

impl RandomInstance {
    fn generate(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let num_qubits = rng.gen_range(4..=10_u32);
        let num_ops = rng.gen_range(2..=28_usize);
        let ops = (0..num_ops)
            .filter_map(|_| {
                let a = rng.gen_range(0..num_qubits);
                let b = rng.gen_range(0..num_qubits);
                match rng.gen_range(0_u8..4) {
                    0 => Some(Op::H(a)),
                    1 => Some(Op::Rz(a)),
                    _ => (a != b).then_some(Op::Cz(a, b)),
                }
            })
            .collect();
        RandomInstance { num_qubits, ops }
    }

    fn circuit(&self) -> Circuit {
        let mut circuit = Circuit::new(self.num_qubits);
        for op in &self.ops {
            match *op {
                Op::H(q) => circuit.h(Qubit::new(q)).expect("in range"),
                Op::Rz(q) => circuit.rz(Qubit::new(q), 0.17).expect("in range"),
                Op::Cz(a, b) => circuit.cz(Qubit::new(a), Qubit::new(b)).expect("in range"),
            }
        }
        circuit
    }

    /// A copy restricted to the first `len` gates.
    fn truncated(&self, len: usize) -> Self {
        RandomInstance {
            num_qubits: self.num_qubits,
            ops: self.ops[..len].to_vec(),
        }
    }
}

/// The four routing configurations under test, auto last so its portfolio
/// members are compiled first in failure reports.
fn strategies() -> [(&'static str, RoutingConfig); 4] {
    [
        ("greedy", RoutingConfig::greedy()),
        ("lookahead2", RoutingConfig::lookahead(2)),
        ("multi-aod", RoutingConfig::multi_aod()),
        ("auto", RoutingConfig::auto()),
    ]
}

fn compile(
    instance: &RandomInstance,
    routing: RoutingConfig,
    aods: usize,
    threads: usize,
) -> CompiledProgram {
    let arch = Architecture::for_qubits(instance.num_qubits).with_num_aods(aods);
    PowerMoveCompiler::new(
        CompilerConfig::default()
            .with_routing(routing)
            .with_threads(threads),
    )
    .compile(&instance.circuit(), &arch)
    .expect("random instances fit the default grid")
}

/// Serializes the observable program content (wall clocks excluded).
fn program_bytes(program: &CompiledProgram) -> String {
    format!(
        "{:?}|{:?}|{:?}",
        program.initial_layout(),
        program.instructions(),
        program.metadata().counters
    )
}

/// No AOD array may own two overlapping busy windows.
fn check_intra_aod_overlaps(program: &CompiledProgram) -> Result<(), String> {
    let windows = Timeline::of(program).aod_windows(program);
    for (i, a) in windows.iter().enumerate() {
        for b in &windows[i + 1..] {
            if a.aod == b.aod && a.overlaps(b) {
                return Err(format!("AOD {} double-booked", a.aod));
            }
        }
    }
    Ok(())
}

/// Every move group must lower to a window of per-AOD batches that passes
/// the hardware's batch validation (no duplicate AOD, conflict-free moves).
fn check_aod_batches(program: &CompiledProgram) -> Result<(), String> {
    let arch = program.architecture();
    for (index, instruction) in program.instructions().iter().enumerate() {
        if let Instruction::MoveGroup { coll_moves } = instruction {
            let batches: Vec<AodBatch> = coll_moves
                .iter()
                .map(|cm| AodBatch::new(cm.aod, cm.trap_moves(arch)))
                .collect();
            validate_aod_batches(&batches)
                .map_err(|e| format!("instruction {index}: invalid AOD batches: {e}"))?;
        }
    }
    Ok(())
}

/// Within every stage transition, a storage-bound window must never come
/// after an interaction window (the move-in-first guarantee the scheduler's
/// balanced packing preserves). Only meaningful in with-storage mode, where
/// the two move classes land in distinct zones.
fn check_storage_before_interactions(program: &CompiledProgram) -> Result<(), String> {
    let grid = program.architecture().grid();
    let mut saw_interaction_window = false;
    for (index, instruction) in program.instructions().iter().enumerate() {
        match instruction {
            Instruction::RydbergStage { .. } => saw_interaction_window = false,
            Instruction::MoveGroup { coll_moves } => {
                let lands_in = |zone: Zone| {
                    coll_moves
                        .iter()
                        .flat_map(|cm| cm.moves.iter())
                        .any(|m| grid.zone_of(m.to) == zone)
                };
                if lands_in(Zone::Storage) && saw_interaction_window {
                    return Err(format!(
                        "instruction {index}: storage-bound window scheduled after an \
                         interaction window"
                    ));
                }
                if lands_in(Zone::Compute) {
                    saw_interaction_window = true;
                }
            }
            Instruction::OneQubitLayer { .. } => {}
        }
    }
    Ok(())
}

/// Runs every invariant for one instance at one AOD count.
fn check_case(instance: &RandomInstance, aods: usize) -> Result<(), String> {
    let circuit = instance.circuit();
    let mut movements = Vec::new();
    for (name, routing) in strategies() {
        let program = compile(instance, routing, aods, 1);
        validate(&program).map_err(|e| format!("{name}: invalid program: {e}"))?;
        if program.cz_gate_count() != circuit.cz_count() {
            return Err(format!(
                "{name}: {} CZ gates compiled, circuit has {}",
                program.cz_gate_count(),
                circuit.cz_count()
            ));
        }
        check_intra_aod_overlaps(&program).map_err(|e| format!("{name}: {e}"))?;
        check_aod_batches(&program).map_err(|e| format!("{name}: {e}"))?;
        if name == "multi-aod" {
            check_storage_before_interactions(&program).map_err(|e| format!("{name}: {e}"))?;
        }
        if name == "auto" && !program.instructions().is_empty() {
            let selected = program
                .metadata()
                .selected_strategy
                .as_deref()
                .ok_or_else(|| "auto: no selected_strategy recorded".to_string())?;
            if !["greedy", "lookahead", "multi-aod"].contains(&selected) {
                return Err(format!("auto: unknown selected strategy {selected:?}"));
            }
        }
        let movement = movement_wall_clock(program.instructions(), program.architecture());
        movements.push((name, movement));

        // Determinism: the emitted program must not depend on the worker
        // count, including through the auto-tuner's portfolio fan-out.
        let reference = program_bytes(&program);
        for threads in [2, 4] {
            let parallel = program_bytes(&compile(instance, routing, aods, threads));
            if reference != parallel {
                return Err(format!("{name}: threads=1 vs threads={threads} diverged"));
            }
        }
    }

    let auto = movements
        .iter()
        .find(|(name, _)| *name == "auto")
        .expect("auto is in the portfolio")
        .1;
    // The standalone members above are configured identically to auto's
    // portfolio candidates, so the selection must match the per-instance
    // BEST member — a selector regression that picks second-best fails
    // here, not just one that picks the worst.
    let best_member = movements
        .iter()
        .filter(|(name, _)| *name != "auto")
        .map(|(_, t)| *t)
        .fold(f64::INFINITY, f64::min);
    if auto > best_member + 1e-12 {
        return Err(format!(
            "auto moves {auto} s, worse than the best portfolio member ({best_member} s)"
        ));
    }
    Ok(())
}

/// Shrinks a failing instance by halving the gate list while the failure
/// reproduces, then returns the minimal reproducer and its error.
fn shrink(instance: &RandomInstance, aods: usize, error: String) -> (RandomInstance, String) {
    let mut smallest = instance.clone();
    let mut message = error;
    let mut len = smallest.ops.len();
    while len > 1 {
        len /= 2;
        let candidate = smallest.truncated(len);
        match check_case(&candidate, aods) {
            Err(e) => {
                smallest = candidate;
                message = e;
            }
            Ok(()) => break,
        }
    }
    (smallest, message)
}

#[test]
fn random_instances_preserve_every_routing_invariant() {
    let cases = cases();
    for seed in 0..cases {
        let instance = RandomInstance::generate(seed);
        // Cycle the AOD count so the run covers 1-4 arrays evenly.
        let aods = 1 + (seed as usize % 4);
        if let Err(error) = check_case(&instance, aods) {
            let (minimal, message) = shrink(&instance, aods, error);
            panic!(
                "seed {seed} ({aods} AODs) failed: {message}\nshrunk to {} of {} gates: {:?}",
                minimal.ops.len(),
                instance.ops.len(),
                minimal
            );
        }
    }
}

#[test]
fn shrinking_reports_a_smaller_failing_case() {
    // A synthetic always-failing predicate: shrink-by-halving must walk the
    // gate list down instead of reporting the full-size instance.
    let instance = RandomInstance::generate(7);
    assert!(instance.ops.len() > 2);
    let halved = instance.truncated(instance.ops.len() / 2);
    assert_eq!(halved.num_qubits, instance.num_qubits);
    assert_eq!(halved.ops.len(), instance.ops.len() / 2);
    // And a truncation to 1 gate still builds a valid circuit.
    let tiny = instance.truncated(1);
    assert_eq!(tiny.circuit().num_gates(), 1);
}

#[test]
fn auto_matches_the_per_cell_best_on_the_fig7_grid() {
    // The tentpole acceptance pinned as a test: on every gated fig7 cell
    // (5 instances x 2-4 AODs) the portfolio auto-tuner's movement wall
    // clock equals the best portfolio member's.
    use powermove_suite::benchmarks::generate;
    for (family, n) in powermove_bench::fig7_cases() {
        for aods in 2..=4_usize {
            let instance = generate(family, n, powermove_bench::DEFAULT_SEED);
            let arch = Architecture::for_qubits(instance.num_qubits).with_num_aods(aods);
            let movement = |routing: RoutingConfig| {
                let program = PowerMoveCompiler::new(
                    CompilerConfig::default()
                        .with_routing(routing)
                        .with_threads(1),
                )
                .compile(&instance.circuit, &arch)
                .expect("fig7 instances compile");
                movement_wall_clock(program.instructions(), program.architecture())
            };
            let auto = movement(RoutingConfig::auto());
            let best = [
                RoutingConfig::greedy(),
                RoutingConfig::lookahead(2),
                RoutingConfig::multi_aod(),
            ]
            .into_iter()
            .map(movement)
            .fold(f64::INFINITY, f64::min);
            assert!(
                auto <= best + 1e-12,
                "{}@{aods}aods: auto {auto} vs best member {best}",
                instance.name
            );
        }
    }
}

#[test]
fn indexed_free_site_search_matches_the_linear_scan_under_churn() {
    // Tentpole invariant of the spatial free-site index: after arbitrary
    // insert/remove churn on the occupancy arena, the index-pruned
    // best-first search selects the same site as the linear reference scan
    // — under the zero bias, a random nonnegative bias, and a shifted bias
    // with a matching positive admissible `min_bias` bound.
    use powermove_suite::hardware::{Point, SiteId};
    use powermove_suite::powermove::FreeSiteHarness;

    for seed in 0..cases() {
        let mut rng = StdRng::seed_from_u64(0x51DE_1DE0 ^ seed);
        let num_qubits = rng.gen_range(4..=64_u32);
        let arch = Architecture::for_qubits(num_qubits);
        let mut harness = FreeSiteHarness::new(arch, num_qubits);
        let num_sites = harness.grid().num_sites();

        // Random occupancy churn. Register qubits move through
        // occupy/vacate; plan/unplan entries use virtual ids above the
        // register so the two books never collide, mirroring the planner's
        // transient mid-stage state (site plan-occupied but still vacant).
        let mut planned: Vec<(u32, SiteId)> = Vec::new();
        let mut next_virtual = num_qubits;
        for _ in 0..rng.gen_range(20..=120_usize) {
            match rng.gen_range(0..4_u32) {
                0 => {
                    let site = SiteId::new(rng.gen_range(0..num_sites));
                    if harness.planned_len(site) < 2 {
                        harness.occupy(Qubit::new(rng.gen_range(0..num_qubits)), site);
                    }
                }
                1 => harness.vacate(Qubit::new(rng.gen_range(0..num_qubits))),
                2 => {
                    let site = SiteId::new(rng.gen_range(0..num_sites));
                    if harness.planned_len(site) < 2 {
                        harness.plan(Qubit::new(next_virtual), site);
                        planned.push((next_virtual, site));
                        next_virtual += 1;
                    }
                }
                _ => {
                    if !planned.is_empty() {
                        let at = rng.gen_range(0..planned.len());
                        let (vq, site) = planned.swap_remove(at);
                        harness.unplan(Qubit::new(vq), site);
                    }
                }
            }
        }

        // A deterministic nonnegative per-site bias and an admissible shift.
        let mult = rng.gen_range(1..=u64::MAX / 2) | 1;
        let shift = f64::from(rng.gen_range(0..4_u32)) * 0.25;
        let biased = move |site: SiteId, _pos: Point| -> f64 {
            ((site.index() as u64).wrapping_mul(mult) % 97) as f64 * 1e-3
        };
        let shifted = move |site: SiteId, pos: Point| -> f64 { shift + biased(site, pos) };

        for _ in 0..4 {
            let anchor = if rng.gen_bool(0.5) {
                let site = SiteId::new(rng.gen_range(0..num_sites));
                harness.grid().position(site)
            } else {
                Point::new(rng.gen_range(-5.0..40.0_f64), rng.gen_range(-5.0..40.0_f64))
            };
            for zone in [Zone::Compute, Zone::Storage] {
                let zero = |_: SiteId, _: Point| 0.0;
                assert_eq!(
                    harness.best(zone, anchor, 0.0, &zero),
                    harness.best_linear(zone, anchor, &zero),
                    "zero bias diverged: seed {seed} zone {zone:?} anchor {anchor:?}"
                );
                assert_eq!(
                    harness.best(zone, anchor, 0.0, &biased),
                    harness.best_linear(zone, anchor, &biased),
                    "nonnegative bias diverged: seed {seed} zone {zone:?} anchor {anchor:?}"
                );
                assert_eq!(
                    harness.best(zone, anchor, shift, &shifted),
                    harness.best_linear(zone, anchor, &shifted),
                    "shifted bias diverged: seed {seed} zone {zone:?} anchor {anchor:?}"
                );
            }
        }
        let (scans, _) = harness.counters();
        assert!(scans > 0, "searches should examine at least one site");
    }
}
