//! Integration tests checking the *relative* behaviour of PowerMove and the
//! Enola baseline — the qualitative claims of the paper's evaluation.

use powermove_suite::benchmarks::{generate, BenchmarkFamily};
use powermove_suite::enola::EnolaCompiler;
use powermove_suite::fidelity::{evaluate_program, FidelityReport};
use powermove_suite::hardware::Architecture;
use powermove_suite::powermove::{CompilerConfig, PowerMoveCompiler};
use powermove_suite::schedule::CompiledProgram;

fn compile_all(family: BenchmarkFamily, n: u32) -> [(String, CompiledProgram, FidelityReport); 3] {
    let instance = generate(family, n, 20250);
    let arch = Architecture::for_qubits(n);
    let enola = EnolaCompiler::default()
        .compile(&instance.circuit, &arch)
        .expect("enola compiles");
    let non_storage = PowerMoveCompiler::new(CompilerConfig::without_storage())
        .compile(&instance.circuit, &arch)
        .expect("powermove compiles");
    let with_storage = PowerMoveCompiler::new(CompilerConfig::default())
        .compile(&instance.circuit, &arch)
        .expect("powermove compiles");
    [
        (
            "enola".to_string(),
            enola.clone(),
            evaluate_program(&enola).expect("scores"),
        ),
        (
            "non-storage".to_string(),
            non_storage.clone(),
            evaluate_program(&non_storage).expect("scores"),
        ),
        (
            "with-storage".to_string(),
            with_storage.clone(),
            evaluate_program(&with_storage).expect("scores"),
        ),
    ]
}

#[test]
fn continuous_router_beats_enola_on_execution_time() {
    // Dense, multi-stage workloads where direct layout transitions pay off.
    // (On shallow chain-structured circuits such as the linear VQE ansatz,
    // Enola's uniform short moves are already cheap and the two compilers
    // are on par; see EXPERIMENTS.md.)
    for (family, n) in [
        (BenchmarkFamily::QaoaRegular3, 30),
        (BenchmarkFamily::QaoaRandom, 20),
        (BenchmarkFamily::Bv, 30),
    ] {
        let [enola, non_storage, _] = compile_all(family, n);
        assert!(
            non_storage.2.execution_time < enola.2.execution_time,
            "{family}-{n}: non-storage {:.0} us vs enola {:.0} us",
            non_storage.2.execution_time_us(),
            enola.2.execution_time_us()
        );
    }
}

#[test]
fn storage_zone_improves_fidelity_at_scale() {
    for (family, n) in [
        (BenchmarkFamily::QaoaRegular3, 30),
        (BenchmarkFamily::Bv, 30),
        (BenchmarkFamily::QsimRand, 20),
    ] {
        let [enola, _, with_storage] = compile_all(family, n);
        assert!(
            with_storage.2.fidelity_excluding_one_qubit() >= enola.2.fidelity_excluding_one_qubit(),
            "{family}-{n}: with-storage {:.3e} vs enola {:.3e}",
            with_storage.2.fidelity_excluding_one_qubit(),
            enola.2.fidelity_excluding_one_qubit()
        );
        assert_eq!(with_storage.2.trace.excitation_exposure, 0);
    }
}

#[test]
fn powermove_compiles_faster_than_enola() {
    // Compare wall-clock compilation on a workload where the MIS-based
    // scheduler has real work to do.
    let instance = generate(BenchmarkFamily::QaoaRandom, 25, 20250);
    let arch = Architecture::for_qubits(25);

    let start = std::time::Instant::now();
    let _ = PowerMoveCompiler::new(CompilerConfig::default())
        .compile(&instance.circuit, &arch)
        .expect("powermove compiles");
    let powermove_time = start.elapsed();

    let start = std::time::Instant::now();
    let _ = EnolaCompiler::default()
        .compile(&instance.circuit, &arch)
        .expect("enola compiles");
    let enola_time = start.elapsed();

    assert!(
        powermove_time < enola_time,
        "powermove {powermove_time:?} should compile faster than enola {enola_time:?}"
    );
}

#[test]
fn enola_reverts_between_stages_and_powermove_does_not() {
    let instance = generate(BenchmarkFamily::QaoaRegular3, 20, 20250);
    let arch = Architecture::for_qubits(20);
    let enola = EnolaCompiler::default()
        .compile(&instance.circuit, &arch)
        .expect("enola compiles");
    let powermove = PowerMoveCompiler::new(CompilerConfig::without_storage())
        .compile(&instance.circuit, &arch)
        .expect("powermove compiles");
    // Enola moves a qubit out and back for every gate, so it needs roughly
    // twice the transfers of the continuous router on the same circuit.
    assert!(
        enola.transfer_count() > powermove.transfer_count(),
        "enola transfers {} vs powermove {}",
        enola.transfer_count(),
        powermove.transfer_count()
    );
}

#[test]
fn both_compilers_execute_the_same_gates() {
    for (family, n) in [(BenchmarkFamily::Qft, 12), (BenchmarkFamily::QsimRand, 14)] {
        let [enola, non_storage, with_storage] = compile_all(family, n);
        assert_eq!(enola.1.cz_gate_count(), non_storage.1.cz_gate_count());
        assert_eq!(enola.1.cz_gate_count(), with_storage.1.cz_gate_count());
        assert_eq!(
            enola.1.one_qubit_gate_count(),
            with_storage.1.one_qubit_gate_count()
        );
    }
}
