//! Property-based tests of the core compiler invariants, driven by random
//! circuits and random movement sets.

use proptest::prelude::*;

use powermove_suite::circuit::{BlockProgram, Circuit, CzBlock, CzGate, Qubit};
use powermove_suite::enola::EnolaCompiler;
use powermove_suite::fidelity::evaluate_program;
use powermove_suite::hardware::{validate_collective_move, Architecture, Zone};
use powermove_suite::powermove::{
    group_moves, partition_stages, schedule_stages, CompilerConfig, PowerMoveCompiler,
};
use powermove_suite::schedule::{validate, SiteMove};

/// Strategy: a random circuit over `n` qubits mixing H, Rz and CZ gates.
fn random_circuit(max_qubits: u32, max_gates: usize) -> impl Strategy<Value = Circuit> {
    (2..=max_qubits, proptest::collection::vec((0u8..3, 0u32..1000, 0u32..1000), 1..max_gates))
        .prop_map(|(n, ops)| {
            let mut circuit = Circuit::new(n);
            for (kind, a, b) in ops {
                let qa = Qubit::new(a % n);
                let qb = Qubit::new(b % n);
                match kind {
                    0 => circuit.h(qa).expect("in range"),
                    1 => circuit.rz(qa, 0.17).expect("in range"),
                    _ => {
                        if qa != qb {
                            circuit.cz(qa, qb).expect("in range");
                        }
                    }
                }
            }
            circuit
        })
}

/// Strategy: a random commuting CZ block over `n` qubits.
fn random_block(max_qubits: u32, max_gates: usize) -> impl Strategy<Value = CzBlock> {
    (4..=max_qubits, proptest::collection::vec((0u32..1000, 0u32..1000), 1..max_gates)).prop_map(
        |(n, pairs)| {
            pairs
                .into_iter()
                .filter_map(|(a, b)| {
                    let qa = Qubit::new(a % n);
                    let qb = Qubit::new(b % n);
                    (qa != qb).then(|| CzGate::new(qa, qb))
                })
                .collect()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Block synthesis never loses or invents gates.
    #[test]
    fn block_synthesis_preserves_gate_counts(circuit in random_circuit(12, 60)) {
        let program = BlockProgram::from_circuit(&circuit);
        prop_assert_eq!(program.total_cz_gates(), circuit.cz_count());
        prop_assert_eq!(program.total_one_qubit_gates(), circuit.one_qubit_count());
    }

    /// Stage partition covers every gate exactly once and every stage acts on
    /// disjoint qubits.
    #[test]
    fn stage_partition_is_a_valid_colouring(block in random_block(16, 60)) {
        let stages = partition_stages(&block);
        let total: usize = stages.iter().map(|s| s.len()).sum();
        prop_assert_eq!(total, block.len());
        for stage in &stages {
            let qubits = stage.interacting_qubits();
            prop_assert_eq!(qubits.len(), 2 * stage.len());
        }
        // Scheduling permutes but never drops stages.
        let scheduled = schedule_stages(stages.clone(), 0.5);
        prop_assert_eq!(scheduled.len(), stages.len());
        let rescheduled_total: usize = scheduled.iter().map(|s| s.len()).sum();
        prop_assert_eq!(rescheduled_total, block.len());
    }

    /// Grouped collective moves preserve every move and never violate the
    /// AOD order constraint.
    #[test]
    fn grouping_preserves_moves_and_compatibility(
        pairs in proptest::collection::vec((0u32..25, 0u32..25), 1..20)
    ) {
        let arch = Architecture::for_qubits(25);
        let grid = arch.grid();
        let sites: Vec<_> = grid.sites_in(Zone::Compute).collect();
        let moves: Vec<SiteMove> = pairs
            .iter()
            .enumerate()
            .map(|(i, &(from, to))| SiteMove::new(
                Qubit::new(i as u32),
                sites[from as usize % sites.len()],
                sites[to as usize % sites.len()],
            ))
            .collect();
        let groups = group_moves(&moves, &arch);
        let total: usize = groups.iter().map(Vec::len).sum();
        prop_assert_eq!(total, moves.len());
        for group in &groups {
            let trap_moves: Vec<_> = group.iter().map(|m| m.to_trap_move(&arch)).collect();
            prop_assert!(validate_collective_move(&trap_moves).is_ok());
        }
    }

    /// Every random circuit compiles to a hardware-valid program under both
    /// PowerMove configurations, preserving gate counts, and the with-storage
    /// configuration never exposes an idle qubit to a Rydberg excitation.
    #[test]
    fn compiled_programs_are_always_valid(circuit in random_circuit(10, 40)) {
        let arch = Architecture::for_qubits(circuit.num_qubits());
        for config in [CompilerConfig::default(), CompilerConfig::without_storage()] {
            let program = PowerMoveCompiler::new(config)
                .compile(&circuit, &arch)
                .expect("compilation succeeds");
            prop_assert!(validate(&program).is_ok());
            prop_assert_eq!(program.cz_gate_count(), circuit.cz_count());
            let report = evaluate_program(&program).expect("program scores");
            if config.use_storage {
                prop_assert_eq!(report.trace.excitation_exposure, 0);
            }
            prop_assert!(report.fidelity() >= 0.0 && report.fidelity() <= 1.0);
        }
    }

    /// The Enola baseline also always produces hardware-valid programs.
    #[test]
    fn enola_programs_are_always_valid(circuit in random_circuit(10, 30)) {
        let arch = Architecture::for_qubits(circuit.num_qubits());
        let program = EnolaCompiler::default()
            .compile(&circuit, &arch)
            .expect("compilation succeeds");
        prop_assert!(validate(&program).is_ok());
        prop_assert_eq!(program.cz_gate_count(), circuit.cz_count());
    }
}
