//! Randomized tests of the core compiler invariants, driven by seeded random
//! circuits and random movement sets.
//!
//! These were originally property-based tests; with no crates.io access the
//! workspace vendors a deterministic PRNG instead, and each invariant is
//! exercised over a fixed number of seeded random cases.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use powermove_suite::circuit::{BlockProgram, Circuit, CzBlock, CzGate, Qubit};
use powermove_suite::enola::EnolaCompiler;
use powermove_suite::fidelity::evaluate_program;
use powermove_suite::hardware::{validate_collective_move, Architecture, Zone};
use powermove_suite::powermove::{
    group_moves, partition_stages, schedule_stages, CompilerConfig, PowerMoveCompiler,
};
use powermove_suite::schedule::{validate, SiteMove};

const CASES: u64 = 32;

/// A random circuit over up to `max_qubits` qubits mixing H, Rz and CZ gates.
fn random_circuit(rng: &mut StdRng, max_qubits: u32, max_gates: usize) -> Circuit {
    let n = rng.gen_range(2..=max_qubits);
    let num_gates = rng.gen_range(1..max_gates);
    let mut circuit = Circuit::new(n);
    for _ in 0..num_gates {
        let kind = rng.gen_range(0_u8..3);
        let qa = Qubit::new(rng.gen_range(0..n));
        let qb = Qubit::new(rng.gen_range(0..n));
        match kind {
            0 => circuit.h(qa).expect("in range"),
            1 => circuit.rz(qa, 0.17).expect("in range"),
            _ => {
                if qa != qb {
                    circuit.cz(qa, qb).expect("in range");
                }
            }
        }
    }
    circuit
}

/// A random commuting CZ block over up to `max_qubits` qubits.
fn random_block(rng: &mut StdRng, max_qubits: u32, max_gates: usize) -> CzBlock {
    let n = rng.gen_range(4..=max_qubits);
    let num_gates = rng.gen_range(1..max_gates);
    (0..num_gates)
        .filter_map(|_| {
            let qa = Qubit::new(rng.gen_range(0..n));
            let qb = Qubit::new(rng.gen_range(0..n));
            (qa != qb).then(|| CzGate::new(qa, qb))
        })
        .collect()
}

/// Block synthesis never loses or invents gates.
#[test]
fn block_synthesis_preserves_gate_counts() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let circuit = random_circuit(&mut rng, 12, 60);
        let program = BlockProgram::from_circuit(&circuit);
        assert_eq!(program.total_cz_gates(), circuit.cz_count(), "seed {seed}");
        assert_eq!(
            program.total_one_qubit_gates(),
            circuit.one_qubit_count(),
            "seed {seed}"
        );
    }
}

/// Stage partition covers every gate exactly once and every stage acts on
/// disjoint qubits; scheduling permutes but never drops stages.
#[test]
fn stage_partition_is_a_valid_colouring() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let block = random_block(&mut rng, 16, 60);
        let stages = partition_stages(&block);
        let total: usize = stages.iter().map(|s| s.len()).sum();
        assert_eq!(total, block.len(), "seed {seed}");
        for stage in &stages {
            let qubits = stage.interacting_qubits();
            assert_eq!(qubits.len(), 2 * stage.len(), "seed {seed}");
        }
        let scheduled = schedule_stages(stages.clone(), 0.5);
        assert_eq!(scheduled.len(), stages.len(), "seed {seed}");
        let rescheduled_total: usize = scheduled.iter().map(|s| s.len()).sum();
        assert_eq!(rescheduled_total, block.len(), "seed {seed}");
    }
}

/// Grouped collective moves preserve every move and never violate the AOD
/// order constraint.
#[test]
fn grouping_preserves_moves_and_compatibility() {
    let arch = Architecture::for_qubits(25);
    let grid = arch.grid();
    let sites: Vec<_> = grid.sites_in(Zone::Compute).collect();
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let num_moves = rng.gen_range(1..20);
        let moves: Vec<SiteMove> = (0..num_moves)
            .map(|i| {
                SiteMove::new(
                    Qubit::new(i as u32),
                    sites[rng.gen_range(0..sites.len())],
                    sites[rng.gen_range(0..sites.len())],
                )
            })
            .collect();
        let groups = group_moves(&moves, &arch);
        let total: usize = groups.iter().map(Vec::len).sum();
        assert_eq!(total, moves.len(), "seed {seed}");
        for group in &groups {
            let trap_moves: Vec<_> = group.iter().map(|m| m.to_trap_move(&arch)).collect();
            assert!(
                validate_collective_move(&trap_moves).is_ok(),
                "seed {seed}: incompatible group"
            );
        }
    }
}

/// Every random circuit compiles to a hardware-valid program under both
/// PowerMove configurations, preserving gate counts, and the with-storage
/// configuration never exposes an idle qubit to a Rydberg excitation.
#[test]
fn compiled_programs_are_always_valid() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let circuit = random_circuit(&mut rng, 10, 40);
        let arch = Architecture::for_qubits(circuit.num_qubits());
        for config in [CompilerConfig::default(), CompilerConfig::without_storage()] {
            let program = PowerMoveCompiler::new(config)
                .compile(&circuit, &arch)
                .expect("compilation succeeds");
            assert!(validate(&program).is_ok(), "seed {seed}");
            assert_eq!(program.cz_gate_count(), circuit.cz_count(), "seed {seed}");
            let report = evaluate_program(&program).expect("program scores");
            if config.use_storage {
                assert_eq!(report.trace.excitation_exposure, 0, "seed {seed}");
            }
            assert!(
                (0.0..=1.0).contains(&report.fidelity()),
                "seed {seed}: fidelity {}",
                report.fidelity()
            );
        }
    }
}

/// The Enola baseline also always produces hardware-valid programs.
#[test]
fn enola_programs_are_always_valid() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let circuit = random_circuit(&mut rng, 10, 30);
        let arch = Architecture::for_qubits(circuit.num_qubits());
        let program = EnolaCompiler::default()
            .compile(&circuit, &arch)
            .expect("compilation succeeds");
        assert!(validate(&program).is_ok(), "seed {seed}");
        assert_eq!(program.cz_gate_count(), circuit.cz_count(), "seed {seed}");
    }
}
