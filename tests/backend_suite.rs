//! Workspace-level integration test of the open backend pipeline: every
//! benchmark family of `powermove_benchmarks::suite` (at its smallest
//! Table 2 size, to keep debug-mode runtime bounded) is compiled under every
//! registered backend, validated against the hardware rules, and scored.
//!
//! This is the contract all later scaling work builds on: any backend
//! registered with the harness must produce hardware-valid programs on the
//! whole suite, report per-pass timings, and PowerMove's with-storage
//! configuration must not lose fidelity to the Enola baseline on
//! storage-friendly workloads.

use powermove_bench::{
    run_all, run_instance, BackendRegistry, DEFAULT_SEED, ENOLA, POWERMOVE_STORAGE,
};
use powermove_suite::benchmarks::{generate, table2_sizes, BenchmarkFamily, BenchmarkInstance};
use powermove_suite::hardware::Architecture;
use powermove_suite::schedule::validate;

/// The smallest Table 2 instance of every benchmark family.
fn smallest_suite_instances() -> Vec<BenchmarkInstance> {
    let mut smallest: Vec<(BenchmarkFamily, u32)> = Vec::new();
    for (family, n) in table2_sizes() {
        match smallest.iter_mut().find(|(f, _)| *f == family) {
            Some((_, size)) => *size = (*size).min(n),
            None => smallest.push((family, n)),
        }
    }
    smallest
        .into_iter()
        .map(|(family, n)| generate(family, n, DEFAULT_SEED))
        .collect()
}

#[test]
fn every_suite_family_compiles_and_validates_under_every_backend() {
    let registry = BackendRegistry::standard();
    for instance in smallest_suite_instances() {
        let arch = Architecture::for_qubits(instance.num_qubits);
        for entry in registry.iter() {
            let program = entry
                .backend()
                .compile_circuit(&instance.circuit, &arch)
                .unwrap_or_else(|e| panic!("{} failed on {}: {e}", entry.id(), instance.name));
            validate(&program).unwrap_or_else(|e| {
                panic!(
                    "{} produced invalid program on {}: {e}",
                    entry.id(),
                    instance.name
                )
            });
            assert_eq!(
                program.cz_gate_count(),
                instance.circuit.cz_count(),
                "{} lost CZ gates on {}",
                entry.id(),
                instance.name
            );
            assert_eq!(
                program.one_qubit_gate_count(),
                instance.circuit.one_qubit_count(),
                "{} lost 1Q gates on {}",
                entry.id(),
                instance.name
            );
        }
    }
}

#[test]
fn powermove_storage_fidelity_dominates_enola_on_storage_friendly_workloads() {
    // Workloads with idle qubits, where parking in the storage zone pays:
    // exactly the regime the paper's Table 3 highlights.
    let registry = BackendRegistry::standard();
    for (family, n) in [
        (BenchmarkFamily::Bv, 30_u32),
        (BenchmarkFamily::QaoaRegular3, 30),
        (BenchmarkFamily::QsimRand, 20),
    ] {
        let instance = generate(family, n, DEFAULT_SEED);
        let enola = run_instance(&instance, 1, registry.entry(ENOLA).unwrap());
        let storage = run_instance(&instance, 1, registry.entry(POWERMOVE_STORAGE).unwrap());
        assert!(
            storage.fidelity >= enola.fidelity,
            "{}: powermove-storage {:.3e} < enola {:.3e}",
            instance.name,
            storage.fidelity,
            enola.fidelity
        );
        assert_eq!(
            storage.excitation_exposure, 0,
            "{}: storage mode left qubits exposed",
            instance.name
        );
    }
}

#[test]
fn every_backend_reports_pass_timings() {
    let registry = BackendRegistry::standard();
    let instance = generate(BenchmarkFamily::Bv, 14, DEFAULT_SEED);
    for result in run_all(&instance, 1, &registry) {
        assert!(
            !result.pass_timings.is_empty(),
            "{} reported no pass timings",
            result.compiler
        );
        assert!(
            result.pass_timings.iter().any(|t| t.pass == "stage"),
            "{} did not time its stage pass",
            result.compiler
        );
    }
}

#[test]
fn custom_backends_drop_into_the_registry() {
    use powermove_suite::powermove::{CompilerConfig, PowerMoveCompiler};

    let mut registry = BackendRegistry::standard();
    registry.register(
        "powermove-no-grouping",
        Box::new(PowerMoveCompiler::new(
            CompilerConfig::default().without_grouping(),
        )),
    );
    let instance = generate(BenchmarkFamily::Vqe, 16, DEFAULT_SEED);
    let results = run_all(&instance, 1, &registry);
    assert_eq!(results.len(), 4);
    let ungrouped = results
        .iter()
        .find(|r| r.compiler == "powermove-no-grouping")
        .expect("ablation backend ran");
    let grouped = results
        .iter()
        .find(|r| r.compiler == POWERMOVE_STORAGE)
        .expect("standard backend ran");
    assert_eq!(ungrouped.cz_gates, grouped.cz_gates);
    // Without grouping every move flies alone, so execution takes at least
    // as long.
    assert!(ungrouped.execution_time_us >= grouped.execution_time_us);
}
