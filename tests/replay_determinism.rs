//! Determinism guarantees of the route-only replay hot path.
//!
//! The routing-session redesign splits portfolio tuning along the
//! compiler's front/back-end seam: the circuit is staged **once** into a
//! frozen `StagedIr` and every candidate strategy replays only the
//! route/emit back end from it. These tests pin the contract that makes
//! that safe:
//!
//! * emitting a shared staged IR under an explicit strategy
//!   (`emit_with_strategy`) is byte-identical to a full compile configured
//!   with the same strategy — across every suite family and at 1, 2 and 4
//!   worker threads;
//! * the portfolio auto-tuner's emitted program equals the best replay's
//!   instruction stream under its own (movement, transfers) selection rule;
//! * the deprecated `route_stage` / `route_stage_scored` shims plan exactly
//!   what the `SitePolicy`-based `route_stage_with` plans;
//! * a property test replays random stage chains through the arena-backed
//!   router and through a verbatim port of the pre-arena `BTreeMap`
//!   planner, asserting identical move plans and layouts after every stage
//!   (case count tunable via `POWERMOVE_PROP_CASES`) — both under the zero
//!   bias and under a nonzero `SitePolicy` bias, so the index-pruned
//!   free-site search is pinned against the reference scan through whole
//!   routed stages, not just isolated queries.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use powermove_suite::benchmarks::{generate, BenchmarkFamily};
use powermove_suite::circuit::{CzGate, Qubit};
use powermove_suite::hardware::{Architecture, Point, SiteId, Zone, ZonedGrid};
use powermove_suite::powermove::{
    movement_wall_clock, BiasFn, CompilerConfig, GreedyRouter, LookaheadRouter, MultiAodScheduler,
    PowerMoveCompiler, RoutingConfig, RoutingState, RoutingStrategy, Stage, ZeroBias,
};
use powermove_suite::schedule::{canonical_program_bytes, Layout, SiteMove};

/// The portfolio members, in the auto-tuner's candidate (and tie-break)
/// order, paired with the fixed routing configuration that selects each.
fn candidates() -> [(RoutingConfig, Arc<dyn RoutingStrategy>); 3] {
    [
        (RoutingConfig::greedy(), Arc::new(GreedyRouter)),
        (
            RoutingConfig::lookahead(2),
            Arc::new(LookaheadRouter::new(2)),
        ),
        (
            RoutingConfig::multi_aod(),
            Arc::new(MultiAodScheduler::default()),
        ),
    ]
}

#[test]
fn replay_emission_matches_the_full_compile_for_every_family_and_thread_count() {
    for family in BenchmarkFamily::ALL {
        let instance = generate(family, 12, 20250);
        let arch = Architecture::for_qubits(instance.num_qubits).with_num_aods(2);
        for (routing, strategy) in candidates() {
            for threads in [1_usize, 2, 4] {
                let config = CompilerConfig::default()
                    .with_routing(routing)
                    .with_threads(threads);
                let compiler = PowerMoveCompiler::new(config);
                let full = compiler
                    .compile(&instance.circuit, &arch)
                    .expect("suite instances compile");
                // Stage once, then emit through the replay path.
                let ir = compiler.stage(&instance.circuit);
                let replayed = compiler
                    .emit_with_strategy(&ir, &arch, strategy.clone())
                    .expect("replay emission succeeds");
                assert_eq!(
                    canonical_program_bytes(&full),
                    canonical_program_bytes(&replayed),
                    "{family} / {} / threads={threads}: full compile vs replay diverged",
                    strategy.name(),
                );
            }
        }
    }
}

#[test]
fn portfolio_output_equals_the_best_replay() {
    for family in [
        BenchmarkFamily::QaoaRegular3,
        BenchmarkFamily::Qft,
        BenchmarkFamily::Bv,
    ] {
        let instance = generate(family, 14, 20250);
        let arch = Architecture::for_qubits(instance.num_qubits).with_num_aods(2);
        let auto = PowerMoveCompiler::new(
            CompilerConfig::default()
                .with_routing(RoutingConfig::auto())
                .with_threads(1),
        );
        let program = auto
            .compile(&instance.circuit, &arch)
            .expect("suite instances compile");

        // Rebuild the portfolio by hand: one stage pass, one replay per
        // candidate, then the auto-tuner's selection rule (movement first,
        // trap transfers as tie-break, earlier candidate wins).
        let ir = auto.stage(&instance.circuit);
        let session = auto.session(&ir);
        let mut best: Option<powermove_suite::powermove::Replay> = None;
        for (_, strategy) in candidates() {
            let replay = session.replay(&arch, strategy).expect("replay succeeds");
            let better = best.as_ref().map_or(true, |b| {
                replay.movement_wall_clock() < b.movement_wall_clock()
                    || (replay.movement_wall_clock() == b.movement_wall_clock()
                        && replay.transfer_count() < b.transfer_count())
            });
            if better {
                best = Some(replay);
            }
        }
        let best = best.expect("portfolio is non-empty");
        assert_eq!(
            program.instructions(),
            best.instructions(),
            "{family}: auto-tuned program is not the best replay"
        );
        let emitted = movement_wall_clock(program.instructions(), program.architecture());
        assert_eq!(
            emitted.to_bits(),
            best.movement_wall_clock().to_bits(),
            "{family}: replay's incremental clock diverged from the emitted stream"
        );
    }
}

#[test]
#[allow(deprecated)]
fn deprecated_shims_plan_exactly_what_the_policy_api_plans() {
    let arch = Architecture::for_qubits(8);
    let stages = [
        stage(&[(0, 1), (2, 3), (4, 5), (6, 7)]),
        stage(&[(1, 2), (3, 4), (5, 6)]),
        stage(&[(0, 7), (2, 5)]),
    ];
    for use_storage in [true, false] {
        let zone = if use_storage {
            Zone::Storage
        } else {
            Zone::Compute
        };
        let layout = Layout::row_major(&arch, 8, zone).unwrap();
        let mut shimmed = RoutingState::new(arch.clone(), layout.clone(), use_storage);
        let mut scored = RoutingState::new(arch.clone(), layout.clone(), use_storage);
        let mut policied = RoutingState::new(arch.clone(), layout, use_storage);
        for st in &stages {
            let a = shimmed.route_stage(st).unwrap();
            let b = scored.route_stage_scored(st, &|_, _, _| 0.0).unwrap();
            let c = policied.route_stage_with(st, &ZeroBias).unwrap();
            assert_eq!(a, c, "route_stage shim diverged (storage={use_storage})");
            assert_eq!(
                b, c,
                "route_stage_scored shim diverged (storage={use_storage})"
            );
        }
        assert_eq!(shimmed.layout(), policied.layout());
        assert_eq!(scored.layout(), policied.layout());
    }
}

// ---------------------------------------------------------------------------
// Arena vs pre-arena reference planner.
// ---------------------------------------------------------------------------

/// Default number of random stage-chain cases; override with
/// `POWERMOVE_PROP_CASES`.
const DEFAULT_CASES: u64 = 100;

fn cases() -> u64 {
    std::env::var("POWERMOVE_PROP_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_CASES)
}

fn q(i: u32) -> Qubit {
    Qubit::new(i)
}

fn stage(edges: &[(u32, u32)]) -> Stage {
    Stage::new(
        edges
            .iter()
            .map(|&(a, b)| CzGate::new(q(a), q(b)))
            .collect(),
    )
}

/// A random chain of stages over `num_qubits` qubits: each stage pairs a
/// random disjoint subset of the qubits.
fn random_stages(rng: &mut StdRng, num_qubits: u32) -> Vec<Stage> {
    let num_stages = rng.gen_range(2..=5_usize);
    (0..num_stages)
        .map(|_| {
            let mut pool: Vec<u32> = (0..num_qubits).collect();
            let pairs = rng.gen_range(1..=(num_qubits / 2).max(1) as usize);
            let mut edges = Vec::new();
            for _ in 0..pairs {
                if pool.len() < 2 {
                    break;
                }
                let a = pool.swap_remove(rng.gen_range(0..pool.len()));
                let b = pool.swap_remove(rng.gen_range(0..pool.len()));
                edges.push((a.min(b), a.max(b)));
            }
            stage(&edges)
        })
        .collect()
}

/// A verbatim port of the pre-arena `route_stage` planner: planned
/// occupancy in a `BTreeMap<SiteId, BTreeSet<Qubit>>` rebuilt per stage,
/// free sites found by scanning every site of the zone. Kept as the
/// executable specification the arena implementation must match.
fn reference_route_stage(
    arch: &Architecture,
    layout: &mut Layout,
    use_storage: bool,
    stage: &Stage,
    bias: &dyn Fn(Qubit, Qubit, SiteId) -> f64,
) -> Vec<SiteMove> {
    let grid = arch.grid().clone();
    let interacting = stage.interacting_qubits();

    let mut planned: BTreeMap<SiteId, BTreeSet<Qubit>> = BTreeMap::new();
    for (q, site) in layout.iter() {
        planned.entry(site).or_default().insert(q);
    }

    let mut storage_moves: Vec<SiteMove> = Vec::new();
    let mut interaction_moves: Vec<SiteMove> = Vec::new();

    // Step 1 (non-storage mode): separate stale pairs.
    if !use_storage {
        let stale: Vec<(Qubit, SiteId)> = layout
            .occupied_sites()
            .filter(|(_, occupants)| {
                occupants.len() >= 2 && occupants.iter().all(|q| !interacting.contains(q))
            })
            .flat_map(|(site, occupants)| {
                occupants
                    .iter()
                    .skip(1)
                    .map(move |&q| (q, site))
                    .collect::<Vec<_>>()
            })
            .collect();
        for (q, from) in stale {
            planned.entry(from).or_default().remove(&q);
            let from_pos = grid.position(from);
            let target = reference_best_free_site(&grid, layout, &planned, Zone::Compute, |site| {
                grid.position(site).distance(from_pos)
            })
            .expect("default grid always has a free compute site");
            planned.entry(target).or_default().insert(q);
            storage_moves.push(SiteMove::new(q, from, target));
        }
    }

    // Step 1: park non-interacting computation-zone qubits in storage.
    if use_storage {
        let mut to_park: Vec<(Qubit, SiteId, Point)> = layout
            .iter()
            .filter(|(q, site)| !interacting.contains(q) && grid.zone_of(*site) == Zone::Compute)
            .map(|(q, site)| (q, site, grid.position(site)))
            .collect();
        to_park.sort_by(|a, b| {
            b.2.y
                .partial_cmp(&a.2.y)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        for (q, from, from_pos) in to_park {
            planned.entry(from).or_default().remove(&q);
            let (col, _) = grid.col_row(from);
            let same_column = (0..grid.storage_rows())
                .filter_map(|row| grid.site(Zone::Storage, col, row))
                .find(|s| {
                    planned.get(s).map_or(0, BTreeSet::len) == 0 && layout.occupancy(*s) == 0
                });
            let target = same_column
                .or_else(|| {
                    reference_best_free_site(&grid, layout, &planned, Zone::Storage, |site| {
                        grid.position(site).distance(from_pos)
                    })
                })
                .expect("default grid always has a free storage site");
            planned.entry(target).or_default().insert(q);
            storage_moves.push(SiteMove::new(q, from, target));
        }
    }

    let storage_movers: BTreeSet<Qubit> = storage_moves.iter().map(|m| m.qubit).collect();

    // Step 2: label interacting qubits and decide direct moves.
    let mut pending: Vec<(Qubit, Qubit)> = Vec::new();
    for gate in stage.gates() {
        let a = gate.lo();
        let b = gate.hi();
        let sa = layout.site_of(a).expect("interacting qubit is placed");
        let sb = layout.site_of(b).expect("interacting qubit is placed");
        if sa == sb {
            continue;
        }
        let za = grid.zone_of(sa);
        let zb = grid.zone_of(sb);

        let (mobile, anchor, anchor_site, mut anchor_moves) = match (za, zb) {
            (Zone::Storage, Zone::Storage) => (a, b, sb, true),
            (Zone::Storage, Zone::Compute) => (a, b, sb, false),
            (Zone::Compute, Zone::Storage) => (b, a, sa, false),
            (Zone::Compute, Zone::Compute) => {
                let blocked_a = reference_is_blocked(layout, &planned, &storage_movers, sa, a, b);
                let blocked_b = reference_is_blocked(layout, &planned, &storage_movers, sb, a, b);
                if !blocked_b {
                    (a, b, sb, false)
                } else if !blocked_a {
                    (b, a, sa, false)
                } else {
                    (a, b, sb, true)
                }
            }
        };

        let mobile_site = if mobile == a { sa } else { sb };
        planned.entry(mobile_site).or_default().remove(&mobile);

        if !anchor_moves
            && reference_is_blocked(
                layout,
                &planned,
                &storage_movers,
                anchor_site,
                anchor,
                mobile,
            )
        {
            anchor_moves = true;
        }
        if !anchor_moves && grid.zone_of(anchor_site) == Zone::Storage {
            anchor_moves = true;
        }

        if anchor_moves {
            planned.entry(anchor_site).or_default().remove(&anchor);
            pending.push((anchor, mobile));
        } else {
            planned.entry(anchor_site).or_default().insert(mobile);
            interaction_moves.push(SiteMove::new(mobile, mobile_site, anchor_site));
        }
    }

    // Step 3: resolve undecided pairs to the best free compute site.
    for (anchor, mobile) in pending {
        let anchor_from = layout.site_of(anchor).expect("interacting qubit is placed");
        let mobile_from = layout.site_of(mobile).expect("interacting qubit is placed");
        let anchor_pos = grid.position(anchor_from);
        let target = reference_best_free_site(&grid, layout, &planned, Zone::Compute, |site| {
            grid.position(site).distance(anchor_pos) + bias(anchor, mobile, site)
        })
        .expect("default grid always has a free compute site");
        planned.entry(target).or_default().insert(anchor);
        planned.entry(target).or_default().insert(mobile);
        interaction_moves.push(SiteMove::new(anchor, anchor_from, target));
        interaction_moves.push(SiteMove::new(mobile, mobile_from, target));
    }

    let mut all = storage_moves;
    all.extend(interaction_moves);
    for m in &all {
        layout.move_qubit(m.qubit, m.to);
    }
    all
}

fn reference_is_blocked(
    layout: &Layout,
    planned: &BTreeMap<SiteId, BTreeSet<Qubit>>,
    storage_movers: &BTreeSet<Qubit>,
    site: SiteId,
    exclude_a: Qubit,
    exclude_b: Qubit,
) -> bool {
    let planned_blocker = planned
        .get(&site)
        .is_some_and(|set| set.iter().any(|&q| q != exclude_a && q != exclude_b));
    let current_blocker = layout
        .occupants(site)
        .iter()
        .any(|&q| q != exclude_a && q != exclude_b && !storage_movers.contains(&q));
    planned_blocker || current_blocker
}

fn reference_best_free_site(
    grid: &ZonedGrid,
    layout: &Layout,
    planned: &BTreeMap<SiteId, BTreeSet<Qubit>>,
    zone: Zone,
    score: impl Fn(SiteId) -> f64,
) -> Option<SiteId> {
    let candidates = |also_currently_empty: bool| {
        grid.sites_in(zone)
            .filter(move |s| {
                planned.get(s).map_or(0, BTreeSet::len) == 0
                    && (!also_currently_empty || layout.occupancy(*s) == 0)
            })
            .min_by(|&x, &y| {
                score(x)
                    .partial_cmp(&score(y))
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(x.cmp(&y))
            })
    };
    candidates(true).or_else(|| candidates(false))
}

#[test]
fn arena_router_matches_the_btreemap_reference_on_random_stage_chains() {
    let cases = cases();
    for seed in 0..cases {
        let mut rng = StdRng::seed_from_u64(seed);
        let num_qubits = rng.gen_range(4..=10_u32);
        let stages = random_stages(&mut rng, num_qubits);
        // Alternate storage mode across seeds so both planners' step-1
        // branches get even coverage.
        let use_storage = seed % 2 == 0;
        let zone = if use_storage {
            Zone::Storage
        } else {
            Zone::Compute
        };
        let arch = Architecture::for_qubits(num_qubits);
        let initial = Layout::row_major(&arch, num_qubits, zone).unwrap();
        let mut arena = RoutingState::new(arch.clone(), initial.clone(), use_storage);
        let mut reference_layout = initial;
        for (i, st) in stages.iter().enumerate() {
            let planned = arena
                .route_stage_with(st, &ZeroBias)
                .expect("default grid never runs out of sites");
            let expected =
                reference_route_stage(&arch, &mut reference_layout, use_storage, st, &|_, _, _| {
                    0.0
                });
            assert_eq!(
                planned.all_moves(),
                expected,
                "seed {seed} stage {i} (storage={use_storage}): move plans diverged"
            );
            assert_eq!(
                arena.layout(),
                &reference_layout,
                "seed {seed} stage {i} (storage={use_storage}): layouts diverged"
            );
        }
    }
}

#[test]
fn biased_arena_router_matches_the_biased_reference_on_random_stage_chains() {
    // Same chain replay, but through a nonzero `SitePolicy`: the pruned
    // search must agree with the reference scan when the score is distance
    // *plus* a pair- and site-dependent bias, exercising the cutoff with a
    // bound (`min_bias() == 0.0`) strictly below most biases.
    let pseudo_bias = |anchor: Qubit, mobile: Qubit, site: SiteId| -> f64 {
        let mix = (u64::from(anchor.index()) * 31 + u64::from(mobile.index()) * 7)
            ^ (site.index() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (mix % 23) as f64 * 0.375
    };
    let policy = BiasFn::new(pseudo_bias);
    for seed in 0..cases() {
        let mut rng = StdRng::seed_from_u64(0xB1A5 ^ seed);
        let num_qubits = rng.gen_range(4..=10_u32);
        let stages = random_stages(&mut rng, num_qubits);
        let use_storage = seed % 2 == 0;
        let zone = if use_storage {
            Zone::Storage
        } else {
            Zone::Compute
        };
        let arch = Architecture::for_qubits(num_qubits);
        let initial = Layout::row_major(&arch, num_qubits, zone).unwrap();
        let mut arena = RoutingState::new(arch.clone(), initial.clone(), use_storage);
        let mut reference_layout = initial;
        for (i, st) in stages.iter().enumerate() {
            let planned = arena
                .route_stage_with(st, &policy)
                .expect("default grid never runs out of sites");
            let expected =
                reference_route_stage(&arch, &mut reference_layout, use_storage, st, &pseudo_bias);
            assert_eq!(
                planned.all_moves(),
                expected,
                "seed {seed} stage {i} (storage={use_storage}): biased move plans diverged"
            );
            assert_eq!(
                arena.layout(),
                &reference_layout,
                "seed {seed} stage {i} (storage={use_storage}): biased layouts diverged"
            );
        }
    }
}
