//! Integration test: every generated benchmark circuit survives an OpenQASM
//! round trip, the re-imported circuit compiles to an equivalent program,
//! and malformed input — the schedule-lint corpus runner feeds the importer
//! untrusted files — is rejected with a structured [`qasm::QasmError`]
//! instead of a panic or an unbounded allocation.

use powermove_suite::benchmarks::{generate, BenchmarkFamily};
use powermove_suite::circuit::qasm::{self, QasmError};
use powermove_suite::hardware::Architecture;
use powermove_suite::powermove::{CompilerConfig, PowerMoveCompiler};

#[test]
fn benchmark_circuits_round_trip_through_qasm() {
    for family in BenchmarkFamily::ALL {
        let n = match family {
            BenchmarkFamily::Qft => 8,
            _ => 12,
        };
        let instance = generate(family, n, 31);
        let text = qasm::to_qasm(&instance.circuit);
        let parsed = qasm::from_qasm(&text).unwrap_or_else(|e| panic!("{family}: {e}"));
        assert_eq!(
            parsed, instance.circuit,
            "{family} round trip changed the circuit"
        );
    }
}

#[test]
fn reimported_circuit_compiles_to_equivalent_schedule() {
    let instance = generate(BenchmarkFamily::QaoaRegular3, 16, 31);
    let parsed = qasm::from_qasm(&qasm::to_qasm(&instance.circuit)).expect("parses");
    let arch = Architecture::for_qubits(16);
    let compiler = PowerMoveCompiler::new(CompilerConfig::default());
    let original = compiler
        .compile(&instance.circuit, &arch)
        .expect("compiles");
    let reimported = compiler.compile(&parsed, &arch).expect("compiles");
    assert_eq!(original.cz_gate_count(), reimported.cz_gate_count());
    assert_eq!(
        original.one_qubit_gate_count(),
        reimported.one_qubit_gate_count()
    );
    assert_eq!(
        original.rydberg_stage_count(),
        reimported.rydberg_stage_count()
    );
}

/// Classifies which [`QasmError`] variant an input must be rejected with.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Rejection {
    MissingHeader,
    Malformed,
    UnsupportedGate,
    RegisterTooLarge,
    DuplicateRegister,
    Circuit,
}

fn classify(error: &QasmError) -> Rejection {
    match error {
        QasmError::MissingHeader => Rejection::MissingHeader,
        QasmError::Malformed { .. } => Rejection::Malformed,
        QasmError::UnsupportedGate { .. } => Rejection::UnsupportedGate,
        QasmError::RegisterTooLarge { .. } => Rejection::RegisterTooLarge,
        QasmError::DuplicateRegister { .. } => Rejection::DuplicateRegister,
        QasmError::Circuit(_) => Rejection::Circuit,
    }
}

#[test]
fn malformed_inputs_are_rejected_with_structured_errors() {
    use Rejection::*;
    let header = "OPENQASM 2.0;\nqreg q[4];\n";
    let with = |gate: &str| format!("{header}{gate}\n");
    let matrix: Vec<(String, Rejection, &str)> = vec![
        // Truncated / missing headers.
        (String::new(), MissingHeader, "empty input"),
        ("h q[0];".to_string(), MissingHeader, "gate before qreg"),
        (
            "OPENQASM 2.0;\nh q[0];\n".to_string(),
            MissingHeader,
            "version line but no register",
        ),
        (
            "OPENQASM 2.0;\nqreg q[4\nh q[0];\n".to_string(),
            Malformed,
            "truncated qreg bracket",
        ),
        (
            "OPENQASM 2.0;\nqreg q[];\n".to_string(),
            Malformed,
            "empty register size",
        ),
        (
            "OPENQASM 2.0;\nqreg q[-3];\n".to_string(),
            Malformed,
            "negative register size",
        ),
        // Oversized and duplicated registers.
        (
            "OPENQASM 2.0;\nqreg q[4294967295];\n".to_string(),
            RegisterTooLarge,
            "u32::MAX register must not allocate",
        ),
        (
            "OPENQASM 2.0;\nqreg q[18446744073709551615];\n".to_string(),
            RegisterTooLarge,
            "u64::MAX register must not allocate",
        ),
        (
            "OPENQASM 2.0;\nqreg q[99999999999999999999999];\n".to_string(),
            Malformed,
            "size beyond u64 does not even parse",
        ),
        (
            "OPENQASM 2.0;\nqreg q[2];\nqreg r[2];\n".to_string(),
            DuplicateRegister,
            "second qreg",
        ),
        (
            "OPENQASM 2.0;\nqreg q[0];\n".to_string(),
            Circuit,
            "zero-qubit register",
        ),
        // Qubit references.
        (with("h q[9];"), Circuit, "out-of-range qubit index"),
        (with("h q[4294967296];"), Malformed, "index beyond u32"),
        (with("h q[x];"), Malformed, "non-numeric index"),
        (with("h q0;"), Malformed, "missing brackets"),
        (with("cz q[1], q[1];"), Circuit, "duplicate qubit in cz"),
        // Unknown gates and wrong arities.
        (
            with("ccx q[0], q[1], q[2];"),
            UnsupportedGate,
            "unknown gate",
        ),
        (with("swap q[0], q[1];"), UnsupportedGate, "unknown 2q gate"),
        (with("cz q[0];"), Malformed, "cz with one operand"),
        (with("h q[0], q[1];"), Malformed, "h with two operands"),
        (with("rz q[0];"), Malformed, "rz without an angle"),
        (
            with("h(0.5) q[0];"),
            Malformed,
            "angle on an angle-free gate",
        ),
        // Angles.
        (with("rx() q[0];"), Malformed, "empty angle"),
        (with("rx(abc) q[0];"), Malformed, "non-numeric angle"),
        (with("rx(inf) q[0];"), Malformed, "infinite angle"),
        (with("ry(-inf) q[0];"), Malformed, "negative-infinite angle"),
        (with("rz(NaN) q[0];"), Malformed, "NaN angle"),
    ];
    for (input, expected, what) in &matrix {
        match qasm::from_qasm(input) {
            Err(e) => assert_eq!(
                classify(&e),
                *expected,
                "{what}: expected {expected:?}, got {e:?}"
            ),
            Ok(_) => panic!("{what}: input was accepted: {input:?}"),
        }
    }
}

#[test]
fn rejection_errors_render_line_numbers() {
    let text = "OPENQASM 2.0;\nqreg q[2];\nqreg r[2];\n";
    match qasm::from_qasm(text) {
        Err(QasmError::DuplicateRegister { line }) => assert_eq!(line, 3),
        other => panic!("expected duplicate-register error, got {other:?}"),
    }
    let text = "OPENQASM 2.0;\nqreg q[999999999];\n";
    match qasm::from_qasm(text) {
        Err(e @ QasmError::RegisterTooLarge { line, size }) => {
            assert_eq!((line, size), (2, 999_999_999));
            assert!(e.to_string().contains("999999999"));
        }
        other => panic!("expected register-too-large error, got {other:?}"),
    }
}

#[test]
fn finite_angles_still_parse_after_hardening() {
    let text = "OPENQASM 2.0;\nqreg q[2];\nrx(1.5e-3) q[0];\nrz(-0.25) q[1];\n";
    let c = qasm::from_qasm(text).expect("finite scientific-notation angles parse");
    assert_eq!(c.num_gates(), 2);
}
