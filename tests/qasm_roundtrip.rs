//! Integration test: every generated benchmark circuit survives an OpenQASM
//! round trip, and the re-imported circuit compiles to an equivalent program.

use powermove_suite::benchmarks::{generate, BenchmarkFamily};
use powermove_suite::circuit::qasm;
use powermove_suite::hardware::Architecture;
use powermove_suite::powermove::{CompilerConfig, PowerMoveCompiler};

#[test]
fn benchmark_circuits_round_trip_through_qasm() {
    for family in BenchmarkFamily::ALL {
        let n = match family {
            BenchmarkFamily::Qft => 8,
            _ => 12,
        };
        let instance = generate(family, n, 31);
        let text = qasm::to_qasm(&instance.circuit);
        let parsed = qasm::from_qasm(&text).unwrap_or_else(|e| panic!("{family}: {e}"));
        assert_eq!(
            parsed, instance.circuit,
            "{family} round trip changed the circuit"
        );
    }
}

#[test]
fn reimported_circuit_compiles_to_equivalent_schedule() {
    let instance = generate(BenchmarkFamily::QaoaRegular3, 16, 31);
    let parsed = qasm::from_qasm(&qasm::to_qasm(&instance.circuit)).expect("parses");
    let arch = Architecture::for_qubits(16);
    let compiler = PowerMoveCompiler::new(CompilerConfig::default());
    let original = compiler
        .compile(&instance.circuit, &arch)
        .expect("compiles");
    let reimported = compiler.compile(&parsed, &arch).expect("compiles");
    assert_eq!(original.cz_gate_count(), reimported.cz_gate_count());
    assert_eq!(
        original.one_qubit_gate_count(),
        reimported.one_qubit_gate_count()
    );
    assert_eq!(
        original.rydberg_stage_count(),
        reimported.rydberg_stage_count()
    );
}
