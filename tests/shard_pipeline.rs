//! Workspace-level contract of the sharded, statistically-gated benchmark
//! pipeline:
//!
//! * the standard shard partition is a **disjoint exact cover** of the full
//!   gated suite — every cell is gated exactly once, so per-shard CI jobs
//!   plus a merge reproduce the monolithic gate;
//! * `bench-gate merge` of per-shard JSONL part-files is **byte-identical**
//!   to the report a monolithic run of the same cells writes, regardless of
//!   part-file order or the completion order of streamed lines;
//! * a stream truncated at a line boundary (what a killed run leaves, since
//!   the writer flushes per cell) still parses, and gating the merged
//!   partial matrix reports the unfinished cells as missing;
//! * repeat-run sampling collects one wall-clock sample per repeat while
//!   deterministic metrics stay single-run.

use powermove_bench::{
    compare, merge_cells, parse_cells, read_cells, run_instance, run_instance_sampled, run_shard,
    BackendRegistry, Baseline, BaselineEntry, GateTolerance, ReportWriter, RunResult, ShardCell,
    ShardRegistry, SuiteShard, DEFAULT_SEED, ENOLA, LARGE_SHARD_QUBITS, POWERMOVE_AUTO,
    POWERMOVE_MULTI_AOD, POWERMOVE_NON_STORAGE, POWERMOVE_STORAGE,
};
use powermove_suite::benchmarks::{generate, table2_suite, BenchmarkFamily};
use serde_json::Value;
use std::collections::BTreeSet;
use std::path::PathBuf;

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "powermove-shard-pipeline-{tag}-{}.jsonl",
        std::process::id()
    ))
}

/// A small two-shard registry that is cheap to run in debug mode.
fn tiny_shards() -> ShardRegistry {
    let cell = |family, n| ShardCell::new(generate(family, n, DEFAULT_SEED), 1);
    ShardRegistry::from_shards(vec![
        SuiteShard::new(
            "tiny/a",
            vec![ENOLA.to_string(), POWERMOVE_STORAGE.to_string()],
            vec![cell(BenchmarkFamily::Bv, 8), cell(BenchmarkFamily::Qft, 6)],
        ),
        SuiteShard::new(
            "tiny/b",
            vec![POWERMOVE_STORAGE.to_string()],
            vec![cell(BenchmarkFamily::QaoaRegular3, 10)],
        ),
    ])
}

#[test]
fn standard_shards_are_a_disjoint_exact_cover_of_the_gated_suite() {
    let shards = ShardRegistry::standard(DEFAULT_SEED);

    // Disjoint: no (compiler, benchmark) cell appears in two shards.
    let mut seen: BTreeSet<(String, String)> = BTreeSet::new();
    for shard in shards.iter() {
        for cell in shard.cell_ids() {
            assert!(
                seen.insert(cell.clone()),
                "cell {cell:?} is gated by more than one shard"
            );
        }
    }

    // Exact cover: the union is precisely Table 2 under the three standard
    // backends plus the portfolio auto-tuner (whose stage-once replay
    // compile clock the table2 shards gate), plus the Fig. 6 sweep extras
    // under the three standard backends, plus the Fig. 7 multi-AOD grid
    // under the greedy with-storage, multi-AOD scheduler and portfolio
    // auto-tuner backends.
    let standard = [ENOLA, POWERMOVE_NON_STORAGE, POWERMOVE_STORAGE];
    let table2_backends = [
        ENOLA,
        POWERMOVE_NON_STORAGE,
        POWERMOVE_STORAGE,
        POWERMOVE_AUTO,
    ];
    let mut expected: BTreeSet<(String, String)> = BTreeSet::new();
    let table2_names: Vec<String> = table2_suite(DEFAULT_SEED)
        .into_iter()
        .map(|i| i.name)
        .collect();
    for name in &table2_names {
        for backend in table2_backends {
            expected.insert((backend.to_string(), name.clone()));
        }
    }
    for (family, sizes) in powermove_bench::fig6_sweeps() {
        for n in sizes {
            let name = generate(family, n, DEFAULT_SEED).name;
            if table2_names.contains(&name) {
                continue;
            }
            for backend in standard {
                expected.insert((backend.to_string(), name.clone()));
            }
        }
    }
    for (family, n) in powermove_bench::fig7_cases() {
        let base = generate(family, n, DEFAULT_SEED).name;
        for aods in 2..=4 {
            for backend in [POWERMOVE_STORAGE, POWERMOVE_MULTI_AOD, POWERMOVE_AUTO] {
                expected.insert((backend.to_string(), format!("{base}@aods{aods}")));
            }
        }
    }
    for cell in powermove_bench::lint_corpus_cells(DEFAULT_SEED) {
        for backend in [POWERMOVE_STORAGE, POWERMOVE_MULTI_AOD, POWERMOVE_AUTO] {
            expected.insert((backend.to_string(), cell.instance.name.clone()));
        }
    }
    assert_eq!(seen, expected, "shard union drifted from the gated suite");

    // Every cell has a canonical rank and the ranks are a permutation.
    let ranks: BTreeSet<usize> = seen
        .iter()
        .map(|(c, b)| shards.cell_rank(c, b).expect("every gated cell has a rank"))
        .collect();
    assert_eq!(ranks.len(), seen.len());
    assert_eq!(*ranks.iter().max().unwrap(), seen.len() - 1);
    assert!(shards.cell_rank("enola", "not-a-benchmark").is_none());
}

#[test]
fn baseline_wall_clocks_drive_the_table2_split_and_preserve_the_cover() {
    // Build a synthetic baseline in which exactly one *small* benchmark
    // (BV-14) carries almost the entire recorded compile cost: the balanced
    // split must put it in one shard and essentially everything else in the
    // other, regardless of qubit counts.
    let fallback = ShardRegistry::standard(DEFAULT_SEED);
    let entry = |compiler: &str, benchmark: &str, seconds: f64| BaselineEntry {
        compiler: compiler.to_string(),
        benchmark: benchmark.to_string(),
        shard: String::new(),
        fidelity: 0.9,
        execution_time_us: 1000.0,
        compile_time: powermove_bench::SampleStats::single(seconds),
        stages: 1,
        transfers: 2,
        cz_gates: 3,
    };
    let mut entries = Vec::new();
    for instance in table2_suite(DEFAULT_SEED) {
        let cost = if instance.name == "BV-14" {
            1000.0
        } else {
            0.001
        };
        for backend in [ENOLA, POWERMOVE_NON_STORAGE, POWERMOVE_STORAGE] {
            entries.push(entry(backend, &instance.name, cost));
        }
    }
    let baseline = Baseline { entries };
    let balanced = ShardRegistry::standard_with_baseline(DEFAULT_SEED, Some(&baseline));

    // The heaviest cell lands in `table2/large` (longest-first seeding) and
    // nearly everything else balances into `table2/small`.
    let large = balanced.get("table2/large").unwrap();
    let small = balanced.get("table2/small").unwrap();
    assert!(large.cells().iter().any(|c| c.instance.name == "BV-14"));
    assert!(small.cells().len() > large.cells().len());

    // The union of gated cells is identical to the fallback registry's —
    // the split never changes coverage, only membership.
    let union = |registry: &ShardRegistry| -> BTreeSet<(String, String)> {
        registry.iter().flat_map(SuiteShard::cell_ids).collect()
    };
    assert_eq!(union(&balanced), union(&fallback));

    // Every cell still has a unique canonical rank.
    let cells = union(&balanced);
    let ranks: BTreeSet<usize> = cells
        .iter()
        .map(|(c, b)| balanced.cell_rank(c, b).expect("rank"))
        .collect();
    assert_eq!(ranks.len(), cells.len());
}

#[test]
fn cells_without_baseline_entries_fall_back_to_the_qubit_heuristic() {
    // A baseline covering only one large benchmark: every other instance is
    // split by the qubit threshold, and with only one costed cell the
    // balancer puts it in the (empty-cost) large shard.
    let mut entries = Vec::new();
    for backend in [ENOLA, POWERMOVE_NON_STORAGE, POWERMOVE_STORAGE] {
        entries.push(BaselineEntry {
            compiler: backend.to_string(),
            benchmark: "QFT-18".to_string(),
            shard: String::new(),
            fidelity: 0.9,
            execution_time_us: 1000.0,
            compile_time: powermove_bench::SampleStats::single(5.0),
            stages: 1,
            transfers: 2,
            cz_gates: 3,
        });
    }
    let baseline = Baseline { entries };
    let registry = ShardRegistry::standard_with_baseline(DEFAULT_SEED, Some(&baseline));
    let small = registry.get("table2/small").unwrap();
    let large = registry.get("table2/large").unwrap();
    for cell in small.cells() {
        assert!(
            cell.instance.num_qubits < LARGE_SHARD_QUBITS,
            "{} fell back to the heuristic",
            cell.instance.name
        );
    }
    for cell in large.cells() {
        assert!(cell.instance.name == "QFT-18" || cell.instance.num_qubits >= LARGE_SHARD_QUBITS);
    }
    assert!(large.cells().iter().any(|c| c.instance.name == "QFT-18"));
}

#[test]
fn table2_shards_split_by_the_documented_qubit_threshold() {
    // Without a baseline, `standard` falls back to the qubit heuristic.
    let shards = ShardRegistry::standard(DEFAULT_SEED);
    let small = shards.get("table2/small").unwrap();
    let large = shards.get("table2/large").unwrap();
    assert!(small
        .cells()
        .iter()
        .all(|c| c.instance.num_qubits < LARGE_SHARD_QUBITS));
    assert!(large
        .cells()
        .iter()
        .all(|c| c.instance.num_qubits >= LARGE_SHARD_QUBITS));
    assert_eq!(
        small.cells().len() + large.cells().len(),
        table2_suite(DEFAULT_SEED).len()
    );
    // Multi-AOD cells are keyed uniquely via the @aods suffix.
    let fig7 = shards.get("fig7/multi-aod").unwrap();
    assert!(fig7
        .cells()
        .iter()
        .all(|c| c.instance.name.ends_with(&format!("@aods{}", c.num_aods))));
    // Heterogeneous-architecture cells additionally carry the @arch suffix,
    // compile off the default geometry, and still satisfy zone capacity.
    let lint = shards.get("lint/corpus").unwrap();
    assert!(!lint.cells().is_empty());
    for c in lint.cells() {
        assert_ne!(c.arch, powermove_bench::ArchVariant::Standard);
        assert!(c
            .instance
            .name
            .ends_with(&format!("@aods{}@arch:{}", c.num_aods, c.arch.name())));
        c.architecture()
            .check_capacity(c.instance.num_qubits)
            .expect("lint/corpus variants keep both zones large enough");
    }
}

#[test]
fn merge_of_shard_jsonl_part_files_is_byte_identical_to_the_monolithic_report() {
    let shards = tiny_shards();
    let registry = BackendRegistry::standard();

    // "Monolithic" run: all shards in canonical order, one streamed file.
    let mono_path = temp_path("mono");
    let mut part_paths = Vec::new();
    let mut all_results: Vec<RunResult> = Vec::new();
    {
        let mono_writer = ReportWriter::create(&mono_path);
        for shard in shards.iter() {
            let part_path = temp_path(&shard.name().replace('/', "-"));
            let part_writer = ReportWriter::create(&part_path);
            let results = run_shard(shard, &registry, 1, |index, result| {
                mono_writer.append(shard.name(), index, result);
                part_writer.append(shard.name(), index, result);
            });
            part_paths.push(part_path);
            all_results.extend(results);
        }
    }
    let monolithic_report = serde_json::to_string_pretty(&all_results).expect("results serialize");

    // Merge the part-files in scrambled order, with one file's lines
    // reversed (streamed lines arrive in completion order, not run order).
    let scrambled = std::fs::read_to_string(&part_paths[0]).unwrap();
    let reversed: String = scrambled
        .lines()
        .rev()
        .flat_map(|l| [l, "\n"])
        .collect::<String>();
    std::fs::write(&part_paths[0], reversed).unwrap();
    let files: Vec<_> = part_paths
        .iter()
        .rev()
        .map(|p| read_cells(p).expect("part-file parses"))
        .collect();
    let merged = merge_cells(files, &shards).expect("no duplicates");
    let values: Vec<&Value> = merged.iter().map(|c| &c.result).collect();
    let merged_report = serde_json::to_string_pretty(&values).expect("values serialize");
    assert_eq!(
        merged_report, monolithic_report,
        "merged shard reports must be byte-identical to the monolithic report"
    );

    // The merged cells also gate identically to the monolithic results.
    let runs: Vec<(String, Vec<RunResult>)> = {
        let mut runs = Vec::new();
        let mut rest = all_results.clone();
        for shard in shards.iter() {
            let take = shard.cells().len() * shard.backends().len();
            let tail = rest.split_off(take);
            runs.push((shard.name().to_string(), rest));
            rest = tail;
        }
        runs
    };
    let baseline = Baseline::from_shard_runs(&runs);
    let merged_entries: Vec<BaselineEntry> = merged
        .iter()
        .map(|c| BaselineEntry::from_result_value(&c.result, &c.shard).expect("cell parses"))
        .collect();
    let report = compare(&baseline, &merged_entries, &GateTolerance::default());
    assert!(report.passed(), "self-comparison must pass");
    assert_eq!(report.checks.len(), merged_entries.len() * 6);

    for path in part_paths.iter().chain([&mono_path]) {
        std::fs::remove_file(path).ok();
    }
}

#[test]
fn truncated_stream_parses_and_gates_as_missing_cells() {
    let shards = tiny_shards();
    let registry = BackendRegistry::standard();
    let shard = shards.get("tiny/a").unwrap();
    let path = temp_path("truncated");
    {
        let writer = ReportWriter::create(&path);
        let _ = run_shard(shard, &registry, 1, |index, result| {
            writer.append(shard.name(), index, result);
        });
    }
    // Keep only the first streamed line — the prefix a killed run leaves at
    // a flush boundary.
    let text = std::fs::read_to_string(&path).unwrap();
    let first_line_len = text.find('\n').unwrap() + 1;
    let cells = parse_cells(&text[..first_line_len]).expect("partial stream parses");
    std::fs::remove_file(&path).ok();
    assert_eq!(cells.len(), 1);

    // Gating the partial matrix against a full baseline reports the
    // unfinished cells as missing (and therefore fails) instead of crashing
    // or silently passing.
    let full = run_shard(shard, &registry, 1, |_, _| {});
    let baseline = Baseline::from_shard_runs(&[(shard.name().to_string(), full)]);
    let partial_entries: Vec<BaselineEntry> = cells
        .iter()
        .map(|c| BaselineEntry::from_result_value(&c.result, &c.shard).unwrap())
        .collect();
    let report = compare(&baseline, &partial_entries, &GateTolerance::default());
    assert!(!report.passed());
    assert_eq!(report.missing_in_current.len(), 3);
}

#[test]
fn repeat_runs_sample_the_wall_clock_but_not_the_deterministic_metrics() {
    let registry = BackendRegistry::standard();
    let entry = registry.entry(POWERMOVE_STORAGE).unwrap();
    let instance = generate(BenchmarkFamily::Bv, 10, DEFAULT_SEED);
    let sampled = run_instance_sampled(&instance, 1, entry, 3);
    assert_eq!(sampled.compile_time_samples.len(), 3);
    let mut sorted = sampled.compile_time_samples.clone();
    sorted.sort_by(f64::total_cmp);
    assert_eq!(sampled.compile_time_s, sorted[1], "median of three samples");

    let single = run_instance(&instance, 1, entry);
    assert_eq!(single.compile_time_samples.len(), 1);
    assert_eq!(sampled.fidelity, single.fidelity);
    assert_eq!(sampled.execution_time_us, single.execution_time_us);
    assert_eq!(sampled.stages, single.stages);
    assert_eq!(sampled.transfers, single.transfers);
    assert_eq!(sampled.cz_gates, single.cz_gates);

    // Zero repeats degrades to one sample rather than panicking.
    let clamped = run_instance_sampled(&instance, 1, entry, 0);
    assert_eq!(clamped.compile_time_samples.len(), 1);
}
