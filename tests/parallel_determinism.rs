//! Workspace-level determinism guarantees of the parallel execution engine:
//! `par_map` preserves input order, and the parallel compile pipeline emits
//! byte-identical programs for every worker count — including when the count
//! comes from the `POWERMOVE_THREADS` environment variable.

use powermove_exec::{Parallelism, ThreadPool, THREADS_ENV};
use powermove_suite::benchmarks::{generate, BenchmarkFamily};
use powermove_suite::hardware::Architecture;
use powermove_suite::powermove::{CompilerBackend, CompilerConfig, PowerMoveCompiler};
use powermove_suite::schedule::CompiledProgram;

/// Serializes the observable program content (layout + instruction stream +
/// deterministic metadata), excluding wall-clock pass timings. Delegates to
/// the canonical form shared with the compile service's content cache.
fn program_bytes(program: &CompiledProgram) -> String {
    powermove_suite::schedule::canonical_program_bytes(program)
}

fn compile_with_threads(family: BenchmarkFamily, n: u32, threads: usize) -> CompiledProgram {
    let instance = generate(family, n, 20250);
    let arch = Architecture::for_qubits(instance.num_qubits);
    PowerMoveCompiler::new(CompilerConfig::default().with_threads(threads))
        .compile(&instance.circuit, &arch)
        .expect("benchmark compiles")
}

#[test]
fn par_map_preserves_input_order() {
    for threads in [1, 2, 4, 8] {
        let pool = ThreadPool::new(Parallelism::fixed(threads));
        let items: Vec<u64> = (0..500).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * 7 + 3).collect();
        let mapped = pool.par_map(items, |x| {
            // Skew latency so completion order differs from input order.
            if x % 11 == 0 {
                std::thread::yield_now();
            }
            x * 7 + 3
        });
        assert_eq!(mapped, expected, "threads={threads}");
    }
}

#[test]
fn parallel_compile_is_byte_identical_for_every_suite_family() {
    for family in BenchmarkFamily::ALL {
        let sequential = program_bytes(&compile_with_threads(family, 16, 1));
        for threads in [2, 4] {
            let parallel = program_bytes(&compile_with_threads(family, 16, threads));
            assert_eq!(
                sequential, parallel,
                "{family}: threads=1 vs threads={threads} diverged"
            );
        }
    }
}

#[test]
fn parallel_compile_is_byte_identical_without_storage_too() {
    for family in BenchmarkFamily::ALL {
        let instance = generate(family, 12, 20250);
        let arch = Architecture::for_qubits(instance.num_qubits);
        let compile = |threads: usize| {
            let config = CompilerConfig::without_storage().with_threads(threads);
            program_bytes(
                &PowerMoveCompiler::new(config)
                    .compile(&instance.circuit, &arch)
                    .expect("benchmark compiles"),
            )
        };
        assert_eq!(compile(1), compile(4), "{family} (non-storage) diverged");
    }
}

#[test]
fn env_variable_drives_the_default_worker_count_and_output() {
    // The sole POWERMOVE_THREADS mutation in this binary (sibling tests pin
    // worker counts through CompilerConfig instead): integration-test
    // binaries run in their own process, but tests within one binary share
    // the environment, so all env assertions live in this single #[test].
    std::env::set_var(THREADS_ENV, "1");
    assert_eq!(Parallelism::from_env().threads(), 1);
    let one = program_bytes(&compile_with_threads(BenchmarkFamily::QaoaRegular3, 16, 0));

    std::env::set_var(THREADS_ENV, "4");
    assert_eq!(Parallelism::from_env().threads(), 4);
    let four = program_bytes(&compile_with_threads(BenchmarkFamily::QaoaRegular3, 16, 0));

    std::env::remove_var(THREADS_ENV);
    assert_eq!(
        one, four,
        "POWERMOVE_THREADS=1 and =4 must compile identically"
    );
}

#[test]
fn backend_trait_objects_are_shareable_across_threads() {
    // The harness compiles through &dyn CompilerBackend from many workers at
    // once; this pins the Send + Sync contract at the type level and in use.
    fn assert_send_sync<T: Send + Sync + ?Sized>() {}
    assert_send_sync::<dyn CompilerBackend>();
    assert_send_sync::<PowerMoveCompiler>();

    // Threads pinned explicitly: the default (0 = automatic) would read
    // POWERMOVE_THREADS, racing with the env-mutating test above.
    let backend = PowerMoveCompiler::new(CompilerConfig::default().with_threads(2));
    let instance = generate(BenchmarkFamily::Bv, 10, 20250);
    let arch = Architecture::for_qubits(instance.num_qubits);
    let pool = ThreadPool::new(Parallelism::fixed(4));
    let programs = pool.par_map(vec![(); 8], |()| {
        program_bytes(
            &backend
                .compile_circuit(&instance.circuit, &arch)
                .expect("compiles concurrently"),
        )
    });
    assert!(programs.windows(2).all(|w| w[0] == w[1]));
}
