//! Regression replay of campaign-surfaced reproducers.
//!
//! Every `bench/reproducers/<stem>.json` + `<stem>.qasm` pair checked in by
//! the schedule-lint campaign must replay **clean** here: the config pins a
//! bug the campaign once surfaced, and the fix that landed with it must keep
//! holding. If the directory holds no reproducers, the checked-in
//! `campaign-summary.json` must instead attest a clean campaign of at least
//! 5000 cases (the ISSUE's bar for "nothing found").

use powermove_bench::replay_reproducer;
use serde_json::Value;
use std::path::{Path, PathBuf};

fn reproducer_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("bench/reproducers")
}

fn reproducer_configs() -> Vec<PathBuf> {
    let mut configs: Vec<PathBuf> = std::fs::read_dir(reproducer_dir())
        .expect("bench/reproducers is checked in")
        .filter_map(Result::ok)
        .map(|entry| entry.path())
        .filter(|path| {
            path.extension().is_some_and(|ext| ext == "json")
                && path
                    .file_name()
                    .is_some_and(|name| name != "campaign-summary.json")
        })
        .collect();
    configs.sort();
    configs
}

#[test]
fn checked_in_reproducers_replay_clean() {
    let configs = reproducer_configs();
    for config in &configs {
        let violations =
            replay_reproducer(config).unwrap_or_else(|e| panic!("{}: {e}", config.display()));
        assert_eq!(
            violations,
            vec![],
            "{} regressed: the pinned violation fires again",
            config.display()
        );
    }
    if configs.is_empty() {
        // No bugs survived the campaign — the clean summary must attest a
        // sweep of at least 5000 cases.
        let summary_path = reproducer_dir().join("campaign-summary.json");
        let text = std::fs::read_to_string(&summary_path)
            .expect("no reproducers checked in, so campaign-summary.json must be");
        let summary: Value = serde_json::from_str(&text).expect("summary parses");
        let cases = summary
            .get("cases")
            .and_then(Value::as_i64)
            .expect("summary has a case count");
        let clean = summary
            .get("clean")
            .and_then(Value::as_bool)
            .expect("summary has a clean flag");
        assert!(clean, "checked-in campaign summary reports violations");
        assert!(
            cases >= 5000,
            "clean summary must cover >= 5000 cases, got {cases}"
        );
    }
}

#[test]
fn every_reproducer_config_has_its_qasm_sibling() {
    for config in reproducer_configs() {
        let qasm = config.with_extension("qasm");
        assert!(
            qasm.is_file(),
            "{} lacks its QASM sibling",
            config.display()
        );
    }
}
