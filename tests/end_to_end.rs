//! End-to-end integration tests: benchmark generation → compilation →
//! validation → fidelity evaluation, spanning every workspace crate.

use powermove_suite::benchmarks::{generate, BenchmarkFamily};
use powermove_suite::circuit::CircuitStats;
use powermove_suite::enola::EnolaCompiler;
use powermove_suite::fidelity::evaluate_program;
use powermove_suite::hardware::{Architecture, Zone};
use powermove_suite::powermove::{CompilerConfig, PowerMoveCompiler};
use powermove_suite::schedule::validate;

/// Small but representative instances from every benchmark family.
fn small_suite() -> Vec<(BenchmarkFamily, u32)> {
    vec![
        (BenchmarkFamily::QaoaRegular3, 20),
        (BenchmarkFamily::QaoaRegular4, 15),
        (BenchmarkFamily::QaoaRandom, 12),
        (BenchmarkFamily::Qft, 10),
        (BenchmarkFamily::Bv, 14),
        (BenchmarkFamily::Vqe, 16),
        (BenchmarkFamily::QsimRand, 12),
    ]
}

#[test]
fn every_family_compiles_validates_and_scores_with_powermove() {
    for (family, n) in small_suite() {
        let instance = generate(family, n, 7);
        let arch = Architecture::for_qubits(n);
        for config in [CompilerConfig::default(), CompilerConfig::without_storage()] {
            let program = PowerMoveCompiler::new(config)
                .compile(&instance.circuit, &arch)
                .unwrap_or_else(|e| panic!("{family} ({n} qubits) failed to compile: {e}"));
            validate(&program)
                .unwrap_or_else(|e| panic!("{family} ({n} qubits) produced invalid program: {e}"));
            let report = evaluate_program(&program).expect("program scores");
            assert!(
                report.fidelity() > 0.0,
                "{family} fidelity collapsed to zero"
            );
            assert_eq!(
                program.cz_gate_count(),
                instance.circuit.cz_count(),
                "{family} lost CZ gates"
            );
            assert_eq!(
                program.one_qubit_gate_count(),
                instance.circuit.one_qubit_count(),
                "{family} lost 1Q gates"
            );
        }
    }
}

#[test]
fn every_family_compiles_and_validates_with_enola() {
    for (family, n) in small_suite() {
        let instance = generate(family, n, 7);
        let arch = Architecture::for_qubits(n);
        let program = EnolaCompiler::default()
            .compile(&instance.circuit, &arch)
            .unwrap_or_else(|e| panic!("{family} ({n} qubits) failed to compile: {e}"));
        validate(&program)
            .unwrap_or_else(|e| panic!("{family} ({n} qubits) produced invalid program: {e}"));
        assert_eq!(program.cz_gate_count(), instance.circuit.cz_count());
    }
}

#[test]
fn stage_count_is_at_least_the_theoretical_lower_bound() {
    for (family, n) in small_suite() {
        let instance = generate(family, n, 7);
        let stats = CircuitStats::of(&instance.circuit);
        let arch = Architecture::for_qubits(n);
        let program = PowerMoveCompiler::new(CompilerConfig::default())
            .compile(&instance.circuit, &arch)
            .expect("compiles");
        assert!(
            program.rydberg_stage_count() >= stats.stage_lower_bound,
            "{family}: {} stages < lower bound {}",
            program.rydberg_stage_count(),
            stats.stage_lower_bound
        );
    }
}

#[test]
fn with_storage_programs_have_zero_excitation_exposure() {
    for (family, n) in small_suite() {
        let instance = generate(family, n, 3);
        let arch = Architecture::for_qubits(n);
        let program = PowerMoveCompiler::new(CompilerConfig::default())
            .compile(&instance.circuit, &arch)
            .expect("compiles");
        let report = evaluate_program(&program).expect("scores");
        assert_eq!(
            report.trace.excitation_exposure, 0,
            "{family}: storage mode left qubits exposed"
        );
        assert_eq!(report.breakdown.excitation, 1.0);
    }
}

#[test]
fn final_layout_keeps_every_qubit_on_the_grid() {
    let instance = generate(BenchmarkFamily::QaoaRandom, 16, 5);
    let arch = Architecture::for_qubits(16);
    let program = PowerMoveCompiler::new(CompilerConfig::default())
        .compile(&instance.circuit, &arch)
        .expect("compiles");
    let report = evaluate_program(&program).expect("scores");
    for i in 0..16 {
        let site = report
            .trace
            .final_layout
            .site_of(powermove_suite::circuit::Qubit::new(i))
            .expect("qubit remains placed");
        assert!(arch.grid().contains(site));
    }
}

#[test]
fn multi_aod_accelerates_execution() {
    let instance = generate(BenchmarkFamily::QaoaRegular3, 30, 9);
    let compiler = PowerMoveCompiler::new(CompilerConfig::default());
    let single = compiler
        .compile(
            &instance.circuit,
            &Architecture::for_qubits(30).with_num_aods(1),
        )
        .expect("compiles");
    let quad = compiler
        .compile(
            &instance.circuit,
            &Architecture::for_qubits(30).with_num_aods(4),
        )
        .expect("compiles");
    let single_report = evaluate_program(&single).expect("scores");
    let quad_report = evaluate_program(&quad).expect("scores");
    assert!(
        quad_report.execution_time < single_report.execution_time,
        "4 AODs ({:.1} us) should beat 1 AOD ({:.1} us)",
        quad_report.execution_time_us(),
        single_report.execution_time_us()
    );
    assert!(quad_report.fidelity() >= single_report.fidelity());
}

#[test]
fn storage_initial_layout_lives_in_the_storage_zone() {
    let instance = generate(BenchmarkFamily::Vqe, 20, 1);
    let arch = Architecture::for_qubits(20);
    let program = PowerMoveCompiler::new(CompilerConfig::default())
        .compile(&instance.circuit, &arch)
        .expect("compiles");
    for (_, site) in program.initial_layout().iter() {
        assert_eq!(arch.grid().zone_of(site), Zone::Storage);
    }
    assert!(program.metadata().uses_storage);
}
