//! Workspace-level contract of the pluggable routing subsystem:
//!
//! * every built-in strategy compiles every suite family into a
//!   hardware-valid program, byte-identical across worker counts;
//! * `GreedyRouter` *is* the default configuration — selecting it
//!   explicitly reproduces the default compiler's output bit for bit (the
//!   pre-refactor behaviour, also pinned by the benchmark gate's exact
//!   stage/transfer checks against the recorded baseline);
//! * the multi-AOD scheduler's schedules pass validation with zero
//!   intra-AOD move-window overlaps while distinct AODs do overlap;
//! * at two or more AODs the balanced windows never move slower than the
//!   greedy chunking, and beat it on movement-heavy workloads.

use powermove_suite::benchmarks::{generate, BenchmarkFamily};
use powermove_suite::fidelity::{attribute_movement, evaluate_program};
use powermove_suite::hardware::Architecture;
use powermove_suite::powermove::{CompilerConfig, GreedyRouter, PowerMoveCompiler, RoutingConfig};
use powermove_suite::schedule::{validate, CompiledProgram, Timeline};
use std::sync::Arc;

const SEED: u64 = 20250;

fn strategies() -> Vec<(&'static str, RoutingConfig)> {
    vec![
        ("greedy", RoutingConfig::greedy()),
        ("lookahead2", RoutingConfig::lookahead(2)),
        ("multi-aod", RoutingConfig::multi_aod()),
    ]
}

/// Serializes the observable program content; pass timings are excluded
/// (wall clocks legitimately differ run to run).
fn program_bytes(program: &CompiledProgram) -> String {
    let instructions =
        serde_json::to_string(&program.instructions().to_vec()).expect("instructions serialize");
    let layout = serde_json::to_string(program.initial_layout()).expect("layout serializes");
    let counters = serde_json::to_string(&program.metadata().counters).expect("counters serialize");
    format!("{layout}|{instructions}|{counters}")
}

fn compile(
    family: BenchmarkFamily,
    n: u32,
    aods: usize,
    routing: RoutingConfig,
    threads: usize,
) -> CompiledProgram {
    let instance = generate(family, n, SEED);
    let arch = Architecture::for_qubits(instance.num_qubits).with_num_aods(aods);
    PowerMoveCompiler::new(
        CompilerConfig::default()
            .with_routing(routing)
            .with_threads(threads),
    )
    .compile(&instance.circuit, &arch)
    .expect("benchmark compiles")
}

#[test]
fn every_family_and_strategy_is_deterministic_across_worker_counts() {
    for family in BenchmarkFamily::ALL {
        for (name, routing) in strategies() {
            let reference = compile(family, 16, 3, routing, 1);
            validate(&reference).unwrap_or_else(|e| {
                panic!("{family}/{name}: invalid program: {e}");
            });
            let reference_bytes = program_bytes(&reference);
            for threads in [2, 4] {
                let parallel = program_bytes(&compile(family, 16, 3, routing, threads));
                assert_eq!(
                    reference_bytes, parallel,
                    "{family}/{name}: threads=1 vs threads={threads} diverged"
                );
            }
        }
    }
}

#[test]
fn explicit_greedy_router_reproduces_the_default_compiler_byte_identically() {
    for family in BenchmarkFamily::ALL {
        let instance = generate(family, 16, SEED);
        let arch = Architecture::for_qubits(instance.num_qubits);
        let default = PowerMoveCompiler::new(CompilerConfig::default())
            .compile(&instance.circuit, &arch)
            .expect("compiles");
        let explicit_config =
            PowerMoveCompiler::new(CompilerConfig::default().with_routing(RoutingConfig::greedy()))
                .compile(&instance.circuit, &arch)
                .expect("compiles");
        let custom_registration = PowerMoveCompiler::new(CompilerConfig::default())
            .with_strategy(Arc::new(GreedyRouter))
            .compile(&instance.circuit, &arch)
            .expect("compiles");
        assert_eq!(program_bytes(&default), program_bytes(&explicit_config));
        assert_eq!(program_bytes(&default), program_bytes(&custom_registration));
    }
}

#[test]
fn multi_aod_schedules_have_zero_intra_aod_window_overlaps() {
    for family in BenchmarkFamily::ALL {
        for aods in [2_usize, 4] {
            let program = compile(family, 16, aods, RoutingConfig::multi_aod(), 1);
            validate(&program).expect("multi-AOD schedule validates");
            let windows = Timeline::of(&program).aod_windows(&program);
            for (i, a) in windows.iter().enumerate() {
                for b in &windows[i + 1..] {
                    if a.aod == b.aod {
                        assert!(
                            !a.overlaps(b),
                            "{family}@{aods}aods: AOD {} double-booked",
                            a.aod
                        );
                    }
                }
            }
            // The parallelism is real: some window pair on distinct AODs
            // overlaps (every program here moves more qubits than one AOD
            // batch carries).
            let overlapping = windows.iter().enumerate().any(|(i, a)| {
                windows[i + 1..]
                    .iter()
                    .any(|b| a.aod != b.aod && a.overlaps(b))
            });
            assert!(
                overlapping,
                "{family}@{aods}aods: no distinct-AOD windows overlap"
            );
            // Per-AOD attribution covers the whole schedule.
            let stats = attribute_movement(&program);
            assert!(!stats.is_empty());
            let report = evaluate_program(&program).expect("scores");
            let moved: usize = stats.iter().map(|s| s.moved_qubits).sum();
            assert_eq!(2 * moved, report.trace.transfer_count);
        }
    }
}

#[test]
fn balanced_windows_never_move_slower_than_greedy_at_multiple_aods() {
    let mut strictly_faster = 0_u32;
    for family in BenchmarkFamily::ALL {
        for aods in [2_usize, 3, 4] {
            let greedy = compile(family, 20, aods, RoutingConfig::greedy(), 1);
            let multi = compile(family, 20, aods, RoutingConfig::multi_aod(), 1);
            let movement =
                |p: &CompiledProgram| evaluate_program(p).expect("scores").trace.movement_time;
            let (tg, tm) = (movement(&greedy), movement(&multi));
            assert!(
                tm <= tg + 1e-12,
                "{family}@{aods}aods: balanced {tm} slower than greedy {tg}"
            );
            if tm < tg - 1e-12 {
                strictly_faster += 1;
            }
        }
    }
    assert!(
        strictly_faster > 0,
        "balanced packing never beat greedy on any family x AOD-count cell"
    );
}
