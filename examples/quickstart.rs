//! Quickstart: build a small circuit, compile it with PowerMove and inspect
//! the resulting schedule and fidelity estimate.
//!
//! Run with:
//!
//! ```text
//! cargo run --example quickstart
//! ```

use powermove_suite::circuit::{Circuit, Qubit};
use powermove_suite::fidelity::evaluate_program;
use powermove_suite::hardware::Architecture;
use powermove_suite::powermove::{CompilerConfig, PowerMoveCompiler};
use powermove_suite::schedule::validate;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 6-qubit GHZ-like circuit followed by a ring of ZZ interactions.
    let n = 6_u32;
    let mut circuit = Circuit::new(n);
    circuit.h(Qubit::new(0))?;
    for i in 0..n - 1 {
        circuit.cnot(Qubit::new(i), Qubit::new(i + 1))?;
    }
    for i in 0..n {
        circuit.zz(Qubit::new(i), Qubit::new((i + 1) % n), 0.8)?;
    }
    println!(
        "input circuit: {} gates ({} CZ)",
        circuit.num_gates(),
        circuit.cz_count()
    );

    // The paper's default machine for this qubit count: ceil(sqrt(6)) = 3
    // columns, a 3x3 computation zone and a 3x6 storage zone.
    let arch = Architecture::for_qubits(n);

    // Compile with the full PowerMove pipeline (storage zone enabled).
    let compiler = PowerMoveCompiler::new(CompilerConfig::default());
    let program = compiler.compile(&circuit, &arch)?;
    validate(&program)?;

    println!(
        "compiled: {} instructions, {} Rydberg stages, {} move groups, {} transfers",
        program.num_instructions(),
        program.rydberg_stage_count(),
        program.move_group_count(),
        program.transfer_count()
    );

    // Estimate execution time and output fidelity (Eq. 1 of the paper).
    let report = evaluate_program(&program)?;
    println!(
        "estimated execution time: {:.1} us",
        report.execution_time_us()
    );
    println!("estimated output fidelity: {:.4}", report.fidelity());
    println!("breakdown: {}", report.breakdown);
    Ok(())
}
