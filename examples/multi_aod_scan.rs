//! Multi-AOD scan: sweep the number of independently operating AOD arrays
//! and observe the execution-time and fidelity gains from parallel
//! collective moves (Fig. 7 of the paper).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example multi_aod_scan [num_qubits]
//! ```

use powermove_suite::benchmarks::{generate, BenchmarkFamily};
use powermove_suite::fidelity::evaluate_program;
use powermove_suite::hardware::Architecture;
use powermove_suite::powermove::{CompilerConfig, PowerMoveCompiler};
use powermove_suite::schedule::validate;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(40);
    let instance = generate(BenchmarkFamily::QaoaRegular4, n, 99);
    println!(
        "QAOA on a 4-regular graph: {} qubits, {} CZ gates",
        n,
        instance.circuit.cz_count()
    );
    println!(
        "{:>6} {:>14} {:>12} {:>14}",
        "#AODs", "T_exe (us)", "fidelity", "move groups"
    );

    let compiler = PowerMoveCompiler::new(CompilerConfig::default());
    for aods in 1..=4_usize {
        let arch = Architecture::for_qubits(n).with_num_aods(aods);
        let program = compiler.compile(&instance.circuit, &arch)?;
        validate(&program)?;
        let report = evaluate_program(&program)?;
        println!(
            "{:>6} {:>14.1} {:>12.4} {:>14}",
            aods,
            report.execution_time_us(),
            report.fidelity_excluding_one_qubit(),
            program.move_group_count()
        );
    }
    Ok(())
}
