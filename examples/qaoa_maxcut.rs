//! QAOA MaxCut workload: compare the Enola baseline with PowerMove's
//! non-storage and with-storage configurations on a 3-regular QAOA circuit —
//! the workload that motivates the paper's introduction.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example qaoa_maxcut [num_qubits]
//! ```

use powermove_suite::benchmarks::{generate, BenchmarkFamily};
use powermove_suite::enola::EnolaCompiler;
use powermove_suite::fidelity::evaluate_program;
use powermove_suite::hardware::Architecture;
use powermove_suite::powermove::{CompilerConfig, PowerMoveCompiler};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(30);
    let instance = generate(BenchmarkFamily::QaoaRegular3, n, 2025);
    let arch = Architecture::for_qubits(n);
    println!(
        "QAOA MaxCut on a 3-regular graph: {} qubits, {} ZZ interactions",
        n,
        instance.circuit.cz_count()
    );

    let enola = EnolaCompiler::default().compile(&instance.circuit, &arch)?;
    let enola_report = evaluate_program(&enola)?;

    let non_storage = PowerMoveCompiler::new(CompilerConfig::without_storage())
        .compile(&instance.circuit, &arch)?;
    let non_storage_report = evaluate_program(&non_storage)?;

    let with_storage =
        PowerMoveCompiler::new(CompilerConfig::default()).compile(&instance.circuit, &arch)?;
    let with_storage_report = evaluate_program(&with_storage)?;

    println!(
        "{:<26} {:>12} {:>14} {:>12} {:>12}",
        "compiler", "fidelity", "T_exe (us)", "stages", "transfers"
    );
    for (name, report) in [
        ("enola (baseline)", &enola_report),
        ("powermove non-storage", &non_storage_report),
        ("powermove with-storage", &with_storage_report),
    ] {
        println!(
            "{:<26} {:>12.4} {:>14.1} {:>12} {:>12}",
            name,
            report.fidelity_excluding_one_qubit(),
            report.execution_time_us(),
            report.trace.rydberg_stage_count,
            report.trace.transfer_count
        );
    }

    println!(
        "\nfidelity improvement over Enola: {:.2}x",
        with_storage_report.fidelity_excluding_one_qubit()
            / enola_report.fidelity_excluding_one_qubit()
    );
    println!(
        "execution-time improvement over Enola: {:.2}x",
        enola_report.execution_time() / non_storage_report.execution_time()
    );
    Ok(())
}

/// Convenience accessor mirroring `FidelityReport::execution_time` so the
/// ratio above reads naturally.
trait ExecTime {
    fn execution_time(&self) -> f64;
}

impl ExecTime for powermove_suite::fidelity::FidelityReport {
    fn execution_time(&self) -> f64 {
        self.execution_time
    }
}
