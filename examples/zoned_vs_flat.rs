//! Storage-zone ablation: show how the zoned architecture eliminates
//! excitation errors on a Bernstein–Vazirani circuit, the benchmark family
//! where the effect is most dramatic (Sec. 7.3 of the paper).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example zoned_vs_flat [num_qubits]
//! ```

use powermove_suite::benchmarks::{generate, BenchmarkFamily};
use powermove_suite::fidelity::evaluate_program;
use powermove_suite::hardware::Architecture;
use powermove_suite::powermove::{CompilerConfig, PowerMoveCompiler};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(50);
    let instance = generate(BenchmarkFamily::Bv, n, 4242);
    let arch = Architecture::for_qubits(n);
    println!(
        "Bernstein-Vazirani with {} qubits: {} CZ gates spread over {} Rydberg stages",
        n,
        instance.circuit.cz_count(),
        instance.circuit.cz_count()
    );

    for (label, config) in [
        ("flat (non-storage)", CompilerConfig::without_storage()),
        ("zoned (with-storage)", CompilerConfig::default()),
    ] {
        let program = PowerMoveCompiler::new(config).compile(&instance.circuit, &arch)?;
        let report = evaluate_program(&program)?;
        println!("\n== {label} ==");
        println!(
            "  qubits exposed to Rydberg excitations (sum over stages): {}",
            report.trace.excitation_exposure
        );
        println!(
            "  excitation fidelity factor: {:.4}",
            report.breakdown.excitation
        );
        println!(
            "  decoherence fidelity factor: {:.4}",
            report.breakdown.decoherence
        );
        println!(
            "  transfer fidelity factor:   {:.4}",
            report.breakdown.transfer
        );
        println!(
            "  total fidelity:             {:.4}",
            report.fidelity_excluding_one_qubit()
        );
        println!(
            "  execution time:             {:.1} us",
            report.execution_time_us()
        );
    }
    Ok(())
}
