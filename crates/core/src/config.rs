//! Compiler configuration.

use serde::{Deserialize, Serialize};

/// Configuration knobs of the PowerMove compiler.
///
/// The two evaluation scenarios of the paper map onto this struct directly:
/// the *with-storage* case is [`CompilerConfig::default`] (storage zone on),
/// the *non-storage* case is [`CompilerConfig::without_storage`] (only the
/// continuous router is active and every qubit stays in the computation
/// zone).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CompilerConfig {
    /// Whether non-interacting qubits are parked in the storage zone between
    /// stages (Sec. 4 and Sec. 6 optimizations).
    pub use_storage: bool,
    /// Weight `α < 1` of the "move-out" term in the stage-scheduling
    /// difference metric `|Q_i \ Q_{i+1}| + α·|Q_{i+1} \ Q_i|` (Sec. 4.2).
    pub alpha: f64,
    /// Whether single-qubit moves are grouped into AOD-compatible collective
    /// moves (Sec. 6). Disabled only by the grouping-ablation configuration,
    /// which emits every move as its own collective move.
    pub use_grouping: bool,
    /// Worker threads for the parallel pipeline passes. `0` (the default)
    /// resolves through `POWERMOVE_THREADS`, falling back to the available
    /// core count; any other value pins the pool size. The compiled program
    /// is byte-identical for every setting — parallelism only changes how
    /// fast independent blocks are processed.
    pub threads: usize,
}

impl CompilerConfig {
    /// The with-storage configuration used by the paper's main results.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The non-storage configuration: only the continuous router is applied
    /// and all qubits remain in the computation zone.
    #[must_use]
    pub fn without_storage() -> Self {
        CompilerConfig {
            use_storage: false,
            ..Self::default()
        }
    }

    /// Overrides the stage-scheduling weight `α`.
    #[must_use]
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        self.alpha = alpha;
        self
    }

    /// Disables collective-move grouping (the grouping-ablation
    /// configuration): every single-qubit move becomes its own collective
    /// move.
    #[must_use]
    pub fn without_grouping(mut self) -> Self {
        self.use_grouping = false;
        self
    }

    /// Pins the worker-thread count of the parallel pipeline passes
    /// (`0` restores the automatic `POWERMOVE_THREADS` / core-count default).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }
}

impl Default for CompilerConfig {
    fn default() -> Self {
        CompilerConfig {
            use_storage: true,
            alpha: 0.5,
            use_grouping: true,
            threads: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_uses_storage() {
        let c = CompilerConfig::default();
        assert!(c.use_storage);
        assert!(c.alpha > 0.0 && c.alpha < 1.0);
        assert_eq!(CompilerConfig::new(), c);
    }

    #[test]
    fn without_storage_disables_storage_only() {
        let c = CompilerConfig::without_storage();
        assert!(!c.use_storage);
        assert_eq!(c.alpha, CompilerConfig::default().alpha);
    }

    #[test]
    fn with_alpha_overrides() {
        let c = CompilerConfig::default().with_alpha(0.25);
        assert_eq!(c.alpha, 0.25);
    }

    #[test]
    fn threads_default_to_automatic_and_can_be_pinned() {
        assert_eq!(CompilerConfig::default().threads, 0);
        let c = CompilerConfig::default().with_threads(4);
        assert_eq!(c.threads, 4);
        assert_eq!(c.with_threads(0).threads, 0);
    }

    #[test]
    fn grouping_is_on_by_default_and_can_be_ablated() {
        assert!(CompilerConfig::default().use_grouping);
        let c = CompilerConfig::default().without_grouping();
        assert!(!c.use_grouping);
        assert!(c.use_storage, "grouping ablation leaves storage on");
    }
}
