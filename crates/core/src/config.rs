//! Compiler configuration.

use serde::{Deserialize, Serialize};

/// Selects one of the built-in routing strategies.
///
/// The strategy is instantiated per compilation through
/// [`RoutingConfig::build`](crate::routing::RoutingStrategy); custom
/// implementations bypass the enum entirely via
/// [`PowerMoveCompiler::with_strategy`](crate::PowerMoveCompiler::with_strategy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RoutingStrategyKind {
    /// The paper's continuous router with dwell-ordered chunked packing
    /// ([`GreedyRouter`](crate::GreedyRouter)); byte-identical to the
    /// pre-refactor compiler.
    Greedy,
    /// Greedy planning, but undecided pairs score candidate sites against
    /// the next [`RoutingConfig::lookahead`] stages
    /// ([`LookaheadRouter`](crate::LookaheadRouter)).
    Lookahead,
    /// Greedy planning with per-AOD, duration-balanced move windows
    /// ([`MultiAodScheduler`](crate::MultiAodScheduler)).
    MultiAod,
    /// Per-instance strategy selection ([`AutoRouter`](crate::AutoRouter)):
    /// the pipeline either compiles the whole candidate portfolio and keeps
    /// the schedule with the lower movement wall clock (`portfolio: true`),
    /// or trusts the [`CostModel`](crate::CostModel)'s prediction and
    /// compiles only the predicted winner (`portfolio: false`).
    Auto {
        /// Whether every portfolio candidate is compiled (exact selection)
        /// instead of only the cost model's predicted winner.
        portfolio: bool,
    },
}

impl RoutingStrategyKind {
    /// Short identifier of the strategy kind, matching
    /// [`RoutingStrategy::name`](crate::RoutingStrategy::name) for the
    /// per-stage built-ins. Auto-tuning reports `"auto"` (portfolio) or
    /// `"auto-model"` (cost-model selection).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            RoutingStrategyKind::Greedy => "greedy",
            RoutingStrategyKind::Lookahead => "lookahead",
            RoutingStrategyKind::MultiAod => "multi-aod",
            RoutingStrategyKind::Auto { portfolio: true } => "auto",
            RoutingStrategyKind::Auto { portfolio: false } => "auto-model",
        }
    }

    /// Whether this kind is resolved per instance by the auto-tuning layer
    /// rather than naming one fixed per-stage strategy.
    #[must_use]
    pub fn is_auto(&self) -> bool {
        matches!(self, RoutingStrategyKind::Auto { .. })
    }
}

/// How the multi-AOD scheduler assigns collective moves to parallel
/// windows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AodAssignment {
    /// Chunk the dwell-time order as-is (the greedy packing of Sec. 6.2).
    Chunked,
    /// Sort each move class by translation length before chunking, so
    /// similar-duration moves share a window and no AOD idles behind one
    /// slow member.
    Balanced,
}

/// Configuration of the routing subsystem: which strategy plans stage
/// transitions and how collective moves are packed onto AOD arrays.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoutingConfig {
    /// The active routing strategy.
    pub strategy: RoutingStrategyKind,
    /// Lookahead window in stages, used by
    /// [`RoutingStrategyKind::Lookahead`].
    pub lookahead: usize,
    /// Window-assignment policy, used by
    /// [`RoutingStrategyKind::MultiAod`].
    pub aod_assignment: AodAssignment,
}

impl RoutingConfig {
    /// The greedy configuration (the default).
    #[must_use]
    pub fn greedy() -> Self {
        Self::default()
    }

    /// The lookahead configuration with a `depth`-stage window.
    #[must_use]
    pub fn lookahead(depth: usize) -> Self {
        RoutingConfig {
            strategy: RoutingStrategyKind::Lookahead,
            lookahead: depth,
            ..Self::default()
        }
    }

    /// The multi-AOD scheduler with duration-balanced windows.
    #[must_use]
    pub fn multi_aod() -> Self {
        RoutingConfig {
            strategy: RoutingStrategyKind::MultiAod,
            aod_assignment: AodAssignment::Balanced,
            ..Self::default()
        }
    }

    /// The auto-tuning configuration in **portfolio** mode: every candidate
    /// strategy (greedy, lookahead with this config's window, multi-AOD with
    /// this config's assignment) compiles the instance, and the schedule
    /// with the lower movement wall clock wins (tie → fewer transfers →
    /// greedy). Exact by construction, at the cost of one compile per
    /// candidate.
    #[must_use]
    pub fn auto() -> Self {
        RoutingConfig {
            strategy: RoutingStrategyKind::Auto { portfolio: true },
            aod_assignment: AodAssignment::Balanced,
            ..Self::default()
        }
    }

    /// The auto-tuning configuration in **cost-model** mode: the
    /// [`CostModel`](crate::CostModel) predicts each candidate's movement
    /// wall clock from cheap instance features and only the predicted winner
    /// is compiled — one compile total, model-accurate selection.
    #[must_use]
    pub fn auto_model() -> Self {
        RoutingConfig {
            strategy: RoutingStrategyKind::Auto { portfolio: false },
            aod_assignment: AodAssignment::Balanced,
            ..Self::default()
        }
    }
}

impl Default for RoutingConfig {
    fn default() -> Self {
        RoutingConfig {
            strategy: RoutingStrategyKind::Greedy,
            lookahead: 2,
            aod_assignment: AodAssignment::Chunked,
        }
    }
}

/// Configuration knobs of the PowerMove compiler.
///
/// The two evaluation scenarios of the paper map onto this struct directly:
/// the *with-storage* case is [`CompilerConfig::default`] (storage zone on),
/// the *non-storage* case is [`CompilerConfig::without_storage`] (only the
/// continuous router is active and every qubit stays in the computation
/// zone).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CompilerConfig {
    /// Whether non-interacting qubits are parked in the storage zone between
    /// stages (Sec. 4 and Sec. 6 optimizations).
    pub use_storage: bool,
    /// Weight `α < 1` of the "move-out" term in the stage-scheduling
    /// difference metric `|Q_i \ Q_{i+1}| + α·|Q_{i+1} \ Q_i|` (Sec. 4.2).
    pub alpha: f64,
    /// Whether single-qubit moves are grouped into AOD-compatible collective
    /// moves (Sec. 6). Disabled only by the grouping-ablation configuration,
    /// which emits every move as its own collective move.
    pub use_grouping: bool,
    /// Worker threads for the parallel pipeline passes. `0` (the default)
    /// resolves through `POWERMOVE_THREADS`, falling back to the available
    /// core count; any other value pins the pool size. The compiled program
    /// is byte-identical for every setting — parallelism only changes how
    /// fast independent blocks are processed.
    pub threads: usize,
    /// The routing subsystem configuration: which strategy plans stage
    /// transitions and how moves are packed onto AOD arrays. The default
    /// ([`RoutingConfig::greedy`]) reproduces the paper's router exactly.
    pub routing: RoutingConfig,
}

impl CompilerConfig {
    /// The with-storage configuration used by the paper's main results.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The non-storage configuration: only the continuous router is applied
    /// and all qubits remain in the computation zone.
    #[must_use]
    pub fn without_storage() -> Self {
        CompilerConfig {
            use_storage: false,
            ..Self::default()
        }
    }

    /// Overrides the stage-scheduling weight `α`.
    #[must_use]
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        self.alpha = alpha;
        self
    }

    /// Disables collective-move grouping (the grouping-ablation
    /// configuration): every single-qubit move becomes its own collective
    /// move.
    #[must_use]
    pub fn without_grouping(mut self) -> Self {
        self.use_grouping = false;
        self
    }

    /// Pins the worker-thread count of the parallel pipeline passes
    /// (`0` restores the automatic `POWERMOVE_THREADS` / core-count default).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Replaces the routing subsystem configuration.
    #[must_use]
    pub fn with_routing(mut self, routing: RoutingConfig) -> Self {
        self.routing = routing;
        self
    }
}

impl Default for CompilerConfig {
    fn default() -> Self {
        CompilerConfig {
            use_storage: true,
            alpha: 0.5,
            use_grouping: true,
            threads: 0,
            routing: RoutingConfig::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_uses_storage() {
        let c = CompilerConfig::default();
        assert!(c.use_storage);
        assert!(c.alpha > 0.0 && c.alpha < 1.0);
        assert_eq!(CompilerConfig::new(), c);
    }

    #[test]
    fn without_storage_disables_storage_only() {
        let c = CompilerConfig::without_storage();
        assert!(!c.use_storage);
        assert_eq!(c.alpha, CompilerConfig::default().alpha);
    }

    #[test]
    fn with_alpha_overrides() {
        let c = CompilerConfig::default().with_alpha(0.25);
        assert_eq!(c.alpha, 0.25);
    }

    #[test]
    fn threads_default_to_automatic_and_can_be_pinned() {
        assert_eq!(CompilerConfig::default().threads, 0);
        let c = CompilerConfig::default().with_threads(4);
        assert_eq!(c.threads, 4);
        assert_eq!(c.with_threads(0).threads, 0);
    }

    #[test]
    fn grouping_is_on_by_default_and_can_be_ablated() {
        assert!(CompilerConfig::default().use_grouping);
        let c = CompilerConfig::default().without_grouping();
        assert!(!c.use_grouping);
        assert!(c.use_storage, "grouping ablation leaves storage on");
    }

    #[test]
    fn routing_defaults_to_greedy_and_can_be_replaced() {
        let c = CompilerConfig::default();
        assert_eq!(c.routing.strategy, RoutingStrategyKind::Greedy);
        assert_eq!(c.routing, RoutingConfig::greedy());
        let c = c.with_routing(RoutingConfig::multi_aod());
        assert_eq!(c.routing.strategy, RoutingStrategyKind::MultiAod);
        assert_eq!(c.routing.aod_assignment, AodAssignment::Balanced);
        assert!(c.use_storage, "routing override leaves other knobs alone");
        let c = c.with_routing(RoutingConfig::lookahead(4));
        assert_eq!(c.routing.strategy, RoutingStrategyKind::Lookahead);
        assert_eq!(c.routing.lookahead, 4);
    }

    #[test]
    fn auto_configs_select_the_auto_kind() {
        let portfolio = RoutingConfig::auto();
        assert_eq!(
            portfolio.strategy,
            RoutingStrategyKind::Auto { portfolio: true }
        );
        assert_eq!(portfolio.aod_assignment, AodAssignment::Balanced);
        assert!(portfolio.strategy.is_auto());
        let model = RoutingConfig::auto_model();
        assert_eq!(
            model.strategy,
            RoutingStrategyKind::Auto { portfolio: false }
        );
        assert!(model.strategy.is_auto());
        assert!(!RoutingStrategyKind::Greedy.is_auto());
    }

    #[test]
    fn strategy_kind_names_are_stable() {
        assert_eq!(RoutingStrategyKind::Greedy.name(), "greedy");
        assert_eq!(RoutingStrategyKind::Lookahead.name(), "lookahead");
        assert_eq!(RoutingStrategyKind::MultiAod.name(), "multi-aod");
        assert_eq!(RoutingStrategyKind::Auto { portfolio: true }.name(), "auto");
        assert_eq!(
            RoutingStrategyKind::Auto { portfolio: false }.name(),
            "auto-model"
        );
    }
}
