//! The routing auto-tuner: per-instance selection over the built-in
//! strategy portfolio.
//!
//! PR 4 made routing pluggable; this layer makes picking the winning
//! strategy automatic. [`AutoRouter`] is a **program-level** selector, not a
//! per-stage [`RoutingStrategy`]: the pass pipeline
//! hands it the staged program and it returns the routed program plus
//! instruction stream of the winning candidate. Two modes, selected by
//! [`RoutingStrategyKind::Auto`]'s `portfolio` flag:
//!
//! * **portfolio** (`portfolio: true`, [`RoutingConfig::auto`]) — every
//!   candidate **replays only the back end** from the one shared frozen
//!   staged program through a [`RoutingSession`]
//!   (fanned out over the `powermove-exec` thread pool, one scratch pass
//!   context per replay, merged back in candidate order so the result is
//!   byte-identical at any worker count) and the schedule with the lower
//!   movement wall clock wins; ties break to fewer SLM↔AOD transfers, then
//!   to the earlier candidate — greedy first. The winner can therefore
//!   never be worse than any portfolio member on movement wall clock.
//! * **cost model** (`portfolio: false`, [`RoutingConfig::auto_model`]) —
//!   the [`CostModel`] predicts each candidate's movement wall clock from
//!   [`InstanceFeatures`] and only the predicted winner compiles.
//!
//! Either way the winning strategy's name lands in
//! [`CompileMetadata::selected_strategy`], the number of back-end replays
//! in the [`AutoRouter::PORTFOLIO_COUNTER`] pass counter and the single
//! shared front-end pass in [`AutoRouter::STAGE_COUNTER`], so bench reports
//! and diagnostics can attribute both the decision and its cost shape (one
//! stage + N route replays, not N full compiles).
//!
//! [`RoutingStrategyKind::Auto`]: crate::RoutingStrategyKind::Auto
//! [`RoutingConfig::auto`]: crate::RoutingConfig::auto
//! [`RoutingConfig::auto_model`]: crate::RoutingConfig::auto_model
//! [`CompileMetadata::selected_strategy`]: powermove_schedule::CompileMetadata

use crate::compiler::{Replay, RoutingSession};
use crate::config::RoutingConfig;
use crate::pipeline::{CompileContext, MovePass, RoutePass, RoutedProgram, StagedProgram};
use crate::routing::cost::{CostModel, InstanceFeatures};
use crate::routing::{GreedyRouter, LookaheadRouter, MultiAodScheduler, RoutingStrategy};
use crate::CompileError;
use powermove_exec::ThreadPool;
use powermove_hardware::Architecture;
use powermove_schedule::Instruction;
use std::sync::Arc;

/// The per-instance routing auto-tuner (see the module docs).
pub struct AutoRouter {
    portfolio: bool,
    model: CostModel,
    // Each candidate carries the kind the cost model scores it under, so
    // the model and the compiled strategy can never drift apart by index.
    candidates: Vec<(crate::RoutingStrategyKind, Arc<dyn RoutingStrategy>)>,
}

impl AutoRouter {
    /// Name of the pass counter recording how many back-end replays the
    /// auto-tuner performed for one program (the portfolio size in portfolio
    /// mode, one in cost-model mode). Every replay shares the single
    /// front-end pass recorded by [`AutoRouter::STAGE_COUNTER`] — candidates
    /// are route-only replays, not full compiles.
    pub const PORTFOLIO_COUNTER: &'static str = "portfolio_compiles";

    /// Name of the pass counter recording how many front-end (stage) passes
    /// fed the auto-tuner's candidates: always one — the staged program is
    /// frozen once and every candidate replays only the back end from it.
    pub const STAGE_COUNTER: &'static str = "portfolio_stage_passes";

    /// Builds the auto-tuner from a routing configuration: the candidate
    /// portfolio is the greedy router, the lookahead router with
    /// `config.lookahead`, and the multi-AOD scheduler with
    /// `config.aod_assignment` — in that order, which is also the
    /// tie-breaking preference.
    #[must_use]
    pub fn from_config(config: &RoutingConfig) -> Self {
        AutoRouter {
            portfolio: matches!(
                config.strategy,
                crate::RoutingStrategyKind::Auto { portfolio: true }
            ),
            model: CostModel::new(),
            candidates: vec![
                (crate::RoutingStrategyKind::Greedy, Arc::new(GreedyRouter)),
                (
                    crate::RoutingStrategyKind::Lookahead,
                    Arc::new(LookaheadRouter::new(config.lookahead)),
                ),
                (
                    crate::RoutingStrategyKind::MultiAod,
                    Arc::new(MultiAodScheduler::new(config.aod_assignment)),
                ),
            ],
        }
    }

    /// Whether every candidate is compiled (portfolio mode) instead of only
    /// the cost model's predicted winner.
    #[must_use]
    pub fn is_portfolio(&self) -> bool {
        self.portfolio
    }

    /// The candidate strategies with the kinds the cost model scores them
    /// under, in tie-breaking preference order.
    #[must_use]
    pub fn candidates(&self) -> &[(crate::RoutingStrategyKind, Arc<dyn RoutingStrategy>)] {
        &self.candidates
    }

    /// Routes and schedules `staged` with the selected strategy, recording
    /// the selection in `ctx` (see the module docs for both modes).
    ///
    /// Candidate replays run concurrently on `pool` through one shared
    /// [`RoutingSession`], each on its own scratch context; replay records
    /// merge back in candidate order, so timing and counter layout — like
    /// the emitted program — is identical for every worker count. Merged
    /// counters report **total work across candidates** (three route passes
    /// in portfolio mode), mirroring how parallel passes report total work
    /// time.
    ///
    /// # Errors
    ///
    /// In portfolio mode a candidate that fails to route is dropped from
    /// the selection — the error (first in candidate order) surfaces only
    /// when **every** candidate fails, so auto compiles whenever any
    /// portfolio member does. Cost-model mode compiles one candidate and
    /// returns its [`CompileError`] directly.
    pub fn run(
        &self,
        staged: &StagedProgram,
        arch: &Architecture,
        use_storage: bool,
        use_grouping: bool,
        pool: &ThreadPool,
        ctx: &mut CompileContext,
    ) -> Result<(RoutedProgram, Vec<Instruction>), CompileError> {
        ctx.count(Self::STAGE_COUNTER, 1);
        if !self.portfolio {
            let features = InstanceFeatures::of(staged, arch);
            let strategy = self.predicted_winner(&features);
            ctx.count(Self::PORTFOLIO_COUNTER, 1);
            ctx.select_strategy(strategy.name());
            let routed = RoutePass::new(use_storage)
                .with_strategy(strategy.clone())
                .run(staged, arch, ctx)?;
            let instructions = MovePass::new(use_grouping)
                .with_strategy(strategy.clone())
                .run(&routed, arch, pool, ctx);
            return Ok((routed, instructions));
        }

        // Portfolio mode: every candidate is a route-only replay over the
        // one shared frozen staged program (each replay runs its own
        // sequential back end inside one pool job), so the per-candidate
        // output is deterministic and the cross-candidate fan-out is where
        // the parallelism lives.
        let session = RoutingSession::new(staged, use_storage, use_grouping);
        let jobs: Vec<Arc<dyn RoutingStrategy>> = self
            .candidates
            .iter()
            .map(|(_, strategy)| strategy.clone())
            .collect();
        let replays = pool.par_map(jobs, |strategy| session.replay(arch, strategy));

        let mut outcomes = Vec::with_capacity(replays.len());
        for result in replays {
            // Merging in candidate order keeps timing/counter layout — like
            // the emitted program — identical for every worker count.
            outcomes.push(result.map(|replay| {
                let Replay {
                    routed,
                    instructions,
                    movement,
                    transfers,
                    timings,
                    counters,
                } = replay;
                ctx.merge(CompileContext::from_parts(timings, counters));
                (routed, instructions, movement, transfers)
            }));
        }
        ctx.count(Self::PORTFOLIO_COUNTER, self.candidates.len() as u64);

        let mut best: Option<(usize, RoutedProgram, Vec<Instruction>, f64, usize)> = None;
        let mut first_error = None;
        for (index, result) in outcomes.into_iter().enumerate() {
            // A candidate that fails to route is dropped from the
            // selection, not fatal: the auto configuration compiles
            // whenever any portfolio member does, so it can never be worse
            // than a weaker fixed configuration that would have survived.
            // The replay already folded the candidate's movement wall clock
            // incrementally, so selection is pure comparison here.
            let (routed, instructions, movement, transfers) = match result {
                Ok(compiled) => compiled,
                Err(error) => {
                    first_error.get_or_insert(error);
                    continue;
                }
            };
            let better = match &best {
                None => true,
                Some((_, _, _, best_movement, best_transfers)) => {
                    movement < *best_movement
                        || (movement == *best_movement && transfers < *best_transfers)
                }
            };
            if better {
                best = Some((index, routed, instructions, movement, transfers));
            }
        }
        match best {
            Some((index, routed, instructions, _, _)) => {
                ctx.select_strategy(self.candidates[index].1.name());
                Ok((routed, instructions))
            }
            None => Err(first_error.expect("the portfolio is never empty")),
        }
    }

    /// The candidate the cost model predicts to move fastest; prediction
    /// ties keep the earlier candidate (greedy first).
    fn predicted_winner(&self, features: &InstanceFeatures) -> &Arc<dyn RoutingStrategy> {
        let mut winner = &self.candidates[0].1;
        let mut winner_cost = f64::INFINITY;
        for (kind, strategy) in &self.candidates {
            let cost = self.model.predict(*kind, features);
            if cost < winner_cost {
                winner = strategy;
                winner_cost = cost;
            }
        }
        winner
    }
}

impl std::fmt::Debug for AutoRouter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AutoRouter")
            .field("portfolio", &self.portfolio)
            .field(
                "candidates",
                &self
                    .candidates
                    .iter()
                    .map(|(_, strategy)| strategy.name().to_string())
                    .collect::<Vec<_>>(),
            )
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{StagePass, SynthesisPass};
    use crate::{CompilerConfig, PowerMoveCompiler, RoutingConfig};
    use powermove_circuit::{Circuit, Qubit};
    use powermove_exec::Parallelism;
    use powermove_fidelity::evaluate_program;
    use powermove_schedule::{movement_wall_clock, validate, CompiledProgram};

    fn q(i: u32) -> Qubit {
        Qubit::new(i)
    }

    fn ring_circuit(n: u32) -> Circuit {
        let mut c = Circuit::new(n);
        for i in 0..n {
            c.h(q(i)).unwrap();
        }
        for i in 0..n {
            c.cz(q(i), q((i + 1) % n)).unwrap();
        }
        c
    }

    fn compile(routing: RoutingConfig, n: u32, aods: usize) -> CompiledProgram {
        let arch = Architecture::for_qubits(n).with_num_aods(aods);
        PowerMoveCompiler::new(CompilerConfig::default().with_routing(routing))
            .compile(&ring_circuit(n), &arch)
            .unwrap()
    }

    #[test]
    fn from_config_builds_the_three_candidate_portfolio() {
        let auto = AutoRouter::from_config(&RoutingConfig::auto());
        assert!(auto.is_portfolio());
        let names: Vec<&str> = auto
            .candidates()
            .iter()
            .map(|(_, strategy)| strategy.name())
            .collect();
        let kinds: Vec<&str> = auto
            .candidates()
            .iter()
            .map(|(kind, _)| kind.name())
            .collect();
        assert_eq!(
            names, kinds,
            "each candidate is scored under its own strategy's kind"
        );
        assert_eq!(names, vec!["greedy", "lookahead", "multi-aod"]);
        assert!(!AutoRouter::from_config(&RoutingConfig::auto_model()).is_portfolio());
        let debug = format!("{auto:?}");
        assert!(debug.contains("portfolio: true") && debug.contains("multi-aod"));
    }

    #[test]
    fn portfolio_never_moves_slower_than_any_member() {
        for aods in [1_usize, 2, 3, 4] {
            let auto = compile(RoutingConfig::auto(), 12, aods);
            assert!(validate(&auto).is_ok());
            let t_auto = movement_wall_clock(auto.instructions(), auto.architecture());
            for member in [
                RoutingConfig::greedy(),
                RoutingConfig::lookahead(2),
                RoutingConfig::multi_aod(),
            ] {
                let program = compile(member, 12, aods);
                let t_member = movement_wall_clock(program.instructions(), program.architecture());
                assert!(
                    t_auto <= t_member + 1e-12,
                    "{aods} aods: auto {t_auto} vs {:?} {t_member}",
                    member.strategy
                );
            }
        }
    }

    #[test]
    fn portfolio_records_selection_and_compile_count() {
        let program = compile(RoutingConfig::auto(), 12, 3);
        let metadata = program.metadata();
        let selected = metadata.selected_strategy.as_deref().expect("recorded");
        assert!(["greedy", "lookahead", "multi-aod"].contains(&selected));
        // One shared front-end pass, three route-only back-end replays.
        assert_eq!(metadata.counter(AutoRouter::PORTFOLIO_COUNTER), Some(3));
        assert_eq!(metadata.counter(AutoRouter::STAGE_COUNTER), Some(1));
    }

    #[test]
    fn model_mode_records_a_single_compile() {
        let program = compile(RoutingConfig::auto_model(), 12, 3);
        assert!(validate(&program).is_ok());
        assert_eq!(
            program.metadata().counter(AutoRouter::PORTFOLIO_COUNTER),
            Some(1)
        );
        assert_eq!(
            program.metadata().counter(AutoRouter::STAGE_COUNTER),
            Some(1)
        );
        // At three AODs the model predicts the multi-AOD scheduler.
        assert_eq!(
            program.metadata().selected_strategy.as_deref(),
            Some("multi-aod")
        );
    }

    #[test]
    fn auto_output_is_byte_identical_across_worker_counts() {
        let arch = Architecture::for_qubits(12).with_num_aods(3);
        let circuit = ring_circuit(12);
        let bytes = |threads: usize| {
            let program = PowerMoveCompiler::new(
                CompilerConfig::default()
                    .with_routing(RoutingConfig::auto())
                    .with_threads(threads),
            )
            .compile(&circuit, &arch)
            .unwrap();
            (
                format!("{:?}", program.instructions()),
                format!("{:?}", program.metadata().counters),
                program.metadata().selected_strategy.clone(),
            )
        };
        let reference = bytes(1);
        for threads in [2, 4] {
            assert_eq!(reference, bytes(threads), "threads={threads}");
        }
    }

    #[test]
    fn movement_wall_clock_matches_the_trace_simulator() {
        let program = compile(RoutingConfig::auto(), 10, 2);
        let trace = evaluate_program(&program).unwrap().trace;
        let direct = movement_wall_clock(program.instructions(), program.architecture());
        assert!((direct - trace.movement_time).abs() < 1e-12);
    }

    #[test]
    fn portfolio_falls_back_to_surviving_candidates() {
        use crate::routing::{RoutingState, StageRouting};
        use crate::Stage;

        // A candidate that can never route: the portfolio must drop it and
        // select among the survivors instead of failing a compile a plain
        // greedy configuration would have survived.
        struct AlwaysFails;
        impl crate::RoutingStrategy for AlwaysFails {
            fn name(&self) -> &str {
                "always-fails"
            }
            fn route_stage(
                &self,
                _state: &mut RoutingState,
                stage: &Stage,
                _upcoming: &[Stage],
            ) -> Result<StageRouting, CompileError> {
                Err(CompileError::NoFreeSite {
                    qubit: stage.gates()[0].lo(),
                    zone: powermove_hardware::Zone::Compute,
                })
            }
        }

        let broken_first = AutoRouter {
            portfolio: true,
            model: CostModel::new(),
            candidates: vec![
                (crate::RoutingStrategyKind::Lookahead, Arc::new(AlwaysFails)),
                (crate::RoutingStrategyKind::Greedy, Arc::new(GreedyRouter)),
            ],
        };
        let arch = Architecture::for_qubits(8);
        let mut ctx = CompileContext::new();
        let blocks = SynthesisPass.run(&ring_circuit(8), &mut ctx);
        let pool = ThreadPool::new(Parallelism::fixed(2));
        let staged = StagePass::new(0.5).run(&blocks, &pool, &mut ctx);
        let (_, instructions) = broken_first
            .run(&staged, &arch, true, true, &pool, &mut ctx)
            .expect("the surviving greedy candidate wins");
        assert!(!instructions.is_empty());
        assert_eq!(ctx.selected_strategy(), Some("greedy"));

        // Every candidate failing surfaces the first error in order.
        let all_broken = AutoRouter {
            portfolio: true,
            model: CostModel::new(),
            candidates: vec![(crate::RoutingStrategyKind::Greedy, Arc::new(AlwaysFails))],
        };
        let result = all_broken.run(
            &staged,
            &arch,
            true,
            true,
            &pool,
            &mut CompileContext::new(),
        );
        assert!(matches!(result, Err(CompileError::NoFreeSite { .. })));
    }

    #[test]
    fn empty_programs_select_greedy_by_tie_break() {
        let arch = Architecture::for_qubits(3);
        let auto = AutoRouter::from_config(&RoutingConfig::auto());
        let mut ctx = CompileContext::new();
        let blocks = SynthesisPass.run(&Circuit::new(3), &mut ctx);
        let pool = ThreadPool::new(Parallelism::fixed(2));
        let staged = StagePass::new(0.5).run(&blocks, &pool, &mut ctx);
        let (routed, instructions) = auto
            .run(&staged, &arch, true, true, &pool, &mut ctx)
            .unwrap();
        assert_eq!(routed.segments().len(), 0);
        assert!(instructions.is_empty());
        let metadata = ctx.finish("powermove", true, 0, 1);
        assert_eq!(metadata.selected_strategy.as_deref(), Some("greedy"));
    }
}
