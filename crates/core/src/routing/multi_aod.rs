//! The multi-AOD collective-move scheduler: stage planning stays greedy,
//! but each stage's moves are partitioned across every AOD array the
//! architecture provides.

use crate::config::AodAssignment;
use crate::routing::{
    greedy_move_schedule, group_stage_moves, RoutingState, RoutingStrategy, StageRouting, ZeroBias,
};
use crate::{pack_move_groups_balanced, CompileError, Stage};
use powermove_hardware::Architecture;
use powermove_schedule::Instruction;

/// A routing strategy that schedules each stage's moves across
/// `Architecture::num_aods()` independent AOD arrays.
///
/// Stage transitions are planned exactly like
/// [`GreedyRouter`](crate::GreedyRouter), so the *where* of every qubit is
/// unchanged; the
/// strategy differs in *when* moves fly. The stage's single-qubit moves are
/// first partitioned into conflict-free collective moves
/// ([`group_moves`](crate::group_moves), which splits on
/// [`TrapMove::conflicts_with`] violations), then packed into parallel
/// windows of one collective move per AOD:
///
/// * [`AodAssignment::Balanced`] (the default) sorts each move class by
///   translation length before chunking
///   ([`pack_move_groups_balanced`]), so similar-duration moves
///   share a window and no AOD idles behind one slow member — this is what
///   cuts the total movement wall clock at ≥ 2 AODs;
/// * [`AodAssignment::Chunked`] keeps the greedy dwell-time chunking and
///   exists as the ablation of the balancing step.
///
/// Every emitted collective move is re-checked against the AOD order
/// constraint in debug builds
/// ([`validate_collective_move`](powermove_hardware::validate_collective_move)),
/// and the schedule validator rejects any window that books one AOD twice.
///
/// [`TrapMove::conflicts_with`]: powermove_hardware::TrapMove::conflicts_with
#[derive(Debug, Clone, Copy)]
pub struct MultiAodScheduler {
    assignment: AodAssignment,
}

impl MultiAodScheduler {
    /// Creates the scheduler with the given window-assignment policy.
    #[must_use]
    pub fn new(assignment: AodAssignment) -> Self {
        MultiAodScheduler { assignment }
    }

    /// The active window-assignment policy.
    #[must_use]
    pub fn assignment(&self) -> AodAssignment {
        self.assignment
    }
}

impl Default for MultiAodScheduler {
    fn default() -> Self {
        MultiAodScheduler::new(AodAssignment::Balanced)
    }
}

impl RoutingStrategy for MultiAodScheduler {
    fn name(&self) -> &str {
        "multi-aod"
    }

    fn route_stage(
        &self,
        state: &mut RoutingState,
        stage: &Stage,
        _upcoming: &[Stage],
    ) -> Result<StageRouting, CompileError> {
        state.route_stage_with(stage, &ZeroBias)
    }

    fn schedule_moves(
        &self,
        routing: &StageRouting,
        arch: &Architecture,
        use_grouping: bool,
    ) -> Vec<Instruction> {
        let instructions = match self.assignment {
            AodAssignment::Chunked => greedy_move_schedule(routing, arch, use_grouping),
            AodAssignment::Balanced => pack_move_groups_balanced(
                group_stage_moves(&routing.storage_moves, arch, use_grouping),
                group_stage_moves(&routing.interaction_moves, arch, use_grouping),
                arch,
            ),
        };
        debug_assert!(
            instructions.iter().all(|instr| match instr {
                Instruction::MoveGroup { coll_moves } => coll_moves.iter().all(|cm| {
                    powermove_hardware::validate_collective_move(&cm.trap_moves(arch)).is_ok()
                }),
                _ => true,
            }),
            "multi-AOD packing emitted a conflicting collective move"
        );
        instructions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powermove_circuit::{CzGate, Qubit};
    use powermove_hardware::{Architecture, Zone};
    use powermove_schedule::Layout;

    fn q(i: u32) -> Qubit {
        Qubit::new(i)
    }

    fn stage(edges: &[(u32, u32)]) -> Stage {
        Stage::new(
            edges
                .iter()
                .map(|&(a, b)| CzGate::new(q(a), q(b)))
                .collect(),
        )
    }

    fn movement_time(instructions: &[Instruction], arch: &Architecture) -> f64 {
        powermove_schedule::movement_wall_clock(instructions, arch)
    }

    #[test]
    fn routes_exactly_like_the_greedy_router() {
        let arch = Architecture::for_qubits(8).with_num_aods(3);
        let layout = Layout::row_major(&arch, 8, Zone::Storage).unwrap();
        let stages = [stage(&[(0, 1), (2, 3), (4, 5)]), stage(&[(1, 2), (3, 4)])];

        let scheduler = MultiAodScheduler::default();
        let mut a = RoutingState::new(arch.clone(), layout.clone(), true);
        let mut b = RoutingState::new(arch, layout, true);
        for st in &stages {
            let plan_a = scheduler.route_stage(&mut a, st, &[]).unwrap();
            let plan_b = b.route_stage_with(st, &ZeroBias).unwrap();
            assert_eq!(plan_a, plan_b, "multi-AOD must not change stage plans");
        }
    }

    #[test]
    fn balanced_windows_never_take_longer_than_chunked() {
        let arch = Architecture::for_qubits(12).with_num_aods(3);
        let layout = Layout::row_major(&arch, 12, Zone::Storage).unwrap();
        let stages = [
            stage(&[(0, 1), (2, 3), (4, 5), (6, 7), (8, 9), (10, 11)]),
            stage(&[(1, 2), (3, 4), (5, 6), (7, 8), (9, 10)]),
            stage(&[(0, 11), (2, 9), (4, 7)]),
        ];
        let balanced = MultiAodScheduler::new(AodAssignment::Balanced);
        let chunked = MultiAodScheduler::new(AodAssignment::Chunked);
        let mut state = RoutingState::new(arch.clone(), layout, true);
        let mut balanced_total = 0.0;
        let mut chunked_total = 0.0;
        for st in &stages {
            let routing = state.route_stage_with(st, &ZeroBias).unwrap();
            let b = balanced.schedule_moves(&routing, &arch, true);
            let c = chunked.schedule_moves(&routing, &arch, true);
            assert_eq!(b.len(), c.len(), "same number of parallel windows");
            balanced_total += movement_time(&b, &arch);
            chunked_total += movement_time(&c, &arch);
        }
        assert!(
            balanced_total <= chunked_total,
            "balanced {balanced_total} vs chunked {chunked_total}"
        );
    }

    #[test]
    fn ungrouped_moves_become_singleton_collective_moves() {
        let arch = Architecture::for_qubits(6).with_num_aods(2);
        let layout = Layout::row_major(&arch, 6, Zone::Storage).unwrap();
        let mut state = RoutingState::new(arch.clone(), layout, true);
        let routing = state
            .route_stage_with(&stage(&[(0, 1), (2, 3)]), &ZeroBias)
            .unwrap();
        let scheduler = MultiAodScheduler::default();
        for instr in scheduler.schedule_moves(&routing, &arch, false) {
            if let Instruction::MoveGroup { coll_moves } = instr {
                assert!(coll_moves.iter().all(|cm| cm.len() == 1));
            }
        }
    }

    #[test]
    fn assignment_policy_round_trips() {
        assert_eq!(
            MultiAodScheduler::default().assignment(),
            AodAssignment::Balanced
        );
        assert_eq!(
            MultiAodScheduler::new(AodAssignment::Chunked).assignment(),
            AodAssignment::Chunked
        );
        assert_eq!(MultiAodScheduler::default().name(), "multi-aod");
    }
}
