//! The greedy routing strategy: the paper's continuous router, unchanged.

use crate::routing::{RoutingState, RoutingStrategy, StageRouting, ZeroBias};
use crate::{CompileError, Stage};

/// The baseline routing strategy: the continuous router of Sec. 5 with the
/// dwell-time-ordered, chunked multi-AOD packing of Sec. 6.
///
/// This is the pre-refactor router verbatim — it plans each stage greedily
/// (nearest free site, no lookahead) and schedules moves with the default
/// [`greedy_move_schedule`](crate::greedy_move_schedule) — so its output is
/// byte-identical to what the compiler emitted before routing became
/// pluggable (asserted by `tests/routing_strategies.rs` and the benchmark
/// gate's exact stage/transfer checks).
#[derive(Debug, Clone, Copy, Default)]
pub struct GreedyRouter;

impl RoutingStrategy for GreedyRouter {
    fn name(&self) -> &str {
        "greedy"
    }

    fn route_stage(
        &self,
        state: &mut RoutingState,
        stage: &Stage,
        _upcoming: &[Stage],
    ) -> Result<StageRouting, CompileError> {
        state.route_stage_with(stage, &ZeroBias)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powermove_circuit::CzGate;
    use powermove_hardware::{Architecture, Zone};
    use powermove_schedule::Layout;

    #[test]
    fn greedy_strategy_matches_direct_state_routing() {
        let arch = Architecture::for_qubits(6);
        let layout = Layout::row_major(&arch, 6, Zone::Storage).unwrap();
        let stage = Stage::new(vec![
            CzGate::new(
                powermove_circuit::Qubit::new(0),
                powermove_circuit::Qubit::new(1),
            ),
            CzGate::new(
                powermove_circuit::Qubit::new(2),
                powermove_circuit::Qubit::new(3),
            ),
        ]);

        let mut via_strategy = RoutingState::new(arch.clone(), layout.clone(), true);
        let mut direct = RoutingState::new(arch, layout, true);
        let a = GreedyRouter
            .route_stage(&mut via_strategy, &stage, &[])
            .unwrap();
        let b = direct.route_stage_with(&stage, &ZeroBias).unwrap();
        assert_eq!(a, b);
        assert_eq!(GreedyRouter.name(), "greedy");
    }
}
