//! The lookahead routing strategy: undecided pairs are placed where the
//! next few stages will want them.

use crate::routing::{RoutingState, RoutingStrategy, SitePolicy, StageRouting};
use crate::{CompileError, Stage};
use powermove_circuit::Qubit;
use powermove_hardware::{Point, SiteId, ZonedGrid};
use powermove_schedule::Layout;

/// Geometric discount applied per stage of lookahead: a partner `j` stages
/// ahead contributes `DISCOUNT^j` of its distance to the candidate site.
const DISCOUNT: f64 = 0.5;

/// Reusable per-qubit attractor storage in CSR layout: `offsets[q]..
/// offsets[q+1]` indexes `entries` with qubit `q`'s `(weight, position)`
/// attractors. Rebuilt in place each stage — no per-stage `BTreeMap`
/// allocation churn, no per-entry `Vec` — and owned by the
/// [`RoutingState`] because strategies are shared `&self` across
/// concurrent sessions.
#[derive(Debug, Clone, Default)]
pub(crate) struct AttractorBuffers {
    offsets: Vec<u32>,
    cursors: Vec<u32>,
    entries: Vec<(f64, Point)>,
}

impl AttractorBuffers {
    /// Rebuilds the buffers for the next `depth` stages: two passes, one
    /// counting entries per qubit, one filling in the same stage-major
    /// traversal order the per-qubit vectors used to hold — the entry
    /// order (and therefore the f64 summation order of the bias) is
    /// unchanged.
    fn rebuild(&mut self, depth: usize, upcoming: &[Stage], layout: &Layout, grid: &ZonedGrid) {
        let n = layout.num_qubits() as usize;
        self.offsets.clear();
        self.offsets.resize(n + 1, 0);
        for future in upcoming.iter().take(depth) {
            for gate in future.gates() {
                for (q, partner) in [(gate.lo(), gate.hi()), (gate.hi(), gate.lo())] {
                    if layout.site_of(partner).is_some() {
                        self.offsets[q.as_usize() + 1] += 1;
                    }
                }
            }
        }
        for i in 0..n {
            self.offsets[i + 1] += self.offsets[i];
        }
        self.cursors.clear();
        self.cursors.extend_from_slice(&self.offsets[..n]);
        self.entries.clear();
        self.entries
            .resize(self.offsets[n] as usize, (0.0, Point::new(0.0, 0.0)));
        for (j, future) in upcoming.iter().take(depth).enumerate() {
            let weight = DISCOUNT.powi(j as i32 + 1);
            for gate in future.gates() {
                for (q, partner) in [(gate.lo(), gate.hi()), (gate.hi(), gate.lo())] {
                    if let Some(site) = layout.site_of(partner) {
                        let slot = self.cursors[q.as_usize()] as usize;
                        self.cursors[q.as_usize()] += 1;
                        self.entries[slot] = (weight, grid.position(site));
                    }
                }
            }
        }
    }

    /// Qubit `q`'s attractors, in stage-major order.
    fn of(&self, q: Qubit) -> &[(f64, Point)] {
        let i = q.as_usize();
        &self.entries[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }
}

/// The lookahead [`SitePolicy`]: a candidate site is penalized by the
/// discounted distances from the site to the current positions of both
/// qubits' future partners. Uses the planner-provided site position — no
/// grid borrow, no per-stage grid clone.
struct LookaheadPolicy<'a> {
    attractors: &'a AttractorBuffers,
}

impl SitePolicy for LookaheadPolicy<'_> {
    fn bias(&self, anchor: Qubit, mobile: Qubit, _site: SiteId, site_pos: Point) -> f64 {
        [anchor, mobile]
            .iter()
            .flat_map(|&q| self.attractors.of(q))
            .map(|(weight, partner)| weight * site_pos.distance(*partner))
            .sum()
    }

    // Weights and distances are nonnegative, so zero is the tightest
    // input-independent admissible bound: the free-site search may cut off
    // on ring distance alone.
    fn min_bias(&self) -> f64 {
        0.0
    }
}

/// A routing strategy that scores candidate interaction sites against the
/// next `depth` stages of the same CZ block.
///
/// The greedy router resolves an undecided pair at the free site nearest to
/// its anchor, which can drag a qubit away from the partner it meets two
/// stages later. The lookahead router adds, to each candidate site's score,
/// the discounted distances from the site to the *current* positions of
/// every future partner of the pair's qubits — so a pair that re-pairs soon
/// is parked in between its future partners instead of strictly nearest to
/// its anchor. Stage planning is otherwise identical to the greedy router
/// (`depth == 0` reproduces it exactly), and move scheduling uses the
/// default dwell-time-ordered packing.
#[derive(Debug, Clone, Copy)]
pub struct LookaheadRouter {
    depth: usize,
}

impl LookaheadRouter {
    /// Creates the strategy with the given lookahead window (in stages).
    #[must_use]
    pub fn new(depth: usize) -> Self {
        LookaheadRouter { depth }
    }

    /// The lookahead window in stages.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.depth
    }
}

impl RoutingStrategy for LookaheadRouter {
    fn name(&self) -> &str {
        "lookahead"
    }

    fn lookahead(&self) -> usize {
        self.depth
    }

    fn route_stage(
        &self,
        state: &mut RoutingState,
        stage: &Stage,
        upcoming: &[Stage],
    ) -> Result<StageRouting, CompileError> {
        // Future partners of every qubit, weighted by how soon the pairing
        // happens. Positions are the partners' *current* sites — a cheap,
        // deterministic estimate of where stage j's layout will want them.
        // The flat buffers are taken out of the state so the planner can
        // borrow the state mutably while the policy borrows them.
        let mut attractors = state.take_lookahead_scratch();
        attractors.rebuild(
            self.depth,
            upcoming,
            state.layout(),
            state.architecture().grid(),
        );
        let policy = LookaheadPolicy {
            attractors: &attractors,
        };
        let result = state.route_stage_with(stage, &policy);
        state.restore_lookahead_scratch(attractors);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::ZeroBias;
    use powermove_circuit::CzGate;
    use powermove_hardware::{Architecture, Zone};
    use powermove_schedule::Layout;

    fn q(i: u32) -> Qubit {
        Qubit::new(i)
    }

    fn stage(edges: &[(u32, u32)]) -> Stage {
        Stage::new(
            edges
                .iter()
                .map(|&(a, b)| CzGate::new(q(a), q(b)))
                .collect(),
        )
    }

    fn state(n: u32) -> RoutingState {
        let arch = Architecture::for_qubits(n);
        let layout = Layout::row_major(&arch, n, Zone::Storage).unwrap();
        RoutingState::new(arch, layout, true)
    }

    #[test]
    fn zero_depth_matches_the_greedy_router() {
        let stages = [
            stage(&[(0, 1), (2, 3), (4, 5)]),
            stage(&[(1, 2), (3, 4)]),
            stage(&[(0, 5)]),
        ];
        let lookahead = LookaheadRouter::new(0);
        let mut a = state(6);
        let mut b = state(6);
        for (i, st) in stages.iter().enumerate() {
            let upcoming = &stages[i + 1..];
            let plan_a = lookahead.route_stage(&mut a, st, upcoming).unwrap();
            let plan_b = b.route_stage_with(st, &ZeroBias).unwrap();
            assert_eq!(plan_a, plan_b);
        }
    }

    #[test]
    fn every_stage_still_co_locates_its_pairs() {
        let stages = [
            stage(&[(0, 1), (2, 3), (4, 5), (6, 7)]),
            stage(&[(1, 2), (3, 4), (5, 6)]),
            stage(&[(0, 7), (2, 5)]),
        ];
        let lookahead = LookaheadRouter::new(2);
        let mut s = state(8);
        for (i, st) in stages.iter().enumerate() {
            lookahead.route_stage(&mut s, st, &stages[i + 1..]).unwrap();
            for gate in st.gates() {
                assert_eq!(
                    s.layout().site_of(gate.lo()),
                    s.layout().site_of(gate.hi()),
                    "pair {gate} not co-located"
                );
            }
        }
    }

    #[test]
    fn depth_round_trips() {
        let r = LookaheadRouter::new(3);
        assert_eq!(r.depth(), 3);
        assert_eq!(r.lookahead(), 3);
        assert_eq!(r.name(), "lookahead");
    }
}
