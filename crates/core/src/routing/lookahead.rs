//! The lookahead routing strategy: undecided pairs are placed where the
//! next few stages will want them.

use crate::routing::{BiasFn, RoutingState, RoutingStrategy, StageRouting};
use crate::{CompileError, Stage};
use powermove_circuit::Qubit;
use powermove_hardware::Point;
use std::collections::BTreeMap;

/// Geometric discount applied per stage of lookahead: a partner `j` stages
/// ahead contributes `DISCOUNT^j` of its distance to the candidate site.
const DISCOUNT: f64 = 0.5;

/// A routing strategy that scores candidate interaction sites against the
/// next `depth` stages of the same CZ block.
///
/// The greedy router resolves an undecided pair at the free site nearest to
/// its anchor, which can drag a qubit away from the partner it meets two
/// stages later. The lookahead router adds, to each candidate site's score,
/// the discounted distances from the site to the *current* positions of
/// every future partner of the pair's qubits — so a pair that re-pairs soon
/// is parked in between its future partners instead of strictly nearest to
/// its anchor. Stage planning is otherwise identical to the greedy router
/// (`depth == 0` reproduces it exactly), and move scheduling uses the
/// default dwell-time-ordered packing.
#[derive(Debug, Clone, Copy)]
pub struct LookaheadRouter {
    depth: usize,
}

impl LookaheadRouter {
    /// Creates the strategy with the given lookahead window (in stages).
    #[must_use]
    pub fn new(depth: usize) -> Self {
        LookaheadRouter { depth }
    }

    /// The lookahead window in stages.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.depth
    }
}

impl RoutingStrategy for LookaheadRouter {
    fn name(&self) -> &str {
        "lookahead"
    }

    fn lookahead(&self) -> usize {
        self.depth
    }

    fn route_stage(
        &self,
        state: &mut RoutingState,
        stage: &Stage,
        upcoming: &[Stage],
    ) -> Result<StageRouting, CompileError> {
        // Future partners of every qubit, weighted by how soon the pairing
        // happens. Positions are the partners' *current* sites — a cheap,
        // deterministic estimate of where stage j's layout will want them.
        let grid = state.architecture().grid().clone();
        let mut attractors: BTreeMap<Qubit, Vec<(f64, Point)>> = BTreeMap::new();
        for (j, future) in upcoming.iter().take(self.depth).enumerate() {
            let weight = DISCOUNT.powi(j as i32 + 1);
            for gate in future.gates() {
                for (q, partner) in [(gate.lo(), gate.hi()), (gate.hi(), gate.lo())] {
                    if let Some(site) = state.layout().site_of(partner) {
                        attractors
                            .entry(q)
                            .or_default()
                            .push((weight, grid.position(site)));
                    }
                }
            }
        }
        let policy = BiasFn::new(|anchor, mobile, site| {
            let pos = grid.position(site);
            [anchor, mobile]
                .iter()
                .filter_map(|q| attractors.get(q))
                .flatten()
                .map(|(weight, partner)| weight * pos.distance(*partner))
                .sum()
        });
        state.route_stage_with(stage, &policy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::ZeroBias;
    use powermove_circuit::CzGate;
    use powermove_hardware::{Architecture, Zone};
    use powermove_schedule::Layout;

    fn q(i: u32) -> Qubit {
        Qubit::new(i)
    }

    fn stage(edges: &[(u32, u32)]) -> Stage {
        Stage::new(
            edges
                .iter()
                .map(|&(a, b)| CzGate::new(q(a), q(b)))
                .collect(),
        )
    }

    fn state(n: u32) -> RoutingState {
        let arch = Architecture::for_qubits(n);
        let layout = Layout::row_major(&arch, n, Zone::Storage).unwrap();
        RoutingState::new(arch, layout, true)
    }

    #[test]
    fn zero_depth_matches_the_greedy_router() {
        let stages = [
            stage(&[(0, 1), (2, 3), (4, 5)]),
            stage(&[(1, 2), (3, 4)]),
            stage(&[(0, 5)]),
        ];
        let lookahead = LookaheadRouter::new(0);
        let mut a = state(6);
        let mut b = state(6);
        for (i, st) in stages.iter().enumerate() {
            let upcoming = &stages[i + 1..];
            let plan_a = lookahead.route_stage(&mut a, st, upcoming).unwrap();
            let plan_b = b.route_stage_with(st, &ZeroBias).unwrap();
            assert_eq!(plan_a, plan_b);
        }
    }

    #[test]
    fn every_stage_still_co_locates_its_pairs() {
        let stages = [
            stage(&[(0, 1), (2, 3), (4, 5), (6, 7)]),
            stage(&[(1, 2), (3, 4), (5, 6)]),
            stage(&[(0, 7), (2, 5)]),
        ];
        let lookahead = LookaheadRouter::new(2);
        let mut s = state(8);
        for (i, st) in stages.iter().enumerate() {
            lookahead.route_stage(&mut s, st, &stages[i + 1..]).unwrap();
            for gate in st.gates() {
                assert_eq!(
                    s.layout().site_of(gate.lo()),
                    s.layout().site_of(gate.hi()),
                    "pair {gate} not co-located"
                );
            }
        }
    }

    #[test]
    fn depth_round_trips() {
        let r = LookaheadRouter::new(3);
        assert_eq!(r.depth(), 3);
        assert_eq!(r.lookahead(), 3);
        assert_eq!(r.name(), "lookahead");
    }
}
