//! The pluggable routing subsystem.
//!
//! Routing — deciding *where* qubits move between Rydberg stages and *when*
//! their collective moves fly on which AOD array — is the compiler's hottest
//! decision layer, so it is a first-class, open surface rather than one
//! baked-in algorithm. A [`RoutingStrategy`] is an object-safe
//! `Send + Sync` trait (mirroring the [`CompilerBackend`] registry pattern)
//! with two responsibilities, consumed by [`RoutePass`] and [`MovePass`]
//! respectively:
//!
//! * [`RoutingStrategy::route_stage`] plans one stage transition over the
//!   shared [`RoutingState`] (the evolving layout);
//! * [`RoutingStrategy::schedule_moves`] lowers a stage's movement plan
//!   into move-group instructions — per-AOD collective-move batches whose
//!   windows overlap across distinct AODs.
//!
//! Three strategies ship in-tree, selected through [`RoutingConfig`]:
//!
//! | strategy | stage planning | move scheduling |
//! |---|---|---|
//! | [`GreedyRouter`] | nearest free site (Sec. 5) | dwell-ordered chunks (Sec. 6) |
//! | [`LookaheadRouter`] | scores sites against the next *k* stages | dwell-ordered chunks |
//! | [`MultiAodScheduler`] | greedy | duration-balanced per-AOD windows |
//!
//! All three planners resolve their site decisions through the shared
//! [`RoutingState`], whose free-site queries run on a spatial index (see
//! `site_index`): candidates are walked in non-decreasing anchor distance
//! and the walk cuts off once `distance + SitePolicy::min_bias()` cannot
//! beat the best candidate — same site selected, far fewer examined. The
//! [`SITE_SCANS`] / [`SITES_PRUNED`] metadata counters report the saved
//! work.
//!
//! On top of the per-stage strategies sits the **auto-tuning layer**
//! ([`auto`], [`cost`]): [`RoutingStrategyKind::Auto`] makes the pipeline
//! select the winning strategy *per instance*, either by compiling the whole
//! portfolio and keeping the fastest-moving schedule ([`AutoRouter`] in
//! portfolio mode) or by trusting a [`CostModel`] prediction from cheap
//! instance features.
//!
//! Custom strategies drop in through
//! [`PowerMoveCompiler::with_strategy`](crate::PowerMoveCompiler::with_strategy);
//! everything downstream — timeline validation, the fidelity model's
//! per-AOD attribution, the benchmark gate — consumes the strategy's output
//! through the same instruction stream.
//!
//! [`CompilerBackend`]: crate::CompilerBackend
//! [`RoutePass`]: crate::RoutePass
//! [`MovePass`]: crate::MovePass
//! [`RoutingStrategyKind::Auto`]: crate::RoutingStrategyKind::Auto

pub mod auto;
pub mod cost;
mod greedy;
mod lookahead;
mod multi_aod;
mod site_index;
mod state;

pub use auto::AutoRouter;
pub use cost::{CostModel, InstanceFeatures};
pub use greedy::GreedyRouter;
pub use lookahead::LookaheadRouter;
pub use multi_aod::MultiAodScheduler;
// The canonical movement fold lives in the schedule layer next to
// `move_group_duration`; re-exported here because routing selection is its
// primary consumer.
pub use powermove_schedule::movement_wall_clock;
pub use site_index::{SITES_PRUNED, SITE_SCANS};
pub use state::{
    BiasFn, FreeSiteHarness, RoutingState, SiteBias, SitePolicy, StageRouting, ZeroBias,
};

use crate::config::{RoutingConfig, RoutingStrategyKind};
use crate::{group_moves, order_coll_moves, pack_move_groups, CompileError, Stage};
use powermove_hardware::Architecture;
use powermove_schedule::{Instruction, SiteMove};
use std::sync::Arc;

/// An interchangeable routing algorithm.
///
/// Strategies are stateless trait objects (`&self` methods, `Send + Sync`):
/// all mutable routing state lives in the [`RoutingState`] the pipeline
/// threads through the stage sequence, so one strategy instance can serve
/// concurrent compilations. The default [`RoutingStrategy::schedule_moves`]
/// is the greedy dwell-time packing — strategies that only change stage
/// planning (like [`LookaheadRouter`]) implement nothing else.
pub trait RoutingStrategy: Send + Sync {
    /// Short identifier of the strategy, e.g. `"greedy"`.
    fn name(&self) -> &str;

    /// How many upcoming stages the strategy wants to see in `upcoming`
    /// when planning a stage. Zero (the default) for history-free
    /// strategies.
    fn lookahead(&self) -> usize {
        0
    }

    /// Plans the single-qubit movements preparing `stage`, mutating the
    /// shared routing state (layout) accordingly. `upcoming` holds the next
    /// [`RoutingStrategy::lookahead`] stages of the same commuting CZ
    /// block, for strategies that place qubits with future pairings in
    /// mind.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::NoFreeSite`] if a zone runs out of free
    /// sites.
    fn route_stage(
        &self,
        state: &mut RoutingState,
        stage: &Stage,
        upcoming: &[Stage],
    ) -> Result<StageRouting, CompileError>;

    /// Lowers one stage's movement plan into move-group instructions:
    /// conflict-free collective moves assigned to distinct AOD arrays, at
    /// most `arch.num_aods()` per parallel window. `use_grouping == false`
    /// is the grouping-ablation configuration (every move flies alone).
    fn schedule_moves(
        &self,
        routing: &StageRouting,
        arch: &Architecture,
        use_grouping: bool,
    ) -> Vec<Instruction> {
        greedy_move_schedule(routing, arch, use_grouping)
    }
}

/// The default move schedule (Sec. 6): group each move class into
/// AOD-compatible collective moves, order them for maximum storage dwell
/// time — storage-bound groups strictly before interaction groups, so a
/// vacated site is free before an interaction arrives — and chunk the
/// ordered sequence onto the available AOD arrays.
#[must_use]
pub fn greedy_move_schedule(
    routing: &StageRouting,
    arch: &Architecture,
    use_grouping: bool,
) -> Vec<Instruction> {
    let mut ordered = order_coll_moves(
        group_stage_moves(&routing.storage_moves, arch, use_grouping),
        arch,
    );
    ordered.extend(order_coll_moves(
        group_stage_moves(&routing.interaction_moves, arch, use_grouping),
        arch,
    ));
    pack_move_groups(ordered, arch.num_aods())
}

/// Partitions one move class into collective-move groups: conflict-aware
/// [`group_moves`] normally, one singleton group per move under the
/// grouping-ablation configuration.
#[must_use]
pub fn group_stage_moves(
    moves: &[SiteMove],
    arch: &Architecture,
    use_grouping: bool,
) -> Vec<Vec<SiteMove>> {
    if use_grouping {
        group_moves(moves, arch)
    } else {
        moves.iter().map(|m| vec![*m]).collect()
    }
}

impl RoutingConfig {
    /// Instantiates the configured built-in strategy.
    ///
    /// [`RoutingStrategyKind::Auto`] is a program-level decision, not a
    /// per-stage strategy: the pass pipeline intercepts it and dispatches to
    /// [`AutoRouter`] instead of calling this. For callers that need *some*
    /// per-stage strategy regardless (e.g. driving a
    /// [`RoutePass`](crate::RoutePass) by hand),
    /// an auto configuration builds the portfolio's greedy baseline.
    #[must_use]
    pub fn build(&self) -> Arc<dyn RoutingStrategy> {
        match self.strategy {
            RoutingStrategyKind::Greedy | RoutingStrategyKind::Auto { .. } => {
                Arc::new(GreedyRouter)
            }
            RoutingStrategyKind::Lookahead => Arc::new(LookaheadRouter::new(self.lookahead)),
            RoutingStrategyKind::MultiAod => Arc::new(MultiAodScheduler::new(self.aod_assignment)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AodAssignment;

    #[test]
    fn config_builds_the_matching_strategy() {
        assert_eq!(RoutingConfig::default().build().name(), "greedy");
        assert_eq!(RoutingConfig::lookahead(3).build().name(), "lookahead");
        assert_eq!(RoutingConfig::lookahead(3).build().lookahead(), 3);
        assert_eq!(RoutingConfig::multi_aod().build().name(), "multi-aod");
        assert_eq!(RoutingConfig::default().build().lookahead(), 0);
        let chunked = RoutingConfig {
            strategy: RoutingStrategyKind::MultiAod,
            aod_assignment: AodAssignment::Chunked,
            ..RoutingConfig::default()
        };
        assert_eq!(chunked.build().name(), "multi-aod");
        // Auto is resolved by the pipeline; the per-stage fallback is the
        // portfolio's greedy baseline.
        assert_eq!(RoutingConfig::auto().build().name(), "greedy");
        assert_eq!(RoutingConfig::auto_model().build().name(), "greedy");
    }

    #[test]
    fn strategies_are_object_safe_and_shareable() {
        fn assert_send_sync<T: Send + Sync + ?Sized>() {}
        assert_send_sync::<dyn RoutingStrategy>();
        let strategies: Vec<Arc<dyn RoutingStrategy>> = vec![
            Arc::new(GreedyRouter),
            Arc::new(LookaheadRouter::new(2)),
            Arc::new(MultiAodScheduler::default()),
        ];
        let names: Vec<&str> = strategies.iter().map(|s| s.name()).collect();
        assert_eq!(names, vec!["greedy", "lookahead", "multi-aod"]);
    }
}
