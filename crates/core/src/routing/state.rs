//! The shared routing state: the evolving qubit layout plus the greedy
//! stage-transition planner every built-in strategy builds on (Sec. 5 of the
//! paper).
//!
//! Given the current qubit layout and the next Rydberg stage, the planner
//! decides the single-qubit movements that transition the layout *directly*
//! into a configuration where every CZ pair of the stage is co-located at a
//! computation-zone site, non-interacting qubits are parked in the storage
//! zone (with-storage mode) or left undisturbed (non-storage mode), and no
//! unwanted clustering occurs. There is no reversion to a fixed initial
//! layout between stages — that is precisely the improvement over Enola
//! illustrated in Fig. 3 of the paper.

use crate::{CompileError, Stage};
use powermove_circuit::Qubit;
use powermove_hardware::{Architecture, Point, SiteId, Zone};
use powermove_schedule::{Layout, SiteMove};
use std::collections::{BTreeMap, BTreeSet};

/// The movement plan for one stage transition.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StageRouting {
    /// Moves that park non-interacting qubits in the storage zone.
    pub storage_moves: Vec<SiteMove>,
    /// Moves that bring interacting qubits to their interaction sites.
    pub interaction_moves: Vec<SiteMove>,
}

impl StageRouting {
    /// All moves of the stage transition, storage moves first.
    #[must_use]
    pub fn all_moves(&self) -> Vec<SiteMove> {
        let mut all = self.storage_moves.clone();
        all.extend(self.interaction_moves.iter().copied());
        all
    }

    /// Total number of moved qubits.
    #[must_use]
    pub fn len(&self) -> usize {
        self.storage_moves.len() + self.interaction_moves.len()
    }

    /// Returns `true` if the stage requires no movement.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.storage_moves.is_empty() && self.interaction_moves.is_empty()
    }
}

/// Extra cost added to a candidate interaction site while resolving an
/// undecided pair `(anchor, mobile)`: strategies bias the site choice by
/// returning a positive penalty (in meters, the same unit as the distance
/// term). The zero bias reproduces the greedy router exactly.
pub type SiteBias<'a> = dyn Fn(Qubit, Qubit, SiteId) -> f64 + 'a;

/// The mutable state a [`RoutingStrategy`](crate::RoutingStrategy) threads
/// through the stage sequence: the target architecture, the evolving qubit
/// layout and the storage-mode flag.
///
/// The state owns the full greedy transition planner
/// ([`RoutingState::route_stage`]); strategies either call it directly
/// (greedy, multi-AOD — which differs only in move scheduling) or bias its
/// site decisions ([`RoutingState::route_stage_scored`], the lookahead
/// router). Custom strategies registered through
/// [`PowerMoveCompiler::with_strategy`](crate::PowerMoveCompiler::with_strategy)
/// get the same entry points.
#[derive(Debug, Clone)]
pub struct RoutingState {
    arch: Architecture,
    layout: Layout,
    use_storage: bool,
}

impl RoutingState {
    /// Creates the routing state starting from `initial_layout`.
    #[must_use]
    pub fn new(arch: Architecture, initial_layout: Layout, use_storage: bool) -> Self {
        RoutingState {
            arch,
            layout: initial_layout,
            use_storage,
        }
    }

    /// The current qubit layout.
    #[must_use]
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// The target architecture.
    #[must_use]
    pub fn architecture(&self) -> &Architecture {
        &self.arch
    }

    /// Whether idle qubits are parked in the storage zone between stages.
    #[must_use]
    pub fn use_storage(&self) -> bool {
        self.use_storage
    }

    /// Plans the greedy single-qubit movements that prepare the given stage
    /// and applies them to the internal layout.
    ///
    /// The plan follows the three steps of Sec. 5.2:
    ///
    /// 1. non-interacting qubits currently in the computation zone move to
    ///    the nearest free storage site (with-storage mode only), planned in
    ///    descending order of their `y` coordinate;
    /// 2. interacting qubits are labelled static / mobile / undecided
    ///    according to the four zone cases of Fig. 4;
    /// 3. undecided qubits (and their partners) are assigned the nearest
    ///    free computation-zone site.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::NoFreeSite`] if a zone runs out of free sites;
    /// this cannot happen with the paper's default grid dimensions.
    pub fn route_stage(&mut self, stage: &Stage) -> Result<StageRouting, CompileError> {
        self.route_stage_scored(stage, &|_, _, _| 0.0)
    }

    /// Like [`RoutingState::route_stage`], but biases the step-3 resolution
    /// of undecided pairs: each candidate interaction site's distance score
    /// is increased by `bias(anchor, mobile, site)`. A zero bias reproduces
    /// the greedy plan bit for bit.
    ///
    /// # Errors
    ///
    /// Same as [`RoutingState::route_stage`].
    pub fn route_stage_scored(
        &mut self,
        stage: &Stage,
        bias: &SiteBias<'_>,
    ) -> Result<StageRouting, CompileError> {
        let grid = self.arch.grid().clone();
        let interacting = stage.interacting_qubits();

        // Planned occupancy after the transition: start from every placed
        // qubit and update as movement decisions are made.
        let mut planned: BTreeMap<SiteId, BTreeSet<Qubit>> = BTreeMap::new();
        for (q, site) in self.layout.iter() {
            planned.entry(site).or_default().insert(q);
        }

        let mut routing = StageRouting::default();

        // Step 1 (non-storage mode): separate stale pairs. Two qubits left
        // co-located from a previous stage that do not interact now would
        // undergo an unwanted CZ during the next excitation, so one of them
        // is relocated to the nearest free computation-zone site.
        if !self.use_storage {
            let stale: Vec<(Qubit, SiteId)> = self
                .layout
                .occupied_sites()
                .filter(|(_, occupants)| {
                    occupants.len() >= 2 && occupants.iter().all(|q| !interacting.contains(q))
                })
                .flat_map(|(site, occupants)| {
                    occupants
                        .iter()
                        .skip(1)
                        .map(move |&q| (q, site))
                        .collect::<Vec<_>>()
                })
                .collect();
            for (q, from) in stale {
                planned.entry(from).or_default().remove(&q);
                let from_pos = grid.position(from);
                let target = self
                    .nearest_free_site(&grid, &planned, from_pos, Zone::Compute)
                    .ok_or(CompileError::NoFreeSite {
                        qubit: q,
                        zone: Zone::Compute,
                    })?;
                planned.entry(target).or_default().insert(q);
                routing.storage_moves.push(SiteMove::new(q, from, target));
            }
        }

        // Step 1: park non-interacting computation-zone qubits in storage.
        // Qubits move vertically down into their own column whenever a free
        // site exists there. Planning in descending order of the y
        // coordinate — qubits farther from the storage zone choose first, as
        // prescribed in Sec. 5.2 — lets the farthest qubit take the
        // shallowest free row, which both shortens the longest move and
        // preserves the relative row order of the parked qubits, so the
        // parking moves typically fit in a single collective move.
        if self.use_storage {
            let mut to_park: Vec<(Qubit, SiteId, Point)> = self
                .layout
                .iter()
                .filter(|(q, site)| {
                    !interacting.contains(q) && grid.zone_of(*site) == Zone::Compute
                })
                .map(|(q, site)| (q, site, grid.position(site)))
                .collect();
            to_park.sort_by(|a, b| {
                b.2.y
                    .partial_cmp(&a.2.y)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.0.cmp(&b.0))
            });
            for (q, from, from_pos) in to_park {
                planned.entry(from).or_default().remove(&q);
                let (col, _) = grid.col_row(from);
                let same_column = (0..grid.storage_rows())
                    .filter_map(|row| grid.site(Zone::Storage, col, row))
                    .find(|s| {
                        planned.get(s).map_or(0, BTreeSet::len) == 0
                            && self.layout.occupancy(*s) == 0
                    });
                let target = same_column
                    .or_else(|| self.nearest_free_site(&grid, &planned, from_pos, Zone::Storage))
                    .ok_or(CompileError::NoFreeSite {
                        qubit: q,
                        zone: Zone::Storage,
                    })?;
                planned.entry(target).or_default().insert(q);
                routing.storage_moves.push(SiteMove::new(q, from, target));
            }
        }

        // Qubits that leave for the storage zone during this transition.
        // Their collective moves are always scheduled before the interaction
        // moves (Sec. 6.1 prioritizes move-ins), so a site they vacate can
        // safely host an interaction afterwards — this is the Fig. 4(c)
        // case 1 optimization.
        let storage_movers: BTreeSet<Qubit> =
            routing.storage_moves.iter().map(|m| m.qubit).collect();

        // Step 2: label interacting qubits and decide direct moves.
        // `pending` holds (anchor, mobile) pairs whose interaction site is
        // resolved in step 3.
        let mut pending: Vec<(Qubit, Qubit)> = Vec::new();
        for gate in stage.gates() {
            let a = gate.lo();
            let b = gate.hi();
            let sa = self.layout.site_of(a).expect("interacting qubit is placed");
            let sb = self.layout.site_of(b).expect("interacting qubit is placed");
            if sa == sb {
                // Already co-located from the previous stage: both static.
                continue;
            }
            let za = grid.zone_of(sa);
            let zb = grid.zone_of(sb);

            // Choose which qubit anchors the interaction site. A qubit can
            // anchor (stay "static") only if its site hosts no third-party
            // occupant: neither one that stays (which would cluster during
            // the excitation) nor one that departs later in the transition
            // (which would transiently overfill the trap site). Otherwise
            // the gate's location is "undecided" and resolved in step 3.
            let (mobile, anchor, anchor_site, mut anchor_moves) = match (za, zb) {
                (Zone::Storage, Zone::Storage) => (a, b, sb, true),
                (Zone::Storage, Zone::Compute) => (a, b, sb, false),
                (Zone::Compute, Zone::Storage) => (b, a, sa, false),
                (Zone::Compute, Zone::Compute) => {
                    let blocked_a = self.is_blocked(&planned, &storage_movers, sa, a, b);
                    let blocked_b = self.is_blocked(&planned, &storage_movers, sb, a, b);
                    if !blocked_b {
                        (a, b, sb, false)
                    } else if !blocked_a {
                        (b, a, sa, false)
                    } else {
                        (a, b, sb, true)
                    }
                }
            };

            // The mobile qubit leaves its current site in every case.
            let mobile_site = if mobile == a { sa } else { sb };
            planned.entry(mobile_site).or_default().remove(&mobile);

            // An anchor whose site hosts another qubit must relocate
            // (it becomes "undecided" in the paper's terminology).
            if !anchor_moves
                && self.is_blocked(&planned, &storage_movers, anchor_site, anchor, mobile)
            {
                anchor_moves = true;
            }
            // An anchor sitting in storage always has to move out.
            if !anchor_moves && grid.zone_of(anchor_site) == Zone::Storage {
                anchor_moves = true;
            }

            if anchor_moves {
                planned.entry(anchor_site).or_default().remove(&anchor);
                pending.push((anchor, mobile));
            } else {
                planned.entry(anchor_site).or_default().insert(mobile);
                routing
                    .interaction_moves
                    .push(SiteMove::new(mobile, mobile_site, anchor_site));
            }
        }

        // Step 3: resolve undecided qubits to the best free compute site —
        // nearest to the anchor, plus whatever bias the strategy adds.
        for (anchor, mobile) in pending {
            let anchor_from = self
                .layout
                .site_of(anchor)
                .expect("interacting qubit is placed");
            let mobile_from = self
                .layout
                .site_of(mobile)
                .expect("interacting qubit is placed");
            let anchor_pos = grid.position(anchor_from);
            let target = self
                .best_free_site(&grid, &planned, Zone::Compute, |site| {
                    grid.position(site).distance(anchor_pos) + bias(anchor, mobile, site)
                })
                .ok_or(CompileError::NoFreeSite {
                    qubit: anchor,
                    zone: Zone::Compute,
                })?;
            planned.entry(target).or_default().insert(anchor);
            planned.entry(target).or_default().insert(mobile);
            routing
                .interaction_moves
                .push(SiteMove::new(anchor, anchor_from, target));
            routing
                .interaction_moves
                .push(SiteMove::new(mobile, mobile_from, target));
        }

        // Apply the transition to the internal layout.
        for m in routing.all_moves() {
            self.layout.move_qubit(m.qubit, m.to);
        }
        Ok(routing)
    }

    /// Returns `true` if `site` cannot serve as a static interaction site
    /// for the excluded pair.
    ///
    /// Two kinds of third-party occupants block a site: qubits planned to
    /// remain there after the transition (they would cluster with the pair
    /// during the excitation), and qubits still physically present that
    /// depart later within the same transition (an early arrival would
    /// transiently overfill the trap site). Occupants that leave for the
    /// storage zone do *not* block — their collective moves are scheduled
    /// ahead of every interaction move (Fig. 4(c) case 1 of the paper).
    fn is_blocked(
        &self,
        planned: &BTreeMap<SiteId, BTreeSet<Qubit>>,
        storage_movers: &BTreeSet<Qubit>,
        site: SiteId,
        exclude_a: Qubit,
        exclude_b: Qubit,
    ) -> bool {
        let planned_blocker = planned
            .get(&site)
            .is_some_and(|set| set.iter().any(|&q| q != exclude_a && q != exclude_b));
        let current_blocker = self
            .layout
            .occupants(site)
            .iter()
            .any(|&q| q != exclude_a && q != exclude_b && !storage_movers.contains(&q));
        planned_blocker || current_blocker
    }

    /// Finds the free site of `zone` nearest to `from`.
    fn nearest_free_site(
        &self,
        grid: &powermove_hardware::ZonedGrid,
        planned: &BTreeMap<SiteId, BTreeSet<Qubit>>,
        from: Point,
        zone: Zone,
    ) -> Option<SiteId> {
        self.best_free_site(grid, planned, zone, |site| {
            grid.position(site).distance(from)
        })
    }

    /// Finds the free site of `zone` minimizing `score`.
    ///
    /// A site is free when nothing is planned to occupy it after the
    /// transition. Sites that are also empty *before* the transition are
    /// preferred, which avoids transient three-atom occupancies while a
    /// previous occupant is still waiting for its own collective move.
    /// Ties are broken by site index, keeping every strategy deterministic.
    fn best_free_site(
        &self,
        grid: &powermove_hardware::ZonedGrid,
        planned: &BTreeMap<SiteId, BTreeSet<Qubit>>,
        zone: Zone,
        score: impl Fn(SiteId) -> f64,
    ) -> Option<SiteId> {
        let candidates = |also_currently_empty: bool| {
            grid.sites_in(zone)
                .filter(move |s| {
                    planned.get(s).map_or(0, BTreeSet::len) == 0
                        && (!also_currently_empty || self.layout.occupancy(*s) == 0)
                })
                .min_by(|&x, &y| {
                    score(x)
                        .partial_cmp(&score(y))
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(x.cmp(&y))
                })
        };
        candidates(true).or_else(|| candidates(false))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powermove_circuit::CzGate;
    use powermove_hardware::Architecture;

    fn q(i: u32) -> Qubit {
        Qubit::new(i)
    }

    fn stage(edges: &[(u32, u32)]) -> Stage {
        Stage::new(
            edges
                .iter()
                .map(|&(a, b)| CzGate::new(q(a), q(b)))
                .collect(),
        )
    }

    fn storage_router(n: u32) -> RoutingState {
        let arch = Architecture::for_qubits(n);
        let layout = Layout::row_major(&arch, n, Zone::Storage).unwrap();
        RoutingState::new(arch, layout, true)
    }

    fn compute_router(n: u32) -> RoutingState {
        let arch = Architecture::for_qubits(n);
        let layout = Layout::row_major(&arch, n, Zone::Compute).unwrap();
        RoutingState::new(arch, layout, false)
    }

    /// After routing a stage, every gate pair must share a computation-zone
    /// site and no site may hold unrelated qubit groups.
    fn assert_stage_ready(router: &RoutingState, stage: &Stage) {
        let grid = router.architecture().grid();
        for gate in stage.gates() {
            let sa = router.layout().site_of(gate.lo()).unwrap();
            let sb = router.layout().site_of(gate.hi()).unwrap();
            assert_eq!(sa, sb, "pair {gate} not co-located");
            assert_eq!(grid.zone_of(sa), Zone::Compute);
        }
        for (site, occupants) in router.layout().occupied_sites() {
            assert!(occupants.len() <= 2, "site {site} overcrowded");
            if occupants.len() == 2 && grid.zone_of(site) == Zone::Compute {
                let pair_ok = stage.gates().iter().any(|g| {
                    (g.lo() == occupants[0] && g.hi() == occupants[1])
                        || (g.lo() == occupants[1] && g.hi() == occupants[0])
                });
                assert!(pair_ok, "unrelated qubits clustered at {site}");
            }
        }
    }

    #[test]
    fn storage_pairs_move_to_compute() {
        let mut router = storage_router(6);
        let st = stage(&[(0, 1), (2, 3)]);
        let routing = router.route_stage(&st).unwrap();
        assert_stage_ready(&router, &st);
        // Both pairs started in storage: four interaction moves, no storage
        // moves (non-interacting qubits were already in storage).
        assert!(routing.storage_moves.is_empty());
        assert_eq!(routing.interaction_moves.len(), 4);
    }

    #[test]
    fn non_interacting_qubits_return_to_storage() {
        let mut router = storage_router(6);
        let first = stage(&[(0, 1), (2, 3)]);
        router.route_stage(&first).unwrap();
        // Next stage uses only qubits 4 and 5: qubits 0-3 must be parked.
        let second = stage(&[(4, 5)]);
        let routing = router.route_stage(&second).unwrap();
        assert_stage_ready(&router, &second);
        assert_eq!(routing.storage_moves.len(), 4);
        let grid = router.architecture().grid();
        for i in 0..4 {
            let site = router.layout().site_of(q(i)).unwrap();
            assert_eq!(grid.zone_of(site), Zone::Storage);
        }
    }

    #[test]
    fn consecutive_stages_reuse_layout_without_reverting() {
        let mut router = storage_router(6);
        let first = stage(&[(0, 1), (2, 3), (4, 5)]);
        router.route_stage(&first).unwrap();
        // Second stage re-pairs overlapping qubits (the Fig. 3 example).
        let second = stage(&[(1, 2), (3, 4)]);
        let routing = router.route_stage(&second).unwrap();
        assert_stage_ready(&router, &second);
        // Qubits 0 and 5 are non-interacting and go to storage; the other
        // four re-pair directly without reverting to the initial layout.
        assert_eq!(routing.storage_moves.len(), 2);
        assert!(routing.interaction_moves.len() <= 6);
    }

    #[test]
    fn already_colocated_pair_does_not_move() {
        let mut router = storage_router(4);
        let st = stage(&[(0, 1)]);
        router.route_stage(&st).unwrap();
        let moves_first = router.layout().site_of(q(0)).unwrap();
        // Re-running the same pair requires no interaction moves.
        let routing = router.route_stage(&st).unwrap();
        assert!(routing.interaction_moves.is_empty());
        assert_eq!(router.layout().site_of(q(0)).unwrap(), moves_first);
    }

    #[test]
    fn non_storage_mode_keeps_everything_in_compute() {
        let mut router = compute_router(9);
        let st = stage(&[(0, 1), (2, 3), (4, 5)]);
        let routing = router.route_stage(&st).unwrap();
        assert_stage_ready(&router, &st);
        assert!(routing.storage_moves.is_empty());
        let grid = router.architecture().grid();
        for (_, site) in router.layout().iter() {
            assert_eq!(grid.zone_of(site), Zone::Compute);
        }
    }

    #[test]
    fn non_storage_mode_resolves_blocked_anchors() {
        let mut router = compute_router(9);
        // Pair the row 0 neighbours first.
        router.route_stage(&stage(&[(0, 1), (2, 3)])).unwrap();
        // Now pair across the previous pairs, forcing relocations.
        let st = stage(&[(1, 2), (0, 3)]);
        let routing = router.route_stage(&st).unwrap();
        assert_stage_ready(&router, &st);
        assert!(!routing.is_empty());
    }

    #[test]
    fn chain_of_stages_stays_consistent() {
        let mut router = storage_router(10);
        let stages = [
            stage(&[(0, 1), (2, 3), (4, 5), (6, 7), (8, 9)]),
            stage(&[(1, 2), (3, 4), (5, 6), (7, 8)]),
            stage(&[(0, 9), (2, 5)]),
            stage(&[(0, 1), (2, 3), (4, 5), (6, 7), (8, 9)]),
        ];
        for st in &stages {
            router.route_stage(st).unwrap();
            assert_stage_ready(&router, st);
        }
    }

    #[test]
    fn routing_len_and_all_moves_agree() {
        let mut router = storage_router(6);
        let st = stage(&[(0, 1)]);
        let routing = router.route_stage(&st).unwrap();
        assert_eq!(routing.all_moves().len(), routing.len());
        assert!(!routing.is_empty());
    }

    #[test]
    fn zero_bias_reproduces_the_greedy_plan() {
        let stages = [
            stage(&[(0, 1), (2, 3), (4, 5), (6, 7)]),
            stage(&[(1, 2), (3, 4), (5, 6)]),
            stage(&[(0, 7), (2, 5)]),
        ];
        let mut greedy = storage_router(8);
        let mut scored = storage_router(8);
        for st in &stages {
            let a = greedy.route_stage(st).unwrap();
            let b = scored.route_stage_scored(st, &|_, _, _| 0.0).unwrap();
            assert_eq!(a, b);
        }
        assert_eq!(greedy.layout(), scored.layout());
    }

    #[test]
    fn bias_can_steer_an_undecided_pair() {
        // Two storage-resident pairs are undecided; a huge penalty on the
        // default (nearest) site pushes the pair elsewhere.
        let mut default_router = storage_router(4);
        let st = stage(&[(0, 1)]);
        let default_plan = default_router.route_stage(&st).unwrap();
        let default_site = default_plan.interaction_moves[0].to;

        let mut biased_router = storage_router(4);
        let biased_plan = biased_router
            .route_stage_scored(&st, &|_, _, site| {
                if site == default_site {
                    1.0 // one meter: dwarfs any on-grid distance
                } else {
                    0.0
                }
            })
            .unwrap();
        assert_ne!(biased_plan.interaction_moves[0].to, default_site);
    }
}
