//! The shared routing state: the evolving qubit layout plus the greedy
//! stage-transition planner every built-in strategy builds on (Sec. 5 of the
//! paper).
//!
//! Given the current qubit layout and the next Rydberg stage, the planner
//! decides the single-qubit movements that transition the layout *directly*
//! into a configuration where every CZ pair of the stage is co-located at a
//! computation-zone site, non-interacting qubits are parked in the storage
//! zone (with-storage mode) or left undisturbed (non-storage mode), and no
//! unwanted clustering occurs. There is no reversion to a fixed initial
//! layout between stages — that is precisely the improvement over Enola
//! illustrated in Fig. 3 of the paper.
//!
//! # The occupancy arena
//!
//! The planner's hot data structure is the *planned occupancy*: which qubits
//! will sit at which site once the transition completes. It is kept as a
//! persistent struct-of-arrays arena — a flat site-indexed occupant table
//! plus per-zone free-site lists — updated incrementally as movement
//! decisions are made, instead of a tree map rebuilt from the layout on
//! every stage. Because every planned decision is also applied to the
//! layout at the end of the stage, the arena and the layout agree at every
//! stage boundary, so the arena never needs rebuilding.
//!
//! # The spatial free-site index
//!
//! The planner's hot *query* is `best_free_site`: which free site of a zone
//! minimizes distance-to-anchor plus policy bias? Alongside the free lists
//! the arena maintains a row-bucketed free-site bitset
//! (`routing::site_index`), updated on the same O(1) transitions. Queries
//! walk free sites in non-decreasing anchor distance and stop once even
//! `ring_distance + SitePolicy::min_bias` can no longer beat the best
//! candidate — an A*-style cutoff that returns the *same site* as the
//! linear scan under the same `(score, site index)` total order, examining
//! far fewer candidates. Debug builds re-run the linear reference scan on
//! every pruned query and assert equality; the `site_scans` /
//! `sites_pruned` counters report the saved work.

use crate::routing::lookahead::AttractorBuffers;
use crate::routing::site_index::{FreeRing, ScanStats, SearchScratch, SiteIndex};
use crate::{CompileError, Stage};
use powermove_circuit::Qubit;
use powermove_hardware::{Architecture, Point, SiteId, Zone, ZonedGrid};
use powermove_schedule::{Layout, SiteMove};
use std::cmp::Ordering;

/// The movement plan for one stage transition.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StageRouting {
    /// Moves that park non-interacting qubits in the storage zone.
    pub storage_moves: Vec<SiteMove>,
    /// Moves that bring interacting qubits to their interaction sites.
    pub interaction_moves: Vec<SiteMove>,
}

impl StageRouting {
    /// All moves of the stage transition, storage moves first.
    #[must_use]
    pub fn all_moves(&self) -> Vec<SiteMove> {
        let mut all = self.storage_moves.clone();
        all.extend(self.interaction_moves.iter().copied());
        all
    }

    /// Total number of moved qubits.
    #[must_use]
    pub fn len(&self) -> usize {
        self.storage_moves.len() + self.interaction_moves.len()
    }

    /// Returns `true` if the stage requires no movement.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.storage_moves.is_empty() && self.interaction_moves.is_empty()
    }
}

/// A site-selection policy: the single extension point of the stage planner.
///
/// While resolving an undecided pair `(anchor, mobile)` the planner scores
/// every candidate interaction site by its distance to the anchor plus
/// `bias(anchor, mobile, site, site_pos)` — a positive penalty in meters,
/// the same unit as the distance term. [`ZeroBias`] reproduces the greedy
/// router bit for bit; the lookahead router biases sites toward future
/// partners. Closures adapt through [`BiasFn`].
///
/// Bias values must not be NaN: site selection is a deterministic total
/// order over `(score, site index)` and NaN would make it
/// iteration-order-dependent.
///
/// # The `min_bias` pruning contract
///
/// The planner enumerates candidates in non-decreasing anchor distance and
/// stops as soon as `distance + min_bias()` exceeds the best candidate's
/// score, skipping [`SitePolicy::bias`] for every remaining site. The
/// cutoff is only sound if `min_bias()` is *admissible*: a lower bound on
/// every value `bias` can return for the pair being resolved. A bound that
/// overestimates (e.g. returning `1.0` while some site's bias is `0.5`) can
/// prune the true optimum and change routing results; a bound that
/// underestimates (the default `0.0` works for every nonnegative bias) only
/// costs pruning efficiency, never correctness.
pub trait SitePolicy {
    /// The extra cost added to `site` (at physical position `site_pos`) as
    /// the interaction site of `(anchor, mobile)`.
    fn bias(&self, anchor: Qubit, mobile: Qubit, site: SiteId, site_pos: Point) -> f64;

    /// An admissible lower bound on every value [`SitePolicy::bias`] can
    /// return — see the trait docs for the pruning contract. The default,
    /// `0.0`, is correct for every nonnegative bias.
    fn min_bias(&self) -> f64 {
        0.0
    }
}

/// The zero-bias [`SitePolicy`]: every candidate site scores by distance
/// alone, reproducing the greedy plan bit for bit.
#[derive(Debug, Clone, Copy, Default)]
pub struct ZeroBias;

impl SitePolicy for ZeroBias {
    fn bias(&self, _anchor: Qubit, _mobile: Qubit, _site: SiteId, _site_pos: Point) -> f64 {
        0.0
    }
}

/// Adapts a closure into a [`SitePolicy`].
///
/// The wrapped closure must return nonnegative values: `BiasFn` reports the
/// default [`SitePolicy::min_bias`] of `0.0`, which is only admissible (see
/// the trait docs) when no bias is negative. Implement [`SitePolicy`]
/// directly to pair a custom bias with a tighter bound.
///
/// ```
/// use powermove::{BiasFn, SitePolicy};
/// use powermove_circuit::Qubit;
/// use powermove_hardware::{Point, SiteId};
///
/// let policy = BiasFn::new(|_, _, site: SiteId| site.index() as f64);
/// let pos = Point::new(0.0, 0.0);
/// assert_eq!(policy.bias(Qubit::new(0), Qubit::new(1), SiteId::new(3), pos), 3.0);
/// assert_eq!(policy.min_bias(), 0.0);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct BiasFn<F>(F);

impl<F: Fn(Qubit, Qubit, SiteId) -> f64> BiasFn<F> {
    /// Wraps the closure.
    #[must_use]
    pub fn new(f: F) -> Self {
        BiasFn(f)
    }
}

impl<F: Fn(Qubit, Qubit, SiteId) -> f64> SitePolicy for BiasFn<F> {
    fn bias(&self, anchor: Qubit, mobile: Qubit, site: SiteId, _site_pos: Point) -> f64 {
        (self.0)(anchor, mobile, site)
    }
}

/// Extra cost added to a candidate interaction site while resolving an
/// undecided pair `(anchor, mobile)`.
///
/// Superseded by [`SitePolicy`] (wrap closures in [`BiasFn`]); kept for the
/// deprecated [`RoutingState::route_stage_scored`] entry point.
pub type SiteBias<'a> = dyn Fn(Qubit, Qubit, SiteId) -> f64 + 'a;

/// Marks a site as not present in any free list.
const NOT_FREE: usize = usize::MAX;

/// One site's planned occupants: at most two (an interacting pair).
///
/// The planner only ever co-locates the two qubits of one CZ gate, so a
/// fixed two-slot cell covers every reachable state — the insert path
/// asserts the invariant rather than spilling.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct PlannedSite([Option<Qubit>; 2]);

impl PlannedSite {
    fn is_empty(&self) -> bool {
        self.0[0].is_none() && self.0[1].is_none()
    }

    fn insert(&mut self, q: Qubit) {
        if self.0.contains(&Some(q)) {
            return;
        }
        if let Some(slot) = self.0.iter_mut().find(|slot| slot.is_none()) {
            *slot = Some(q);
        } else {
            panic!("planned occupancy of a site exceeded two qubits");
        }
    }

    fn remove(&mut self, q: Qubit) {
        for slot in &mut self.0 {
            if *slot == Some(q) {
                *slot = None;
            }
        }
    }

    fn blocks(&self, exclude_a: Qubit, exclude_b: Qubit) -> bool {
        self.0
            .iter()
            .flatten()
            .any(|&q| q != exclude_a && q != exclude_b)
    }
}

/// The persistent planned-occupancy arena (see the module docs): flat
/// site-indexed occupant cells, per-zone lists of planned-free sites (with a
/// site→list-position index for O(1) removal), the spatial free-site bitset
/// index mirroring those lists, and a per-qubit departs-to-storage flag
/// used by the blocking test.
#[derive(Debug, Clone, Default)]
struct OccupancyArena {
    planned: Vec<PlannedSite>,
    free: [Vec<SiteId>; 2],
    free_pos: Vec<usize>,
    storage_mover: Vec<bool>,
    index: SiteIndex,
}

fn zone_index(zone: Zone) -> usize {
    match zone {
        Zone::Compute => 0,
        Zone::Storage => 1,
    }
}

impl OccupancyArena {
    fn new(grid: &ZonedGrid, layout: &Layout) -> Self {
        let num_sites = grid.num_sites();
        let mut arena = OccupancyArena {
            planned: vec![PlannedSite::default(); num_sites],
            free: [Vec::new(), Vec::new()],
            free_pos: vec![NOT_FREE; num_sites],
            storage_mover: vec![false; layout.num_qubits() as usize],
            index: SiteIndex::new(grid),
        };
        for zone in [Zone::Compute, Zone::Storage] {
            for site in grid.sites_in(zone) {
                arena.mark_free(zone, site);
            }
        }
        for (q, site) in layout.iter() {
            arena.insert(grid, site, q);
        }
        arena
    }

    fn mark_free(&mut self, zone: Zone, site: SiteId) {
        let list = &mut self.free[zone_index(zone)];
        self.free_pos[site.index()] = list.len();
        list.push(site);
        self.index.set_free(zone, site);
    }

    fn unmark_free(&mut self, zone: Zone, site: SiteId) {
        let list = &mut self.free[zone_index(zone)];
        let pos = self.free_pos[site.index()];
        debug_assert!(pos != NOT_FREE, "site was not in the free list");
        list.swap_remove(pos);
        if let Some(&moved) = list.get(pos) {
            self.free_pos[moved.index()] = pos;
        }
        self.free_pos[site.index()] = NOT_FREE;
        self.index.clear_free(zone, site);
    }

    /// Plans `q` to occupy `site` after the transition.
    fn insert(&mut self, grid: &ZonedGrid, site: SiteId, q: Qubit) {
        let cell = &mut self.planned[site.index()];
        let was_empty = cell.is_empty();
        cell.insert(q);
        if was_empty {
            self.unmark_free(grid.zone_of(site), site);
        }
    }

    /// Removes `q` from the planned occupants of `site`.
    fn remove(&mut self, grid: &ZonedGrid, site: SiteId, q: Qubit) {
        let cell = &mut self.planned[site.index()];
        let was_empty = cell.is_empty();
        cell.remove(q);
        if !was_empty && cell.is_empty() {
            self.mark_free(grid.zone_of(site), site);
        }
    }

    fn planned_len(&self, site: SiteId) -> usize {
        self.planned[site.index()].0.iter().flatten().count()
    }
}

/// The mutable state a [`RoutingStrategy`](crate::RoutingStrategy) threads
/// through the stage sequence: the target architecture, the evolving qubit
/// layout, the storage-mode flag and the persistent planned-occupancy
/// arena.
///
/// The state owns the full greedy transition planner
/// ([`RoutingState::route_stage_with`]); strategies either run it under the
/// [`ZeroBias`] policy (greedy, multi-AOD — which differs only in move
/// scheduling) or bias its site decisions with their own [`SitePolicy`]
/// (the lookahead router). Custom strategies registered through
/// [`PowerMoveCompiler::with_strategy`](crate::PowerMoveCompiler::with_strategy)
/// get the same entry point.
///
/// The initial layout must target `arch`'s grid (every placed site within
/// the grid, at most two qubits per site), as
/// [`Layout::row_major`] guarantees.
#[derive(Debug, Clone)]
pub struct RoutingState {
    arch: Architecture,
    layout: Layout,
    use_storage: bool,
    arena: OccupancyArena,
    search: SearchState,
    lookahead_scratch: AttractorBuffers,
}

/// The per-state free-site search apparatus: the reusable best-first
/// frontier allocation plus the running `site_scans` / `sites_pruned`
/// totals.
#[derive(Debug, Clone, Default)]
struct SearchState {
    scratch: SearchScratch,
    stats: ScanStats,
}

impl RoutingState {
    /// Creates the routing state starting from `initial_layout`.
    #[must_use]
    pub fn new(arch: Architecture, initial_layout: Layout, use_storage: bool) -> Self {
        let arena = OccupancyArena::new(arch.grid(), &initial_layout);
        RoutingState {
            arch,
            layout: initial_layout,
            use_storage,
            arena,
            search: SearchState::default(),
            lookahead_scratch: AttractorBuffers::default(),
        }
    }

    /// The current qubit layout.
    #[must_use]
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// The target architecture.
    #[must_use]
    pub fn architecture(&self) -> &Architecture {
        &self.arch
    }

    /// Whether idle qubits are parked in the storage zone between stages.
    #[must_use]
    pub fn use_storage(&self) -> bool {
        self.use_storage
    }

    /// The cumulative free-site search counters
    /// `(site_scans, sites_pruned)` over every stage routed through this
    /// state: candidates examined by the planner's free-site queries, and
    /// candidates the spatial index's pruning cutoff skipped. The pass
    /// pipeline surfaces them as the `site_scans` / `sites_pruned` metadata
    /// counters.
    #[must_use]
    pub fn scan_counters(&self) -> (u64, u64) {
        (self.search.stats.scans, self.search.stats.pruned)
    }

    /// Detaches the lookahead attractor scratch so a strategy can fill it
    /// while holding other borrows of the state; pair with
    /// [`RoutingState::restore_lookahead_scratch`].
    pub(crate) fn take_lookahead_scratch(&mut self) -> AttractorBuffers {
        std::mem::take(&mut self.lookahead_scratch)
    }

    /// Returns the attractor scratch taken by
    /// [`RoutingState::take_lookahead_scratch`], keeping its allocations
    /// for the next stage.
    pub(crate) fn restore_lookahead_scratch(&mut self, buffers: AttractorBuffers) {
        self.lookahead_scratch = buffers;
    }

    /// Plans the greedy single-qubit movements that prepare the given stage
    /// under a [`SitePolicy`] and applies them to the internal layout.
    ///
    /// The plan follows the three steps of Sec. 5.2:
    ///
    /// 1. non-interacting qubits currently in the computation zone move to
    ///    the nearest free storage site (with-storage mode only), planned in
    ///    descending order of their `y` coordinate;
    /// 2. interacting qubits are labelled static / mobile / undecided
    ///    according to the four zone cases of Fig. 4;
    /// 3. undecided qubits (and their partners) are assigned the free
    ///    computation-zone site minimizing anchor distance plus
    ///    [`SitePolicy::bias`].
    ///
    /// [`ZeroBias`] scores every site by distance alone and is the greedy
    /// plan; strategy-specific policies steer only step 3.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::NoFreeSite`] if a zone runs out of free sites;
    /// this cannot happen with the paper's default grid dimensions.
    pub fn route_stage_with(
        &mut self,
        stage: &Stage,
        policy: &(impl SitePolicy + ?Sized),
    ) -> Result<StageRouting, CompileError> {
        // Disjoint field borrows: the grid stays borrowed from `arch` for
        // the whole stage while the arena, layout and search state are
        // mutated.
        let RoutingState {
            arch,
            layout,
            use_storage,
            arena,
            search,
            lookahead_scratch: _,
        } = self;
        let grid = arch.grid();
        let interacting = stage.interacting_qubits();

        let mut routing = StageRouting::default();

        // Step 1 (non-storage mode): separate stale pairs. Two qubits left
        // co-located from a previous stage that do not interact now would
        // undergo an unwanted CZ during the next excitation, so one of them
        // is relocated to the nearest free computation-zone site.
        if !*use_storage {
            let stale: Vec<(Qubit, SiteId)> = layout
                .occupied_sites()
                .filter(|(_, occupants)| {
                    occupants.len() >= 2 && occupants.iter().all(|q| !interacting.contains(q))
                })
                .flat_map(|(site, occupants)| {
                    occupants
                        .iter()
                        .skip(1)
                        .map(move |&q| (q, site))
                        .collect::<Vec<_>>()
                })
                .collect();
            for (q, from) in stale {
                arena.remove(grid, from, q);
                let from_pos = grid.position(from);
                let target = SiteFinder::new(arena, layout, grid, search)
                    .nearest(Zone::Compute, from_pos)
                    .ok_or(CompileError::NoFreeSite {
                        qubit: q,
                        zone: Zone::Compute,
                    })?;
                arena.insert(grid, target, q);
                routing.storage_moves.push(SiteMove::new(q, from, target));
            }
        }

        // Step 1: park non-interacting computation-zone qubits in storage.
        // Qubits move vertically down into their own column whenever a free
        // site exists there. Planning in descending order of the y
        // coordinate — qubits farther from the storage zone choose first, as
        // prescribed in Sec. 5.2 — lets the farthest qubit take the
        // shallowest free row, which both shortens the longest move and
        // preserves the relative row order of the parked qubits, so the
        // parking moves typically fit in a single collective move.
        if *use_storage {
            let mut to_park: Vec<(Qubit, SiteId, Point)> = layout
                .iter()
                .filter(|(q, site)| {
                    !interacting.contains(q) && grid.zone_of(*site) == Zone::Compute
                })
                .map(|(q, site)| (q, site, grid.position(site)))
                .collect();
            to_park.sort_by(|a, b| {
                b.2.y
                    .partial_cmp(&a.2.y)
                    .unwrap_or(Ordering::Equal)
                    .then(a.0.cmp(&b.0))
            });
            for (q, from, from_pos) in to_park {
                arena.remove(grid, from, q);
                let (col, _) = grid.col_row(from);
                let same_column = (0..grid.storage_rows())
                    .filter_map(|row| grid.site(Zone::Storage, col, row))
                    .find(|s| arena.planned_len(*s) == 0 && layout.occupancy(*s) == 0);
                let target = same_column
                    .or_else(|| {
                        SiteFinder::new(arena, layout, grid, search)
                            .nearest(Zone::Storage, from_pos)
                    })
                    .ok_or(CompileError::NoFreeSite {
                        qubit: q,
                        zone: Zone::Storage,
                    })?;
                arena.insert(grid, target, q);
                routing.storage_moves.push(SiteMove::new(q, from, target));
            }
        }

        // Qubits that leave for the storage zone during this transition.
        // Their collective moves are always scheduled before the interaction
        // moves (Sec. 6.1 prioritizes move-ins), so a site they vacate can
        // safely host an interaction afterwards — this is the Fig. 4(c)
        // case 1 optimization.
        for m in &routing.storage_moves {
            arena.storage_mover[m.qubit.as_usize()] = true;
        }

        // Step 2: label interacting qubits and decide direct moves.
        // `pending` holds (anchor, mobile) pairs whose interaction site is
        // resolved in step 3.
        let mut pending: Vec<(Qubit, Qubit)> = Vec::new();
        for gate in stage.gates() {
            let a = gate.lo();
            let b = gate.hi();
            let sa = layout.site_of(a).expect("interacting qubit is placed");
            let sb = layout.site_of(b).expect("interacting qubit is placed");
            if sa == sb {
                // Already co-located from the previous stage: both static.
                continue;
            }
            let za = grid.zone_of(sa);
            let zb = grid.zone_of(sb);

            // Choose which qubit anchors the interaction site. A qubit can
            // anchor (stay "static") only if its site hosts no third-party
            // occupant: neither one that stays (which would cluster during
            // the excitation) nor one that departs later in the transition
            // (which would transiently overfill the trap site). Otherwise
            // the gate's location is "undecided" and resolved in step 3.
            let (mobile, anchor, anchor_site, mut anchor_moves) = match (za, zb) {
                (Zone::Storage, Zone::Storage) => (a, b, sb, true),
                (Zone::Storage, Zone::Compute) => (a, b, sb, false),
                (Zone::Compute, Zone::Storage) => (b, a, sa, false),
                (Zone::Compute, Zone::Compute) => {
                    let blocked_a = is_blocked(arena, layout, sa, a, b);
                    let blocked_b = is_blocked(arena, layout, sb, a, b);
                    if !blocked_b {
                        (a, b, sb, false)
                    } else if !blocked_a {
                        (b, a, sa, false)
                    } else {
                        (a, b, sb, true)
                    }
                }
            };

            // The mobile qubit leaves its current site in every case.
            let mobile_site = if mobile == a { sa } else { sb };
            arena.remove(grid, mobile_site, mobile);

            // An anchor whose site hosts another qubit must relocate
            // (it becomes "undecided" in the paper's terminology).
            if !anchor_moves && is_blocked(arena, layout, anchor_site, anchor, mobile) {
                anchor_moves = true;
            }
            // An anchor sitting in storage always has to move out.
            if !anchor_moves && grid.zone_of(anchor_site) == Zone::Storage {
                anchor_moves = true;
            }

            if anchor_moves {
                arena.remove(grid, anchor_site, anchor);
                pending.push((anchor, mobile));
            } else {
                arena.insert(grid, anchor_site, mobile);
                routing
                    .interaction_moves
                    .push(SiteMove::new(mobile, mobile_site, anchor_site));
            }
        }

        // Step 3: resolve undecided qubits to the best free compute site —
        // nearest to the anchor, plus whatever bias the policy adds.
        for (anchor, mobile) in pending {
            let anchor_from = layout.site_of(anchor).expect("interacting qubit is placed");
            let mobile_from = layout.site_of(mobile).expect("interacting qubit is placed");
            let anchor_pos = grid.position(anchor_from);
            let target = SiteFinder::new(arena, layout, grid, search)
                .best(Zone::Compute, anchor_pos, policy.min_bias(), |site, pos| {
                    policy.bias(anchor, mobile, site, pos)
                })
                .ok_or(CompileError::NoFreeSite {
                    qubit: anchor,
                    zone: Zone::Compute,
                })?;
            arena.insert(grid, target, anchor);
            arena.insert(grid, target, mobile);
            routing
                .interaction_moves
                .push(SiteMove::new(anchor, anchor_from, target));
            routing
                .interaction_moves
                .push(SiteMove::new(mobile, mobile_from, target));
        }

        // Apply the transition to the internal layout and retire the
        // per-stage departs-to-storage flags. The layout now matches the
        // arena's planned occupancy exactly — the invariant that lets the
        // arena persist into the next stage without a rebuild.
        for m in routing.all_moves() {
            layout.move_qubit(m.qubit, m.to);
        }
        for m in &routing.storage_moves {
            arena.storage_mover[m.qubit.as_usize()] = false;
        }
        Ok(routing)
    }

    /// Plans the stage under the [`ZeroBias`] policy.
    ///
    /// # Errors
    ///
    /// Same as [`RoutingState::route_stage_with`].
    #[deprecated(
        since = "0.1.0",
        note = "use `route_stage_with(stage, &ZeroBias)` — a `SitePolicy` also \
                carries the admissible pruning bound `SitePolicy::min_bias` \
                the free-site search cuts off against"
    )]
    pub fn route_stage(&mut self, stage: &Stage) -> Result<StageRouting, CompileError> {
        self.route_stage_with(stage, &ZeroBias)
    }

    /// Plans the stage under a closure-based bias.
    ///
    /// The closure must return nonnegative values: the shim wraps it in
    /// [`BiasFn`], whose [`SitePolicy::min_bias`] pruning bound is the
    /// default `0.0` (see the [`SitePolicy`] contract).
    ///
    /// # Errors
    ///
    /// Same as [`RoutingState::route_stage_with`].
    #[deprecated(
        since = "0.1.0",
        note = "use `route_stage_with(stage, &BiasFn::new(...))` for nonnegative \
                biases, or implement `SitePolicy` directly to pair a custom bias \
                with its admissible `min_bias` pruning bound"
    )]
    pub fn route_stage_scored(
        &mut self,
        stage: &Stage,
        bias: &SiteBias<'_>,
    ) -> Result<StageRouting, CompileError> {
        self.route_stage_with(stage, &BiasFn::new(bias))
    }
}

/// Returns `true` if `site` cannot serve as a static interaction site for
/// the excluded pair.
///
/// Two kinds of third-party occupants block a site: qubits planned to
/// remain there after the transition (they would cluster with the pair
/// during the excitation), and qubits still physically present that depart
/// later within the same transition (an early arrival would transiently
/// overfill the trap site). Occupants that leave for the storage zone do
/// *not* block — their collective moves are scheduled ahead of every
/// interaction move (Fig. 4(c) case 1 of the paper).
fn is_blocked(
    arena: &OccupancyArena,
    layout: &Layout,
    site: SiteId,
    exclude_a: Qubit,
    exclude_b: Qubit,
) -> bool {
    let planned_blocker = arena.planned[site.index()].blocks(exclude_a, exclude_b);
    let current_blocker = layout
        .occupants(site)
        .iter()
        .any(|&q| q != exclude_a && q != exclude_b && !arena.storage_mover[q.as_usize()]);
    planned_blocker || current_blocker
}

/// Returns `true` if `(s, site)` precedes the current best under the
/// planner's strict `(score, site index)` total order.
fn beats(s: f64, site: SiteId, best: &Option<(f64, SiteId)>) -> bool {
    match best {
        None => true,
        Some((best_score, best_site)) => match s.partial_cmp(best_score) {
            Some(Ordering::Less) => true,
            Some(Ordering::Greater) => false,
            _ => site < *best_site,
        },
    }
}

/// Free lists at or below this length are scanned linearly: seeding the
/// best-first frontier costs `O(rows · log rows)`, which only pays for
/// itself once the list is meaningfully longer than the frontier. Both
/// paths return the identical site.
const LINEAR_SCAN_THRESHOLD: usize = 16;

/// One free-site query's borrow bundle: the arena (free lists plus spatial
/// index), the current layout (for the vacant-site preference), the grid
/// geometry and the reusable search state.
struct SiteFinder<'a> {
    arena: &'a OccupancyArena,
    layout: &'a Layout,
    grid: &'a ZonedGrid,
    search: &'a mut SearchState,
}

impl<'a> SiteFinder<'a> {
    fn new(
        arena: &'a OccupancyArena,
        layout: &'a Layout,
        grid: &'a ZonedGrid,
        search: &'a mut SearchState,
    ) -> Self {
        SiteFinder {
            arena,
            layout,
            grid,
            search,
        }
    }

    /// Finds the free site of `zone` nearest to `from`.
    fn nearest(&mut self, zone: Zone, from: Point) -> Option<SiteId> {
        self.best(zone, from, 0.0, |_, _| 0.0)
    }

    /// Finds the free site of `zone` minimizing
    /// `distance(site, anchor) + bias(site)` under the planner's
    /// `(score, site index)` total order, preferring sites that are also
    /// vacant in the current layout.
    ///
    /// Dispatches between the linear reference scan (short free lists) and
    /// the index-pruned best-first search; both return the identical site,
    /// which debug builds assert on every pruned query.
    fn best(
        &mut self,
        zone: Zone,
        anchor: Point,
        min_bias: f64,
        bias: impl Fn(SiteId, Point) -> f64,
    ) -> Option<SiteId> {
        let free_len = self.arena.free[zone_index(zone)].len();
        if free_len <= LINEAR_SCAN_THRESHOLD {
            self.search.stats.scans += free_len as u64;
            return self.best_linear(zone, anchor, &bias);
        }
        let chosen = self.best_pruned(zone, anchor, min_bias, &bias, free_len);
        debug_assert_eq!(
            chosen,
            self.best_linear(zone, anchor, &bias),
            "pruned free-site search diverged from the linear reference scan"
        );
        chosen
    }

    /// The reference path: a single fold over the zone's free list. Kept
    /// (and re-run under `debug_assertions` after every pruned query) as
    /// the executable specification the index must match site-for-site.
    ///
    /// A site is free when nothing is planned to occupy it after the
    /// transition — exactly the zone's arena free list. Sites that are also
    /// empty *before* the transition are preferred, which avoids transient
    /// three-atom occupancies while a previous occupant is still waiting
    /// for its own collective move. Ties are broken by site index, keeping
    /// every strategy deterministic regardless of free-list order.
    fn best_linear(
        &self,
        zone: Zone,
        anchor: Point,
        bias: &impl Fn(SiteId, Point) -> f64,
    ) -> Option<SiteId> {
        let mut best_vacant: Option<(f64, SiteId)> = None;
        let mut best_any: Option<(f64, SiteId)> = None;
        for &site in &self.arena.free[zone_index(zone)] {
            let pos = self.grid.position(site);
            let s = pos.distance(anchor) + bias(site, pos);
            if beats(s, site, &best_any) {
                best_any = Some((s, site));
            }
            if self.layout.occupancy(site) == 0 && beats(s, site, &best_vacant) {
                best_vacant = Some((s, site));
            }
        }
        best_vacant.or(best_any).map(|(_, site)| site)
    }

    /// The indexed path: walks free sites in non-decreasing anchor distance
    /// and stops once `distance + min_bias` can no longer beat the best
    /// vacant candidate.
    ///
    /// Why the cutoff is exact: suppose the globally best vacant site `V`
    /// had not been examined when the walk stopped at ring distance `d`
    /// with best examined vacant score `s0`. Then `V` lies at distance
    /// `≥ d`, so its score is `≥ d + min_bias > s0` (the cutoff is strict),
    /// contradicting `V` being best. The cutoff never engages before a
    /// vacant candidate exists, and a vacant candidate always outranks
    /// every merely plan-free site (`best_vacant.or(best_any)`), so sites
    /// skipped after that point cannot affect the result either.
    fn best_pruned(
        &mut self,
        zone: Zone,
        anchor: Point,
        min_bias: f64,
        bias: &impl Fn(SiteId, Point) -> f64,
        free_len: usize,
    ) -> Option<SiteId> {
        let mut ring = FreeRing::new(
            &self.arena.index,
            self.grid,
            zone,
            anchor,
            &mut self.search.scratch,
        );
        let mut best_vacant: Option<(f64, SiteId)> = None;
        let mut best_any: Option<(f64, SiteId)> = None;
        let mut examined: u64 = 0;
        while let Some((site, pos, dist)) = ring.next_free() {
            if let Some((vacant_score, _)) = best_vacant {
                // Strict `>`: an equal score could still win on the
                // site-index tie-break, so equal lower bounds keep going.
                if dist + min_bias > vacant_score {
                    break;
                }
            }
            examined += 1;
            let vacant = self.layout.occupancy(site) == 0;
            if !vacant && best_vacant.is_some() {
                continue;
            }
            let s = dist + bias(site, pos);
            if beats(s, site, &best_any) {
                best_any = Some((s, site));
            }
            if vacant && beats(s, site, &best_vacant) {
                best_vacant = Some((s, site));
            }
        }
        self.search.stats.scans += examined;
        self.search.stats.pruned += free_len as u64 - examined;
        best_vacant.or(best_any).map(|(_, site)| site)
    }
}

/// A verification harness over the free-site search: drives controlled
/// occupancy churn on a private arena/layout pair and exposes both the
/// index-pruned search and the linear reference scan for site-for-site
/// comparison.
///
/// This is the supported seam behind the schedule linter's
/// pruned-vs-linear agreement rule, the free-site property tests and the
/// criterion microbench: all three reach the search through this type
/// without routing whole stages. The searches themselves stay private —
/// the harness is the only stable way to drive them out of pipeline
/// context.
#[derive(Debug, Clone)]
pub struct FreeSiteHarness {
    arch: Architecture,
    layout: Layout,
    arena: OccupancyArena,
    search: SearchState,
}

impl FreeSiteHarness {
    /// Creates the harness over `arch`'s grid with an empty layout for
    /// `num_qubits` qubits: every site starts free.
    #[must_use]
    pub fn new(arch: Architecture, num_qubits: u32) -> Self {
        let layout = Layout::empty(num_qubits);
        let arena = OccupancyArena::new(arch.grid(), &layout);
        FreeSiteHarness {
            arch,
            layout,
            arena,
            search: SearchState::default(),
        }
    }

    /// Creates the harness pre-seeded from an existing layout: every placed
    /// qubit occupies its site in both the layout copy and the arena, the
    /// steady state the planner maintains at stage boundaries. This is how
    /// the schedule linter replays a compiled program's initial layout into
    /// the search.
    #[must_use]
    pub fn from_layout(arch: Architecture, layout: &Layout) -> Self {
        let mut harness = FreeSiteHarness::new(arch, layout.num_qubits());
        for (q, site) in layout.iter() {
            harness.occupy(q, site);
        }
        harness
    }

    /// The grid under the harness.
    #[must_use]
    pub fn grid(&self) -> &ZonedGrid {
        self.arch.grid()
    }

    /// Occupies `site` with `q` in both the layout and the arena plan (the
    /// steady-state agreement the planner maintains at stage boundaries).
    /// Relocates `q` if it was already placed.
    pub fn occupy(&mut self, q: Qubit, site: SiteId) {
        let grid = self.arch.grid();
        if let Some(old) = self.layout.site_of(q) {
            self.arena.remove(grid, old, q);
        }
        self.layout.place(q, site);
        self.arena.insert(grid, site, q);
    }

    /// Removes `q` from both the layout and the arena plan.
    pub fn vacate(&mut self, q: Qubit) {
        if let Some(site) = self.layout.site_of(q) {
            self.arena.remove(self.arch.grid(), site, q);
            self.layout.remove(q);
        }
    }

    /// Plans `q` at `site` without touching the layout — the transient
    /// mid-stage divergence (site plan-occupied but still vacant) the
    /// vacant-site preference is about.
    pub fn plan(&mut self, q: Qubit, site: SiteId) {
        self.arena.insert(self.arch.grid(), site, q);
    }

    /// Reverts a [`FreeSiteHarness::plan`] call.
    pub fn unplan(&mut self, q: Qubit, site: SiteId) {
        self.arena.remove(self.arch.grid(), site, q);
    }

    /// Number of qubits planned at `site`.
    #[must_use]
    pub fn planned_len(&self, site: SiteId) -> usize {
        self.arena.planned_len(site)
    }

    /// Number of free sites in `zone`.
    #[must_use]
    pub fn free_len(&self, zone: Zone) -> usize {
        self.arena.free[zone_index(zone)].len()
    }

    /// The index-pruned best-first search, forced regardless of free-list
    /// length (no linear fallback, no debug cross-check — tests compare
    /// against [`FreeSiteHarness::best_linear`] explicitly).
    pub fn best(
        &mut self,
        zone: Zone,
        anchor: Point,
        min_bias: f64,
        bias: &dyn Fn(SiteId, Point) -> f64,
    ) -> Option<SiteId> {
        let free_len = self.arena.free[zone_index(zone)].len();
        SiteFinder::new(
            &self.arena,
            &self.layout,
            self.arch.grid(),
            &mut self.search,
        )
        .best_pruned(zone, anchor, min_bias, &|s, p| bias(s, p), free_len)
    }

    /// The linear reference scan over the zone's free list.
    #[must_use]
    pub fn best_linear(
        &self,
        zone: Zone,
        anchor: Point,
        bias: &dyn Fn(SiteId, Point) -> f64,
    ) -> Option<SiteId> {
        let mut search = SearchState::default();
        SiteFinder::new(&self.arena, &self.layout, self.arch.grid(), &mut search).best_linear(
            zone,
            anchor,
            &|s, p| bias(s, p),
        )
    }

    /// The harness's cumulative `(site_scans, sites_pruned)` counters.
    #[must_use]
    pub fn counters(&self) -> (u64, u64) {
        (self.search.stats.scans, self.search.stats.pruned)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powermove_circuit::CzGate;
    use powermove_hardware::Architecture;

    fn q(i: u32) -> Qubit {
        Qubit::new(i)
    }

    fn stage(edges: &[(u32, u32)]) -> Stage {
        Stage::new(
            edges
                .iter()
                .map(|&(a, b)| CzGate::new(q(a), q(b)))
                .collect(),
        )
    }

    fn storage_router(n: u32) -> RoutingState {
        let arch = Architecture::for_qubits(n);
        let layout = Layout::row_major(&arch, n, Zone::Storage).unwrap();
        RoutingState::new(arch, layout, true)
    }

    fn compute_router(n: u32) -> RoutingState {
        let arch = Architecture::for_qubits(n);
        let layout = Layout::row_major(&arch, n, Zone::Compute).unwrap();
        RoutingState::new(arch, layout, false)
    }

    /// After routing a stage, every gate pair must share a computation-zone
    /// site and no site may hold unrelated qubit groups.
    fn assert_stage_ready(router: &RoutingState, stage: &Stage) {
        let grid = router.architecture().grid();
        for gate in stage.gates() {
            let sa = router.layout().site_of(gate.lo()).unwrap();
            let sb = router.layout().site_of(gate.hi()).unwrap();
            assert_eq!(sa, sb, "pair {gate} not co-located");
            assert_eq!(grid.zone_of(sa), Zone::Compute);
        }
        for (site, occupants) in router.layout().occupied_sites() {
            assert!(occupants.len() <= 2, "site {site} overcrowded");
            if occupants.len() == 2 && grid.zone_of(site) == Zone::Compute {
                let pair_ok = stage.gates().iter().any(|g| {
                    (g.lo() == occupants[0] && g.hi() == occupants[1])
                        || (g.lo() == occupants[1] && g.hi() == occupants[0])
                });
                assert!(pair_ok, "unrelated qubits clustered at {site}");
            }
        }
    }

    /// The arena's planned occupancy must equal the layout at every stage
    /// boundary — the invariant that lets the arena persist across stages.
    fn assert_arena_matches_layout(router: &RoutingState) {
        let grid = router.architecture().grid();
        for site in grid.all_sites() {
            let mut planned: Vec<Qubit> = router.arena.planned[site.index()]
                .0
                .iter()
                .flatten()
                .copied()
                .collect();
            planned.sort();
            let mut current: Vec<Qubit> = router.layout().occupants(site).to_vec();
            current.sort();
            assert_eq!(planned, current, "arena drifted from layout at {site}");
            let in_free_list = router.arena.free_pos[site.index()] != NOT_FREE;
            assert_eq!(
                in_free_list,
                planned.is_empty(),
                "free list stale at {site}"
            );
        }
    }

    #[test]
    fn storage_pairs_move_to_compute() {
        let mut router = storage_router(6);
        let st = stage(&[(0, 1), (2, 3)]);
        let routing = router.route_stage_with(&st, &ZeroBias).unwrap();
        assert_stage_ready(&router, &st);
        // Both pairs started in storage: four interaction moves, no storage
        // moves (non-interacting qubits were already in storage).
        assert!(routing.storage_moves.is_empty());
        assert_eq!(routing.interaction_moves.len(), 4);
    }

    #[test]
    fn non_interacting_qubits_return_to_storage() {
        let mut router = storage_router(6);
        let first = stage(&[(0, 1), (2, 3)]);
        router.route_stage_with(&first, &ZeroBias).unwrap();
        // Next stage uses only qubits 4 and 5: qubits 0-3 must be parked.
        let second = stage(&[(4, 5)]);
        let routing = router.route_stage_with(&second, &ZeroBias).unwrap();
        assert_stage_ready(&router, &second);
        assert_eq!(routing.storage_moves.len(), 4);
        let grid = router.architecture().grid();
        for i in 0..4 {
            let site = router.layout().site_of(q(i)).unwrap();
            assert_eq!(grid.zone_of(site), Zone::Storage);
        }
    }

    #[test]
    fn consecutive_stages_reuse_layout_without_reverting() {
        let mut router = storage_router(6);
        let first = stage(&[(0, 1), (2, 3), (4, 5)]);
        router.route_stage_with(&first, &ZeroBias).unwrap();
        // Second stage re-pairs overlapping qubits (the Fig. 3 example).
        let second = stage(&[(1, 2), (3, 4)]);
        let routing = router.route_stage_with(&second, &ZeroBias).unwrap();
        assert_stage_ready(&router, &second);
        // Qubits 0 and 5 are non-interacting and go to storage; the other
        // four re-pair directly without reverting to the initial layout.
        assert_eq!(routing.storage_moves.len(), 2);
        assert!(routing.interaction_moves.len() <= 6);
    }

    #[test]
    fn already_colocated_pair_does_not_move() {
        let mut router = storage_router(4);
        let st = stage(&[(0, 1)]);
        router.route_stage_with(&st, &ZeroBias).unwrap();
        let moves_first = router.layout().site_of(q(0)).unwrap();
        // Re-running the same pair requires no interaction moves.
        let routing = router.route_stage_with(&st, &ZeroBias).unwrap();
        assert!(routing.interaction_moves.is_empty());
        assert_eq!(router.layout().site_of(q(0)).unwrap(), moves_first);
    }

    #[test]
    fn non_storage_mode_keeps_everything_in_compute() {
        let mut router = compute_router(9);
        let st = stage(&[(0, 1), (2, 3), (4, 5)]);
        let routing = router.route_stage_with(&st, &ZeroBias).unwrap();
        assert_stage_ready(&router, &st);
        assert!(routing.storage_moves.is_empty());
        let grid = router.architecture().grid();
        for (_, site) in router.layout().iter() {
            assert_eq!(grid.zone_of(site), Zone::Compute);
        }
    }

    #[test]
    fn non_storage_mode_resolves_blocked_anchors() {
        let mut router = compute_router(9);
        // Pair the row 0 neighbours first.
        router
            .route_stage_with(&stage(&[(0, 1), (2, 3)]), &ZeroBias)
            .unwrap();
        // Now pair across the previous pairs, forcing relocations.
        let st = stage(&[(1, 2), (0, 3)]);
        let routing = router.route_stage_with(&st, &ZeroBias).unwrap();
        assert_stage_ready(&router, &st);
        assert!(!routing.is_empty());
    }

    #[test]
    fn chain_of_stages_stays_consistent() {
        let mut router = storage_router(10);
        let stages = [
            stage(&[(0, 1), (2, 3), (4, 5), (6, 7), (8, 9)]),
            stage(&[(1, 2), (3, 4), (5, 6), (7, 8)]),
            stage(&[(0, 9), (2, 5)]),
            stage(&[(0, 1), (2, 3), (4, 5), (6, 7), (8, 9)]),
        ];
        for st in &stages {
            router.route_stage_with(st, &ZeroBias).unwrap();
            assert_stage_ready(&router, st);
            assert_arena_matches_layout(&router);
        }
    }

    #[test]
    fn arena_tracks_layout_in_non_storage_mode() {
        let mut router = compute_router(9);
        let stages = [
            stage(&[(0, 1), (2, 3), (4, 5)]),
            stage(&[(1, 2), (0, 3)]),
            stage(&[(4, 8), (5, 6)]),
        ];
        for st in &stages {
            router.route_stage_with(st, &ZeroBias).unwrap();
            assert_arena_matches_layout(&router);
        }
    }

    #[test]
    fn routing_len_and_all_moves_agree() {
        let mut router = storage_router(6);
        let st = stage(&[(0, 1)]);
        let routing = router.route_stage_with(&st, &ZeroBias).unwrap();
        assert_eq!(routing.all_moves().len(), routing.len());
        assert!(!routing.is_empty());
    }

    #[test]
    fn zero_bias_policy_matches_a_zero_closure() {
        let stages = [
            stage(&[(0, 1), (2, 3), (4, 5), (6, 7)]),
            stage(&[(1, 2), (3, 4), (5, 6)]),
            stage(&[(0, 7), (2, 5)]),
        ];
        let mut greedy = storage_router(8);
        let mut scored = storage_router(8);
        for st in &stages {
            let a = greedy.route_stage_with(st, &ZeroBias).unwrap();
            let b = scored
                .route_stage_with(st, &BiasFn::new(|_, _, _| 0.0))
                .unwrap();
            assert_eq!(a, b);
        }
        assert_eq!(greedy.layout(), scored.layout());
    }

    #[test]
    fn bias_can_steer_an_undecided_pair() {
        // Two storage-resident pairs are undecided; a huge penalty on the
        // default (nearest) site pushes the pair elsewhere.
        let mut default_router = storage_router(4);
        let st = stage(&[(0, 1)]);
        let default_plan = default_router.route_stage_with(&st, &ZeroBias).unwrap();
        let default_site = default_plan.interaction_moves[0].to;

        let mut biased_router = storage_router(4);
        let biased_plan = biased_router
            .route_stage_with(
                &st,
                &BiasFn::new(|_, _, site| {
                    if site == default_site {
                        1.0 // one meter: dwarfs any on-grid distance
                    } else {
                        0.0
                    }
                }),
            )
            .unwrap();
        assert_ne!(biased_plan.interaction_moves[0].to, default_site);
    }

    #[test]
    fn scan_counters_accumulate_and_pruning_engages_on_large_grids() {
        // 100 qubits: 10x10 compute, 10x20 storage — free lists far above
        // the linear threshold, so step-3 queries take the pruned path
        // (every such query also re-runs the linear reference under
        // debug_assertions and asserts site-for-site equality).
        let mut router = storage_router(100);
        let st = stage(&[(0, 1), (2, 3), (4, 5), (6, 7), (8, 9), (10, 11)]);
        router.route_stage_with(&st, &ZeroBias).unwrap();
        let (scans, pruned) = router.scan_counters();
        assert!(scans > 0, "no free-site candidates examined");
        assert!(pruned > 0, "spatial index never pruned on a 300-site grid");
        // Counters are monotone across stages. Both qubits of the pair are
        // still storage-resident, so the pair is undecided and step 3 must
        // run a free-site query.
        let st2 = stage(&[(20, 21)]);
        router.route_stage_with(&st2, &ZeroBias).unwrap();
        let (scans2, pruned2) = router.scan_counters();
        assert!(scans2 > scans);
        assert!(pruned2 >= pruned);
    }

    #[test]
    fn harness_pruned_search_matches_linear_and_prefers_vacant_sites() {
        let arch = Architecture::for_qubits(64);
        let mut h = FreeSiteHarness::new(arch, 64);
        let grid = h.grid().clone();
        let zero = |_: SiteId, _: Point| 0.0;

        // Occupy a handful of sites; plan (without placing) at the site
        // nearest the anchor so the vacant preference must skip it.
        for (i, site) in grid.sites_in(Zone::Compute).take(6).enumerate() {
            h.occupy(q(i as u32), site);
        }
        let anchor_site = grid.site(Zone::Compute, 3, 3).unwrap();
        let anchor = grid.position(anchor_site);
        h.plan(q(60), anchor_site);

        let pruned = h.best(Zone::Compute, anchor, 0.0, &zero);
        let linear = h.best_linear(Zone::Compute, anchor, &zero);
        assert_eq!(pruned, linear);
        // The planned-but-vacant anchor site is no longer free, and the
        // result must be vacant in the layout.
        let chosen = pruned.unwrap();
        assert_ne!(chosen, anchor_site);
        let (scans, pruned_count) = h.counters();
        assert!(scans > 0);
        assert!(pruned_count > 0, "cutoff never engaged near a vacant site");

        h.unplan(q(60), anchor_site);
        assert_eq!(
            h.best(Zone::Compute, anchor, 0.0, &zero),
            Some(anchor_site),
            "freed anchor site should win at distance zero"
        );
        h.vacate(q(0));
        assert_eq!(h.free_len(Zone::Compute), grid.num_compute_sites() - 5);
        assert_eq!(h.planned_len(anchor_site), 0);
    }

    #[test]
    fn policy_works_through_a_trait_object() {
        // `route_stage_with` accepts unsized policies, so `&dyn SitePolicy`
        // plugs in directly.
        let mut via_dyn = storage_router(6);
        let mut via_zero = storage_router(6);
        let st = stage(&[(0, 1), (2, 3)]);
        let policy: &dyn SitePolicy = &ZeroBias;
        let a = via_dyn.route_stage_with(&st, policy).unwrap();
        let b = via_zero.route_stage_with(&st, &ZeroBias).unwrap();
        assert_eq!(a, b);
    }
}
