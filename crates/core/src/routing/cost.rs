//! The routing cost model: predicting per-strategy movement wall clock from
//! cheap instance features.
//!
//! Auto-tuning in cost-model mode ([`RoutingStrategyKind::Auto`] with
//! `portfolio: false`) must pick a strategy *without* compiling the
//! candidates, so the model works from features that are O(program size) to
//! extract from a staged program: qubit count, CZ-block count and density,
//! the stage count, and the resolved AOD-array count. The prediction is an
//! analytic estimate of the schedule's movement wall clock — parallel move
//! windows × (two trap transfers + a typical translation) — with
//! per-strategy correction factors mirroring what each strategy actually
//! changes:
//!
//! * the greedy router is the baseline;
//! * the lookahead router shortens translations on deep CZ blocks (it parks
//!   re-pairing qubits between their future partners) and changes nothing on
//!   single-stage blocks;
//! * the multi-AOD scheduler balances translation durations across windows,
//!   compressing the translation tail by roughly `1/√k` at `k ≥ 2` AODs and
//!   changing nothing at one AOD.
//!
//! The model is a heuristic: its job is to *rank* the portfolio cheaply, not
//! to forecast microseconds. Exact selection is portfolio mode, which
//! compiles every candidate and measures instead of predicting.
//!
//! [`RoutingStrategyKind::Auto`]: crate::RoutingStrategyKind::Auto

use crate::config::RoutingStrategyKind;
use crate::pipeline::{StagedProgram, StagedSegment};
use powermove_hardware::{move_duration, Architecture};

/// Average number of single-qubit moves the grouper packs into one
/// collective move, used to estimate window counts.
const MOVES_PER_GROUP: f64 = 4.0;

/// Translation-tail compression the balanced multi-AOD windows achieve per
/// additional AOD array: the factor is `1 / aods^BALANCE_EXPONENT`.
const BALANCE_EXPONENT: f64 = 0.5;

/// Relative translation shortening credited to the lookahead router on CZ
/// blocks deep enough for its window to matter.
const LOOKAHEAD_GAIN: f64 = 0.03;

/// Cheap per-instance features the [`CostModel`] predicts from.
///
/// Extracted from a staged program in one linear scan
/// ([`InstanceFeatures::of`]); every field is deterministic, so model-mode
/// auto-tuning stays byte-identical run to run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InstanceFeatures {
    /// Circuit width in qubits.
    pub num_qubits: u32,
    /// Number of commuting CZ blocks.
    pub cz_blocks: usize,
    /// Total number of CZ gates.
    pub cz_gates: usize,
    /// CZ density: gates per qubit, the knob that separates shallow from
    /// movement-heavy workloads.
    pub cz_density: f64,
    /// Rydberg stage count of the staged program (exact after
    /// [`StagePass`](crate::StagePass); an estimate of the schedule shape).
    pub stages: usize,
    /// Resolved AOD-array count of the target architecture.
    pub num_aods: usize,
    /// Duration of one SLM↔AOD trap transfer, in seconds.
    pub transfer_duration: f64,
    /// Typical single translation duration, in seconds: one inter-zone hop
    /// plus a grid diagonal scaled by the qubit count.
    pub typical_translation: f64,
}

impl InstanceFeatures {
    /// Extracts the features of a staged program targeting `arch`.
    #[must_use]
    pub fn of(staged: &StagedProgram, arch: &Architecture) -> Self {
        let mut cz_blocks = 0;
        let mut cz_gates = 0;
        for segment in staged.segments() {
            if let StagedSegment::Stages(stages) = segment {
                cz_blocks += 1;
                cz_gates += stages.iter().map(crate::Stage::len).sum::<usize>();
            }
        }
        let num_qubits = staged.num_qubits();
        let params = arch.params();
        let typical_distance = params.zone_gap + params.site_spacing * f64::from(num_qubits).sqrt();
        InstanceFeatures {
            num_qubits,
            cz_blocks,
            cz_gates,
            cz_density: if num_qubits == 0 {
                0.0
            } else {
                cz_gates as f64 / f64::from(num_qubits)
            },
            stages: staged.num_stages(),
            num_aods: arch.num_aods(),
            transfer_duration: params.transfer_duration,
            typical_translation: move_duration(typical_distance, params.max_acceleration),
        }
    }

    /// Average stage depth of a CZ block — how far a lookahead window can
    /// usefully see.
    #[must_use]
    pub fn stages_per_block(&self) -> f64 {
        if self.cz_blocks == 0 {
            0.0
        } else {
            self.stages as f64 / self.cz_blocks as f64
        }
    }
}

/// Predicts each routing strategy's movement wall clock from
/// [`InstanceFeatures`], so model-mode auto-tuning can pick a strategy with
/// zero extra compiles.
///
/// The model is deliberately simple (see the module docs); portfolio mode
/// exists precisely because a model can be wrong on an unusual instance.
///
/// # Example
///
/// At two or more AOD arrays the balanced multi-AOD windows are predicted —
/// and measured, on the gated fig7 shard — to move faster than the greedy
/// chunking:
///
/// ```
/// use powermove::routing::cost::{CostModel, InstanceFeatures};
/// use powermove::RoutingStrategyKind;
///
/// let features = InstanceFeatures {
///     num_qubits: 40,
///     cz_blocks: 2,
///     cz_gates: 60,
///     cz_density: 1.5,
///     stages: 8,
///     num_aods: 3,
///     transfer_duration: 15e-6,
///     typical_translation: 200e-6,
/// };
/// let model = CostModel::new();
/// assert!(
///     model.predict(RoutingStrategyKind::MultiAod, &features)
///         < model.predict(RoutingStrategyKind::Greedy, &features)
/// );
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CostModel;

impl CostModel {
    /// Creates the default model.
    #[must_use]
    pub fn new() -> Self {
        CostModel
    }

    /// Predicted movement wall clock, in seconds, of compiling the instance
    /// described by `features` under the given strategy kind.
    ///
    /// [`RoutingStrategyKind::Auto`] is not itself a candidate; asking for
    /// its cost returns the best prediction over the concrete candidates
    /// (what a perfect selector would achieve).
    #[must_use]
    pub fn predict(&self, kind: RoutingStrategyKind, features: &InstanceFeatures) -> f64 {
        let stages = features.stages as f64;
        if stages == 0.0 {
            return 0.0;
        }
        // Interaction moves dominate: roughly two per CZ gate, plus the
        // parking traffic proportional to the idle fraction per stage.
        let moves_per_stage =
            2.0 * features.cz_gates as f64 / stages + 0.5 * f64::from(features.num_qubits);
        let groups_per_stage = (moves_per_stage / MOVES_PER_GROUP).max(1.0);
        let windows_per_stage = (groups_per_stage / features.num_aods as f64).ceil();
        let window = |translation: f64| 2.0 * features.transfer_duration + translation;
        let baseline = stages * windows_per_stage * window(features.typical_translation);
        match kind {
            RoutingStrategyKind::Greedy => baseline,
            RoutingStrategyKind::Lookahead => {
                // The window only helps when blocks are deeper than one
                // stage and qubits actually re-pair (density above one edge
                // per qubit).
                let depth_gain = (features.stages_per_block() - 1.0).clamp(0.0, 1.0);
                let density_gain = (features.cz_density - 1.0).clamp(0.0, 1.0);
                let translation = features.typical_translation
                    * (1.0 - LOOKAHEAD_GAIN * depth_gain * density_gain);
                stages * windows_per_stage * window(translation)
            }
            RoutingStrategyKind::MultiAod => {
                let balance = 1.0 / (features.num_aods as f64).powf(BALANCE_EXPONENT);
                stages * windows_per_stage * window(features.typical_translation * balance)
            }
            RoutingStrategyKind::Auto { .. } => [
                RoutingStrategyKind::Greedy,
                RoutingStrategyKind::Lookahead,
                RoutingStrategyKind::MultiAod,
            ]
            .into_iter()
            .map(|k| self.predict(k, features))
            .fold(f64::INFINITY, f64::min),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{StagePass, SynthesisPass};
    use powermove_circuit::{Circuit, Qubit};
    use powermove_exec::{Parallelism, ThreadPool};

    fn features(n: u32, aods: usize) -> InstanceFeatures {
        let mut circuit = Circuit::new(n);
        for i in 0..n {
            circuit.cz(Qubit::new(i), Qubit::new((i + 1) % n)).unwrap();
        }
        for i in 0..n / 2 {
            circuit.cz(Qubit::new(i), Qubit::new(i + n / 2)).unwrap();
        }
        let arch = Architecture::for_qubits(n).with_num_aods(aods);
        let mut ctx = crate::CompileContext::new();
        let blocks = SynthesisPass.run(&circuit, &mut ctx);
        let staged =
            StagePass::new(0.5).run(&blocks, &ThreadPool::new(Parallelism::fixed(1)), &mut ctx);
        InstanceFeatures::of(&staged, &arch)
    }

    #[test]
    fn features_capture_the_staged_shape() {
        let f = features(12, 3);
        assert_eq!(f.num_qubits, 12);
        assert_eq!(f.cz_blocks, 1);
        assert_eq!(f.cz_gates, 18);
        assert!((f.cz_density - 1.5).abs() < 1e-12);
        assert!(f.stages >= 3);
        assert_eq!(f.num_aods, 3);
        assert!(f.transfer_duration > 0.0);
        assert!(f.typical_translation > 0.0);
        assert!(f.stages_per_block() >= 3.0);
    }

    #[test]
    fn predictions_are_finite_and_positive_for_nonempty_instances() {
        let f = features(10, 2);
        for kind in [
            RoutingStrategyKind::Greedy,
            RoutingStrategyKind::Lookahead,
            RoutingStrategyKind::MultiAod,
            RoutingStrategyKind::Auto { portfolio: false },
        ] {
            let p = CostModel::new().predict(kind, &f);
            assert!(p.is_finite() && p > 0.0, "{kind:?}: {p}");
        }
    }

    #[test]
    fn multi_aod_wins_at_two_plus_aods_and_ties_greedy_at_one() {
        let model = CostModel::new();
        for aods in [2, 3, 4] {
            let f = features(16, aods);
            assert!(
                model.predict(RoutingStrategyKind::MultiAod, &f)
                    < model.predict(RoutingStrategyKind::Greedy, &f),
                "{aods} aods"
            );
        }
        let single = features(16, 1);
        assert_eq!(
            model.predict(RoutingStrategyKind::MultiAod, &single),
            model.predict(RoutingStrategyKind::Greedy, &single)
        );
    }

    #[test]
    fn lookahead_never_predicts_slower_than_greedy() {
        let model = CostModel::new();
        for n in [8, 16, 40] {
            let f = features(n, 1);
            assert!(
                model.predict(RoutingStrategyKind::Lookahead, &f)
                    <= model.predict(RoutingStrategyKind::Greedy, &f)
            );
        }
    }

    #[test]
    fn auto_kind_predicts_the_portfolio_minimum() {
        let model = CostModel::new();
        let f = features(16, 3);
        let best = [
            RoutingStrategyKind::Greedy,
            RoutingStrategyKind::Lookahead,
            RoutingStrategyKind::MultiAod,
        ]
        .into_iter()
        .map(|k| model.predict(k, &f))
        .fold(f64::INFINITY, f64::min);
        assert_eq!(
            model.predict(RoutingStrategyKind::Auto { portfolio: true }, &f),
            best
        );
    }

    #[test]
    fn empty_programs_predict_zero_movement() {
        let arch = Architecture::for_qubits(3);
        let mut ctx = crate::CompileContext::new();
        let blocks = SynthesisPass.run(&Circuit::new(3), &mut ctx);
        let staged =
            StagePass::new(0.5).run(&blocks, &ThreadPool::new(Parallelism::fixed(1)), &mut ctx);
        let f = InstanceFeatures::of(&staged, &arch);
        assert_eq!(f.stages, 0);
        assert_eq!(f.stages_per_block(), 0.0);
        assert_eq!(
            CostModel::new().predict(RoutingStrategyKind::Greedy, &f),
            0.0
        );
    }

    #[test]
    fn cost_grows_with_stage_count() {
        let model = CostModel::new();
        let shallow = features(8, 1);
        let mut deep = shallow;
        deep.stages = shallow.stages * 4;
        assert!(
            model.predict(RoutingStrategyKind::Greedy, &deep)
                > model.predict(RoutingStrategyKind::Greedy, &shallow)
        );
    }
}
