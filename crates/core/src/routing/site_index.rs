//! The spatial free-site index: per-zone, row-bucketed bitsets over the
//! planned-free sites, plus the best-first walk that feeds the pruned
//! free-site search in `state.rs`.
//!
//! Every undecided pair of a stage asks the same question — "which free
//! site of this zone minimizes distance-to-anchor plus policy bias?" — and
//! the arena's free list answers it by scanning all `m` free sites, so a
//! stage with `k` undecided pairs costs `O(k·m)` score evaluations. The
//! index instead walks *free* sites in non-decreasing distance from the
//! anchor (the bitset analogue of `ZonedGrid::ring_sites`) so the caller
//! can stop as soon as the ring distance plus the policy's admissible lower
//! bound (`SitePolicy::min_bias`) can no longer beat its best candidate.
//!
//! The index mirrors the arena free lists exactly: `OccupancyArena` calls
//! [`SiteIndex::set_free`] / [`SiteIndex::clear_free`] on the same empty /
//! non-empty transitions that push and swap-remove free-list entries, so
//! membership is O(1) to maintain and never rebuilt. Storage is one bit
//! per site, bucketed by grid row; finding the nearest free column within
//! a row is a masked word scan (`trailing_zeros` / `leading_zeros`).

use powermove_hardware::{Point, SiteId, Zone, ZonedGrid};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Metadata counter name: free-site candidates examined (scored or
/// vacancy-checked) by the planner's free-site queries.
pub const SITE_SCANS: &str = "site_scans";

/// Metadata counter name: free-site candidates the spatial index skipped —
/// sites a linear scan would have scored but the ring cutoff proved
/// irrelevant.
pub const SITES_PRUNED: &str = "sites_pruned";

/// Running totals behind the [`SITE_SCANS`] / [`SITES_PRUNED`] counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct ScanStats {
    /// Free-site candidates examined across all queries.
    pub(crate) scans: u64,
    /// Free-site candidates skipped by the pruning cutoff.
    pub(crate) pruned: u64,
}

/// One zone's free-site bitset, bucketed by grid row.
#[derive(Debug, Clone, Default)]
struct ZoneBits {
    cols: u32,
    rows: u32,
    words_per_row: usize,
    bits: Vec<u64>,
}

/// Mask selecting bits `0..=bit` of a word.
fn mask_up_to(bit: u32) -> u64 {
    if bit >= 63 {
        u64::MAX
    } else {
        (1u64 << (bit + 1)) - 1
    }
}

/// Mask selecting bits `bit..=63` of a word.
fn mask_from(bit: u32) -> u64 {
    u64::MAX << bit
}

impl ZoneBits {
    fn new(cols: u32, rows: u32) -> Self {
        let words_per_row = (cols as usize).div_ceil(64);
        ZoneBits {
            cols,
            rows,
            words_per_row,
            bits: vec![0; words_per_row * rows as usize],
        }
    }

    fn word_bit(&self, local: usize) -> (usize, u64) {
        let (row, col) = (local / self.cols as usize, local % self.cols as usize);
        (row * self.words_per_row + col / 64, 1u64 << (col % 64))
    }

    fn set(&mut self, local: usize) {
        let (word, bit) = self.word_bit(local);
        self.bits[word] |= bit;
    }

    fn clear(&mut self, local: usize) {
        let (word, bit) = self.word_bit(local);
        self.bits[word] &= !bit;
    }

    /// The free column nearest to and at most `col` in `row`, if any.
    fn free_at_or_left(&self, row: u32, col: u32) -> Option<u32> {
        let base = row as usize * self.words_per_row;
        let mut w = col as usize / 64;
        let mut word = self.bits[base + w] & mask_up_to(col % 64);
        loop {
            if word != 0 {
                return Some((w * 64) as u32 + 63 - word.leading_zeros());
            }
            if w == 0 {
                return None;
            }
            w -= 1;
            word = self.bits[base + w];
        }
    }

    /// The free column nearest to and at least `col` in `row`, if any.
    fn free_at_or_right(&self, row: u32, col: u32) -> Option<u32> {
        let base = row as usize * self.words_per_row;
        let mut w = col as usize / 64;
        let mut word = self.bits[base + w] & mask_from(col % 64);
        loop {
            if word != 0 {
                return Some((w * 64) as u32 + word.trailing_zeros());
            }
            w += 1;
            if w >= self.words_per_row {
                return None;
            }
            word = self.bits[base + w];
        }
    }
}

/// The per-zone free-site bitsets the arena maintains alongside its free
/// lists. Membership transitions are O(1); [`FreeRing`] walks members in
/// non-decreasing distance from an anchor.
#[derive(Debug, Clone, Default)]
pub(crate) struct SiteIndex {
    /// `[compute, storage]`, matching the arena's `zone_index` slots.
    zones: [ZoneBits; 2],
    compute_sites: usize,
}

fn zone_slot(zone: Zone) -> usize {
    match zone {
        Zone::Compute => 0,
        Zone::Storage => 1,
    }
}

impl SiteIndex {
    pub(crate) fn new(grid: &ZonedGrid) -> Self {
        SiteIndex {
            zones: [
                ZoneBits::new(grid.cols(), grid.rows_in(Zone::Compute)),
                ZoneBits::new(grid.cols(), grid.rows_in(Zone::Storage)),
            ],
            compute_sites: grid.num_compute_sites(),
        }
    }

    fn local(&self, zone: Zone, site: SiteId) -> usize {
        match zone {
            Zone::Compute => site.index(),
            Zone::Storage => site.index() - self.compute_sites,
        }
    }

    /// Marks `site` free; paired with the arena's free-list push.
    pub(crate) fn set_free(&mut self, zone: Zone, site: SiteId) {
        let local = self.local(zone, site);
        self.zones[zone_slot(zone)].set(local);
    }

    /// Marks `site` occupied; paired with the arena's free-list
    /// swap-remove.
    pub(crate) fn clear_free(&mut self, zone: Zone, site: SiteId) {
        let local = self.local(zone, site);
        self.zones[zone_slot(zone)].clear(local);
    }
}

/// Reusable allocation for the best-first free-site walk: the frontier heap
/// of per-row arm heads. Lives in the routing state so repeated queries
/// allocate nothing.
#[derive(Debug, Clone, Default)]
pub(crate) struct SearchScratch {
    heap: BinaryHeap<Head>,
}

/// Which direction an arm extends from its row's seed column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Arm {
    Left,
    Right,
}

/// One arm head in the free-site frontier.
#[derive(Debug, Clone, Copy)]
struct Head {
    dist: f64,
    site: usize,
    pos: Point,
    row: u32,
    col: u32,
    arm: Arm,
}

impl PartialEq for Head {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Head {}

impl PartialOrd for Head {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Head {
    // Reversed: `BinaryHeap` is a max-heap and the walk pops the nearest
    // head first, ties toward the smaller site index. Distances are never
    // NaN, so `total_cmp` agrees with the planner's `partial_cmp` order.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .dist
            .total_cmp(&self.dist)
            .then_with(|| other.site.cmp(&self.site))
    }
}

/// A best-first walk over one zone's *free* sites in non-decreasing
/// distance from an anchor — `ZonedGrid::ring_sites` restricted to the
/// index's free bits, skipping occupied runs in O(words) instead of
/// visiting every site.
pub(crate) struct FreeRing<'a> {
    bits: &'a ZoneBits,
    grid: &'a ZonedGrid,
    zone: Zone,
    heap: &'a mut BinaryHeap<Head>,
    anchor: Point,
}

impl<'a> FreeRing<'a> {
    pub(crate) fn new(
        index: &'a SiteIndex,
        grid: &'a ZonedGrid,
        zone: Zone,
        anchor: Point,
        scratch: &'a mut SearchScratch,
    ) -> Self {
        scratch.heap.clear();
        let bits = &index.zones[zone_slot(zone)];
        let mut ring = FreeRing {
            bits,
            grid,
            zone,
            heap: &mut scratch.heap,
            anchor,
        };
        let seed = grid.nearest_col(anchor.x);
        for row in 0..ring.bits.rows {
            if let Some(col) = ring.bits.free_at_or_left(row, seed) {
                ring.push(row, col, Arm::Left);
            }
            if seed + 1 < ring.bits.cols {
                if let Some(col) = ring.bits.free_at_or_right(row, seed + 1) {
                    ring.push(row, col, Arm::Right);
                }
            }
        }
        ring
    }

    fn push(&mut self, row: u32, col: u32, arm: Arm) {
        let site = self
            .grid
            .site(self.zone, col, row)
            .expect("indexed site is on the grid");
        let pos = self.grid.position(site);
        self.heap.push(Head {
            dist: pos.distance(self.anchor),
            site: site.index(),
            pos,
            row,
            col,
            arm,
        });
    }

    /// The next free site, with its position and anchor distance. Distances
    /// are non-decreasing across calls.
    pub(crate) fn next_free(&mut self) -> Option<(SiteId, Point, f64)> {
        let head = self.heap.pop()?;
        match head.arm {
            Arm::Left => {
                if head.col > 0 {
                    if let Some(col) = self.bits.free_at_or_left(head.row, head.col - 1) {
                        self.push(head.row, col, Arm::Left);
                    }
                }
            }
            Arm::Right => {
                if head.col + 1 < self.bits.cols {
                    if let Some(col) = self.bits.free_at_or_right(head.row, head.col + 1) {
                        self.push(head.row, col, Arm::Right);
                    }
                }
            }
        }
        Some((SiteId::new(head.site), head.pos, head.dist))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powermove_hardware::ZonedGrid;

    /// Deterministic xorshift64* — no external PRNG dependency in unit
    /// tests.
    fn next_rand(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Builds an index with a pseudo-random subset of the zone free, and
    /// returns the free set.
    fn random_index(grid: &ZonedGrid, zone: Zone, seed: u64) -> (SiteIndex, Vec<SiteId>) {
        let mut index = SiteIndex::new(grid);
        let mut rng = seed | 1;
        let mut free = Vec::new();
        for site in grid.sites_in(zone) {
            if next_rand(&mut rng) % 3 != 0 {
                index.set_free(zone, site);
                free.push(site);
            }
        }
        (index, free)
    }

    #[test]
    fn free_ring_equals_ring_sites_filtered_to_free() {
        for n in [1, 4, 9, 40, 130] {
            let grid = ZonedGrid::for_qubits(n);
            for zone in [Zone::Compute, Zone::Storage] {
                for seed in 1..6u64 {
                    let (index, free) = random_index(&grid, zone, seed ^ u64::from(n));
                    let anchors = [
                        Point::new(0.0, 0.0),
                        Point::new(22e-6, -35e-6),
                        Point::new(1e-3, 1e-3),
                        grid.position(
                            grid.site(zone, grid.cols() - 1, 0)
                                .unwrap_or_else(|| grid.site(Zone::Compute, 0, 0).unwrap()),
                        ),
                    ];
                    for anchor in anchors {
                        let expected: Vec<(SiteId, f64)> = grid
                            .ring_sites(zone, anchor)
                            .filter(|(s, _, _)| free.contains(s))
                            .map(|(s, _, d)| (s, d))
                            .collect();
                        let mut scratch = SearchScratch::default();
                        let mut ring = FreeRing::new(&index, &grid, zone, anchor, &mut scratch);
                        let mut got = Vec::new();
                        while let Some((s, pos, d)) = ring.next_free() {
                            assert_eq!(pos, grid.position(s));
                            got.push((s, d));
                        }
                        assert_eq!(got, expected, "n={n} zone={zone} seed={seed}");
                    }
                }
            }
        }
    }

    #[test]
    fn set_and_clear_round_trip() {
        let grid = ZonedGrid::for_qubits(70); // 9 cols: exercises col > word boundary? no; still fine
        let zone = Zone::Storage;
        let mut index = SiteIndex::new(&grid);
        let site = grid.site(zone, 4, 7).unwrap();
        index.set_free(zone, site);
        let mut scratch = SearchScratch::default();
        let anchor = grid.position(site);
        let found = FreeRing::new(&index, &grid, zone, anchor, &mut scratch).next_free();
        assert_eq!(found.map(|(s, _, _)| s), Some(site));
        index.clear_free(zone, site);
        let found = FreeRing::new(&index, &grid, zone, anchor, &mut scratch).next_free();
        assert!(found.is_none());
    }

    #[test]
    fn wide_rows_cross_word_boundaries() {
        // 70 columns spans two u64 words per row.
        let grid = ZonedGrid::with_dims(70, 2, 0).unwrap();
        let zone = Zone::Compute;
        let mut index = SiteIndex::new(&grid);
        for col in [0u32, 62, 63, 64, 65, 69] {
            index.set_free(zone, grid.site(zone, col, 0).unwrap());
        }
        let anchor = grid.position(grid.site(zone, 63, 0).unwrap());
        let mut scratch = SearchScratch::default();
        let mut ring = FreeRing::new(&index, &grid, zone, anchor, &mut scratch);
        let mut cols = Vec::new();
        while let Some((s, _, _)) = ring.next_free() {
            cols.push(grid.col_row(s).0);
        }
        // Distance-sorted around column 63, ties toward the smaller index.
        assert_eq!(cols, vec![63, 62, 64, 65, 69, 0]);
    }
}
