//! Compiler error type.

use powermove_circuit::{CircuitError, Qubit};
use powermove_hardware::{HardwareError, Zone};
use std::error::Error;
use std::fmt;

/// Errors produced by the PowerMove compiler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// The machine cannot host the circuit (zone capacity).
    Hardware(HardwareError),
    /// The input circuit is malformed.
    Circuit(CircuitError),
    /// The router could not find a free site in the given zone for a qubit.
    NoFreeSite {
        /// The qubit that needed a site.
        qubit: Qubit,
        /// The zone that was searched.
        zone: Zone,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Hardware(e) => write!(f, "{e}"),
            CompileError::Circuit(e) => write!(f, "{e}"),
            CompileError::NoFreeSite { qubit, zone } => {
                write!(f, "no free {zone} site available for {qubit}")
            }
        }
    }
}

impl Error for CompileError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CompileError::Hardware(e) => Some(e),
            CompileError::Circuit(e) => Some(e),
            CompileError::NoFreeSite { .. } => None,
        }
    }
}

impl From<HardwareError> for CompileError {
    fn from(e: HardwareError) -> Self {
        CompileError::Hardware(e)
    }
}

impl From<CircuitError> for CompileError {
    fn from(e: CircuitError) -> Self {
        CompileError::Circuit(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = CompileError::NoFreeSite {
            qubit: Qubit::new(3),
            zone: Zone::Storage,
        };
        assert!(e.to_string().contains("q3"));
        assert!(e.to_string().contains("storage"));
        assert!(e.source().is_none());

        let inner = HardwareError::InsufficientCapacity {
            qubits: 10,
            sites: 4,
        };
        let e: CompileError = inner.into();
        assert!(e.source().is_some());
    }

    #[test]
    fn implements_error_trait() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<CompileError>();
    }
}
