//! Content addressing for compile requests.
//!
//! A compile is a pure function of the immutable `(circuit, architecture,
//! config)` triple — no hidden pipeline state survives between calls — so
//! the triple's canonical serialized form is a complete identity for the
//! emitted program. [`content_hash`] condenses that form into a stable
//! 64-bit key that the compile service uses to address its schedule cache
//! and to coalesce identical in-flight requests.

use crate::CompilerConfig;
use powermove_circuit::Circuit;
use powermove_hardware::Architecture;
use powermove_schedule::{canonical_json, fnv1a_64};
use std::fmt;

/// A deterministic identity for one compile request.
///
/// Equal triples always hash equal, across processes and machines: the hash
/// is FNV-1a 64 over the canonical JSON of each component
/// ([`powermove_schedule::canonical_json`]), with an unambiguous separator
/// between components so `(ab, c)` and `(a, bc)` cannot collide by
/// concatenation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ContentHash(u64);

impl ContentHash {
    /// The raw 64-bit hash value.
    #[must_use]
    pub const fn value(&self) -> u64 {
        self.0
    }

    /// The 16-hex-digit rendering used as cache key and in service frames.
    #[must_use]
    pub fn hex(&self) -> String {
        format!("{self}")
    }
}

impl fmt::Display for ContentHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Hashes a compile request's `(circuit, architecture, config)` triple into
/// its content address.
///
/// # Example
///
/// Identical triples produce identical hashes; changing any component
/// changes the hash:
///
/// ```
/// use powermove::{content_hash, CompilerConfig};
/// use powermove_circuit::{Circuit, Qubit};
/// use powermove_hardware::Architecture;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut circuit = Circuit::new(2);
/// circuit.cz(Qubit::new(0), Qubit::new(1))?;
/// let arch = Architecture::for_qubits(2);
/// let config = CompilerConfig::default();
///
/// let key = content_hash(&circuit, &arch, &config);
/// assert_eq!(key, content_hash(&circuit, &arch, &config));
/// assert_ne!(
///     key,
///     content_hash(&circuit, &arch.with_num_aods(2), &config)
/// );
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn content_hash(
    circuit: &Circuit,
    arch: &Architecture,
    config: &CompilerConfig,
) -> ContentHash {
    // The '\n' separator cannot occur inside a component: compact JSON
    // escapes raw newlines, so component boundaries are unambiguous.
    let canonical = format!(
        "{}\n{}\n{}",
        canonical_json(circuit),
        canonical_json(arch),
        canonical_json(config),
    );
    ContentHash(fnv1a_64(canonical.as_bytes()))
}

/// Hashes the front-end inputs `(circuit, config)` into a content address
/// for the frozen staged IR.
///
/// The compiler front end ([`PowerMoveCompiler::stage`]) is
/// architecture-independent: synthesis and stage partitioning read only the
/// circuit and the configuration. The stage hash therefore deliberately
/// omits the architecture, so one cached
/// [`StagedIr`](crate::StagedIr) is shared by requests that differ only in
/// their target machine — the compile service keys its stage cache with
/// this and its program cache with the full [`content_hash`].
///
/// [`PowerMoveCompiler::stage`]: crate::PowerMoveCompiler::stage
///
/// # Example
///
/// Requests that differ only in architecture share a stage hash; changing
/// the circuit or the config changes it:
///
/// ```
/// use powermove::{stage_hash, CompilerConfig};
/// use powermove_circuit::{Circuit, Qubit};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut circuit = Circuit::new(2);
/// circuit.cz(Qubit::new(0), Qubit::new(1))?;
/// let config = CompilerConfig::default();
///
/// let key = stage_hash(&circuit, &config);
/// assert_eq!(key, stage_hash(&circuit, &config));
/// assert_ne!(key, stage_hash(&circuit, &CompilerConfig::without_storage()));
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn stage_hash(circuit: &Circuit, config: &CompilerConfig) -> ContentHash {
    // Same framing as `content_hash`: '\n'-separated compact JSON, which
    // cannot contain a raw newline.
    let canonical = format!("{}\n{}", canonical_json(circuit), canonical_json(config));
    ContentHash(fnv1a_64(canonical.as_bytes()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use powermove_circuit::Qubit;

    fn ring(n: u32) -> Circuit {
        let mut c = Circuit::new(n);
        for i in 0..n {
            c.cz(Qubit::new(i), Qubit::new((i + 1) % n)).unwrap();
        }
        c
    }

    #[test]
    fn equal_triples_hash_equal() {
        let a = content_hash(
            &ring(6),
            &Architecture::for_qubits(6),
            &CompilerConfig::default(),
        );
        let b = content_hash(
            &ring(6),
            &Architecture::for_qubits(6),
            &CompilerConfig::default(),
        );
        assert_eq!(a, b);
        assert_eq!(a.hex(), b.hex());
        assert_eq!(a.hex().len(), 16);
        assert_eq!(a.hex(), format!("{:016x}", a.value()));
    }

    #[test]
    fn every_component_contributes() {
        let circuit = ring(6);
        let arch = Architecture::for_qubits(6);
        let config = CompilerConfig::default();
        let base = content_hash(&circuit, &arch, &config);
        assert_ne!(base, content_hash(&ring(8), &arch, &config));
        assert_ne!(
            base,
            content_hash(&circuit, &arch.clone().with_num_aods(3), &config)
        );
        assert_ne!(
            base,
            content_hash(&circuit, &arch, &CompilerConfig::without_storage())
        );
    }

    #[test]
    fn stage_hash_ignores_the_architecture_but_nothing_else() {
        let circuit = ring(6);
        let config = CompilerConfig::default();
        let base = stage_hash(&circuit, &config);
        // Same front-end inputs: same key, however the target machine varies
        // (there is no architecture input at all).
        assert_eq!(base, stage_hash(&ring(6), &CompilerConfig::default()));
        // Both remaining components contribute.
        assert_ne!(base, stage_hash(&ring(8), &config));
        assert_ne!(
            base,
            stage_hash(&circuit, &CompilerConfig::without_storage())
        );
        // And the stage key is not the full content key of any triple with
        // the same circuit and config.
        let arch = Architecture::for_qubits(6);
        assert_ne!(base, content_hash(&circuit, &arch, &config));
    }

    #[test]
    fn threads_knob_changes_the_key_conservatively() {
        // The worker count does not change the emitted program, but it is
        // part of the config struct and therefore of the key: the cache
        // trades a few redundant entries for a key that can never alias two
        // different configurations.
        let circuit = ring(4);
        let arch = Architecture::for_qubits(4);
        assert_ne!(
            content_hash(&circuit, &arch, &CompilerConfig::default()),
            content_hash(&circuit, &arch, &CompilerConfig::default().with_threads(2))
        );
    }
}
