//! The PowerMove compiler for zoned neutral-atom quantum computers.
//!
//! PowerMove (ASPLOS 2025) lowers a quantum circuit onto a neutral-atom
//! machine with a computation zone and a storage zone, exploiting the
//! interplay between gate scheduling, qubit allocation, qubit movement and
//! the zoned architecture. The compiler has three components, mirroring the
//! paper:
//!
//! * the **stage scheduler** (Sec. 4): partitions each commuting CZ block
//!   into Rydberg stages via optimized edge colouring
//!   ([`partition_stages`]) and orders the stages to minimize inter-zone
//!   qubit interchange ([`schedule_stages`]);
//! * the **routing subsystem** ([`routing`]): a pluggable
//!   [`RoutingStrategy`] decides the single-qubit movements that transition
//!   the current layout *directly* into the next stage's layout — no
//!   reversion to an initial layout — and groups them into AOD-compatible
//!   collective moves ([`RoutingState`], [`group_moves`]). Built-ins:
//!   the paper's [`GreedyRouter`] (Sec. 5), a [`LookaheadRouter`] scoring
//!   sites against upcoming stages, and a [`MultiAodScheduler`] that
//!   balances move windows across the machine's AOD arrays — plus an
//!   auto-tuning layer ([`AutoRouter`], [`CostModel`]) that selects the
//!   winning strategy per instance, by portfolio compilation or cost-model
//!   prediction;
//! * the **coll-move scheduler** (Sec. 6): orders collective moves to
//!   maximize storage-zone dwell time and packs them onto multiple AOD
//!   arrays ([`order_coll_moves`], [`pack_move_groups`],
//!   [`pack_move_groups_balanced`]).
//!
//! [`PowerMoveCompiler`] ties the components together as an explicit pass
//! pipeline ([`pipeline`]: [`SynthesisPass`] → [`StagePass`] → [`RoutePass`]
//! → [`MovePass`] → emission) and produces a
//! [`CompiledProgram`](powermove_schedule::CompiledProgram) that can be
//! validated, timed and scored by `powermove-schedule` / `powermove-fidelity`.
//! The [`CompilerBackend`] trait is the open entry point through which the
//! experiment harness drives this compiler, the Enola baseline and any
//! future strategy uniformly.
//!
//! Compilation is a pure function of the immutable `(circuit, architecture,
//! config)` triple — the free function [`compile`] is the canonical entry
//! point. The pipeline is split into a front end
//! ([`PowerMoveCompiler::stage`], producing a frozen [`StagedIr`]) and a
//! back end ([`PowerMoveCompiler::emit`]), and [`content_hash`] derives a
//! deterministic cache key from the input triple; together these are the
//! foundation of the `powermove-service` compile daemon and its
//! content-addressed schedule cache.
//!
//! # Example
//!
//! ```
//! use powermove::{CompilerConfig, PowerMoveCompiler};
//! use powermove_circuit::{Circuit, Qubit};
//! use powermove_hardware::Architecture;
//! use powermove_fidelity::evaluate_program;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut circuit = Circuit::new(4);
//! circuit.h(Qubit::new(0))?;
//! circuit.cz(Qubit::new(0), Qubit::new(1))?;
//! circuit.cz(Qubit::new(2), Qubit::new(3))?;
//!
//! let arch = Architecture::for_qubits(4);
//! let compiler = PowerMoveCompiler::new(CompilerConfig::default());
//! let program = compiler.compile(&circuit, &arch)?;
//! let report = evaluate_program(&program)?;
//! assert!(report.fidelity() > 0.9);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod collmove;
mod compiler;
mod config;
mod content;
mod error;
mod grouping;
pub mod pipeline;
pub mod routing;
mod stage_partition;
mod stage_schedule;
mod stats;

pub use collmove::{order_coll_moves, pack_move_groups, pack_move_groups_balanced};
pub use compiler::{compile, PowerMoveCompiler, Replay, RoutingSession, StagedIr};
pub use config::{AodAssignment, CompilerConfig, RoutingConfig, RoutingStrategyKind};
pub use content::{content_hash, stage_hash, ContentHash};
pub use error::CompileError;
pub use grouping::group_moves;
pub use pipeline::{
    CompileContext, CompilerBackend, MovePass, RoutePass, RoutedProgram, RoutedSegment,
    RoutedStage, StagePass, StagedProgram, StagedSegment, SynthesisPass,
};
pub use routing::{
    greedy_move_schedule, group_stage_moves, movement_wall_clock, AutoRouter, BiasFn, CostModel,
    FreeSiteHarness, GreedyRouter, InstanceFeatures, LookaheadRouter, MultiAodScheduler,
    RoutingState, RoutingStrategy, SiteBias, SitePolicy, StageRouting, ZeroBias, SITES_PRUNED,
    SITE_SCANS,
};
pub use stage_partition::{partition_stages, Stage};
pub use stage_schedule::schedule_stages;
pub use stats::CompilationSummary;
