//! Stage partition: optimized edge colouring of the CZ interaction graph
//! (Algorithm 1 of the paper, Sec. 4.1).

use powermove_circuit::{CzBlock, CzGate, GateConflictGraph, Qubit};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// One Rydberg stage: a set of CZ gates acting on pairwise-disjoint qubits,
/// executable under a single global Rydberg excitation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct Stage {
    gates: Vec<CzGate>,
}

impl Stage {
    /// Creates a stage from gates.
    ///
    /// # Panics
    ///
    /// Panics if two gates share a qubit (the defining property of a stage).
    #[must_use]
    pub fn new(gates: Vec<CzGate>) -> Self {
        let mut seen = BTreeSet::new();
        for g in &gates {
            for q in g.qubits() {
                assert!(seen.insert(q), "stage gates must act on disjoint qubits");
            }
        }
        Stage { gates }
    }

    /// The gates of the stage.
    #[must_use]
    pub fn gates(&self) -> &[CzGate] {
        &self.gates
    }

    /// Number of gates.
    #[must_use]
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// Returns `true` if the stage has no gates.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// The set of qubits that interact during this stage (`Q_i` in Sec. 4.2).
    #[must_use]
    pub fn interacting_qubits(&self) -> BTreeSet<Qubit> {
        self.gates.iter().flat_map(|g| g.qubits()).collect()
    }

    /// Returns `true` if qubit `q` interacts in this stage.
    #[must_use]
    pub fn involves(&self, q: Qubit) -> bool {
        self.gates.iter().any(|g| g.acts_on(q))
    }
}

/// Partitions a commuting CZ block into Rydberg stages using the optimized
/// greedy edge colouring of Algorithm 1: gates (vertices of the conflict
/// graph) are coloured in descending-degree order with the smallest available
/// colour; each colour class becomes one stage.
///
/// The number of stages is at most `max_degree + 1` of the conflict graph,
/// and equals the block's maximum qubit degree for the common benchmark
/// structures (paths, matchings, stars).
#[must_use]
pub fn partition_stages(block: &CzBlock) -> Vec<Stage> {
    let graph = GateConflictGraph::from_block(block);
    let n = graph.num_gates();
    if n == 0 {
        return Vec::new();
    }

    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(graph.degree(i)));

    let mut color = vec![usize::MAX; n];
    let mut num_colors = 0;
    for &v in &order {
        let mut available = vec![true; num_colors + 1];
        for &u in graph.conflicts(v) {
            if color[u] != usize::MAX && color[u] < available.len() {
                available[color[u]] = false;
            }
        }
        let c = available
            .iter()
            .position(|&a| a)
            .expect("a free colour always exists among degree+1 candidates");
        color[v] = c;
        num_colors = num_colors.max(c + 1);
    }

    let mut stages: Vec<Vec<CzGate>> = vec![Vec::new(); num_colors];
    for (v, &c) in color.iter().enumerate() {
        stages[c].push(graph.gate(v));
    }
    stages.into_iter().map(Stage::new).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use powermove_circuit::CzBlock;

    fn q(i: u32) -> Qubit {
        Qubit::new(i)
    }

    fn block(edges: &[(u32, u32)]) -> CzBlock {
        CzBlock::from_gates(
            edges
                .iter()
                .map(|&(a, b)| CzGate::new(q(a), q(b)))
                .collect(),
        )
    }

    #[test]
    fn matching_fits_in_one_stage() {
        let stages = partition_stages(&block(&[(0, 1), (2, 3), (4, 5)]));
        assert_eq!(stages.len(), 1);
        assert_eq!(stages[0].len(), 3);
    }

    #[test]
    fn path_needs_two_stages() {
        let stages = partition_stages(&block(&[(0, 1), (1, 2), (2, 3), (3, 4)]));
        assert_eq!(stages.len(), 2);
        let total: usize = stages.iter().map(Stage::len).sum();
        assert_eq!(total, 4);
    }

    #[test]
    fn star_needs_degree_stages() {
        let stages = partition_stages(&block(&[(0, 1), (0, 2), (0, 3), (0, 4)]));
        assert_eq!(stages.len(), 4);
        assert!(stages.iter().all(|s| s.len() == 1));
    }

    #[test]
    fn every_stage_has_disjoint_qubits() {
        let stages = partition_stages(&block(&[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2), (1, 3)]));
        for s in &stages {
            let qs = s.interacting_qubits();
            assert_eq!(qs.len(), 2 * s.len());
        }
        let total: usize = stages.iter().map(Stage::len).sum();
        assert_eq!(total, 6);
    }

    #[test]
    fn empty_block_gives_no_stages() {
        assert!(partition_stages(&CzBlock::new()).is_empty());
    }

    #[test]
    fn stage_accessors() {
        let s = Stage::new(vec![CzGate::new(q(0), q(1))]);
        assert!(!s.is_empty());
        assert!(s.involves(q(0)));
        assert!(!s.involves(q(2)));
        assert_eq!(s.interacting_qubits().len(), 2);
        assert!(Stage::default().is_empty());
    }

    #[test]
    #[should_panic(expected = "disjoint")]
    fn stage_rejects_overlapping_gates() {
        let _ = Stage::new(vec![CzGate::new(q(0), q(1)), CzGate::new(q(1), q(2))]);
    }

    #[test]
    fn ring_with_chords_stays_near_optimal() {
        // 3-regular graph on 6 vertices (prism): chromatic index 3.
        let stages = partition_stages(&block(&[
            (0, 1),
            (1, 2),
            (2, 0),
            (3, 4),
            (4, 5),
            (5, 3),
            (0, 3),
            (1, 4),
            (2, 5),
        ]));
        assert!(stages.len() <= 4, "got {} stages", stages.len());
        let total: usize = stages.iter().map(Stage::len).sum();
        assert_eq!(total, 9);
    }
}
