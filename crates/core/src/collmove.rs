//! The coll-move scheduler (Sec. 6): execution ordering of collective moves
//! and multi-AOD packing.

use powermove_hardware::{AodId, Architecture, Zone};
use powermove_schedule::{CollMove, Instruction, SiteMove};

/// Orders collective-move groups so that moves *into* the storage zone
/// execute as early as possible and moves *out of* it as late as possible
/// (Sec. 6.1).
///
/// Groups are sorted by descending `n_in − n_out`, where `n_in` counts moves
/// whose destination lies in the storage zone and `n_out` counts moves whose
/// source does. Qubits therefore spend the longest possible fraction of the
/// layout transition protected from decoherence. The sort is stable, so
/// groups with equal score keep their creation order.
///
/// Empty groups are dropped: a group with no moves would otherwise claim an
/// AOD slot downstream and stretch a parallel window by the pick-up/drop-off
/// transfer time without moving anything.
#[must_use]
pub fn order_coll_moves(groups: Vec<Vec<SiteMove>>, arch: &Architecture) -> Vec<Vec<SiteMove>> {
    let grid = arch.grid();
    let score = |group: &[SiteMove]| -> i64 {
        let n_in = group
            .iter()
            .filter(|m| grid.zone_of(m.to) == Zone::Storage)
            .count() as i64;
        let n_out = group
            .iter()
            .filter(|m| grid.zone_of(m.from) == Zone::Storage)
            .count() as i64;
        n_in - n_out
    };
    let mut ordered = groups;
    ordered.retain(|g| !g.is_empty());
    ordered.sort_by_key(|g| std::cmp::Reverse(score(g)));
    ordered
}

/// Packs ordered collective-move groups onto `num_aods` AOD arrays
/// (Sec. 6.2): consecutive groups are chunked into parallel groups of size
/// `num_aods`, each becoming one [`Instruction::MoveGroup`] whose duration is
/// the pick-up/drop-off transfer time plus the longest translation among its
/// members.
///
/// Degenerate inputs are handled without producing degenerate windows: empty
/// groups are dropped before chunking (a memberless [`CollMove`] would still
/// cost a full transfer window), and a `num_aods` exceeding the group count
/// simply yields one window narrower than the machine — never windows padded
/// with empty per-AOD batches.
#[must_use]
pub fn pack_move_groups(ordered: Vec<Vec<SiteMove>>, num_aods: usize) -> Vec<Instruction> {
    let width = num_aods.max(1);
    let ordered: Vec<Vec<SiteMove>> = ordered.into_iter().filter(|g| !g.is_empty()).collect();
    ordered
        .chunks(width)
        .map(|chunk| {
            let coll_moves = chunk
                .iter()
                .enumerate()
                .map(|(i, moves)| CollMove::new(AodId::new(i), moves.clone()))
                .collect();
            Instruction::move_group(coll_moves)
        })
        .collect()
}

/// Packs the two move classes of one stage transition into duration-balanced
/// parallel windows across `arch.num_aods()` AOD arrays (the
/// [`MultiAodScheduler`](crate::MultiAodScheduler) packing).
///
/// Where [`pack_move_groups`] chunks the dwell-time order as-is — so one
/// slow translation in a window wastes the other AODs' time — this packing
/// sorts each class's groups by translation length (longest first, stable on
/// ties so the dwell-time order still breaks them) before chunking, which
/// groups similar-duration moves into shared windows. Storage-bound groups
/// always occupy the same-or-earlier window as every interaction group (the
/// classes may share at most the one boundary window, whose moves the
/// hardware applies simultaneously), preserving the move-in-first guarantee
/// that a site vacated towards storage is free before an interaction
/// arrives at it.
///
/// Two guards make the result safe and never slower than the greedy
/// chunking *by construction*:
///
/// * when one interaction group's arrival targets a site another
///   interaction group departs from (a cross-group vacate dependency — only
///   possible on near-full grids where the router had to reuse a
///   still-occupied site), reordering could land the arrival before the
///   departure, so the dwell-time order is kept as-is;
/// * otherwise both packings are costed and the cheaper one wins (the
///   dwell-time order on ties, keeping its storage-residency benefit) —
///   per-class longest-first chunking minimizes the sum of window maxima
///   within each class, but the class boundary window can occasionally
///   align better in the unsorted order.
///
/// With a single AOD there is no window to balance, so the result always
/// equals [`pack_move_groups`] on the greedy order.
///
/// Degenerate inputs are normalized first: empty groups in either class are
/// dropped (they would otherwise occupy AOD slots as zero-move windows and
/// skew the duration comparison between the two packings), an empty
/// interaction class degrades to packing the storage class alone (and vice
/// versa), and a `num_aods` larger than the total group count produces a
/// single window — the move-in-first guarantee holds through all of these.
#[must_use]
pub fn pack_move_groups_balanced(
    storage_groups: Vec<Vec<SiteMove>>,
    interaction_groups: Vec<Vec<SiteMove>>,
    arch: &Architecture,
) -> Vec<Instruction> {
    let storage_groups: Vec<Vec<SiteMove>> = storage_groups
        .into_iter()
        .filter(|g| !g.is_empty())
        .collect();
    let interaction_groups: Vec<Vec<SiteMove>> = interaction_groups
        .into_iter()
        .filter(|g| !g.is_empty())
        .collect();
    let num_aods = arch.num_aods().max(1);
    let chunked = {
        let mut ordered = order_coll_moves(storage_groups.clone(), arch);
        ordered.extend(order_coll_moves(interaction_groups.clone(), arch));
        pack_move_groups(ordered, num_aods)
    };
    if num_aods == 1 || has_cross_group_vacate_dependency(&interaction_groups) {
        return chunked;
    }
    let longest_first = |groups: Vec<Vec<SiteMove>>| {
        // Start from the dwell-time order so equal-length groups keep their
        // storage-priority ranking, then sort by the translation length that
        // decides each window's duration.
        let mut sorted = order_coll_moves(groups, arch);
        sorted.sort_by(|a, b| {
            let len = |g: &[SiteMove]| g.iter().map(|m| m.distance(arch)).fold(0.0, f64::max);
            len(b)
                .partial_cmp(&len(a))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        sorted
    };
    let mut all = longest_first(storage_groups);
    all.extend(longest_first(interaction_groups));
    let balanced = pack_move_groups(all, num_aods);
    if movement_duration(&balanced, arch) < movement_duration(&chunked, arch) {
        balanced
    } else {
        chunked
    }
}

/// Returns `true` if any interaction group arrives at a site that a
/// *different* interaction group departs from. Same-group pairs are fine —
/// the hardware applies a window's moves simultaneously — but cross-group
/// pairs pin the departure to a same-or-earlier window, which only the
/// original dwell-time order guarantees.
fn has_cross_group_vacate_dependency(groups: &[Vec<SiteMove>]) -> bool {
    groups.iter().enumerate().any(|(i, group)| {
        group.iter().any(|arrival| {
            groups
                .iter()
                .enumerate()
                .any(|(j, other)| i != j && other.iter().any(|m| m.from == arrival.to))
        })
    })
}

/// Total wall clock of a packed instruction sequence's move groups.
fn movement_duration(instructions: &[Instruction], arch: &Architecture) -> f64 {
    powermove_schedule::movement_wall_clock(instructions, arch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use powermove_circuit::Qubit;
    use powermove_schedule::SiteMove;

    fn q(i: u32) -> Qubit {
        Qubit::new(i)
    }

    fn arch() -> Architecture {
        Architecture::for_qubits(9)
    }

    fn storage_move(a: &Architecture, qi: u32) -> SiteMove {
        let g = a.grid();
        SiteMove::new(
            q(qi),
            g.site(Zone::Compute, 0, qi % 3).unwrap(),
            g.site(Zone::Storage, qi % 3, 0).unwrap(),
        )
    }

    fn retrieval_move(a: &Architecture, qi: u32) -> SiteMove {
        let g = a.grid();
        SiteMove::new(
            q(qi),
            g.site(Zone::Storage, qi % 3, 1).unwrap(),
            g.site(Zone::Compute, qi % 3, 0).unwrap(),
        )
    }

    fn lateral_move(a: &Architecture, qi: u32) -> SiteMove {
        let g = a.grid();
        SiteMove::new(
            q(qi),
            g.site(Zone::Compute, 0, 0).unwrap(),
            g.site(Zone::Compute, 1, 0).unwrap(),
        )
    }

    #[test]
    fn move_in_groups_come_first() {
        let a = arch();
        let groups = vec![
            vec![retrieval_move(&a, 0)],
            vec![lateral_move(&a, 1)],
            vec![storage_move(&a, 2)],
        ];
        let ordered = order_coll_moves(groups, &a);
        // storage (in) first, lateral (0) second, retrieval (out) last.
        assert_eq!(ordered[0][0].qubit, q(2));
        assert_eq!(ordered[1][0].qubit, q(1));
        assert_eq!(ordered[2][0].qubit, q(0));
    }

    #[test]
    fn ordering_is_stable_for_equal_scores() {
        let a = arch();
        let groups = vec![vec![lateral_move(&a, 3)], vec![lateral_move(&a, 4)]];
        let ordered = order_coll_moves(groups, &a);
        assert_eq!(ordered[0][0].qubit, q(3));
        assert_eq!(ordered[1][0].qubit, q(4));
    }

    #[test]
    fn packing_respects_aod_count() {
        let a = arch();
        let groups = vec![
            vec![storage_move(&a, 0)],
            vec![storage_move(&a, 1)],
            vec![storage_move(&a, 2)],
        ];
        let single = pack_move_groups(groups.clone(), 1);
        assert_eq!(single.len(), 3);
        let dual = pack_move_groups(groups.clone(), 2);
        assert_eq!(dual.len(), 2);
        let quad = pack_move_groups(groups, 4);
        assert_eq!(quad.len(), 1);
        if let Instruction::MoveGroup { coll_moves } = &quad[0] {
            assert_eq!(coll_moves.len(), 3);
            let aods: Vec<usize> = coll_moves.iter().map(|c| c.aod.index()).collect();
            assert_eq!(aods, vec![0, 1, 2]);
        } else {
            panic!("expected a move group");
        }
    }

    #[test]
    fn zero_aods_treated_as_one() {
        let a = arch();
        let groups = vec![vec![storage_move(&a, 0)], vec![storage_move(&a, 1)]];
        assert_eq!(pack_move_groups(groups, 0).len(), 2);
    }

    #[test]
    fn empty_groups_produce_no_instructions() {
        assert!(pack_move_groups(vec![], 2).is_empty());
        assert!(order_coll_moves(vec![], &arch()).is_empty());
        assert!(pack_move_groups_balanced(vec![], vec![], &arch()).is_empty());
    }

    #[test]
    fn empty_groups_are_dropped_before_packing() {
        let a = arch();
        // An interleaved empty group must not consume an AOD slot: the two
        // real groups share one window at width 2 and no window carries a
        // memberless CollMove.
        let groups = vec![
            vec![],
            vec![storage_move(&a, 0)],
            vec![],
            vec![storage_move(&a, 1)],
            vec![],
        ];
        assert_eq!(order_coll_moves(groups.clone(), &a).len(), 2);
        let packed = pack_move_groups(groups, 2);
        assert_eq!(packed.len(), 1);
        if let Instruction::MoveGroup { coll_moves } = &packed[0] {
            assert_eq!(coll_moves.len(), 2);
            assert!(coll_moves.iter().all(|cm| !cm.is_empty()));
            let aods: Vec<usize> = coll_moves.iter().map(|c| c.aod.index()).collect();
            assert_eq!(aods, vec![0, 1], "AOD ids stay dense after dropping");
        } else {
            panic!("expected a move group");
        }
    }

    #[test]
    fn balanced_packing_survives_more_aods_than_groups() {
        // 4 AOD arrays, 1 storage group, 1 interaction group: one shared
        // boundary window (legal — its moves apply simultaneously), never
        // windows padded with empty per-AOD batches.
        let a = arch().with_num_aods(4);
        let packed = pack_move_groups_balanced(
            vec![vec![storage_move(&a, 0)]],
            vec![vec![retrieval_move(&a, 1)]],
            &a,
        );
        assert_eq!(packed.len(), 1);
        if let Instruction::MoveGroup { coll_moves } = &packed[0] {
            assert_eq!(coll_moves.len(), 2);
            assert!(coll_moves.iter().all(|cm| !cm.is_empty()));
        } else {
            panic!("expected a move group");
        }
    }

    #[test]
    fn balanced_packing_with_an_empty_interaction_class_packs_storage_alone() {
        let a = arch().with_num_aods(2);
        let storage = vec![
            vec![storage_move(&a, 0)],
            vec![storage_move(&a, 1)],
            vec![storage_move(&a, 2)],
        ];
        // Explicitly empty interaction groups behave like no interaction
        // class at all.
        let with_empties = pack_move_groups_balanced(storage.clone(), vec![vec![], vec![]], &a);
        let without = pack_move_groups_balanced(storage, vec![], &a);
        assert_eq!(with_empties, without);
        assert_eq!(with_empties.len(), 2);
        for instr in &with_empties {
            if let Instruction::MoveGroup { coll_moves } = instr {
                assert!(coll_moves.iter().all(|cm| !cm.is_empty()));
            }
        }
    }

    #[test]
    fn empty_groups_preserve_storage_before_interaction_ordering() {
        // The regression the lint campaign guards: a stray empty group mixed
        // into either class must not perturb the move-in-first guarantee.
        let a = arch().with_num_aods(2);
        let storage = vec![
            vec![],
            vec![storage_move(&a, 0)],
            vec![storage_move(&a, 1)],
            vec![storage_move(&a, 2)],
        ];
        let interaction = vec![
            vec![retrieval_move(&a, 3)],
            vec![],
            vec![retrieval_move(&a, 4)],
        ];
        let packed = pack_move_groups_balanced(storage, interaction, &a);
        assert_eq!(packed.len(), 3);
        let grid = a.grid();
        let mut last_storage_window = 0;
        let mut first_interaction_window = usize::MAX;
        for (w, instr) in packed.iter().enumerate() {
            if let Instruction::MoveGroup { coll_moves } = instr {
                assert!(coll_moves.iter().all(|cm| !cm.is_empty()));
                for m in coll_moves.iter().flat_map(|cm| cm.moves.iter()) {
                    if grid.zone_of(m.to) == Zone::Storage {
                        last_storage_window = last_storage_window.max(w);
                    } else {
                        first_interaction_window = first_interaction_window.min(w);
                    }
                }
            }
        }
        assert!(last_storage_window <= first_interaction_window);
    }

    #[test]
    fn balanced_packing_groups_similar_durations_together() {
        let a = arch().with_num_aods(2);
        let g = a.grid();
        // Two long moves (2 rows) and two short moves (1 row), interleaved
        // in dwell order. Chunked packing pairs long+short twice; balanced
        // packing pairs long+long and short+short, cutting the total
        // translation time.
        let long = |qi: u32, col: u32| {
            vec![SiteMove::new(
                q(qi),
                g.site(Zone::Compute, col, 2).unwrap(),
                g.site(Zone::Compute, col, 0).unwrap(),
            )]
        };
        let short = |qi: u32, col: u32| {
            vec![SiteMove::new(
                q(qi),
                g.site(Zone::Compute, col, 1).unwrap(),
                g.site(Zone::Compute, col, 0).unwrap(),
            )]
        };
        let groups = vec![long(0, 0), short(1, 1), long(2, 2), short(3, 0)];
        let chunked = pack_move_groups(groups.clone(), 2);
        let balanced = pack_move_groups_balanced(vec![], groups, &a);
        assert_eq!(chunked.len(), 2);
        assert_eq!(balanced.len(), 2);
        assert!(
            movement_duration(&balanced, &a) < movement_duration(&chunked, &a),
            "balanced {:.1}us vs chunked {:.1}us",
            movement_duration(&balanced, &a) * 1e6,
            movement_duration(&chunked, &a) * 1e6
        );
    }

    #[test]
    fn balanced_packing_keeps_storage_groups_no_later_than_interactions() {
        let a = arch().with_num_aods(2);
        let storage = vec![
            vec![storage_move(&a, 0)],
            vec![storage_move(&a, 1)],
            vec![storage_move(&a, 2)],
        ];
        let interaction = vec![vec![retrieval_move(&a, 3)], vec![retrieval_move(&a, 4)]];
        let packed = pack_move_groups_balanced(storage, interaction, &a);
        // 5 groups on 2 AODs -> 3 windows; every storage move sits in the
        // same-or-earlier window as every interaction move.
        assert_eq!(packed.len(), 3);
        let grid = a.grid();
        let mut last_storage_window = 0;
        let mut first_interaction_window = usize::MAX;
        for (w, instr) in packed.iter().enumerate() {
            if let Instruction::MoveGroup { coll_moves } = instr {
                for cm in coll_moves {
                    for m in &cm.moves {
                        if grid.zone_of(m.to) == Zone::Storage {
                            last_storage_window = last_storage_window.max(w);
                        } else {
                            first_interaction_window = first_interaction_window.min(w);
                        }
                    }
                }
            }
        }
        assert!(last_storage_window <= first_interaction_window);
    }

    #[test]
    fn cross_group_vacate_dependencies_force_the_dwell_order() {
        let a = arch().with_num_aods(2);
        let g = a.grid();
        // Group 1 vacates compute (0,0) with a short move; group 2's long
        // move arrives at (0,0). Longest-first would flip them into earlier
        // windows, so the packing must keep the dwell order instead.
        let vacate = vec![SiteMove::new(
            q(0),
            g.site(Zone::Compute, 0, 0).unwrap(),
            g.site(Zone::Compute, 1, 0).unwrap(),
        )];
        let arrive = vec![SiteMove::new(
            q(1),
            g.site(Zone::Compute, 2, 2).unwrap(),
            g.site(Zone::Compute, 0, 0).unwrap(),
        )];
        let groups = vec![vacate.clone(), arrive.clone()];
        assert!(has_cross_group_vacate_dependency(&groups));
        let packed = pack_move_groups_balanced(vec![], groups.clone(), &a);
        let ordered = order_coll_moves(groups, &a);
        assert_eq!(packed, pack_move_groups(ordered, 2));
        // Same-group arrive/vacate pairs are applied simultaneously and do
        // not count as a dependency.
        let merged = vec![vec![vacate[0], arrive[0]]];
        assert!(!has_cross_group_vacate_dependency(&merged));
    }

    #[test]
    fn balanced_packing_never_exceeds_the_chunked_duration() {
        // The review counterexample shape: storage lengths ~[long, short,
        // short], interaction ~[long, long] at width 2 — the dwell order's
        // boundary window happens to align better than the sorted order, so
        // the cheaper (chunked) packing must win.
        let a = arch().with_num_aods(2);
        let g = a.grid();
        let down = |qi: u32, col: u32, rows: u32| {
            vec![SiteMove::new(
                q(qi),
                g.site(Zone::Compute, col, rows).unwrap(),
                g.site(Zone::Storage, col, 0).unwrap(),
            )]
        };
        let up = |qi: u32, col: u32, rows: u32| {
            vec![SiteMove::new(
                q(qi),
                g.site(Zone::Storage, col, 0).unwrap(),
                g.site(Zone::Compute, col, rows).unwrap(),
            )]
        };
        let storage = vec![down(0, 0, 2), down(1, 1, 0), down(2, 2, 0)];
        let interaction = vec![up(3, 0, 1), up(4, 1, 1)];
        let balanced = pack_move_groups_balanced(storage.clone(), interaction.clone(), &a);
        let chunked = {
            let mut ordered = order_coll_moves(storage, &a);
            ordered.extend(order_coll_moves(interaction, &a));
            pack_move_groups(ordered, 2)
        };
        assert!(
            movement_duration(&balanced, &a) <= movement_duration(&chunked, &a) + 1e-15,
            "balanced packing must never be slower than the greedy chunking"
        );
    }

    #[test]
    fn balanced_packing_on_one_aod_keeps_the_dwell_order() {
        let a = arch();
        let storage = vec![vec![storage_move(&a, 0)]];
        let interaction = vec![vec![retrieval_move(&a, 1)], vec![lateral_move(&a, 2)]];
        let balanced = pack_move_groups_balanced(storage.clone(), interaction.clone(), &a);
        let mut ordered = order_coll_moves(storage, &a);
        ordered.extend(order_coll_moves(interaction, &a));
        assert_eq!(balanced, pack_move_groups(ordered, 1));
    }
}
