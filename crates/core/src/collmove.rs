//! The coll-move scheduler (Sec. 6): execution ordering of collective moves
//! and multi-AOD packing.

use powermove_hardware::{AodId, Architecture, Zone};
use powermove_schedule::{CollMove, Instruction, SiteMove};

/// Orders collective-move groups so that moves *into* the storage zone
/// execute as early as possible and moves *out of* it as late as possible
/// (Sec. 6.1).
///
/// Groups are sorted by descending `n_in − n_out`, where `n_in` counts moves
/// whose destination lies in the storage zone and `n_out` counts moves whose
/// source does. Qubits therefore spend the longest possible fraction of the
/// layout transition protected from decoherence. The sort is stable, so
/// groups with equal score keep their creation order.
#[must_use]
pub fn order_coll_moves(groups: Vec<Vec<SiteMove>>, arch: &Architecture) -> Vec<Vec<SiteMove>> {
    let grid = arch.grid();
    let score = |group: &[SiteMove]| -> i64 {
        let n_in = group
            .iter()
            .filter(|m| grid.zone_of(m.to) == Zone::Storage)
            .count() as i64;
        let n_out = group
            .iter()
            .filter(|m| grid.zone_of(m.from) == Zone::Storage)
            .count() as i64;
        n_in - n_out
    };
    let mut ordered = groups;
    ordered.sort_by_key(|g| std::cmp::Reverse(score(g)));
    ordered
}

/// Packs ordered collective-move groups onto `num_aods` AOD arrays
/// (Sec. 6.2): consecutive groups are chunked into parallel groups of size
/// `num_aods`, each becoming one [`Instruction::MoveGroup`] whose duration is
/// the pick-up/drop-off transfer time plus the longest translation among its
/// members.
#[must_use]
pub fn pack_move_groups(ordered: Vec<Vec<SiteMove>>, num_aods: usize) -> Vec<Instruction> {
    let width = num_aods.max(1);
    ordered
        .chunks(width)
        .map(|chunk| {
            let coll_moves = chunk
                .iter()
                .enumerate()
                .map(|(i, moves)| CollMove::new(AodId::new(i), moves.clone()))
                .collect();
            Instruction::move_group(coll_moves)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use powermove_circuit::Qubit;
    use powermove_schedule::SiteMove;

    fn q(i: u32) -> Qubit {
        Qubit::new(i)
    }

    fn arch() -> Architecture {
        Architecture::for_qubits(9)
    }

    fn storage_move(a: &Architecture, qi: u32) -> SiteMove {
        let g = a.grid();
        SiteMove::new(
            q(qi),
            g.site(Zone::Compute, 0, qi % 3).unwrap(),
            g.site(Zone::Storage, qi % 3, 0).unwrap(),
        )
    }

    fn retrieval_move(a: &Architecture, qi: u32) -> SiteMove {
        let g = a.grid();
        SiteMove::new(
            q(qi),
            g.site(Zone::Storage, qi % 3, 1).unwrap(),
            g.site(Zone::Compute, qi % 3, 0).unwrap(),
        )
    }

    fn lateral_move(a: &Architecture, qi: u32) -> SiteMove {
        let g = a.grid();
        SiteMove::new(
            q(qi),
            g.site(Zone::Compute, 0, 0).unwrap(),
            g.site(Zone::Compute, 1, 0).unwrap(),
        )
    }

    #[test]
    fn move_in_groups_come_first() {
        let a = arch();
        let groups = vec![
            vec![retrieval_move(&a, 0)],
            vec![lateral_move(&a, 1)],
            vec![storage_move(&a, 2)],
        ];
        let ordered = order_coll_moves(groups, &a);
        // storage (in) first, lateral (0) second, retrieval (out) last.
        assert_eq!(ordered[0][0].qubit, q(2));
        assert_eq!(ordered[1][0].qubit, q(1));
        assert_eq!(ordered[2][0].qubit, q(0));
    }

    #[test]
    fn ordering_is_stable_for_equal_scores() {
        let a = arch();
        let groups = vec![vec![lateral_move(&a, 3)], vec![lateral_move(&a, 4)]];
        let ordered = order_coll_moves(groups, &a);
        assert_eq!(ordered[0][0].qubit, q(3));
        assert_eq!(ordered[1][0].qubit, q(4));
    }

    #[test]
    fn packing_respects_aod_count() {
        let a = arch();
        let groups = vec![
            vec![storage_move(&a, 0)],
            vec![storage_move(&a, 1)],
            vec![storage_move(&a, 2)],
        ];
        let single = pack_move_groups(groups.clone(), 1);
        assert_eq!(single.len(), 3);
        let dual = pack_move_groups(groups.clone(), 2);
        assert_eq!(dual.len(), 2);
        let quad = pack_move_groups(groups, 4);
        assert_eq!(quad.len(), 1);
        if let Instruction::MoveGroup { coll_moves } = &quad[0] {
            assert_eq!(coll_moves.len(), 3);
            let aods: Vec<usize> = coll_moves.iter().map(|c| c.aod.index()).collect();
            assert_eq!(aods, vec![0, 1, 2]);
        } else {
            panic!("expected a move group");
        }
    }

    #[test]
    fn zero_aods_treated_as_one() {
        let a = arch();
        let groups = vec![vec![storage_move(&a, 0)], vec![storage_move(&a, 1)]];
        assert_eq!(pack_move_groups(groups, 0).len(), 2);
    }

    #[test]
    fn empty_groups_produce_no_instructions() {
        assert!(pack_move_groups(vec![], 2).is_empty());
        assert!(order_coll_moves(vec![], &arch()).is_empty());
    }
}
