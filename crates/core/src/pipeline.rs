//! The open compiler abstraction and the PowerMove pass pipeline.
//!
//! Compilation is organized as a sequence of explicit, individually testable
//! passes over progressively lower-level program representations:
//!
//! ```text
//! Circuit ──SynthesisPass──▶ BlockProgram ──StagePass──▶ StagedProgram
//!         ──RoutePass──▶ RoutedProgram ──MovePass──▶ Vec<Instruction>
//!         ──emission──▶ CompiledProgram
//! ```
//!
//! Every pass shares a [`CompileContext`] that accumulates per-pass
//! wall-clock timings and work counters; the context is folded into the
//! produced program's [`CompileMetadata`] so downstream tooling (the
//! `diagnostics` experiment binary, JSON reports) can attribute compilation
//! time to pipeline phases.
//!
//! Passes whose units of work are independent — [`StagePass`] (per CZ
//! block) and [`MovePass`] (per routed stage) — fan out over a
//! [`ThreadPool`] with order-preserving `par_map`, so the emitted program is
//! byte-identical for every `POWERMOVE_THREADS` setting. Each worker records
//! into a [`CompileContext::scratch`] context that is merged back
//! deterministically ([`CompileContext::merge`]); merged pass timings
//! therefore report *total work time* (the sum across workers), which can
//! exceed the wall-clock `compile_time` on multi-core runs. [`RoutePass`]
//! stays sequential by construction: the router threads one mutable layout
//! through every stage transition.
//!
//! The [`CompilerBackend`] trait is the open entry point tying it together:
//! any compiler that lowers a [`BlockProgram`] onto an [`Architecture`] can
//! implement it and participate in the experiment harness alongside
//! [`PowerMoveCompiler`](crate::PowerMoveCompiler) and the Enola baseline —
//! no harness changes required.

use crate::routing::{GreedyRouter, RoutingState, RoutingStrategy, StageRouting};
use crate::{partition_stages, schedule_stages, CompileError, Stage};
use powermove_circuit::{BlockProgram, Circuit, OneQubitGate, Qubit, Segment};
use powermove_exec::ThreadPool;
use powermove_hardware::{Architecture, Zone};
use powermove_schedule::{
    CompileMetadata, CompiledProgram, Instruction, Layout, PassCounter, PassTiming,
};
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

/// A compiler that lowers block programs onto a neutral-atom machine.
///
/// Implementations are registered with the experiment harness as trait
/// objects, so new compilation strategies (ablations, alternative routers,
/// external baselines) drop in without touching harness dispatch code.
///
/// # Example
///
/// A minimal custom backend that delegates to PowerMove but reports its own
/// name:
///
/// ```
/// use powermove::{
///     CompileError, CompilerBackend, CompilerConfig, PowerMoveCompiler,
/// };
/// use powermove_circuit::BlockProgram;
/// use powermove_hardware::Architecture;
/// use powermove_schedule::CompiledProgram;
///
/// struct MyBackend(PowerMoveCompiler);
///
/// impl CompilerBackend for MyBackend {
///     fn name(&self) -> &str {
///         "my-backend"
///     }
///     fn config_description(&self) -> String {
///         "powermove with default config".to_string()
///     }
///     fn compile(
///         &self,
///         blocks: &BlockProgram,
///         arch: &Architecture,
///     ) -> Result<CompiledProgram, CompileError> {
///         self.0.compile_block_program(blocks, arch)
///     }
/// }
///
/// let backend = MyBackend(PowerMoveCompiler::new(CompilerConfig::default()));
/// let mut circuit = powermove_circuit::Circuit::new(2);
/// circuit.cz(powermove_circuit::Qubit::new(0), powermove_circuit::Qubit::new(1))?;
/// let program = backend.compile_circuit(&circuit, &Architecture::for_qubits(2))?;
/// assert_eq!(program.cz_gate_count(), 1);
/// # Ok::<(), powermove::CompileError>(())
/// ```
///
/// Backends must be [`Send`] + [`Sync`]: the experiment harness fans the
/// backend × suite matrix out over a thread pool, with several workers
/// compiling through the same backend reference concurrently. `compile`
/// takes `&self`, so any mutable tuning state needs interior mutability
/// with synchronization.
pub trait CompilerBackend: Send + Sync {
    /// Short identifier of the compilation strategy, e.g. `"powermove"`.
    fn name(&self) -> &str;

    /// Human-readable description of the active configuration.
    fn config_description(&self) -> String;

    /// Compiles an already-synthesized block program for `arch`.
    ///
    /// # Errors
    ///
    /// Returns a [`CompileError`] if the machine cannot host the program or
    /// the backend fails to lower it.
    fn compile(
        &self,
        blocks: &BlockProgram,
        arch: &Architecture,
    ) -> Result<CompiledProgram, CompileError>;

    /// Convenience entry point: synthesizes `circuit` into blocks, then
    /// compiles it.
    ///
    /// # Errors
    ///
    /// Same as [`CompilerBackend::compile`].
    fn compile_circuit(
        &self,
        circuit: &Circuit,
        arch: &Architecture,
    ) -> Result<CompiledProgram, CompileError> {
        let blocks = BlockProgram::from_circuit(circuit);
        self.compile(&blocks, arch)
    }
}

/// Shared state threaded through the pipeline passes: wall-clock timings and
/// work counters, folded into [`CompileMetadata`] at emission.
#[derive(Debug, Default)]
pub struct CompileContext {
    started: Option<Instant>,
    timings: Vec<PassTiming>,
    counters: Vec<PassCounter>,
    selected_strategy: Option<String>,
}

impl CompileContext {
    /// Creates a context and starts the end-to-end compilation clock.
    #[must_use]
    pub fn new() -> Self {
        CompileContext {
            started: Some(Instant::now()),
            timings: Vec::new(),
            counters: Vec::new(),
            selected_strategy: None,
        }
    }

    /// Creates a worker-local context without an end-to-end clock.
    ///
    /// Parallel passes hand one scratch context to each unit of work and
    /// fold the results back into the main context with
    /// [`CompileContext::merge`], so per-pass totals stay accurate when
    /// blocks are processed concurrently.
    #[must_use]
    pub fn scratch() -> Self {
        CompileContext::default()
    }

    /// Rebuilds a scratch context from previously recorded timings and
    /// counters.
    ///
    /// This is the bridge that lets a frozen front-end IR
    /// ([`StagedIr`](crate::StagedIr)) carry its pass records into a later
    /// back-end context: `emit` merges the reconstructed context into a
    /// fresh one, so the emitted metadata matches an all-in-one compile.
    #[must_use]
    pub fn from_parts(timings: Vec<PassTiming>, counters: Vec<PassCounter>) -> Self {
        CompileContext {
            started: None,
            timings,
            counters,
            selected_strategy: None,
        }
    }

    /// Decomposes the context into its recorded timings and counters,
    /// discarding the clock and any selected strategy. Inverse of
    /// [`CompileContext::from_parts`].
    #[must_use]
    pub fn into_parts(self) -> (Vec<PassTiming>, Vec<PassCounter>) {
        (self.timings, self.counters)
    }

    /// Accumulates another context's timings and counters into this one.
    ///
    /// **Merge ordering.** Entries merge by name (summing values), and
    /// previously unseen names are appended in the order they are first
    /// encountered. Accumulated *values* are therefore order-independent —
    /// merging worker contexts in any order yields the same totals — but the
    /// *entry order* reflects merge order, which varies with the worker
    /// count and scheduling. Callers that need a reproducible layout should
    /// not rely on it here: [`CompileContext::finish`] sorts pass timings
    /// into canonical pipeline order before folding them into metadata, so
    /// the emitted [`CompileMetadata`] is stable across worker counts. The
    /// first merged `selected_strategy` wins, so merging scratch contexts in
    /// input order keeps strategy attribution deterministic.
    pub fn merge(&mut self, other: CompileContext) {
        for timing in other.timings {
            if let Some(entry) = self.timings.iter_mut().find(|t| t.pass == timing.pass) {
                entry.seconds += timing.seconds;
            } else {
                self.timings.push(timing);
            }
        }
        for counter in other.counters {
            self.count(&counter.name, counter.value);
        }
        if self.selected_strategy.is_none() {
            self.selected_strategy = other.selected_strategy;
        }
    }

    /// Records the routing strategy an auto-tuning layer selected for this
    /// program; folded into [`CompileMetadata::selected_strategy`] at
    /// emission. Later calls overwrite earlier ones.
    ///
    /// [`CompileMetadata::selected_strategy`]: powermove_schedule::CompileMetadata
    pub fn select_strategy(&mut self, name: &str) {
        self.selected_strategy = Some(name.to_string());
    }

    /// The routing strategy recorded by [`CompileContext::select_strategy`],
    /// if any.
    #[must_use]
    pub fn selected_strategy(&self) -> Option<&str> {
        self.selected_strategy.as_deref()
    }

    /// Runs `f`, attributing its wall-clock time to the named pass.
    ///
    /// Repeated calls with the same name accumulate, so a pass may be timed
    /// incrementally (e.g. once per block).
    pub fn time<T>(&mut self, pass: &str, f: impl FnOnce(&mut Self) -> T) -> T {
        let start = Instant::now();
        let result = f(self);
        let seconds = start.elapsed().as_secs_f64();
        if let Some(entry) = self.timings.iter_mut().find(|t| t.pass == pass) {
            entry.seconds += seconds;
        } else {
            self.timings.push(PassTiming {
                pass: pass.to_string(),
                seconds,
            });
        }
        result
    }

    /// Adds `amount` to the named work counter.
    pub fn count(&mut self, name: &str, amount: u64) {
        if let Some(entry) = self.counters.iter_mut().find(|c| c.name == name) {
            entry.value += amount;
        } else {
            self.counters.push(PassCounter {
                name: name.to_string(),
                value: amount,
            });
        }
    }

    /// The pass timings recorded so far, in first-recorded order.
    #[must_use]
    pub fn timings(&self) -> &[PassTiming] {
        &self.timings
    }

    /// The work counters recorded so far.
    #[must_use]
    pub fn counters(&self) -> &[PassCounter] {
        &self.counters
    }

    /// Folds the context into program metadata, closing the end-to-end
    /// clock. `num_aods` records the resolved AOD-array count the schedule
    /// was packed for, so bench reports can attribute multi-AOD results.
    ///
    /// Pass timings are sorted into canonical pipeline order (synthesis,
    /// stage, route, moves, then any other passes alphabetically) so the
    /// metadata layout is identical across worker counts — parallel passes
    /// merge worker contexts in completion-dependent order, which would
    /// otherwise leak into the diagnostics output.
    #[must_use]
    pub fn finish(
        self,
        compiler: &str,
        uses_storage: bool,
        num_stages: usize,
        num_aods: usize,
    ) -> CompileMetadata {
        fn pipeline_rank(pass: &str) -> usize {
            match pass {
                SynthesisPass::NAME => 0,
                StagePass::NAME => 1,
                RoutePass::NAME => 2,
                MovePass::NAME => 3,
                _ => 4,
            }
        }
        let mut pass_timings = self.timings;
        pass_timings.sort_by(|a, b| {
            pipeline_rank(&a.pass)
                .cmp(&pipeline_rank(&b.pass))
                .then_with(|| a.pass.cmp(&b.pass))
        });
        CompileMetadata {
            compiler: compiler.to_string(),
            compile_time: self.started.map(|s| s.elapsed().as_secs_f64()),
            uses_storage,
            num_stages,
            num_aods,
            selected_strategy: self.selected_strategy,
            pass_timings,
            counters: self.counters,
        }
    }
}

/// Pass 1: synthesizes a gate-level circuit into alternating 1Q layers and
/// commuting CZ blocks.
#[derive(Debug, Clone, Copy, Default)]
pub struct SynthesisPass;

impl SynthesisPass {
    /// Name under which the pass reports its timing.
    pub const NAME: &'static str = "synthesis";

    /// Runs the pass.
    #[must_use]
    pub fn run(&self, circuit: &Circuit, ctx: &mut CompileContext) -> BlockProgram {
        ctx.time(Self::NAME, |ctx| {
            let blocks = BlockProgram::from_circuit(circuit);
            ctx.count("cz_blocks", blocks.cz_blocks().count() as u64);
            blocks
        })
    }
}

/// One segment of a [`StagedProgram`].
#[derive(Debug, Clone, PartialEq)]
pub enum StagedSegment {
    /// A layer of single-qubit gates, passed through unchanged.
    OneQubit(Vec<(Qubit, OneQubitGate)>),
    /// A commuting CZ block partitioned into ordered Rydberg stages.
    Stages(Vec<Stage>),
}

/// The output of [`StagePass`]: the block program with every CZ block
/// partitioned into Rydberg stages and the stages ordered to minimize
/// inter-zone interchange.
#[derive(Debug, Clone, PartialEq)]
pub struct StagedProgram {
    num_qubits: u32,
    segments: Vec<StagedSegment>,
}

impl StagedProgram {
    /// Program width in qubits.
    #[must_use]
    pub const fn num_qubits(&self) -> u32 {
        self.num_qubits
    }

    /// The staged segments in program order.
    #[must_use]
    pub fn segments(&self) -> &[StagedSegment] {
        &self.segments
    }

    /// Total number of Rydberg stages across all CZ blocks.
    #[must_use]
    pub fn num_stages(&self) -> usize {
        self.segments
            .iter()
            .map(|s| match s {
                StagedSegment::Stages(stages) => stages.len(),
                StagedSegment::OneQubit(_) => 0,
            })
            .sum()
    }
}

/// Pass 2: partitions each commuting CZ block into Rydberg stages via
/// optimized edge colouring and orders the stages by the `α`-weighted
/// interchange metric (Sec. 4 of the paper).
///
/// Every CZ block is independent, so the pass fans the blocks out over the
/// given [`ThreadPool`]. `par_map` preserves input order and the per-block
/// computation is deterministic, which keeps the staged program identical
/// for every worker count.
#[derive(Debug, Clone, Copy)]
pub struct StagePass {
    alpha: f64,
}

impl StagePass {
    /// Name under which the pass reports its timing.
    pub const NAME: &'static str = "stage";

    /// Creates the pass with the stage-scheduling weight `α`.
    #[must_use]
    pub fn new(alpha: f64) -> Self {
        StagePass { alpha }
    }

    /// Runs the pass, staging independent CZ blocks concurrently on `pool`.
    #[must_use]
    pub fn run(
        &self,
        blocks: &BlockProgram,
        pool: &ThreadPool,
        ctx: &mut CompileContext,
    ) -> StagedProgram {
        let alpha = self.alpha;
        let jobs: Vec<&Segment> = blocks.segments().iter().collect();
        let segments = par_map_merging(
            pool,
            ctx,
            Self::NAME,
            jobs,
            |segment, worker| match segment {
                Segment::OneQubit(layer) => StagedSegment::OneQubit(layer.gates().to_vec()),
                Segment::Cz(block) => worker.time(Self::NAME, |worker| {
                    let stages = schedule_stages(partition_stages(block), alpha);
                    worker.count("stages", stages.len() as u64);
                    StagedSegment::Stages(stages)
                }),
            },
        );
        StagedProgram {
            num_qubits: blocks.num_qubits(),
            segments,
        }
    }
}

/// Shared fan-out scaffolding of the parallel passes: registers `pass` in
/// `ctx` (so it appears even for empty programs), maps `items` over `pool`
/// with one [`CompileContext::scratch`] context per item, and merges the
/// worker contexts back into `ctx` in input order — keeping timing/counter
/// layout deterministic for every worker count.
///
/// Dispatch is chunked ([`ThreadPool::par_map_chunked`]): block-level
/// fan-outs scale with program size (a 100k-block program would otherwise
/// queue 100k jobs), so the pool packs contiguous index ranges into one job
/// each while `f` still observes items one at a time.
fn par_map_merging<T, R>(
    pool: &ThreadPool,
    ctx: &mut CompileContext,
    pass: &str,
    items: Vec<T>,
    f: impl Fn(T, &mut CompileContext) -> R + Sync,
) -> Vec<R>
where
    T: Send,
    R: Send,
{
    ctx.time(pass, |_| ());
    let mapped = pool.par_map_chunked(items, |item| {
        let mut worker = CompileContext::scratch();
        let out = f(item, &mut worker);
        (out, worker)
    });
    let mut results = Vec::with_capacity(mapped.len());
    for (out, worker) in mapped {
        ctx.merge(worker);
        results.push(out);
    }
    results
}

/// One segment of a [`RoutedProgram`].
#[derive(Debug, Clone, PartialEq)]
pub enum RoutedSegment {
    /// A layer of single-qubit gates, passed through unchanged.
    OneQubit(Vec<(Qubit, OneQubitGate)>),
    /// One Rydberg stage together with its layout-transition plan.
    Stage(RoutedStage),
}

/// A stage paired with the movement plan that realizes its layout.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutedStage {
    /// The Rydberg stage.
    pub stage: Stage,
    /// The continuous router's movement plan for the stage transition.
    pub routing: StageRouting,
}

/// The output of [`RoutePass`]: the staged program plus, per stage, the
/// direct layout-transition plan computed by the continuous router.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutedProgram {
    num_qubits: u32,
    initial_layout: Layout,
    uses_storage: bool,
    segments: Vec<RoutedSegment>,
}

impl RoutedProgram {
    /// Program width in qubits.
    #[must_use]
    pub const fn num_qubits(&self) -> u32 {
        self.num_qubits
    }

    /// The qubit layout before the first instruction.
    #[must_use]
    pub fn initial_layout(&self) -> &Layout {
        &self.initial_layout
    }

    /// Whether the storage zone is in use.
    #[must_use]
    pub const fn uses_storage(&self) -> bool {
        self.uses_storage
    }

    /// The routed segments in program order.
    #[must_use]
    pub fn segments(&self) -> &[RoutedSegment] {
        &self.segments
    }
}

/// Pass 3: runs the configured [`RoutingStrategy`] over every stage,
/// producing the direct layout transitions (no reversion to an initial
/// layout, Sec. 5).
///
/// This pass is inherently sequential: the strategy threads one mutable
/// [`RoutingState`] through the stage sequence, so each transition depends
/// on the one before it. Parallelism lives in the neighbouring passes
/// instead. Strategies that declare a lookahead window
/// ([`RoutingStrategy::lookahead`]) are handed the next stages of the same
/// commuting CZ block alongside each stage.
#[derive(Clone)]
pub struct RoutePass {
    use_storage: bool,
    strategy: Arc<dyn RoutingStrategy>,
}

impl fmt::Debug for RoutePass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RoutePass")
            .field("use_storage", &self.use_storage)
            .field("strategy", &self.strategy.name())
            .finish()
    }
}

impl RoutePass {
    /// Name under which the pass reports its timing.
    pub const NAME: &'static str = "route";

    /// Creates the pass with the greedy strategy; `use_storage` parks idle
    /// qubits in the storage zone.
    #[must_use]
    pub fn new(use_storage: bool) -> Self {
        RoutePass {
            use_storage,
            strategy: Arc::new(GreedyRouter),
        }
    }

    /// Replaces the routing strategy.
    #[must_use]
    pub fn with_strategy(mut self, strategy: Arc<dyn RoutingStrategy>) -> Self {
        self.strategy = strategy;
        self
    }

    /// Runs the pass.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::Hardware`] if the machine cannot host the
    /// program, or [`CompileError::NoFreeSite`] if the router runs out of
    /// free sites.
    pub fn run(
        &self,
        staged: &StagedProgram,
        arch: &Architecture,
        ctx: &mut CompileContext,
    ) -> Result<RoutedProgram, CompileError> {
        ctx.time(Self::NAME, |ctx| {
            let num_qubits = staged.num_qubits();
            // Initial layout: entirely in storage for the with-storage mode
            // (Sec. 4.2), row-major in the computation zone otherwise.
            let initial_zone = if self.use_storage && arch.grid().num_storage_sites() > 0 {
                Zone::Storage
            } else {
                Zone::Compute
            };
            let initial_layout =
                Layout::row_major(arch, num_qubits, initial_zone).map_err(|_| {
                    CompileError::Hardware(
                        powermove_hardware::HardwareError::InsufficientCapacity {
                            qubits: num_qubits,
                            sites: arch.grid().num_sites(),
                        },
                    )
                })?;
            let uses_storage = self.use_storage && initial_zone == Zone::Storage;

            let mut state = RoutingState::new(arch.clone(), initial_layout.clone(), uses_storage);
            let lookahead = self.strategy.lookahead();
            let mut segments = Vec::with_capacity(staged.segments().len());
            for segment in staged.segments() {
                match segment {
                    StagedSegment::OneQubit(gates) => {
                        segments.push(RoutedSegment::OneQubit(gates.clone()));
                    }
                    StagedSegment::Stages(stages) => {
                        for (i, stage) in stages.iter().enumerate() {
                            let window_end = (i + 1).saturating_add(lookahead).min(stages.len());
                            let upcoming = &stages[i + 1..window_end];
                            let routing = self.strategy.route_stage(&mut state, stage, upcoming)?;
                            ctx.count("storage_moves", routing.storage_moves.len() as u64);
                            ctx.count("interaction_moves", routing.interaction_moves.len() as u64);
                            segments.push(RoutedSegment::Stage(RoutedStage {
                                stage: stage.clone(),
                                routing,
                            }));
                        }
                    }
                }
            }
            // Free-site search totals for the whole program: candidates the
            // planner examined and candidates the spatial index pruned.
            let (site_scans, sites_pruned) = state.scan_counters();
            ctx.count(crate::routing::SITE_SCANS, site_scans);
            ctx.count(crate::routing::SITES_PRUNED, sites_pruned);
            Ok(RoutedProgram {
                num_qubits,
                initial_layout,
                uses_storage,
                segments,
            })
        })
    }
}

/// Pass 4: lowers each stage's movement plan into move-group instructions
/// through the configured [`RoutingStrategy::schedule_moves`] — grouping
/// single-qubit moves into AOD-compatible collective moves and packing them
/// onto the available AOD arrays (Sec. 6) — and emits the instruction
/// stream.
///
/// The scheduling of one stage depends only on that stage's routing plan,
/// so the pass fans the routed segments out over the given [`ThreadPool`]
/// and concatenates the per-segment instruction runs in program order —
/// identical output for every worker count.
#[derive(Clone)]
pub struct MovePass {
    use_grouping: bool,
    strategy: Arc<dyn RoutingStrategy>,
}

impl fmt::Debug for MovePass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MovePass")
            .field("use_grouping", &self.use_grouping)
            .field("strategy", &self.strategy.name())
            .finish()
    }
}

impl MovePass {
    /// Name under which the pass reports its timing.
    pub const NAME: &'static str = "moves";

    /// Creates the pass with the greedy strategy; disabling `use_grouping`
    /// emits every single-qubit move as its own collective move (the
    /// grouping-ablation configuration).
    #[must_use]
    pub fn new(use_grouping: bool) -> Self {
        MovePass {
            use_grouping,
            strategy: Arc::new(GreedyRouter),
        }
    }

    /// Replaces the routing strategy whose
    /// [`RoutingStrategy::schedule_moves`] lowers each stage.
    #[must_use]
    pub fn with_strategy(mut self, strategy: Arc<dyn RoutingStrategy>) -> Self {
        self.strategy = strategy;
        self
    }

    /// Runs the pass, emitting the final instruction stream. Independent
    /// routed stages are scheduled concurrently on `pool`.
    #[must_use]
    pub fn run(
        &self,
        routed: &RoutedProgram,
        arch: &Architecture,
        pool: &ThreadPool,
        ctx: &mut CompileContext,
    ) -> Vec<Instruction> {
        let jobs: Vec<&RoutedSegment> = routed.segments().iter().collect();
        let runs = par_map_merging(pool, ctx, Self::NAME, jobs, |segment, worker| {
            match segment {
                RoutedSegment::OneQubit(gates) => {
                    vec![Instruction::one_qubit_layer(gates.clone())]
                }
                RoutedSegment::Stage(RoutedStage { stage, routing }) => {
                    worker.time(Self::NAME, |worker| {
                        // The strategy decides grouping, ordering and AOD
                        // packing; the greedy default realizes the
                        // move-in-first policy of Sec. 6.1 (storage-bound
                        // moves strictly before interactions, so a vacated
                        // site is free before an interaction arrives).
                        let mut packed =
                            self.strategy
                                .schedule_moves(routing, arch, self.use_grouping);
                        let coll_moves: usize = packed
                            .iter()
                            .map(|i| match i {
                                Instruction::MoveGroup { coll_moves } => coll_moves.len(),
                                _ => 0,
                            })
                            .sum();
                        worker.count("coll_moves", coll_moves as u64);
                        worker.count("move_groups", packed.len() as u64);
                        packed.push(Instruction::rydberg(stage.gates().to_vec()));
                        packed
                    })
                }
            }
        });
        runs.into_iter().flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CompilerConfig, PowerMoveCompiler};
    use powermove_exec::Parallelism;

    fn q(i: u32) -> Qubit {
        Qubit::new(i)
    }

    fn pool() -> ThreadPool {
        ThreadPool::new(Parallelism::fixed(2))
    }

    fn ring_circuit(n: u32) -> Circuit {
        let mut c = Circuit::new(n);
        for i in 0..n {
            c.h(q(i)).unwrap();
        }
        for i in 0..n {
            c.cz(q(i), q((i + 1) % n)).unwrap();
        }
        c
    }

    #[test]
    fn context_accumulates_timings_by_name() {
        let mut ctx = CompileContext::new();
        ctx.time("stage", |_| {
            std::thread::sleep(std::time::Duration::from_millis(1))
        });
        ctx.time("stage", |_| {
            std::thread::sleep(std::time::Duration::from_millis(1))
        });
        ctx.time("route", |_| ());
        assert_eq!(ctx.timings().len(), 2);
        assert!(ctx.timings()[0].seconds >= 0.002);
        let metadata = ctx.finish("powermove", true, 3, 1);
        assert_eq!(metadata.num_stages, 3);
        assert!(metadata.pass_seconds("stage").unwrap() >= 0.002);
        assert!(metadata.compile_time.unwrap() >= metadata.total_pass_seconds());
    }

    #[test]
    fn context_accumulates_counters_by_name() {
        let mut ctx = CompileContext::new();
        ctx.count("stages", 2);
        ctx.count("stages", 3);
        ctx.count("coll_moves", 1);
        let metadata = ctx.finish("x", false, 0, 1);
        assert_eq!(metadata.counter("stages"), Some(5));
        assert_eq!(metadata.counter("coll_moves"), Some(1));
        assert_eq!(metadata.counter("missing"), None);
    }

    #[test]
    fn synthesis_pass_counts_blocks() {
        let mut ctx = CompileContext::new();
        let blocks = SynthesisPass.run(&ring_circuit(4), &mut ctx);
        assert_eq!(blocks.num_qubits(), 4);
        assert!(ctx.counters().iter().any(|c| c.name == "cz_blocks"));
        assert!(ctx.timings().iter().any(|t| t.pass == SynthesisPass::NAME));
    }

    #[test]
    fn stage_pass_partitions_every_gate() {
        let mut ctx = CompileContext::new();
        let blocks = SynthesisPass.run(&ring_circuit(6), &mut ctx);
        let staged = StagePass::new(0.5).run(&blocks, &pool(), &mut ctx);
        let staged_gates: usize = staged
            .segments()
            .iter()
            .map(|s| match s {
                StagedSegment::Stages(stages) => stages.iter().map(Stage::len).sum(),
                StagedSegment::OneQubit(_) => 0,
            })
            .sum();
        assert_eq!(staged_gates, 6);
        assert!(staged.num_stages() >= 2, "a 6-ring needs >= 2 stages");
        assert_eq!(
            ctx.counters()
                .iter()
                .find(|c| c.name == "stages")
                .unwrap()
                .value,
            staged.num_stages() as u64
        );
    }

    #[test]
    fn route_pass_routes_every_stage() {
        let arch = Architecture::for_qubits(6);
        let mut ctx = CompileContext::new();
        let blocks = SynthesisPass.run(&ring_circuit(6), &mut ctx);
        let staged = StagePass::new(0.5).run(&blocks, &pool(), &mut ctx);
        let routed = RoutePass::new(true).run(&staged, &arch, &mut ctx).unwrap();
        let routed_stage_count = routed
            .segments()
            .iter()
            .filter(|s| matches!(s, RoutedSegment::Stage(_)))
            .count();
        assert_eq!(routed_stage_count, staged.num_stages());
        assert!(routed.uses_storage());
        for (_, site) in routed.initial_layout().iter() {
            assert_eq!(arch.grid().zone_of(site), Zone::Storage);
        }
    }

    #[test]
    fn route_pass_reports_capacity_errors() {
        let mut ctx = CompileContext::new();
        let blocks = SynthesisPass.run(&ring_circuit(10), &mut ctx);
        let staged = StagePass::new(0.5).run(&blocks, &pool(), &mut ctx);
        let tiny = Architecture::for_qubits(10)
            .with_grid(powermove_hardware::ZonedGrid::with_dims(2, 2, 4).unwrap());
        let result = RoutePass::new(true).run(&staged, &tiny, &mut ctx);
        assert!(matches!(result, Err(CompileError::Hardware(_))));
    }

    #[test]
    fn move_pass_emits_rydberg_per_stage() {
        let arch = Architecture::for_qubits(6);
        let mut ctx = CompileContext::new();
        let blocks = SynthesisPass.run(&ring_circuit(6), &mut ctx);
        let staged = StagePass::new(0.5).run(&blocks, &pool(), &mut ctx);
        let routed = RoutePass::new(true).run(&staged, &arch, &mut ctx).unwrap();
        let instructions = MovePass::new(true).run(&routed, &arch, &pool(), &mut ctx);
        let rydberg = instructions
            .iter()
            .filter(|i| matches!(i, Instruction::RydbergStage { .. }))
            .count();
        assert_eq!(rydberg, staged.num_stages());
    }

    #[test]
    fn disabling_grouping_yields_singleton_coll_moves() {
        let arch = Architecture::for_qubits(8);
        let circuit = ring_circuit(8);

        let grouped = PowerMoveCompiler::new(CompilerConfig::default())
            .compile(&circuit, &arch)
            .unwrap();
        let ungrouped = PowerMoveCompiler::new(CompilerConfig::default().without_grouping())
            .compile(&circuit, &arch)
            .unwrap();

        // Every collective move in the ablation carries exactly one qubit.
        for cm in ungrouped.coll_moves() {
            assert_eq!(cm.len(), 1);
        }
        // Identical gates either way; at least as many collective moves
        // without grouping.
        assert_eq!(grouped.cz_gate_count(), ungrouped.cz_gate_count());
        assert!(ungrouped.coll_move_count() >= grouped.coll_move_count());
        assert!(powermove_schedule::validate(&ungrouped).is_ok());
    }

    #[test]
    fn backend_trait_compiles_blocks_and_circuits() {
        let arch = Architecture::for_qubits(4);
        let compiler = PowerMoveCompiler::new(CompilerConfig::default());
        let backend: &dyn CompilerBackend = &compiler;
        assert_eq!(backend.name(), "powermove");
        assert!(backend.config_description().contains("storage"));

        let mut circuit = Circuit::new(4);
        circuit.cz(q(0), q(1)).unwrap();
        circuit.cz(q(2), q(3)).unwrap();
        let via_circuit = backend.compile_circuit(&circuit, &arch).unwrap();
        let via_blocks = backend
            .compile(&BlockProgram::from_circuit(&circuit), &arch)
            .unwrap();
        assert_eq!(via_circuit.cz_gate_count(), 2);
        assert_eq!(via_circuit.cz_gate_count(), via_blocks.cz_gate_count());
        // The circuit entry point also times synthesis.
        assert!(via_circuit
            .metadata()
            .pass_seconds(SynthesisPass::NAME)
            .is_some());
    }

    #[test]
    fn pipeline_metadata_reports_every_pass() {
        let arch = Architecture::for_qubits(8);
        let program = PowerMoveCompiler::new(CompilerConfig::default())
            .compile(&ring_circuit(8), &arch)
            .unwrap();
        let metadata = program.metadata();
        for pass in [
            SynthesisPass::NAME,
            StagePass::NAME,
            RoutePass::NAME,
            MovePass::NAME,
        ] {
            assert!(
                metadata.pass_seconds(pass).is_some(),
                "missing pass timing {pass}"
            );
        }
        assert!(metadata.counter("stages").unwrap() >= 2);
        assert!(metadata.counter("coll_moves").unwrap() > 0);
        assert!(metadata.compile_time.is_some());
    }

    #[test]
    fn merge_folds_timings_and_counters_by_name() {
        let mut main = CompileContext::new();
        main.count("stages", 2);
        main.time("stage", |_| ());

        let mut worker_a = CompileContext::scratch();
        worker_a.count("stages", 3);
        worker_a.time("stage", |_| {
            std::thread::sleep(std::time::Duration::from_millis(1))
        });
        let mut worker_b = CompileContext::scratch();
        worker_b.count("coll_moves", 7);
        worker_b.time("moves", |_| ());

        main.merge(worker_a);
        main.merge(worker_b);

        let metadata = main.finish("x", false, 0, 1);
        assert_eq!(metadata.counter("stages"), Some(5));
        assert_eq!(metadata.counter("coll_moves"), Some(7));
        assert!(metadata.pass_seconds("stage").unwrap() >= 0.001);
        assert!(metadata.pass_seconds("moves").is_some());
        // finish() lays the timings out in canonical pipeline order.
        assert_eq!(metadata.pass_timings[0].pass, "stage");
        assert_eq!(metadata.pass_timings[1].pass, "moves");
    }

    #[test]
    fn finish_sorts_pass_timings_canonically() {
        // Record in scrambled order, as racing workers merged in completion
        // order would; the metadata layout must not depend on it.
        let mut ctx = CompileContext::new();
        for pass in [
            "zeta_extra",
            "moves",
            "route",
            "alpha_extra",
            "stage",
            "synthesis",
        ] {
            ctx.time(pass, |_| ());
        }
        let metadata = ctx.finish("x", false, 0, 1);
        let order: Vec<&str> = metadata
            .pass_timings
            .iter()
            .map(|t| t.pass.as_str())
            .collect();
        assert_eq!(
            order,
            vec![
                "synthesis",
                "stage",
                "route",
                "moves",
                "alpha_extra",
                "zeta_extra"
            ]
        );
    }

    #[test]
    fn stage_then_emit_matches_monolithic_compile() {
        use powermove_schedule::canonical_program_bytes;
        let mut circuit = Circuit::new(6);
        for i in 0..6_u32 {
            circuit.cz(Qubit::new(i), Qubit::new((i + 1) % 6)).unwrap();
        }
        let compiler = PowerMoveCompiler::new(CompilerConfig::default());
        let arch = Architecture::for_qubits(6).with_num_aods(2);
        let monolithic = compiler.compile(&circuit, &arch).unwrap();
        let ir = compiler.stage(&circuit);
        let split = compiler.emit(&ir, &arch).unwrap();
        assert_eq!(
            canonical_program_bytes(&split),
            canonical_program_bytes(&monolithic),
            "the stage/emit split must not change the emitted program"
        );
        // Front-end records survive into the emitted metadata.
        assert_eq!(
            split.metadata().counter("cz_blocks"),
            monolithic.metadata().counter("cz_blocks")
        );
    }

    #[test]
    fn scratch_context_has_no_end_to_end_clock() {
        let ctx = CompileContext::scratch();
        let metadata = ctx.finish("x", false, 0, 1);
        assert!(metadata.compile_time.is_none());
    }

    #[test]
    fn selected_strategy_survives_merge_and_finish() {
        let mut ctx = CompileContext::new();
        assert_eq!(ctx.selected_strategy(), None);
        ctx.select_strategy("multi-aod");
        assert_eq!(ctx.selected_strategy(), Some("multi-aod"));
        // A merged scratch never overwrites an existing selection …
        let mut scratch = CompileContext::scratch();
        scratch.select_strategy("greedy");
        ctx.merge(scratch);
        assert_eq!(ctx.selected_strategy(), Some("multi-aod"));
        // … but fills an empty one.
        let mut fresh = CompileContext::new();
        let mut scratch = CompileContext::scratch();
        scratch.select_strategy("lookahead");
        fresh.merge(scratch);
        assert_eq!(fresh.selected_strategy(), Some("lookahead"));
        let metadata = ctx.finish("powermove", true, 0, 1);
        assert_eq!(metadata.selected_strategy.as_deref(), Some("multi-aod"));
    }

    #[test]
    fn stage_pass_output_is_identical_across_worker_counts() {
        let blocks = BlockProgram::from_circuit(&ring_circuit(12));
        let mut ctx1 = CompileContext::new();
        let mut ctx8 = CompileContext::new();
        let sequential =
            StagePass::new(0.5).run(&blocks, &ThreadPool::new(Parallelism::fixed(1)), &mut ctx1);
        let parallel =
            StagePass::new(0.5).run(&blocks, &ThreadPool::new(Parallelism::fixed(8)), &mut ctx8);
        assert_eq!(sequential, parallel);
        // The merged counters match too — only timings may differ.
        assert_eq!(
            ctx1.counters()
                .iter()
                .find(|c| c.name == "stages")
                .map(|c| c.value),
            ctx8.counters()
                .iter()
                .find(|c| c.name == "stages")
                .map(|c| c.value)
        );
    }

    #[test]
    fn move_pass_output_is_identical_across_worker_counts() {
        let arch = Architecture::for_qubits(12);
        let mut ctx = CompileContext::new();
        let blocks = SynthesisPass.run(&ring_circuit(12), &mut ctx);
        let staged = StagePass::new(0.5).run(&blocks, &pool(), &mut ctx);
        let routed = RoutePass::new(true).run(&staged, &arch, &mut ctx).unwrap();
        let sequential = MovePass::new(true).run(
            &routed,
            &arch,
            &ThreadPool::new(Parallelism::fixed(1)),
            &mut CompileContext::new(),
        );
        let parallel = MovePass::new(true).run(
            &routed,
            &arch,
            &ThreadPool::new(Parallelism::fixed(8)),
            &mut CompileContext::new(),
        );
        assert_eq!(sequential, parallel);
    }

    #[test]
    fn parallel_passes_still_record_their_timing_for_empty_programs() {
        let mut ctx = CompileContext::new();
        let blocks = BlockProgram::from_circuit(&Circuit::new(3));
        let staged = StagePass::new(0.5).run(&blocks, &pool(), &mut ctx);
        assert_eq!(staged.num_stages(), 0);
        assert!(ctx.timings().iter().any(|t| t.pass == StagePass::NAME));
    }

    #[test]
    fn staged_program_reports_stage_totals() {
        let mut ctx = CompileContext::new();
        let mut circuit = Circuit::new(3);
        circuit.cz(q(0), q(1)).unwrap();
        circuit.cz(q(1), q(2)).unwrap();
        let blocks = SynthesisPass.run(&circuit, &mut ctx);
        let staged = StagePass::new(0.5).run(&blocks, &pool(), &mut ctx);
        assert_eq!(staged.num_qubits(), 3);
        assert_eq!(staged.num_stages(), 2);
    }
}
