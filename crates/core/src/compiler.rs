//! The end-to-end PowerMove compilation pipeline.

use crate::pipeline::{
    CompileContext, CompilerBackend, MovePass, RoutePass, RoutedProgram, StagePass, StagedProgram,
    SynthesisPass,
};
use crate::routing::{AutoRouter, RoutingStrategy};
use crate::{CompileError, CompilerConfig};
use powermove_circuit::{BlockProgram, Circuit};
use powermove_exec::{Parallelism, ThreadPool};
use powermove_hardware::Architecture;
use powermove_schedule::{CompiledProgram, Instruction, MovementClock, PassCounter, PassTiming};
use std::fmt;
use std::sync::Arc;

/// Compiles a circuit for an architecture under a configuration — the pure
/// front door of the pipeline.
///
/// Compilation is a **pure function** of this immutable input triple: the
/// compiler holds no hidden pipeline state, so equal triples always emit
/// byte-identical programs (modulo wall-clock pass timings, which are
/// measurements, not content). That purity is what makes the emitted
/// program cacheable by [`content_hash`](crate::content_hash) — the basis
/// of the `powermove-service` schedule cache — and identical concurrent
/// requests safely coalescible onto one compile.
///
/// # Example
///
/// ```
/// use powermove::CompilerConfig;
/// use powermove_circuit::{Circuit, Qubit};
/// use powermove_hardware::Architecture;
/// use powermove_schedule::canonical_program_bytes;
///
/// # fn main() -> Result<(), powermove::CompileError> {
/// let mut circuit = Circuit::new(2);
/// circuit.cz(Qubit::new(0), Qubit::new(1))?;
/// let arch = Architecture::for_qubits(2);
/// let config = CompilerConfig::default();
///
/// let once = powermove::compile(&circuit, &arch, &config)?;
/// let again = powermove::compile(&circuit, &arch, &config)?;
/// assert_eq!(
///     canonical_program_bytes(&once),
///     canonical_program_bytes(&again),
/// );
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Same as [`PowerMoveCompiler::compile`].
pub fn compile(
    circuit: &Circuit,
    arch: &Architecture,
    config: &CompilerConfig,
) -> Result<CompiledProgram, CompileError> {
    PowerMoveCompiler::new(*config).compile(circuit, arch)
}

/// A frozen staged IR: the output of the compiler front end
/// ([`PowerMoveCompiler::stage`]) and the input of the back end
/// ([`PowerMoveCompiler::emit`]).
///
/// The IR is immutable and architecture-independent — synthesis and stage
/// partitioning depend only on the circuit and the configuration — so one
/// staged IR can be emitted for several architectures (different AOD
/// counts, grids or physical parameters) without re-running the front end.
/// It carries the front end's pass timings and work counters along, so a
/// program emitted from a staged IR reports the same deterministic
/// counters as one produced by the all-in-one [`PowerMoveCompiler::compile`].
#[derive(Debug, Clone, PartialEq)]
pub struct StagedIr {
    staged: StagedProgram,
    timings: Vec<PassTiming>,
    counters: Vec<PassCounter>,
}

impl StagedIr {
    /// The staged program.
    #[must_use]
    pub fn staged(&self) -> &StagedProgram {
        &self.staged
    }

    /// Program width in qubits.
    #[must_use]
    pub fn num_qubits(&self) -> u32 {
        self.staged.num_qubits()
    }

    /// Total number of Rydberg stages across all CZ blocks.
    #[must_use]
    pub fn num_stages(&self) -> usize {
        self.staged.num_stages()
    }

    /// Pass timings recorded by the front end (synthesis + staging).
    #[must_use]
    pub fn front_end_timings(&self) -> &[PassTiming] {
        &self.timings
    }

    /// Work counters recorded by the front end.
    #[must_use]
    pub fn front_end_counters(&self) -> &[PassCounter] {
        &self.counters
    }
}

/// A routing session: the back-end replay surface over one frozen staged
/// program.
///
/// A session borrows the shared front-end output and replays **only the
/// back end** — `RoutePass → MovePass` — once per
/// [`RoutingSession::replay`] call, each time with a different strategy
/// and/or architecture. This is the hot path of portfolio auto-tuning
/// (stage once, route N candidates) and of architecture sweeps; replays are
/// independent, so callers fan them out across a thread pool freely (the
/// session is `Send + Sync`).
///
/// Obtain one from [`PowerMoveCompiler::session`] (which fixes the
/// storage/grouping knobs from the compiler configuration) or construct it
/// directly from a [`StagedProgram`].
///
/// # Example
///
/// ```
/// use powermove::{CompilerConfig, GreedyRouter, MultiAodScheduler, PowerMoveCompiler};
/// use powermove_circuit::{Circuit, Qubit};
/// use powermove_hardware::Architecture;
/// use std::sync::Arc;
///
/// # fn main() -> Result<(), powermove::CompileError> {
/// let mut circuit = Circuit::new(4);
/// circuit.cz(Qubit::new(0), Qubit::new(1))?;
/// circuit.cz(Qubit::new(2), Qubit::new(3))?;
/// let compiler = PowerMoveCompiler::new(CompilerConfig::default());
/// let arch = Architecture::for_qubits(4).with_num_aods(2);
///
/// // One front-end pass, two back-end replays.
/// let ir = compiler.stage(&circuit);
/// let session = compiler.session(&ir);
/// let greedy = session.replay(&arch, Arc::new(GreedyRouter))?;
/// let multi = session.replay(&arch, Arc::new(MultiAodScheduler::default()))?;
/// assert!(multi.movement_wall_clock() <= greedy.movement_wall_clock());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct RoutingSession<'a> {
    staged: &'a StagedProgram,
    use_storage: bool,
    use_grouping: bool,
}

impl<'a> RoutingSession<'a> {
    /// Creates a session over a frozen staged program.
    #[must_use]
    pub fn new(staged: &'a StagedProgram, use_storage: bool, use_grouping: bool) -> Self {
        RoutingSession {
            staged,
            use_storage,
            use_grouping,
        }
    }

    /// The shared staged program every replay starts from.
    #[must_use]
    pub fn staged(&self) -> &'a StagedProgram {
        self.staged
    }

    /// Replays the back end — routing plus move scheduling — for one
    /// strategy on one architecture.
    ///
    /// Each replay runs on its own scratch pass context and an inline
    /// (single-worker) pool, so its output is deterministic and independent
    /// of any other replay; the movement wall clock is folded incrementally
    /// while instructions stream out of move scheduling (bit-identical to
    /// [`movement_wall_clock`](crate::movement_wall_clock) over the final
    /// stream).
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::NoFreeSite`] if the strategy runs out of
    /// free sites.
    pub fn replay(
        &self,
        arch: &Architecture,
        strategy: Arc<dyn RoutingStrategy>,
    ) -> Result<Replay, CompileError> {
        let mut scratch = CompileContext::scratch();
        let inline = ThreadPool::new(Parallelism::fixed(1));
        let routed = RoutePass::new(self.use_storage)
            .with_strategy(strategy.clone())
            .run(self.staged, arch, &mut scratch)?;
        let instructions = MovePass::new(self.use_grouping)
            .with_strategy(strategy)
            .run(&routed, arch, &inline, &mut scratch);
        let mut clock = MovementClock::new();
        let mut transfers = 0_usize;
        for instruction in &instructions {
            clock.observe(instruction, arch);
            transfers += instruction.transfer_count();
        }
        let (timings, counters) = scratch.into_parts();
        Ok(Replay {
            routed,
            instructions,
            movement: clock.total(),
            transfers,
            timings,
            counters,
        })
    }
}

/// The outcome of one [`RoutingSession::replay`]: the routed program, its
/// instruction stream, the replay's scoring metrics and the back-end pass
/// records.
#[derive(Debug, Clone)]
pub struct Replay {
    pub(crate) routed: RoutedProgram,
    pub(crate) instructions: Vec<Instruction>,
    pub(crate) movement: f64,
    pub(crate) transfers: usize,
    pub(crate) timings: Vec<PassTiming>,
    pub(crate) counters: Vec<PassCounter>,
}

impl Replay {
    /// The routed program.
    #[must_use]
    pub fn routed(&self) -> &RoutedProgram {
        &self.routed
    }

    /// The emitted instruction stream.
    #[must_use]
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// Total movement wall clock of the instruction stream, in seconds —
    /// the auto-tuner's primary selection metric, folded incrementally
    /// during the replay.
    #[must_use]
    pub fn movement_wall_clock(&self) -> f64 {
        self.movement
    }

    /// Total number of SLM↔AOD trap transfers — the auto-tuner's
    /// tie-breaking metric.
    #[must_use]
    pub fn transfer_count(&self) -> usize {
        self.transfers
    }

    /// Pass timings recorded by the replay's back end.
    #[must_use]
    pub fn back_end_timings(&self) -> &[PassTiming] {
        &self.timings
    }

    /// Work counters recorded by the replay's back end.
    #[must_use]
    pub fn back_end_counters(&self) -> &[PassCounter] {
        &self.counters
    }
}

/// The PowerMove compiler.
///
/// Compilation runs the pass pipeline of [`crate::pipeline`]:
///
/// 1. [`SynthesisPass`]: synthesize the circuit into alternating 1Q layers
///    and commuting CZ blocks;
/// 2. [`StagePass`]: per block, partition the gates into Rydberg stages
///    (edge colouring) and order the stages to minimize inter-zone
///    interchange;
/// 3. [`RoutePass`]: per stage, run the continuous router to obtain the
///    direct layout transition;
/// 4. [`MovePass`]: group the single-qubit moves into AOD-compatible
///    collective moves, order them for maximum storage dwell time, pack them
///    onto the available AOD arrays, and emit the move groups followed by
///    the global Rydberg excitation.
///
/// Each pass reports wall-clock timing and work counters through a shared
/// [`CompileContext`]; the result lands in the program's
/// [`CompileMetadata`](powermove_schedule::CompileMetadata). The compiler
/// implements [`CompilerBackend`], so it can be registered with the
/// experiment harness as a trait object next to other strategies.
///
/// The [`StagePass`] and [`MovePass`] layers process independent CZ blocks
/// and routed stages concurrently on a work-stealing pool
/// ([`powermove_exec::ThreadPool`]); [`CompilerConfig::threads`] (or the
/// `POWERMOVE_THREADS` environment variable) controls the worker count and
/// the emitted program is byte-identical for every setting.
///
/// # Example
///
/// ```
/// use powermove::{CompilerConfig, PowerMoveCompiler};
/// use powermove_benchmarks as _;
/// use powermove_circuit::{Circuit, Qubit};
/// use powermove_hardware::Architecture;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut circuit = Circuit::new(3);
/// circuit.cz(Qubit::new(0), Qubit::new(1))?;
/// circuit.cz(Qubit::new(1), Qubit::new(2))?;
/// let program = PowerMoveCompiler::new(CompilerConfig::default())
///     .compile(&circuit, &Architecture::for_qubits(3))?;
/// assert_eq!(program.cz_gate_count(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Default)]
pub struct PowerMoveCompiler {
    config: CompilerConfig,
    strategy: Option<Arc<dyn RoutingStrategy>>,
}

impl fmt::Debug for PowerMoveCompiler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PowerMoveCompiler")
            .field("config", &self.config)
            .field("strategy", &self.strategy_name())
            .finish()
    }
}

impl PowerMoveCompiler {
    /// Creates a compiler with the given configuration.
    #[must_use]
    pub fn new(config: CompilerConfig) -> Self {
        PowerMoveCompiler {
            config,
            strategy: None,
        }
    }

    /// The compiler configuration.
    #[must_use]
    pub fn config(&self) -> &CompilerConfig {
        &self.config
    }

    /// Registers a custom routing strategy, overriding
    /// [`CompilerConfig::routing`](crate::CompilerConfig).
    ///
    /// This is the open end of the routing subsystem: any
    /// [`RoutingStrategy`] implementation drives [`RoutePass`] and
    /// [`MovePass`] exactly like the built-ins.
    ///
    /// ```
    /// use powermove::{
    ///     CompilerConfig, LookaheadRouter, PowerMoveCompiler,
    /// };
    /// use std::sync::Arc;
    ///
    /// let compiler = PowerMoveCompiler::new(CompilerConfig::default())
    ///     .with_strategy(Arc::new(LookaheadRouter::new(3)));
    /// assert_eq!(compiler.routing_strategy().name(), "lookahead");
    /// ```
    #[must_use]
    pub fn with_strategy(mut self, strategy: Arc<dyn RoutingStrategy>) -> Self {
        self.strategy = Some(strategy);
        self
    }

    /// The active routing strategy: the registered override, or the one
    /// built from [`CompilerConfig::routing`](crate::CompilerConfig). For an
    /// auto-tuning configuration this is the portfolio's greedy baseline
    /// (see [`RoutingConfig::build`](crate::RoutingConfig::build)) — the
    /// actual per-instance selection happens inside
    /// [`PowerMoveCompiler::compile`] through [`AutoRouter`].
    #[must_use]
    pub fn routing_strategy(&self) -> Arc<dyn RoutingStrategy> {
        self.strategy
            .clone()
            .unwrap_or_else(|| self.config.routing.build())
    }

    /// The display name of the active routing configuration: the registered
    /// override's name, or the configured strategy kind (`"auto"` /
    /// `"auto-model"` for auto-tuning configurations).
    #[must_use]
    pub fn strategy_name(&self) -> &str {
        match &self.strategy {
            Some(strategy) => strategy.name(),
            None => self.config.routing.strategy.name(),
        }
    }

    /// Compiles a circuit for the given architecture.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::Hardware`] if the machine cannot host the
    /// circuit, or [`CompileError::NoFreeSite`] if the router runs out of
    /// free sites (which cannot happen with the paper's default grid
    /// dimensions).
    pub fn compile(
        &self,
        circuit: &Circuit,
        arch: &Architecture,
    ) -> Result<CompiledProgram, CompileError> {
        let mut ctx = CompileContext::new();
        arch.check_capacity(circuit.num_qubits())?;
        let block_program = SynthesisPass.run(circuit, &mut ctx);
        self.compile_with_context(&block_program, arch, ctx)
    }

    /// Compiles an already-synthesized block program.
    ///
    /// # Errors
    ///
    /// Same as [`PowerMoveCompiler::compile`].
    pub fn compile_block_program(
        &self,
        block_program: &BlockProgram,
        arch: &Architecture,
    ) -> Result<CompiledProgram, CompileError> {
        let ctx = CompileContext::new();
        arch.check_capacity(block_program.num_qubits())?;
        self.compile_with_context(block_program, arch, ctx)
    }

    /// Runs the compiler front end: synthesis plus stage partitioning.
    ///
    /// The result is a frozen, architecture-independent [`StagedIr`] that
    /// [`PowerMoveCompiler::emit`] lowers onto a concrete machine. Staging
    /// once and emitting many times skips the front end on every
    /// architecture after the first:
    ///
    /// ```
    /// use powermove::{CompilerConfig, PowerMoveCompiler};
    /// use powermove_circuit::{Circuit, Qubit};
    /// use powermove_hardware::Architecture;
    ///
    /// # fn main() -> Result<(), powermove::CompileError> {
    /// let mut circuit = Circuit::new(4);
    /// circuit.cz(Qubit::new(0), Qubit::new(1))?;
    /// circuit.cz(Qubit::new(2), Qubit::new(3))?;
    /// let compiler = PowerMoveCompiler::new(CompilerConfig::default());
    ///
    /// let ir = compiler.stage(&circuit);
    /// assert_eq!(ir.num_qubits(), 4);
    /// for aods in [1, 2, 4] {
    ///     let arch = Architecture::for_qubits(4).with_num_aods(aods);
    ///     let program = compiler.emit(&ir, &arch)?;
    ///     assert_eq!(program.cz_gate_count(), 2);
    /// }
    /// # Ok(())
    /// # }
    /// ```
    #[must_use]
    pub fn stage(&self, circuit: &Circuit) -> StagedIr {
        // A scratch context: no end-to-end clock is running, so the IR
        // carries only per-pass records. `emit` starts the program clock.
        let mut ctx = CompileContext::scratch();
        let block_program = SynthesisPass.run(circuit, &mut ctx);
        let pool = ThreadPool::new(Parallelism::from_setting(self.config.threads));
        let staged = StagePass::new(self.config.alpha).run(&block_program, &pool, &mut ctx);
        let (timings, counters) = ctx.into_parts();
        StagedIr {
            staged,
            timings,
            counters,
        }
    }

    /// Runs the compiler back end: routing, move grouping and emission of a
    /// staged IR onto a concrete architecture.
    ///
    /// The emitted program's metadata folds in the front-end timings and
    /// counters carried by the IR, so it reports the same deterministic
    /// counters as an all-in-one [`PowerMoveCompiler::compile`] of the
    /// original circuit.
    ///
    /// # Errors
    ///
    /// Same as [`PowerMoveCompiler::compile`].
    pub fn emit(
        &self,
        ir: &StagedIr,
        arch: &Architecture,
    ) -> Result<CompiledProgram, CompileError> {
        arch.check_capacity(ir.num_qubits())?;
        let mut ctx = CompileContext::new();
        ctx.merge(CompileContext::from_parts(
            ir.timings.clone(),
            ir.counters.clone(),
        ));
        self.emit_staged(&ir.staged, arch, ctx)
    }

    /// Opens a [`RoutingSession`] over a staged IR, carrying the compiler's
    /// storage and grouping configuration.
    ///
    /// The session replays only the back end per call — see
    /// [`RoutingSession::replay`] and the session-level example.
    #[must_use]
    pub fn session<'a>(&self, ir: &'a StagedIr) -> RoutingSession<'a> {
        RoutingSession::new(
            &ir.staged,
            self.config.use_storage,
            self.config.use_grouping,
        )
    }

    /// Emits a staged IR with an explicit routing strategy, bypassing both
    /// the configured strategy and auto-tuning.
    ///
    /// This is [`PowerMoveCompiler::emit`] with the strategy pinned per
    /// call: one shared front-end pass ([`PowerMoveCompiler::stage`]) can be
    /// emitted under many strategies without restaging, and the output is
    /// byte-identical to a full compile configured with the same strategy.
    ///
    /// # Errors
    ///
    /// Same as [`PowerMoveCompiler::compile`].
    pub fn emit_with_strategy(
        &self,
        ir: &StagedIr,
        arch: &Architecture,
        strategy: Arc<dyn RoutingStrategy>,
    ) -> Result<CompiledProgram, CompileError> {
        arch.check_capacity(ir.num_qubits())?;
        let mut ctx = CompileContext::new();
        ctx.merge(CompileContext::from_parts(
            ir.timings.clone(),
            ir.counters.clone(),
        ));
        let replay = self.session(ir).replay(arch, strategy)?;
        let Replay {
            routed,
            instructions,
            timings,
            counters,
            ..
        } = replay;
        ctx.merge(CompileContext::from_parts(timings, counters));
        let metadata = ctx.finish(
            "powermove",
            self.config.use_storage,
            ir.num_stages(),
            arch.num_aods(),
        );
        Ok(CompiledProgram::new(
            arch.clone(),
            routed.num_qubits(),
            routed.initial_layout().clone(),
            instructions,
        )
        .with_metadata(metadata))
    }

    /// Runs the `StagePass → RoutePass → MovePass → emission` tail of the
    /// pipeline over an existing [`CompileContext`].
    fn compile_with_context(
        &self,
        block_program: &BlockProgram,
        arch: &Architecture,
        mut ctx: CompileContext,
    ) -> Result<CompiledProgram, CompileError> {
        // One pool per compilation: workers are only alive while a parallel
        // pass drains, and `threads == 1` (or `POWERMOVE_THREADS=1`) runs
        // the passes inline with byte-identical output.
        let pool = ThreadPool::new(Parallelism::from_setting(self.config.threads));
        let staged = StagePass::new(self.config.alpha).run(block_program, &pool, &mut ctx);
        self.emit_staged(&staged, arch, ctx)
    }

    /// Runs the `RoutePass → MovePass → emission` back end over an existing
    /// [`CompileContext`].
    fn emit_staged(
        &self,
        staged: &StagedProgram,
        arch: &Architecture,
        mut ctx: CompileContext,
    ) -> Result<CompiledProgram, CompileError> {
        let pool = ThreadPool::new(Parallelism::from_setting(self.config.threads));
        // An auto-tuning configuration (no custom override) is resolved per
        // instance: the AutoRouter picks the winning portfolio strategy and
        // records it in the metadata. Every other configuration runs the
        // fixed strategy through the same two passes.
        let (routed, instructions) =
            if self.strategy.is_none() && self.config.routing.strategy.is_auto() {
                AutoRouter::from_config(&self.config.routing).run(
                    staged,
                    arch,
                    self.config.use_storage,
                    self.config.use_grouping,
                    &pool,
                    &mut ctx,
                )?
            } else {
                let strategy = self.routing_strategy();
                let routed = RoutePass::new(self.config.use_storage)
                    .with_strategy(strategy.clone())
                    .run(staged, arch, &mut ctx)?;
                let instructions = MovePass::new(self.config.use_grouping)
                    .with_strategy(strategy)
                    .run(&routed, arch, &pool, &mut ctx);
                (routed, instructions)
            };

        let metadata = ctx.finish(
            "powermove",
            self.config.use_storage,
            staged.num_stages(),
            arch.num_aods(),
        );
        Ok(CompiledProgram::new(
            arch.clone(),
            routed.num_qubits(),
            routed.initial_layout().clone(),
            instructions,
        )
        .with_metadata(metadata))
    }
}

impl CompilerBackend for PowerMoveCompiler {
    fn name(&self) -> &str {
        "powermove"
    }

    fn config_description(&self) -> String {
        format!(
            "storage={}, alpha={}, grouping={}, routing={}",
            self.config.use_storage,
            self.config.alpha,
            self.config.use_grouping,
            self.strategy_name()
        )
    }

    fn compile(
        &self,
        blocks: &BlockProgram,
        arch: &Architecture,
    ) -> Result<CompiledProgram, CompileError> {
        self.compile_block_program(blocks, arch)
    }

    fn compile_circuit(
        &self,
        circuit: &Circuit,
        arch: &Architecture,
    ) -> Result<CompiledProgram, CompileError> {
        PowerMoveCompiler::compile(self, circuit, arch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powermove_circuit::Qubit;
    use powermove_fidelity::evaluate_program;
    use powermove_schedule::validate;

    fn q(i: u32) -> Qubit {
        Qubit::new(i)
    }

    fn compile(circuit: &Circuit, use_storage: bool, num_aods: usize) -> CompiledProgram {
        let arch = Architecture::for_qubits(circuit.num_qubits()).with_num_aods(num_aods);
        let config = if use_storage {
            CompilerConfig::default()
        } else {
            CompilerConfig::without_storage()
        };
        PowerMoveCompiler::new(config)
            .compile(circuit, &arch)
            .unwrap()
    }

    fn ring_circuit(n: u32) -> Circuit {
        let mut c = Circuit::new(n);
        for i in 0..n {
            c.h(q(i)).unwrap();
        }
        for i in 0..n {
            c.cz(q(i), q((i + 1) % n)).unwrap();
        }
        c
    }

    #[test]
    fn compiled_ring_is_valid_with_storage() {
        let p = compile(&ring_circuit(8), true, 1);
        assert!(validate(&p).is_ok());
        assert_eq!(p.cz_gate_count(), 8);
        assert!(p.metadata().uses_storage);
        assert!(p.metadata().compile_time.is_some());
        assert!(p.rydberg_stage_count() >= 2);
    }

    #[test]
    fn compiled_ring_is_valid_without_storage() {
        let p = compile(&ring_circuit(8), false, 1);
        assert!(validate(&p).is_ok());
        assert_eq!(p.cz_gate_count(), 8);
        assert!(!p.metadata().uses_storage);
    }

    #[test]
    fn one_qubit_gates_are_preserved() {
        let mut c = Circuit::new(4);
        for i in 0..4 {
            c.h(q(i)).unwrap();
        }
        c.cz(q(0), q(1)).unwrap();
        for i in 0..4 {
            c.rz(q(i), 0.3).unwrap();
        }
        let p = compile(&c, true, 1);
        assert_eq!(p.one_qubit_gate_count(), 8);
        assert!(validate(&p).is_ok());
    }

    #[test]
    fn routing_variants_compile_valid_programs_with_identical_gates() {
        use crate::RoutingConfig;
        let circuit = ring_circuit(12);
        let arch = Architecture::for_qubits(12).with_num_aods(3);
        let greedy = PowerMoveCompiler::new(CompilerConfig::default())
            .compile(&circuit, &arch)
            .unwrap();
        for routing in [RoutingConfig::lookahead(2), RoutingConfig::multi_aod()] {
            let variant = PowerMoveCompiler::new(CompilerConfig::default().with_routing(routing))
                .compile(&circuit, &arch)
                .unwrap();
            assert!(validate(&variant).is_ok());
            assert_eq!(variant.cz_gate_count(), greedy.cz_gate_count());
            assert_eq!(variant.metadata().num_aods, 3);
        }
    }

    #[test]
    fn multi_aod_scheduler_cuts_execution_time_at_two_plus_aods() {
        use crate::RoutingConfig;
        let circuit = ring_circuit(16);
        let arch = Architecture::for_qubits(16).with_num_aods(3);
        let greedy = PowerMoveCompiler::new(CompilerConfig::default())
            .compile(&circuit, &arch)
            .unwrap();
        let multi = PowerMoveCompiler::new(
            CompilerConfig::default().with_routing(RoutingConfig::multi_aod()),
        )
        .compile(&circuit, &arch)
        .unwrap();
        let t = |p: &CompiledProgram| evaluate_program(p).unwrap().execution_time;
        assert!(
            t(&multi) <= t(&greedy),
            "balanced windows must not lengthen the schedule"
        );
    }

    #[test]
    fn custom_strategy_overrides_the_config() {
        use crate::LookaheadRouter;
        use std::sync::Arc;
        let compiler = PowerMoveCompiler::new(CompilerConfig::default())
            .with_strategy(Arc::new(LookaheadRouter::new(1)));
        assert_eq!(compiler.routing_strategy().name(), "lookahead");
        let program = compiler
            .compile(&ring_circuit(8), &Architecture::for_qubits(8))
            .unwrap();
        assert!(validate(&program).is_ok());
        let debug = format!("{compiler:?}");
        assert!(debug.contains("lookahead"));
    }

    #[test]
    fn auto_routing_selects_per_instance_and_names_itself() {
        use crate::RoutingConfig;
        let compiler =
            PowerMoveCompiler::new(CompilerConfig::default().with_routing(RoutingConfig::auto()));
        assert_eq!(compiler.strategy_name(), "auto");
        assert!(compiler.config_description().contains("routing=auto"));
        let arch = Architecture::for_qubits(12).with_num_aods(3);
        let program = compiler.compile(&ring_circuit(12), &arch).unwrap();
        assert!(validate(&program).is_ok());
        assert!(program.metadata().selected_strategy.is_some());
        // A custom override beats the auto configuration.
        let pinned = compiler.with_strategy(std::sync::Arc::new(crate::GreedyRouter));
        assert_eq!(pinned.strategy_name(), "greedy");
        let program = pinned.compile(&ring_circuit(12), &arch).unwrap();
        assert!(program.metadata().selected_strategy.is_none());
    }

    #[test]
    fn metadata_records_the_resolved_aod_count() {
        let p = compile(&ring_circuit(8), true, 3);
        assert_eq!(p.metadata().num_aods, 3);
        let p = compile(&ring_circuit(8), true, 1);
        assert_eq!(p.metadata().num_aods, 1);
    }

    #[test]
    fn multi_aod_reduces_or_preserves_move_groups() {
        let circuit = ring_circuit(12);
        let single = compile(&circuit, true, 1);
        let quad = compile(&circuit, true, 4);
        assert!(quad.move_group_count() <= single.move_group_count());
        assert!(validate(&quad).is_ok());
        // Same gates either way.
        assert_eq!(single.cz_gate_count(), quad.cz_gate_count());
    }

    #[test]
    fn storage_mode_eliminates_excitation_exposure() {
        // Only qubits 0..6 interact; qubits 6..10 idle and are exposed to
        // every excitation unless parked in the storage zone.
        let mut circuit = Circuit::new(10);
        for i in 0..10 {
            circuit.h(q(i)).unwrap();
        }
        for i in 0..6_u32 {
            circuit.cz(q(i), q((i + 1) % 6)).unwrap();
        }
        let with = compile(&circuit, true, 1);
        let without = compile(&circuit, false, 1);
        let report_with = evaluate_program(&with).unwrap();
        let report_without = evaluate_program(&without).unwrap();
        assert_eq!(report_with.trace.excitation_exposure, 0);
        assert!(report_without.trace.excitation_exposure > 0);
        assert!(report_with.breakdown.excitation > report_without.breakdown.excitation);
    }

    #[test]
    fn empty_circuit_compiles_to_empty_program() {
        let c = Circuit::new(3);
        let p = compile(&c, true, 1);
        assert_eq!(p.num_instructions(), 0);
        assert!(validate(&p).is_ok());
    }

    #[test]
    fn capacity_error_is_reported() {
        let c = ring_circuit(10);
        let tiny = Architecture::for_qubits(10)
            .with_grid(powermove_hardware::ZonedGrid::with_dims(2, 2, 4).unwrap());
        let result = PowerMoveCompiler::new(CompilerConfig::default()).compile(&c, &tiny);
        assert!(matches!(result, Err(CompileError::Hardware(_))));
    }

    #[test]
    fn qaoa_like_workload_compiles_and_scores() {
        // A denser workload: two rounds of ring coupling plus cross links.
        let mut c = Circuit::new(9);
        for i in 0..9 {
            c.h(q(i)).unwrap();
        }
        for i in 0..9 {
            c.zz(q(i), q((i + 1) % 9), 0.4).unwrap();
        }
        for i in 0..4 {
            c.zz(q(i), q(i + 4), 0.4).unwrap();
        }
        let p = compile(&c, true, 1);
        assert!(validate(&p).is_ok());
        let report = evaluate_program(&p).unwrap();
        assert!(report.fidelity() > 0.0);
        assert!(report.execution_time > 0.0);
    }
}
