//! The end-to-end PowerMove compilation pipeline.

use crate::{
    group_moves, order_coll_moves, pack_move_groups, partition_stages, schedule_stages,
    CompileError, CompilerConfig, Router,
};
use powermove_circuit::{BlockProgram, Circuit, Segment};
use powermove_hardware::{Architecture, Zone};
use powermove_schedule::{CompileMetadata, CompiledProgram, Instruction, Layout};
use std::time::Instant;

/// The PowerMove compiler.
///
/// The pipeline is:
///
/// 1. synthesize the circuit into alternating 1Q layers and commuting CZ
///    blocks;
/// 2. per block, partition the gates into Rydberg stages (edge colouring)
///    and order the stages to minimize inter-zone interchange;
/// 3. per stage, run the continuous router to obtain the direct layout
///    transition, group the single-qubit moves into AOD-compatible
///    collective moves, order them for maximum storage dwell time and pack
///    them onto the available AOD arrays;
/// 4. emit the move groups followed by the global Rydberg excitation.
///
/// # Example
///
/// ```
/// use powermove::{CompilerConfig, PowerMoveCompiler};
/// use powermove_benchmarks as _;
/// use powermove_circuit::{Circuit, Qubit};
/// use powermove_hardware::Architecture;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut circuit = Circuit::new(3);
/// circuit.cz(Qubit::new(0), Qubit::new(1))?;
/// circuit.cz(Qubit::new(1), Qubit::new(2))?;
/// let program = PowerMoveCompiler::new(CompilerConfig::default())
///     .compile(&circuit, &Architecture::for_qubits(3))?;
/// assert_eq!(program.cz_gate_count(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct PowerMoveCompiler {
    config: CompilerConfig,
}

impl PowerMoveCompiler {
    /// Creates a compiler with the given configuration.
    #[must_use]
    pub fn new(config: CompilerConfig) -> Self {
        PowerMoveCompiler { config }
    }

    /// The compiler configuration.
    #[must_use]
    pub fn config(&self) -> &CompilerConfig {
        &self.config
    }

    /// Compiles a circuit for the given architecture.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::Hardware`] if the machine cannot host the
    /// circuit, or [`CompileError::NoFreeSite`] if the router runs out of
    /// free sites (which cannot happen with the paper's default grid
    /// dimensions).
    pub fn compile(
        &self,
        circuit: &Circuit,
        arch: &Architecture,
    ) -> Result<CompiledProgram, CompileError> {
        let start = Instant::now();
        let n = circuit.num_qubits();
        arch.check_capacity(n)?;

        let block_program = BlockProgram::from_circuit(circuit);
        self.compile_blocks(&block_program, arch, n, start)
    }

    /// Compiles an already-synthesized block program.
    ///
    /// # Errors
    ///
    /// Same as [`PowerMoveCompiler::compile`].
    pub fn compile_block_program(
        &self,
        block_program: &BlockProgram,
        arch: &Architecture,
    ) -> Result<CompiledProgram, CompileError> {
        let start = Instant::now();
        arch.check_capacity(block_program.num_qubits())?;
        self.compile_blocks(block_program, arch, block_program.num_qubits(), start)
    }

    fn compile_blocks(
        &self,
        block_program: &BlockProgram,
        arch: &Architecture,
        num_qubits: u32,
        start: Instant,
    ) -> Result<CompiledProgram, CompileError> {
        // Initial layout: entirely in storage for the with-storage mode
        // (Sec. 4.2), row-major in the computation zone otherwise.
        let initial_zone = if self.config.use_storage && arch.grid().num_storage_sites() > 0 {
            Zone::Storage
        } else {
            Zone::Compute
        };
        let initial_layout = Layout::row_major(arch, num_qubits, initial_zone)
            .map_err(|_| CompileError::Hardware(
                powermove_hardware::HardwareError::InsufficientCapacity {
                    qubits: num_qubits,
                    sites: arch.grid().num_sites(),
                },
            ))?;

        let mut router = Router::new(
            arch.clone(),
            initial_layout.clone(),
            self.config.use_storage && initial_zone == Zone::Storage,
        );
        let mut instructions: Vec<Instruction> = Vec::new();
        let mut num_stages = 0_usize;

        for segment in block_program.segments() {
            match segment {
                Segment::OneQubit(layer) => {
                    instructions.push(Instruction::one_qubit_layer(layer.gates().to_vec()));
                }
                Segment::Cz(block) => {
                    let stages = partition_stages(block);
                    let stages = schedule_stages(stages, self.config.alpha);
                    for stage in &stages {
                        let routing = router.route_stage(stage)?;
                        // Storage-bound (and separation) moves are grouped
                        // and emitted strictly before the interaction moves:
                        // this realizes the move-in-first policy of Sec. 6.1
                        // and guarantees that a site vacated towards storage
                        // is free before an interaction arrives at it.
                        let mut ordered =
                            order_coll_moves(group_moves(&routing.storage_moves, arch), arch);
                        ordered.extend(order_coll_moves(
                            group_moves(&routing.interaction_moves, arch),
                            arch,
                        ));
                        instructions.extend(pack_move_groups(ordered, arch.num_aods()));
                        instructions.push(Instruction::rydberg(stage.gates().to_vec()));
                        num_stages += 1;
                    }
                }
            }
        }

        let metadata = CompileMetadata {
            compiler: "powermove".to_string(),
            compile_time: Some(start.elapsed().as_secs_f64()),
            uses_storage: self.config.use_storage,
            num_stages,
        };
        Ok(
            CompiledProgram::new(arch.clone(), num_qubits, initial_layout, instructions)
                .with_metadata(metadata),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powermove_circuit::Qubit;
    use powermove_fidelity::evaluate_program;
    use powermove_schedule::validate;

    fn q(i: u32) -> Qubit {
        Qubit::new(i)
    }

    fn compile(circuit: &Circuit, use_storage: bool, num_aods: usize) -> CompiledProgram {
        let arch = Architecture::for_qubits(circuit.num_qubits()).with_num_aods(num_aods);
        let config = if use_storage {
            CompilerConfig::default()
        } else {
            CompilerConfig::without_storage()
        };
        PowerMoveCompiler::new(config).compile(circuit, &arch).unwrap()
    }

    fn ring_circuit(n: u32) -> Circuit {
        let mut c = Circuit::new(n);
        for i in 0..n {
            c.h(q(i)).unwrap();
        }
        for i in 0..n {
            c.cz(q(i), q((i + 1) % n)).unwrap();
        }
        c
    }

    #[test]
    fn compiled_ring_is_valid_with_storage() {
        let p = compile(&ring_circuit(8), true, 1);
        assert!(validate(&p).is_ok());
        assert_eq!(p.cz_gate_count(), 8);
        assert!(p.metadata().uses_storage);
        assert!(p.metadata().compile_time.is_some());
        assert!(p.rydberg_stage_count() >= 2);
    }

    #[test]
    fn compiled_ring_is_valid_without_storage() {
        let p = compile(&ring_circuit(8), false, 1);
        assert!(validate(&p).is_ok());
        assert_eq!(p.cz_gate_count(), 8);
        assert!(!p.metadata().uses_storage);
    }

    #[test]
    fn one_qubit_gates_are_preserved() {
        let mut c = Circuit::new(4);
        for i in 0..4 {
            c.h(q(i)).unwrap();
        }
        c.cz(q(0), q(1)).unwrap();
        for i in 0..4 {
            c.rz(q(i), 0.3).unwrap();
        }
        let p = compile(&c, true, 1);
        assert_eq!(p.one_qubit_gate_count(), 8);
        assert!(validate(&p).is_ok());
    }

    #[test]
    fn multi_aod_reduces_or_preserves_move_groups() {
        let circuit = ring_circuit(12);
        let single = compile(&circuit, true, 1);
        let quad = compile(&circuit, true, 4);
        assert!(quad.move_group_count() <= single.move_group_count());
        assert!(validate(&quad).is_ok());
        // Same gates either way.
        assert_eq!(single.cz_gate_count(), quad.cz_gate_count());
    }

    #[test]
    fn storage_mode_eliminates_excitation_exposure() {
        // Only qubits 0..6 interact; qubits 6..10 idle and are exposed to
        // every excitation unless parked in the storage zone.
        let mut circuit = Circuit::new(10);
        for i in 0..10 {
            circuit.h(q(i)).unwrap();
        }
        for i in 0..6_u32 {
            circuit.cz(q(i), q((i + 1) % 6)).unwrap();
        }
        let with = compile(&circuit, true, 1);
        let without = compile(&circuit, false, 1);
        let report_with = evaluate_program(&with).unwrap();
        let report_without = evaluate_program(&without).unwrap();
        assert_eq!(report_with.trace.excitation_exposure, 0);
        assert!(report_without.trace.excitation_exposure > 0);
        assert!(report_with.breakdown.excitation > report_without.breakdown.excitation);
    }

    #[test]
    fn empty_circuit_compiles_to_empty_program() {
        let c = Circuit::new(3);
        let p = compile(&c, true, 1);
        assert_eq!(p.num_instructions(), 0);
        assert!(validate(&p).is_ok());
    }

    #[test]
    fn capacity_error_is_reported() {
        let c = ring_circuit(10);
        let tiny =
            Architecture::for_qubits(10).with_grid(powermove_hardware::ZonedGrid::with_dims(2, 2, 4).unwrap());
        let result = PowerMoveCompiler::new(CompilerConfig::default()).compile(&c, &tiny);
        assert!(matches!(result, Err(CompileError::Hardware(_))));
    }

    #[test]
    fn qaoa_like_workload_compiles_and_scores() {
        // A denser workload: two rounds of ring coupling plus cross links.
        let mut c = Circuit::new(9);
        for i in 0..9 {
            c.h(q(i)).unwrap();
        }
        for i in 0..9 {
            c.zz(q(i), q((i + 1) % 9), 0.4).unwrap();
        }
        for i in 0..4 {
            c.zz(q(i), q(i + 4), 0.4).unwrap();
        }
        let p = compile(&c, true, 1);
        assert!(validate(&p).is_ok());
        let report = evaluate_program(&p).unwrap();
        assert!(report.fidelity() > 0.0);
        assert!(report.execution_time > 0.0);
    }
}
