//! Stage scheduling: ordering the stages of a block to minimize inter-zone
//! qubit interchange (Sec. 4.2 of the paper).

use crate::Stage;
use powermove_circuit::Qubit;
use std::collections::BTreeSet;

/// Orders the stages of one commuting CZ block.
///
/// The first stage is the one with the fewest interacting qubits, so that as
/// many qubits as possible stay in the storage zone at the start. Each
/// subsequent stage is chosen greedily to minimize
///
/// ```text
/// |Q_i \ Q_{i+1}|  +  α · |Q_{i+1} \ Q_i|
/// ```
///
/// where `Q_i` is the interacting-qubit set of the current stage and
/// `Q_{i+1}` that of the candidate. The weight `α < 1` prefers moving qubits
/// *into* storage (they stop interacting) over pulling qubits *out of*
/// storage, because stored qubits suffer negligible decoherence.
///
/// Ties are broken by the original stage index, making the schedule
/// deterministic.
#[must_use]
pub fn schedule_stages(stages: Vec<Stage>, alpha: f64) -> Vec<Stage> {
    if stages.len() <= 1 {
        return stages;
    }

    let qubit_sets: Vec<BTreeSet<Qubit>> = stages.iter().map(Stage::interacting_qubits).collect();

    let mut remaining: Vec<usize> = (0..stages.len()).collect();
    // First stage: fewest interacting qubits.
    let first_pos = remaining
        .iter()
        .enumerate()
        .min_by_key(|&(_, &idx)| (qubit_sets[idx].len(), idx))
        .map(|(pos, _)| pos)
        .expect("at least one stage");
    let mut order = vec![remaining.swap_remove(first_pos)];

    while !remaining.is_empty() {
        let current = *order.last().expect("order is non-empty");
        let current_set = &qubit_sets[current];
        let next_pos = remaining
            .iter()
            .enumerate()
            .min_by(|&(_, &a), &(_, &b)| {
                let cost_a = transition_cost(current_set, &qubit_sets[a], alpha);
                let cost_b = transition_cost(current_set, &qubit_sets[b], alpha);
                cost_a
                    .partial_cmp(&cost_b)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.cmp(&b))
            })
            .map(|(pos, _)| pos)
            .expect("remaining is non-empty");
        order.push(remaining.swap_remove(next_pos));
    }

    // Materialize the stage order.
    let mut indexed: Vec<(usize, Stage)> = stages.into_iter().enumerate().collect();
    indexed.sort_by_key(|(idx, _)| {
        order
            .iter()
            .position(|&o| o == *idx)
            .expect("every stage appears in the order")
    });
    indexed.into_iter().map(|(_, s)| s).collect()
}

/// The weighted set-difference cost of transitioning from stage set `from`
/// to stage set `to`.
fn transition_cost(from: &BTreeSet<Qubit>, to: &BTreeSet<Qubit>, alpha: f64) -> f64 {
    let leaving = from.difference(to).count() as f64;
    let entering = to.difference(from).count() as f64;
    leaving + alpha * entering
}

#[cfg(test)]
mod tests {
    use super::*;
    use powermove_circuit::CzGate;

    fn q(i: u32) -> Qubit {
        Qubit::new(i)
    }

    fn stage(edges: &[(u32, u32)]) -> Stage {
        Stage::new(
            edges
                .iter()
                .map(|&(a, b)| CzGate::new(q(a), q(b)))
                .collect(),
        )
    }

    #[test]
    fn smallest_stage_goes_first() {
        let stages = vec![
            stage(&[(0, 1), (2, 3), (4, 5)]),
            stage(&[(6, 7)]),
            stage(&[(0, 2), (1, 3)]),
        ];
        let ordered = schedule_stages(stages, 0.5);
        assert_eq!(ordered[0].len(), 1);
    }

    #[test]
    fn similar_stages_are_adjacent() {
        // Stage A and C share all qubits; stage B is disjoint from both. The
        // greedy schedule keeps A and C adjacent.
        let a = stage(&[(0, 1), (2, 3)]);
        let b = stage(&[(4, 5), (6, 7)]);
        let c = stage(&[(0, 2), (1, 3)]);
        let ordered = schedule_stages(vec![a.clone(), b.clone(), c.clone()], 0.5);
        let pos = |s: &Stage| ordered.iter().position(|x| x == s).unwrap();
        assert_eq!((pos(&a) as i64 - pos(&c) as i64).abs(), 1);
    }

    #[test]
    fn preserves_all_stages() {
        let stages = vec![
            stage(&[(0, 1)]),
            stage(&[(1, 2)]),
            stage(&[(2, 3)]),
            stage(&[(3, 4)]),
        ];
        let ordered = schedule_stages(stages.clone(), 0.3);
        assert_eq!(ordered.len(), stages.len());
        for s in &stages {
            assert!(ordered.contains(s));
        }
    }

    #[test]
    fn single_and_empty_inputs_pass_through() {
        assert!(schedule_stages(vec![], 0.5).is_empty());
        let one = vec![stage(&[(0, 1)])];
        assert_eq!(schedule_stages(one.clone(), 0.5), one);
    }

    #[test]
    fn alpha_prefers_shrinking_transitions() {
        // From {0,1,2,3}: candidate X = {0,1} (2 leave, 0 enter, cost 2),
        // candidate Y = {0,1,2,3,4,5} (0 leave, 2 enter, cost 2α). With
        // α < 1, Y is preferred right after the current stage... but the
        // schedule starts from the smallest stage, so check the metric
        // directly instead.
        let from: BTreeSet<Qubit> = [0, 1, 2, 3].iter().map(|&i| q(i)).collect();
        let x: BTreeSet<Qubit> = [0, 1].iter().map(|&i| q(i)).collect();
        let y: BTreeSet<Qubit> = [0, 1, 2, 3, 4, 5].iter().map(|&i| q(i)).collect();
        assert!(transition_cost(&from, &y, 0.5) < transition_cost(&from, &x, 0.5));
        assert!(transition_cost(&from, &x, 1.5) < transition_cost(&from, &y, 1.5));
    }
}
