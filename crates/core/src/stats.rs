//! Compilation statistics: a structured summary of a compiled program.
//!
//! The experiment harness and the `diagnostics` binary report these numbers;
//! they are also convenient assertions targets for tests and ablations.

use powermove_hardware::Zone;
use powermove_schedule::{CompiledProgram, Instruction};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Aggregate statistics of a compiled program's movement schedule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct CompilationSummary {
    /// Number of Rydberg stages.
    pub rydberg_stages: usize,
    /// Number of CZ gates executed.
    pub cz_gates: usize,
    /// Number of single-qubit gates executed.
    pub one_qubit_gates: usize,
    /// Number of move-group instructions (sequential movement steps).
    pub move_groups: usize,
    /// Number of collective moves across all groups.
    pub coll_moves: usize,
    /// Number of moved qubits (one per single-qubit move).
    pub moved_qubits: usize,
    /// Moves whose destination lies in the storage zone.
    pub moves_into_storage: usize,
    /// Moves whose source lies in the storage zone.
    pub moves_out_of_storage: usize,
    /// Number of SLM↔AOD transfers (two per moved qubit).
    pub transfers: usize,
    /// Total movement distance in meters.
    pub total_move_distance: f64,
    /// Longest single move in meters.
    pub max_move_distance: f64,
    /// Mean number of single-qubit moves per collective move.
    pub mean_moves_per_coll_move: f64,
}

impl CompilationSummary {
    /// Computes the summary of a compiled program.
    #[must_use]
    pub fn of(program: &CompiledProgram) -> Self {
        let arch = program.architecture();
        let grid = arch.grid();
        let mut summary = CompilationSummary {
            rydberg_stages: program.rydberg_stage_count(),
            cz_gates: program.cz_gate_count(),
            one_qubit_gates: program.one_qubit_gate_count(),
            move_groups: program.move_group_count(),
            coll_moves: program.coll_move_count(),
            transfers: program.transfer_count(),
            ..CompilationSummary::default()
        };
        for instruction in program.instructions() {
            let Instruction::MoveGroup { coll_moves } = instruction else {
                continue;
            };
            for cm in coll_moves {
                for m in &cm.moves {
                    summary.moved_qubits += 1;
                    let d = m.distance(arch);
                    summary.total_move_distance += d;
                    summary.max_move_distance = summary.max_move_distance.max(d);
                    if grid.zone_of(m.to) == Zone::Storage {
                        summary.moves_into_storage += 1;
                    }
                    if grid.zone_of(m.from) == Zone::Storage {
                        summary.moves_out_of_storage += 1;
                    }
                }
            }
        }
        summary.mean_moves_per_coll_move = if summary.coll_moves == 0 {
            0.0
        } else {
            summary.moved_qubits as f64 / summary.coll_moves as f64
        };
        summary
    }
}

impl fmt::Display for CompilationSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} stages, {} cz, {} moves in {} coll-moves / {} groups ({:.1} moves per coll-move), \
             {} into storage, {} out of storage, {:.0} um travelled",
            self.rydberg_stages,
            self.cz_gates,
            self.moved_qubits,
            self.coll_moves,
            self.move_groups,
            self.mean_moves_per_coll_move,
            self.moves_into_storage,
            self.moves_out_of_storage,
            self.total_move_distance * 1e6
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CompilerConfig, PowerMoveCompiler};
    use powermove_circuit::{Circuit, Qubit};
    use powermove_hardware::Architecture;

    fn q(i: u32) -> Qubit {
        Qubit::new(i)
    }

    fn ring(n: u32) -> Circuit {
        let mut c = Circuit::new(n);
        for i in 0..n {
            c.cz(q(i), q((i + 1) % n)).unwrap();
        }
        c
    }

    #[test]
    fn summary_matches_program_counters() {
        let arch = Architecture::for_qubits(8);
        let program = PowerMoveCompiler::new(CompilerConfig::default())
            .compile(&ring(8), &arch)
            .unwrap();
        let s = CompilationSummary::of(&program);
        assert_eq!(s.rydberg_stages, program.rydberg_stage_count());
        assert_eq!(s.cz_gates, 8);
        assert_eq!(s.transfers, program.transfer_count());
        assert_eq!(s.transfers, 2 * s.moved_qubits);
        assert!(s.total_move_distance > 0.0);
        assert!(s.max_move_distance <= s.total_move_distance);
        assert!(s.mean_moves_per_coll_move >= 1.0);
    }

    #[test]
    fn storage_mode_reports_inter_zone_moves() {
        let arch = Architecture::for_qubits(8);
        let with = PowerMoveCompiler::new(CompilerConfig::default())
            .compile(&ring(8), &arch)
            .unwrap();
        let without = PowerMoveCompiler::new(CompilerConfig::without_storage())
            .compile(&ring(8), &arch)
            .unwrap();
        let s_with = CompilationSummary::of(&with);
        let s_without = CompilationSummary::of(&without);
        assert!(s_with.moves_out_of_storage > 0);
        assert_eq!(s_without.moves_into_storage, 0);
        assert_eq!(s_without.moves_out_of_storage, 0);
    }

    #[test]
    fn empty_program_summary_is_zeroed() {
        let arch = Architecture::for_qubits(4);
        let program = PowerMoveCompiler::new(CompilerConfig::default())
            .compile(&Circuit::new(4), &arch)
            .unwrap();
        let s = CompilationSummary::of(&program);
        assert_eq!(s, CompilationSummary::default());
    }

    #[test]
    fn display_mentions_key_counts() {
        let arch = Architecture::for_qubits(6);
        let program = PowerMoveCompiler::new(CompilerConfig::default())
            .compile(&ring(6), &arch)
            .unwrap();
        let text = CompilationSummary::of(&program).to_string();
        assert!(text.contains("stages"));
        assert!(text.contains("storage"));
    }
}
