//! Distance-aware grouping of single-qubit moves into collective moves
//! (Sec. 5.3 of the paper).

use powermove_hardware::Architecture;
use powermove_schedule::SiteMove;

/// Groups single-qubit moves into collective moves executable by one AOD.
///
/// Moves are considered in ascending order of distance and greedily assigned
/// to the first existing group they do not conflict with (the AOD order
/// constraint of Fig. 5); a move that conflicts with every group opens a new
/// one. Sorting by distance tends to pack moves of similar length together,
/// which keeps the per-group maximum distance — and hence the movement time —
/// low.
///
/// The relative order of groups reflects creation order; the coll-move
/// scheduler ([`crate::order_coll_moves`]) decides the execution order.
#[must_use]
pub fn group_moves(moves: &[SiteMove], arch: &Architecture) -> Vec<Vec<SiteMove>> {
    let mut sorted: Vec<SiteMove> = moves.to_vec();
    sorted.sort_by(|a, b| {
        a.distance(arch)
            .partial_cmp(&b.distance(arch))
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.qubit.cmp(&b.qubit))
    });

    let mut groups: Vec<Vec<SiteMove>> = Vec::new();
    for m in sorted {
        let tm = m.to_trap_move(arch);
        let target = groups.iter_mut().find(|group| {
            group
                .iter()
                .all(|other| !tm.conflicts_with(&other.to_trap_move(arch)))
        });
        match target {
            Some(group) => group.push(m),
            None => groups.push(vec![m]),
        }
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use powermove_circuit::Qubit;
    use powermove_hardware::{Architecture, Zone};
    use powermove_schedule::SiteMove;

    fn q(i: u32) -> Qubit {
        Qubit::new(i)
    }

    fn arch() -> Architecture {
        Architecture::for_qubits(16)
    }

    fn mv(a: &Architecture, qi: u32, from: (u32, u32), to: (u32, u32)) -> SiteMove {
        let g = a.grid();
        SiteMove::new(
            q(qi),
            g.site(Zone::Compute, from.0, from.1).unwrap(),
            g.site(Zone::Compute, to.0, to.1).unwrap(),
        )
    }

    #[test]
    fn compatible_moves_share_a_group() {
        let a = arch();
        // Two qubits in the same row moving down by one row in tandem.
        let moves = vec![mv(&a, 0, (0, 1), (0, 0)), mv(&a, 1, (2, 1), (2, 0))];
        let groups = group_moves(&moves, &a);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].len(), 2);
    }

    #[test]
    fn crossing_moves_split_groups() {
        let a = arch();
        // Two qubits swapping columns: their x-order flips, so they conflict.
        let moves = vec![mv(&a, 0, (0, 0), (2, 1)), mv(&a, 1, (2, 0), (0, 1))];
        let groups = group_moves(&moves, &a);
        assert_eq!(groups.len(), 2);
    }

    #[test]
    fn all_moves_preserved() {
        let a = arch();
        let moves = vec![
            mv(&a, 0, (0, 0), (1, 0)),
            mv(&a, 1, (1, 0), (0, 0)),
            mv(&a, 2, (2, 2), (3, 2)),
            mv(&a, 3, (3, 3), (3, 2)),
        ];
        let groups = group_moves(&moves, &a);
        let total: usize = groups.iter().map(Vec::len).sum();
        assert_eq!(total, moves.len());
        // Every group is internally conflict-free.
        for group in &groups {
            for (i, x) in group.iter().enumerate() {
                for y in &group[i + 1..] {
                    assert!(!x.to_trap_move(&a).conflicts_with(&y.to_trap_move(&a)));
                }
            }
        }
    }

    #[test]
    fn empty_input_gives_no_groups() {
        assert!(group_moves(&[], &arch()).is_empty());
    }

    #[test]
    fn groups_cluster_similar_distances() {
        let a = arch();
        // One short move and one long move that conflict, plus another short
        // move compatible with the first: the two short moves should end up
        // together.
        let short1 = mv(&a, 0, (0, 0), (0, 1));
        let short2 = mv(&a, 1, (2, 0), (2, 1));
        let long = mv(&a, 2, (3, 3), (3, 0)); // conflicts with the shorts on y-order
        let groups = group_moves(&[long, short1, short2], &a);
        assert_eq!(groups.len(), 2);
        let short_group = groups.iter().find(|g| g.len() == 2).unwrap();
        assert!(short_group.iter().all(|m| m.qubit != q(2)));
    }
}
