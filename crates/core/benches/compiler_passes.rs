//! Per-pass compiler benchmarks over log-scaled circuit sizes.
//!
//! Five groups isolate the phases of the stage-once/replay-many pipeline:
//!
//! * `stage` — the front end (synthesis + stage partitioning), run once per
//!   portfolio regardless of candidate count;
//! * `route` — one route-only back-end replay per built-in strategy from a
//!   shared frozen [`StagedIr`]; after timing, each size prints a
//!   `route-counters/<n>: site_scans=… sites_pruned=…` line from a greedy
//!   replay so the spatial index's candidate pruning is observable (and CI
//!   can gate on it);
//! * `best_free_site` — the routing inner loop in isolation: the
//!   index-pruned search (`indexed`) against the linear reference scan
//!   (`linear`) over identical fragmented occupancy;
//! * `emit` — the full back end including metadata assembly
//!   ([`PowerMoveCompiler::emit`]);
//! * `portfolio` — portfolio auto-tuning end-to-end, with the pre-replay
//!   cost shape (one full compile per candidate) benchmarked alongside as
//!   `full_compile_per_candidate` so the replay speedup is visible in one
//!   run.
//!
//! Sizes are log-scaled (each twice the previous) so pass scaling shows up
//! as the gap between adjacent lines. `POWERMOVE_BENCH_SAMPLES` overrides
//! the per-benchmark sample count (CI smoke runs set it to 1).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use powermove::{
    CompilerConfig, FreeSiteHarness, GreedyRouter, LookaheadRouter, MultiAodScheduler,
    PowerMoveCompiler, RoutingConfig, RoutingStrategy, SITES_PRUNED, SITE_SCANS,
};
use powermove_benchmarks::{generate, BenchmarkFamily};
use powermove_circuit::{Circuit, Qubit};
use powermove_hardware::{Architecture, Point, SiteId, Zone};
use std::sync::Arc;
use std::time::Duration;

/// Log-scaled circuit widths: QAOA on random 3-regular graphs, the suite's
/// routing-heaviest family.
const SIZES: &[u32] = &[16, 32, 64, 128, 256];

const SEED: u64 = 3;

fn sample_size() -> usize {
    std::env::var("POWERMOVE_BENCH_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(10)
}

fn instance(n: u32) -> (Circuit, Architecture) {
    let circuit = generate(BenchmarkFamily::QaoaRegular3, n, SEED).circuit;
    let arch = Architecture::for_qubits(n).with_num_aods(4);
    (circuit, arch)
}

fn bench_stage(c: &mut Criterion) {
    let mut group = c.benchmark_group("stage");
    group
        .sample_size(sample_size())
        .measurement_time(Duration::from_secs(3));
    let compiler = PowerMoveCompiler::new(CompilerConfig::default());
    for &n in SIZES {
        let (circuit, _) = instance(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &circuit, |b, circuit| {
            b.iter(|| black_box(compiler.stage(circuit)));
        });
    }
    group.finish();
}

fn bench_route(c: &mut Criterion) {
    let mut group = c.benchmark_group("route");
    group
        .sample_size(sample_size())
        .measurement_time(Duration::from_secs(3));
    let compiler = PowerMoveCompiler::new(CompilerConfig::default());
    let strategies: [(&str, Arc<dyn RoutingStrategy>); 3] = [
        ("greedy", Arc::new(GreedyRouter)),
        ("lookahead", Arc::new(LookaheadRouter::new(2))),
        ("multi-aod", Arc::new(MultiAodScheduler::default())),
    ];
    for &n in SIZES {
        let (circuit, arch) = instance(n);
        let ir = compiler.stage(&circuit);
        let session = compiler.session(&ir);
        for (name, strategy) in &strategies {
            group.bench_with_input(BenchmarkId::new(*name, n), &session, |b, session| {
                b.iter(|| black_box(session.replay(&arch, strategy.clone()).unwrap()));
            });
        }
        // One greedy replay outside the timing loop reports how much work
        // the spatial free-site index saved; CI's bench-smoke job greps
        // these lines and fails if pruning never engaged.
        let replay = session
            .replay(&arch, Arc::new(GreedyRouter))
            .expect("bench instances replay");
        let counter = |key: &str| {
            replay
                .back_end_counters()
                .iter()
                .find(|c| c.name == key)
                .map_or(0, |c| c.value)
        };
        println!(
            "route-counters/{n}: site_scans={} sites_pruned={}",
            counter(SITE_SCANS),
            counter(SITES_PRUNED)
        );
    }
    group.finish();
}

/// Deterministic xorshift64* so the occupancy pattern needs no RNG crate.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

fn bench_best_free_site(c: &mut Criterion) {
    let mut group = c.benchmark_group("best_free_site");
    group
        .sample_size(sample_size())
        .measurement_time(Duration::from_secs(3));
    for &n in SIZES {
        // Occupy roughly half the register at random sites so the free
        // lists are realistically fragmented, then time one biased query
        // per qubit from that qubit's own position — the hot shape of the
        // routing inner loop.
        let arch = Architecture::for_qubits(n).with_num_aods(4);
        let mut harness = FreeSiteHarness::new(arch, n);
        let num_sites = harness.grid().num_sites();
        let mut rng = XorShift(0x5EED ^ u64::from(n));
        for q in 0..n {
            let site = SiteId::new(rng.next() as usize % num_sites);
            if harness.planned_len(site) < 2 && q % 2 == 0 {
                harness.occupy(Qubit::new(q), site);
            }
        }
        let anchors: Vec<Point> = (0..n)
            .map(|_| {
                let site = SiteId::new(rng.next() as usize % num_sites);
                harness.grid().position(site)
            })
            .collect();
        let bias = |site: SiteId, _: Point| (site.index() % 7) as f64 * 0.125;
        group.bench_with_input(BenchmarkId::new("indexed", n), &anchors, |b, anchors| {
            b.iter(|| {
                for &anchor in anchors {
                    black_box(harness.best(Zone::Compute, anchor, 0.0, &bias));
                }
            });
        });
        group.bench_with_input(BenchmarkId::new("linear", n), &anchors, |b, anchors| {
            b.iter(|| {
                for &anchor in anchors {
                    black_box(harness.best_linear(Zone::Compute, anchor, &bias));
                }
            });
        });
    }
    group.finish();
}

fn bench_emit(c: &mut Criterion) {
    let mut group = c.benchmark_group("emit");
    group
        .sample_size(sample_size())
        .measurement_time(Duration::from_secs(3));
    let compiler = PowerMoveCompiler::new(CompilerConfig::default());
    for &n in SIZES {
        let (circuit, arch) = instance(n);
        let ir = compiler.stage(&circuit);
        group.bench_with_input(BenchmarkId::from_parameter(n), &ir, |b, ir| {
            b.iter(|| black_box(compiler.emit(ir, &arch).unwrap()));
        });
    }
    group.finish();
}

fn bench_portfolio(c: &mut Criterion) {
    let mut group = c.benchmark_group("portfolio");
    group
        .sample_size(sample_size())
        .measurement_time(Duration::from_secs(5));
    let auto =
        PowerMoveCompiler::new(CompilerConfig::default().with_routing(RoutingConfig::auto()));
    for &n in SIZES {
        let (circuit, arch) = instance(n);
        // The shipped hot path: one front-end pass, route-only replays.
        group.bench_with_input(
            BenchmarkId::new("stage_once_replay", n),
            &circuit,
            |b, circuit| {
                b.iter(|| black_box(auto.compile(circuit, &arch).unwrap()));
            },
        );
        // The pre-replay cost shape: each candidate pays the full pipeline.
        // The ratio of this line to `stage_once_replay` is the portfolio
        // throughput win.
        group.bench_with_input(
            BenchmarkId::new("full_compile_per_candidate", n),
            &circuit,
            |b, circuit| {
                b.iter(|| {
                    for routing in [
                        RoutingConfig::greedy(),
                        RoutingConfig::lookahead(2),
                        RoutingConfig::multi_aod(),
                    ] {
                        let fixed =
                            PowerMoveCompiler::new(CompilerConfig::default().with_routing(routing));
                        black_box(fixed.compile(circuit, &arch).unwrap());
                    }
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    compiler_passes,
    bench_stage,
    bench_route,
    bench_best_free_site,
    bench_emit,
    bench_portfolio
);
criterion_main!(compiler_passes);
