//! `powermove-exec`: the parallel execution engine of the PowerMove
//! reproduction.
//!
//! The build environment has no crates.io access, so — like the `stubs/`
//! crates — this is a small, hand-rolled, dependency-free implementation on
//! top of [`std::thread`]: a work-stealing scoped thread pool
//! ([`ThreadPool::scope`]), an order-preserving [`ThreadPool::par_map`], and
//! a [`Parallelism`] configuration honouring the `POWERMOVE_THREADS`
//! environment variable (default: one worker per available core).
//!
//! Two layers of the workspace run on it:
//!
//! * the compile pipeline (`powermove`): [`StagePass`] and [`MovePass`]
//!   process independent CZ blocks / routed segments concurrently while
//!   per-worker pass timings and counters are merged back into the program's
//!   `CompileMetadata`;
//! * the experiment harness (`powermove-bench`): the backend × suite matrix
//!   behind every table/figure binary and the `bench-gate` CI gate fans out
//!   over the pool.
//!
//! Determinism is part of the contract: [`ThreadPool::par_map`] returns
//! results in input order, and a [`Parallelism`] of one degenerates to the
//! plain sequential loop, so `POWERMOVE_THREADS=1` and `POWERMOVE_THREADS=N`
//! produce byte-identical compiler output (asserted by the workspace test
//! `tests/parallel_determinism.rs`).
//!
//! [`StagePass`]: https://docs.rs/powermove
//! [`MovePass`]: https://docs.rs/powermove

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod parallelism;
mod pool;

pub use parallelism::{Parallelism, THREADS_ENV};
pub use pool::{PoolScope, ThreadPool, CHUNKS_PER_WORKER};
