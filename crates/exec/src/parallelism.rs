//! Worker-count configuration for the [`ThreadPool`](crate::ThreadPool).

use std::num::NonZeroUsize;

/// Environment variable controlling the default worker count.
///
/// Set `POWERMOVE_THREADS=1` to force fully sequential execution (useful for
/// determinism checks and profiling) or to any positive integer to pin the
/// pool size. Unset or unparseable values fall back to the number of
/// available CPU cores.
pub const THREADS_ENV: &str = "POWERMOVE_THREADS";

/// How many worker threads a [`ThreadPool`](crate::ThreadPool) uses.
///
/// The default (`Parallelism::from_env`) honours [`THREADS_ENV`] and
/// otherwise matches the number of available cores, so the pipeline and the
/// experiment harness scale with the machine without any configuration.
///
/// # Example
///
/// ```
/// use powermove_exec::Parallelism;
///
/// assert_eq!(Parallelism::fixed(4).threads(), 4);
/// assert!(Parallelism::available().threads() >= 1);
/// assert!(Parallelism::fixed(1).is_sequential());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Parallelism {
    threads: NonZeroUsize,
}

impl Parallelism {
    /// Exactly `threads` workers; `0` is clamped to `1`.
    #[must_use]
    pub fn fixed(threads: usize) -> Self {
        Parallelism {
            threads: NonZeroUsize::new(threads.max(1)).expect("clamped to at least 1"),
        }
    }

    /// One worker per available CPU core (at least one).
    #[must_use]
    pub fn available() -> Self {
        let threads = std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1);
        Parallelism::fixed(threads)
    }

    /// Reads [`THREADS_ENV`]; unset, unparseable or zero values fall back to
    /// [`Parallelism::available`].
    #[must_use]
    pub fn from_env() -> Self {
        match std::env::var(THREADS_ENV) {
            Ok(value) => match value.trim().parse::<usize>() {
                Ok(threads) if threads > 0 => Parallelism::fixed(threads),
                _ => Parallelism::available(),
            },
            Err(_) => Parallelism::available(),
        }
    }

    /// Interprets a configuration knob: `0` means "automatic" (environment,
    /// then core count), any other value pins the worker count.
    #[must_use]
    pub fn from_setting(threads: usize) -> Self {
        if threads == 0 {
            Parallelism::from_env()
        } else {
            Parallelism::fixed(threads)
        }
    }

    /// The configured worker count.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads.get()
    }

    /// Whether the configuration degenerates to sequential execution.
    #[must_use]
    pub fn is_sequential(&self) -> bool {
        self.threads.get() == 1
    }
}

impl Default for Parallelism {
    fn default() -> Self {
        Parallelism::from_env()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_clamps_zero_to_one() {
        assert_eq!(Parallelism::fixed(0).threads(), 1);
        assert_eq!(Parallelism::fixed(3).threads(), 3);
        assert!(Parallelism::fixed(0).is_sequential());
        assert!(!Parallelism::fixed(2).is_sequential());
    }

    #[test]
    fn available_is_at_least_one() {
        assert!(Parallelism::available().threads() >= 1);
    }

    #[test]
    fn from_setting_pins_nonzero_values() {
        // Only the pinned branch here: `from_setting(0)` reads the
        // environment and is covered by `env_variable_controls_default`,
        // the single test allowed to touch THREADS_ENV.
        assert_eq!(Parallelism::from_setting(5).threads(), 5);
        assert_eq!(Parallelism::from_setting(1).threads(), 1);
    }

    #[test]
    fn env_variable_controls_default() {
        // All `THREADS_ENV` mutation lives in this single test: tests run on
        // parallel threads and the environment is process-global.
        std::env::set_var(THREADS_ENV, "3");
        assert_eq!(Parallelism::from_env().threads(), 3);
        assert_eq!(Parallelism::from_setting(0).threads(), 3);
        assert_eq!(Parallelism::from_setting(2).threads(), 2);

        std::env::set_var(THREADS_ENV, "0");
        assert!(Parallelism::from_env().threads() >= 1);

        std::env::set_var(THREADS_ENV, "not-a-number");
        assert!(Parallelism::from_env().threads() >= 1);

        std::env::remove_var(THREADS_ENV);
        assert_eq!(
            Parallelism::from_env().threads(),
            Parallelism::available().threads()
        );
    }
}
