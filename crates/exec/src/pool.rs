//! The work-stealing scoped thread pool.

use crate::Parallelism;
use std::any::Any;
use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// A task queued on the pool. Tasks may borrow data that outlives the
/// enclosing [`ThreadPool::scope`] call (the `'env` lifetime), mirroring
/// [`std::thread::scope`].
type Job<'env> = Box<dyn FnOnce() + Send + 'env>;

/// A work-stealing scoped thread pool built directly on [`std::thread`].
///
/// The pool is deliberately small: workers are spawned per
/// [`ThreadPool::scope`] call as scoped threads (so tasks can borrow stack
/// data), every worker owns a deque that [`PoolScope::spawn`] fills
/// round-robin, and an idle worker steals from the back of a sibling's deque
/// before sleeping. A [`Parallelism`] of one short-circuits to inline
/// execution — no threads, no locks — which is what makes
/// `POWERMOVE_THREADS=1` byte-for-byte comparable with parallel runs.
///
/// # Example
///
/// ```
/// use powermove_exec::{Parallelism, ThreadPool};
///
/// let pool = ThreadPool::new(Parallelism::fixed(4));
/// let squares = pool.par_map((0..100).collect::<Vec<u64>>(), |x| x * x);
/// assert_eq!(squares[7], 49); // results stay in input order
///
/// let sum = std::sync::atomic::AtomicU64::new(0);
/// pool.scope(|scope| {
///     for chunk in 0..8u64 {
///         let sum = &sum;
///         scope.spawn(move || {
///             sum.fetch_add(chunk, std::sync::atomic::Ordering::Relaxed);
///         });
///     }
/// });
/// assert_eq!(sum.into_inner(), 28);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ThreadPool {
    parallelism: Parallelism,
}

impl ThreadPool {
    /// Creates a pool configuration. Threads are only spawned while a
    /// [`ThreadPool::scope`] call is active, so constructing a pool is free.
    #[must_use]
    pub fn new(parallelism: Parallelism) -> Self {
        ThreadPool { parallelism }
    }

    /// A pool sized by `POWERMOVE_THREADS`, defaulting to the core count.
    #[must_use]
    pub fn from_env() -> Self {
        ThreadPool::new(Parallelism::from_env())
    }

    /// The worker count used by [`ThreadPool::scope`] and
    /// [`ThreadPool::par_map`].
    #[must_use]
    pub fn threads(&self) -> usize {
        self.parallelism.threads()
    }

    /// Runs `f` with a [`PoolScope`] through which tasks can be spawned onto
    /// the pool. Returns once `f` has returned **and** every spawned task has
    /// finished, so tasks may borrow anything that outlives the `scope` call.
    ///
    /// With one worker, tasks run inline on the calling thread in spawn
    /// order; otherwise the pool's workers drain them concurrently.
    ///
    /// # Panics
    ///
    /// If a spawned task panics, the panic payload is captured and re-raised
    /// on the calling thread after all remaining tasks have completed (the
    /// first payload wins). A panic inside `f` itself also propagates, after
    /// spawned tasks have drained.
    pub fn scope<'env, T>(&self, f: impl FnOnce(&PoolScope<'_, 'env>) -> T) -> T {
        let workers = self.threads();
        if workers <= 1 {
            return f(&PoolScope { shared: None });
        }
        let shared: Shared<'env> = Shared::new(workers);
        let outcome = std::thread::scope(|s| {
            for index in 0..workers {
                let shared = &shared;
                s.spawn(move || shared.worker_loop(index));
            }
            let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
                f(&PoolScope {
                    shared: Some(&shared),
                })
            }));
            // Always drain and release the workers, even when `f` panicked;
            // otherwise `std::thread::scope` would join forever.
            shared.close_and_wait();
            outcome
        });
        shared.propagate_panic();
        match outcome {
            Ok(value) => value,
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }

    /// Applies `f` to every item, in parallel, returning the results **in
    /// input order** regardless of which worker ran which item or in what
    /// order they finished. Sequential configurations (one worker, or fewer
    /// than two items) run inline, so a `POWERMOVE_THREADS=1` run is the
    /// exact sequential loop.
    ///
    /// # Panics
    ///
    /// Propagates the first panic raised by `f` after the remaining items
    /// have completed.
    pub fn par_map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        if self.threads() <= 1 || items.len() <= 1 {
            return items.into_iter().map(f).collect();
        }
        // Never spawn more workers than there are jobs: a 3-item map on a
        // 64-thread pool needs 3 workers, not 64 idle spawn/joins.
        let sized = ThreadPool::new(Parallelism::fixed(self.threads().min(items.len())));
        let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
        {
            let slots = &slots;
            let f = &f;
            sized.scope(|scope| {
                for (index, item) in items.into_iter().enumerate() {
                    scope.spawn(move || {
                        *slots[index].lock().expect("result slot poisoned") = Some(f(item));
                    });
                }
            });
        }
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("scope waits for every task")
            })
            .collect()
    }

    /// Like [`ThreadPool::par_map`], but queues one job per contiguous
    /// **index range** instead of one job per item, so very wide fan-outs
    /// (e.g. block-level compilation of a 100k-block program) do not pay a
    /// queue push, mutex slot and wake-up per item.
    ///
    /// The input is split into at most `workers × `[`CHUNKS_PER_WORKER`]
    /// near-equal contiguous chunks (never fewer than one item per chunk);
    /// each chunk runs `f` over its items sequentially. Results are returned
    /// in input order, and a sequential configuration degenerates to the
    /// plain loop — the output is always identical to
    /// `items.into_iter().map(f).collect()`.
    ///
    /// # Panics
    ///
    /// Propagates the first panic raised by `f` after the remaining chunks
    /// have completed.
    pub fn par_map_chunked<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        let chunks = self.chunk_count(items.len());
        if self.threads() <= 1 || chunks <= 1 {
            return items.into_iter().map(&f).collect();
        }
        let mut chunked: Vec<Vec<T>> = Vec::with_capacity(chunks);
        let len = items.len();
        let base = len / chunks;
        let remainder = len % chunks;
        let mut items = items.into_iter();
        for index in 0..chunks {
            let take = base + usize::from(index < remainder);
            chunked.push(items.by_ref().take(take).collect());
        }
        self.par_map(chunked, |chunk| {
            chunk.into_iter().map(&f).collect::<Vec<R>>()
        })
        .into_iter()
        .flatten()
        .collect()
    }

    /// How many chunks [`ThreadPool::par_map_chunked`] splits `len` items
    /// into: `workers × `[`CHUNKS_PER_WORKER`], capped at one item per chunk.
    /// The oversubscription factor keeps workers busy when chunk runtimes are
    /// skewed without approaching one-job-per-item queue pressure.
    #[must_use]
    pub fn chunk_count(&self, len: usize) -> usize {
        len.min(self.threads() * CHUNKS_PER_WORKER).max(1)
    }

    /// Batch admission: like [`ThreadPool::par_map`], but items that share a
    /// `key` are admitted to the pool as **one job** and processed
    /// sequentially within it, in input order. Groups are queued in
    /// first-seen key order, and the results are returned in input order
    /// regardless of grouping.
    ///
    /// This is the primitive behind the compile service's same-architecture
    /// batching: requests targeting the same machine run back to back on one
    /// worker (warm caches, no interleaved contention for the same shared
    /// state), while distinct architectures still fan out across the pool.
    ///
    /// A sequential configuration degenerates to the plain in-order loop, so
    /// the output is always identical to `items.into_iter().map(f).collect()`.
    ///
    /// # Example
    ///
    /// ```
    /// use powermove_exec::{Parallelism, ThreadPool};
    ///
    /// let pool = ThreadPool::new(Parallelism::fixed(4));
    /// let doubled = pool.par_map_grouped(vec![3, 1, 4, 1, 5], |x| x % 2, |x| x * 2);
    /// assert_eq!(doubled, vec![6, 2, 8, 2, 10]); // input order, not group order
    /// ```
    ///
    /// # Panics
    ///
    /// Propagates the first panic raised by `f` after the remaining groups
    /// have completed.
    pub fn par_map_grouped<T, R, K, F>(&self, items: Vec<T>, key: impl Fn(&T) -> K, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        K: std::hash::Hash + Eq,
        F: Fn(T) -> R + Sync,
    {
        if self.threads() <= 1 || items.len() <= 1 {
            return items.into_iter().map(f).collect();
        }
        // Group indices by key, keeping first-seen group order and the
        // items' relative order within each group.
        let mut group_of_key: std::collections::HashMap<K, usize> =
            std::collections::HashMap::new();
        let mut groups: Vec<Vec<(usize, T)>> = Vec::new();
        for (index, item) in items.into_iter().enumerate() {
            let group = *group_of_key.entry(key(&item)).or_insert_with(|| {
                groups.push(Vec::new());
                groups.len() - 1
            });
            groups[group].push((index, item));
        }
        let total: usize = groups.iter().map(Vec::len).sum();
        let mapped = self.par_map(groups, |group| {
            group
                .into_iter()
                .map(|(index, item)| (index, f(item)))
                .collect::<Vec<(usize, R)>>()
        });
        // Scatter the per-group runs back to input order.
        let mut slots: Vec<Option<R>> = (0..total).map(|_| None).collect();
        for (index, result) in mapped.into_iter().flatten() {
            slots[index] = Some(result);
        }
        slots
            .into_iter()
            .map(|slot| slot.expect("every input index is produced by exactly one group"))
            .collect()
    }
}

/// Oversubscription factor of [`ThreadPool::par_map_chunked`]: the number of
/// index-range chunks queued per worker, trading work-stealing balance
/// against per-job queue overhead.
pub const CHUNKS_PER_WORKER: usize = 4;

impl Default for ThreadPool {
    fn default() -> Self {
        ThreadPool::from_env()
    }
}

/// Handle for spawning tasks onto an active [`ThreadPool::scope`].
pub struct PoolScope<'pool, 'env> {
    /// `None` in the sequential (single-worker) configuration, where spawned
    /// tasks execute inline.
    shared: Option<&'pool Shared<'env>>,
}

impl<'pool, 'env> PoolScope<'pool, 'env> {
    /// Queues `job` for execution on the pool (or runs it inline when the
    /// pool is sequential). The enclosing [`ThreadPool::scope`] call does not
    /// return until the job has finished.
    pub fn spawn(&self, job: impl FnOnce() + Send + 'env) {
        match self.shared {
            None => job(),
            Some(shared) => shared.push(Box::new(job)),
        }
    }

    /// The number of workers draining this scope (1 when sequential).
    #[must_use]
    pub fn workers(&self) -> usize {
        self.shared.map_or(1, |shared| shared.queues.len())
    }
}

/// Coordination counters shared by the scope owner and the workers.
#[derive(Debug, Default)]
struct Coord {
    /// Jobs pushed but not yet claimed by a worker.
    queued: usize,
    /// Jobs pushed but not yet finished (claimed jobs included).
    pending: usize,
    /// Set once the scope closure has returned: no further spawns arrive.
    closed: bool,
}

struct Shared<'env> {
    /// One deque per worker. `push` distributes round-robin; worker `i` pops
    /// from the front of `queues[i]` and steals from the back of the others.
    queues: Vec<Mutex<VecDeque<Job<'env>>>>,
    coord: Mutex<Coord>,
    /// Signals workers that work arrived or the scope is shutting down.
    work_signal: Condvar,
    /// Signals the scope owner that `pending` reached zero.
    done_signal: Condvar,
    /// Round-robin cursor for `push`.
    next_queue: AtomicUsize,
    /// First panic payload raised by a job, re-raised by the scope owner.
    panic: Mutex<Option<Box<dyn Any + Send + 'static>>>,
}

impl<'env> Shared<'env> {
    fn new(workers: usize) -> Self {
        Shared {
            queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            coord: Mutex::new(Coord::default()),
            work_signal: Condvar::new(),
            done_signal: Condvar::new(),
            next_queue: AtomicUsize::new(0),
            panic: Mutex::new(None),
        }
    }

    fn push(&self, job: Job<'env>) {
        let target = self.next_queue.fetch_add(1, Ordering::Relaxed) % self.queues.len();
        self.queues[target]
            .lock()
            .expect("job queue poisoned")
            .push_back(job);
        // The job must be visible in its queue before a worker is entitled
        // to claim it, hence queue push first, counters second.
        let mut coord = self.coord.lock().expect("pool coordination poisoned");
        coord.queued += 1;
        coord.pending += 1;
        drop(coord);
        self.work_signal.notify_one();
    }

    fn worker_loop(&self, index: usize) {
        loop {
            // Claim the entitlement to exactly one queued job, or exit once
            // the scope has closed and everything has drained.
            {
                let mut coord = self.coord.lock().expect("pool coordination poisoned");
                loop {
                    if coord.queued > 0 {
                        coord.queued -= 1;
                        break;
                    }
                    if coord.closed && coord.pending == 0 {
                        return;
                    }
                    coord = self
                        .work_signal
                        .wait(coord)
                        .expect("pool coordination poisoned");
                }
            }
            let job = self.take_job(index);
            if let Err(payload) = std::panic::catch_unwind(AssertUnwindSafe(job)) {
                let mut slot = self.panic.lock().expect("panic slot poisoned");
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
            let mut coord = self.coord.lock().expect("pool coordination poisoned");
            coord.pending -= 1;
            if coord.pending == 0 {
                self.done_signal.notify_all();
                // Wake the other workers so they can observe the exit
                // condition once the scope closes.
                self.work_signal.notify_all();
            }
        }
    }

    /// Dequeues one job for worker `index`: own deque first (FIFO), then a
    /// steal sweep over the siblings (LIFO, the classic stealing end).
    ///
    /// The caller has already decremented `queued`, so at least one job is
    /// reserved for this worker; the loop only spins when a concurrent
    /// spawn/steal interleaving momentarily hides it.
    fn take_job(&self, index: usize) -> Job<'env> {
        loop {
            if let Some(job) = self.queues[index]
                .lock()
                .expect("job queue poisoned")
                .pop_front()
            {
                return job;
            }
            for offset in 1..self.queues.len() {
                let victim = (index + offset) % self.queues.len();
                if let Some(job) = self.queues[victim]
                    .lock()
                    .expect("job queue poisoned")
                    .pop_back()
                {
                    return job;
                }
            }
            std::thread::yield_now();
        }
    }

    fn close_and_wait(&self) {
        let mut coord = self.coord.lock().expect("pool coordination poisoned");
        coord.closed = true;
        self.work_signal.notify_all();
        while coord.pending > 0 {
            coord = self
                .done_signal
                .wait(coord)
                .expect("pool coordination poisoned");
        }
        drop(coord);
        self.work_signal.notify_all();
    }

    fn propagate_panic(&self) {
        let payload = self.panic.lock().expect("panic slot poisoned").take();
        if let Some(payload) = payload {
            std::panic::resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::time::{Duration, Instant};

    #[test]
    fn par_map_preserves_input_order() {
        let pool = ThreadPool::new(Parallelism::fixed(4));
        let input: Vec<usize> = (0..257).collect();
        let expected: Vec<usize> = input.iter().map(|x| x * 3 + 1).collect();
        // Skew per-item latency so completion order differs from input order.
        let output = pool.par_map(input, |x| {
            if x % 13 == 0 {
                std::thread::sleep(Duration::from_micros(200));
            }
            x * 3 + 1
        });
        assert_eq!(output, expected);
    }

    #[test]
    fn par_map_matches_sequential_map() {
        let items: Vec<u64> = (0..100).collect();
        let sequential = ThreadPool::new(Parallelism::fixed(1)).par_map(items.clone(), |x| x * x);
        let parallel = ThreadPool::new(Parallelism::fixed(8)).par_map(items, |x| x * x);
        assert_eq!(sequential, parallel);
    }

    #[test]
    fn par_map_handles_empty_and_single_inputs() {
        let pool = ThreadPool::new(Parallelism::fixed(4));
        assert_eq!(pool.par_map(Vec::<u32>::new(), |x| x), Vec::<u32>::new());
        assert_eq!(pool.par_map(vec![9], |x| x + 1), vec![10]);
    }

    #[test]
    fn par_map_chunked_matches_per_item_map() {
        let items: Vec<u64> = (0..1000).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * 7 + 3).collect();
        for threads in [1, 2, 8] {
            let pool = ThreadPool::new(Parallelism::fixed(threads));
            assert_eq!(pool.par_map_chunked(items.clone(), |x| x * 7 + 3), expected);
        }
    }

    #[test]
    fn par_map_chunked_preserves_order_under_skew() {
        let pool = ThreadPool::new(Parallelism::fixed(4));
        let items: Vec<usize> = (0..300).collect();
        let output = pool.par_map_chunked(items.clone(), |x| {
            if x % 17 == 0 {
                std::thread::sleep(Duration::from_micros(150));
            }
            x + 1
        });
        assert_eq!(output, items.iter().map(|x| x + 1).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_chunked_handles_empty_and_tiny_inputs() {
        let pool = ThreadPool::new(Parallelism::fixed(4));
        assert_eq!(
            pool.par_map_chunked(Vec::<u32>::new(), |x| x),
            Vec::<u32>::new()
        );
        assert_eq!(pool.par_map_chunked(vec![5], |x| x * 2), vec![10]);
        assert_eq!(pool.par_map_chunked(vec![1, 2], |x| x * 2), vec![2, 4]);
    }

    #[test]
    fn chunk_count_is_bounded_by_items_and_oversubscription() {
        let pool = ThreadPool::new(Parallelism::fixed(4));
        assert_eq!(pool.chunk_count(0), 1);
        assert_eq!(pool.chunk_count(3), 3);
        assert_eq!(pool.chunk_count(1_000_000), 4 * CHUNKS_PER_WORKER);
        let sequential = ThreadPool::new(Parallelism::fixed(1));
        assert_eq!(sequential.chunk_count(100), CHUNKS_PER_WORKER);
    }

    #[test]
    fn par_map_grouped_matches_plain_map_in_input_order() {
        let items: Vec<u64> = (0..200).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        for threads in [1, 2, 8] {
            let pool = ThreadPool::new(Parallelism::fixed(threads));
            let out = pool.par_map_grouped(
                items.clone(),
                |x| x % 5,
                |x| {
                    if x % 7 == 0 {
                        std::thread::yield_now();
                    }
                    x * 3 + 1
                },
            );
            assert_eq!(out, expected, "threads={threads}");
        }
    }

    #[test]
    fn par_map_grouped_runs_same_key_items_sequentially() {
        // Two items sharing a key must never overlap: the group is one job.
        let pool = ThreadPool::new(Parallelism::fixed(4));
        let in_group = AtomicUsize::new(0);
        let overlapped = AtomicBool::new(false);
        let items: Vec<usize> = (0..32).collect();
        pool.par_map_grouped(
            items,
            |x| x % 2, // two groups of 16
            |_| {
                if in_group.fetch_add(1, Ordering::SeqCst) >= 2 {
                    // More in flight than there are groups: overlap within
                    // a group.
                    overlapped.store(true, Ordering::SeqCst);
                }
                std::thread::sleep(Duration::from_micros(100));
                in_group.fetch_sub(1, Ordering::SeqCst);
            },
        );
        assert!(!overlapped.load(Ordering::SeqCst));
    }

    #[test]
    fn par_map_grouped_handles_empty_and_single_inputs() {
        let pool = ThreadPool::new(Parallelism::fixed(4));
        assert_eq!(
            pool.par_map_grouped(Vec::<u32>::new(), |x| *x, |x| x),
            Vec::<u32>::new()
        );
        assert_eq!(pool.par_map_grouped(vec![9], |x| *x, |x| x + 1), vec![10]);
    }

    #[test]
    fn par_map_chunked_propagates_panics() {
        let pool = ThreadPool::new(Parallelism::fixed(4));
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.par_map_chunked((0..100).collect::<Vec<u32>>(), |x| {
                assert!(x != 57, "boom on {x}");
                x
            })
        }));
        assert!(result.is_err());
    }

    #[test]
    fn scope_runs_every_spawned_task() {
        let pool = ThreadPool::new(Parallelism::fixed(3));
        let counter = AtomicUsize::new(0);
        pool.scope(|scope| {
            for _ in 0..50 {
                let counter = &counter;
                scope.spawn(move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.into_inner(), 50);
    }

    #[test]
    fn scope_tasks_actually_overlap() {
        // Two tasks that each wait for the other to start can only both
        // finish if they run concurrently.
        let pool = ThreadPool::new(Parallelism::fixed(2));
        let flags = [AtomicBool::new(false), AtomicBool::new(false)];
        pool.scope(|scope| {
            for i in 0..2 {
                let flags = &flags;
                scope.spawn(move || {
                    flags[i].store(true, Ordering::SeqCst);
                    let deadline = Instant::now() + Duration::from_secs(20);
                    while !flags[1 - i].load(Ordering::SeqCst) {
                        assert!(Instant::now() < deadline, "peer task never started");
                        std::thread::yield_now();
                    }
                });
            }
        });
        assert!(flags[0].load(Ordering::SeqCst) && flags[1].load(Ordering::SeqCst));
    }

    #[test]
    fn sequential_pool_runs_inline_in_spawn_order() {
        let pool = ThreadPool::new(Parallelism::fixed(1));
        let mut order = Vec::new();
        pool.scope(|scope| {
            scope.spawn(|| order.push(1));
        });
        assert_eq!(order, vec![1]);
        assert_eq!(pool.threads(), 1);
    }

    #[test]
    fn worker_count_is_reported() {
        let pool = ThreadPool::new(Parallelism::fixed(3));
        pool.scope(|scope| assert_eq!(scope.workers(), 3));
        ThreadPool::new(Parallelism::fixed(1)).scope(|scope| assert_eq!(scope.workers(), 1));
    }

    #[test]
    fn panics_propagate_to_the_caller() {
        let pool = ThreadPool::new(Parallelism::fixed(4));
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.par_map(vec![1, 2, 3, 4, 5], |x| {
                assert!(x != 3, "boom on {x}");
                x
            })
        }));
        assert!(result.is_err());
    }

    #[test]
    fn panics_propagate_from_sequential_pools_too() {
        let pool = ThreadPool::new(Parallelism::fixed(1));
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.par_map(vec![1, 2, 3], |x| {
                assert!(x != 2, "boom");
                x
            })
        }));
        assert!(result.is_err());
    }

    #[test]
    fn scope_returns_the_closure_value() {
        let pool = ThreadPool::new(Parallelism::fixed(2));
        let value = pool.scope(|_| 42);
        assert_eq!(value, 42);
    }

    #[test]
    fn tasks_can_borrow_stack_data() {
        let pool = ThreadPool::new(Parallelism::fixed(4));
        let data: Vec<u64> = (0..64).collect();
        let total = AtomicUsize::new(0);
        pool.scope(|scope| {
            for chunk in data.chunks(8) {
                let total = &total;
                scope.spawn(move || {
                    let sum: u64 = chunk.iter().sum();
                    total.fetch_add(sum as usize, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(total.into_inner(), (0..64).sum::<u64>() as usize);
    }
}
