//! Program replay: validation plus accumulation of the execution trace.

use crate::{instruction_duration, CompiledProgram, Instruction, Layout, ScheduleError};
use powermove_circuit::Qubit;
use powermove_hardware::{validate_aod_batches, AodBatch, HardwareError, Zone};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Quantities accumulated by replaying a [`CompiledProgram`].
///
/// These are exactly the inputs of the fidelity formula (Eq. 1 of the paper)
/// plus the execution-time metric `T_exe` and a few diagnostic counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecutionTrace {
    /// Total execution time `T_exe`, in seconds.
    pub total_time: f64,
    /// Number of CZ gates executed (`g_2`).
    pub cz_gate_count: usize,
    /// Number of single-qubit gates executed (`g_1`).
    pub one_qubit_gate_count: usize,
    /// Number of SLM <-> AOD transfers (`N_trans`).
    pub transfer_count: usize,
    /// Sum over Rydberg stages of the number of non-interacting qubits left
    /// in the computation zone (`Σ_i n_i`).
    pub excitation_exposure: usize,
    /// Number of Rydberg stages (`S`).
    pub rydberg_stage_count: usize,
    /// Number of move-group instructions.
    pub move_group_count: usize,
    /// Number of collective moves.
    pub coll_move_count: usize,
    /// Sum of all single-qubit movement distances, in meters.
    pub total_move_distance: f64,
    /// Longest single-qubit movement distance, in meters.
    pub max_move_distance: f64,
    /// Total time spent moving or transferring qubits, in seconds.
    pub movement_time: f64,
    /// Per-qubit idle time outside the storage zone (`T_q` of Eq. 1), in
    /// seconds.
    pub idle_time: Vec<f64>,
    /// Per-qubit time spent in the storage zone, in seconds.
    pub storage_time: Vec<f64>,
    /// Layout after the last instruction.
    pub final_layout: Layout,
}

impl ExecutionTrace {
    /// Total idle (non-storage) time summed over qubits.
    #[must_use]
    pub fn total_idle_time(&self) -> f64 {
        self.idle_time.iter().sum()
    }

    /// Total storage-zone residency time summed over qubits.
    #[must_use]
    pub fn total_storage_time(&self) -> f64 {
        self.storage_time.iter().sum()
    }
}

/// Replays a compiled program, validating every instruction against the
/// hardware rules and accumulating the execution trace.
///
/// # Errors
///
/// Returns the first [`ScheduleError`] encountered: an ill-formed layout, a
/// violated AOD movement constraint, overcrowded sites, a CZ pair that is not
/// co-located in the computation zone, overlapping gates within one stage, or
/// unwanted clustering during an excitation.
pub fn simulate(program: &CompiledProgram) -> Result<ExecutionTrace, ScheduleError> {
    let arch = program.architecture();
    let grid = arch.grid();
    let n = program.num_qubits();

    let mut layout = program.initial_layout().clone();
    // Validate the initial layout.
    for i in 0..n {
        let q = Qubit::new(i);
        let site = layout
            .site_of(q)
            .ok_or(ScheduleError::UnplacedQubit { qubit: q })?;
        if !grid.contains(site) {
            return Err(ScheduleError::SiteOutOfRange { site });
        }
    }
    for (site, occupants) in layout.occupied_sites() {
        if occupants.len() > 2 {
            return Err(ScheduleError::SiteOvercrowded {
                site,
                occupants: occupants.len(),
            });
        }
    }

    let mut trace = ExecutionTrace {
        total_time: 0.0,
        cz_gate_count: 0,
        one_qubit_gate_count: 0,
        transfer_count: 0,
        excitation_exposure: 0,
        rydberg_stage_count: 0,
        move_group_count: 0,
        coll_move_count: 0,
        total_move_distance: 0.0,
        max_move_distance: 0.0,
        movement_time: 0.0,
        idle_time: vec![0.0; n as usize],
        storage_time: vec![0.0; n as usize],
        final_layout: layout.clone(),
    };

    for instruction in program.instructions() {
        let duration = instruction_duration(instruction, arch);
        let active: BTreeSet<Qubit> = instruction.active_qubits().into_iter().collect();

        // Per-instruction validation and state update.
        match instruction {
            Instruction::OneQubitLayer { gates } => {
                for (q, _) in gates {
                    if q.index() >= n {
                        return Err(ScheduleError::QubitOutOfRange {
                            qubit: *q,
                            num_qubits: n,
                        });
                    }
                }
                trace.one_qubit_gate_count += gates.len();
            }
            Instruction::MoveGroup { coll_moves } => {
                if coll_moves.len() > arch.num_aods() {
                    return Err(ScheduleError::TooManyParallelMoves {
                        requested: coll_moves.len(),
                        available: arch.num_aods(),
                    });
                }
                for cm in coll_moves {
                    if cm.aod.index() >= arch.num_aods() {
                        return Err(ScheduleError::AodOutOfRange {
                            aod: cm.aod,
                            available: arch.num_aods(),
                        });
                    }
                }
                // Validate every collective move against the pre-group layout.
                for cm in coll_moves {
                    for m in &cm.moves {
                        if m.qubit.index() >= n {
                            return Err(ScheduleError::QubitOutOfRange {
                                qubit: m.qubit,
                                num_qubits: n,
                            });
                        }
                        if !grid.contains(m.to) {
                            return Err(ScheduleError::SiteOutOfRange { site: m.to });
                        }
                        let actual = layout
                            .site_of(m.qubit)
                            .ok_or(ScheduleError::UnplacedQubit { qubit: m.qubit })?;
                        if actual != m.from {
                            return Err(ScheduleError::MoveSourceMismatch {
                                qubit: m.qubit,
                                claimed: m.from,
                                actual,
                            });
                        }
                    }
                }
                // The group's collective moves overlap in time, one per-AOD
                // batch each: every batch must satisfy the AOD order
                // constraint internally, and no AOD may own two batches — a
                // doubly-booked AOD is an intra-AOD move-window overlap.
                let batches: Vec<AodBatch> = coll_moves
                    .iter()
                    .map(|cm| AodBatch::new(cm.aod, cm.trap_moves(arch)))
                    .collect();
                validate_aod_batches(&batches).map_err(|e| match e {
                    HardwareError::DuplicateAodAssignment { aod } => {
                        ScheduleError::IntraAodOverlap { aod }
                    }
                    other => ScheduleError::Hardware(other),
                })?;
                // Apply all moves of the group simultaneously.
                let mut touched = BTreeSet::new();
                for cm in coll_moves {
                    trace.coll_move_count += 1;
                    for m in &cm.moves {
                        let d = m.distance(arch);
                        trace.total_move_distance += d;
                        trace.max_move_distance = trace.max_move_distance.max(d);
                        layout.move_qubit(m.qubit, m.to);
                        touched.insert(m.to);
                        trace.transfer_count += 2;
                    }
                }
                for site in touched {
                    let occ = layout.occupancy(site);
                    if occ > 2 {
                        return Err(ScheduleError::SiteOvercrowded {
                            site,
                            occupants: occ,
                        });
                    }
                }
                trace.move_group_count += 1;
                trace.movement_time += duration;
            }
            Instruction::RydbergStage { gates } => {
                let mut seen = BTreeSet::new();
                for gate in gates {
                    for q in gate.qubits() {
                        if q.index() >= n {
                            return Err(ScheduleError::QubitOutOfRange {
                                qubit: q,
                                num_qubits: n,
                            });
                        }
                        if !seen.insert(q) {
                            return Err(ScheduleError::OverlappingGatesInStage { qubit: q });
                        }
                    }
                    let sa = layout
                        .site_of(gate.lo())
                        .ok_or(ScheduleError::UnplacedQubit { qubit: gate.lo() })?;
                    let sb = layout
                        .site_of(gate.hi())
                        .ok_or(ScheduleError::UnplacedQubit { qubit: gate.hi() })?;
                    for (q, s) in [(gate.lo(), sa), (gate.hi(), sb)] {
                        if grid.zone_of(s) == Zone::Storage {
                            return Err(ScheduleError::GateInStorage { qubit: q });
                        }
                    }
                    if sa != sb {
                        return Err(ScheduleError::PairNotColocated {
                            a: gate.lo(),
                            b: gate.hi(),
                        });
                    }
                }
                // Clustering check: any computation-zone site holding two
                // qubits must host exactly one gate pair of this stage.
                for (site, occupants) in layout.occupied_sites() {
                    if grid.zone_of(site) != Zone::Compute {
                        continue;
                    }
                    if occupants.len() >= 2 {
                        let is_pair = occupants.len() == 2
                            && gates.iter().any(|g| {
                                (g.lo() == occupants[0] && g.hi() == occupants[1])
                                    || (g.lo() == occupants[1] && g.hi() == occupants[0])
                            });
                        if !is_pair {
                            return Err(ScheduleError::Clustering { site });
                        }
                    }
                }
                // Excitation exposure: non-interacting qubits left in the
                // computation zone during this excitation.
                let exposed = layout
                    .iter()
                    .filter(|(q, site)| grid.zone_of(*site) == Zone::Compute && !seen.contains(q))
                    .count();
                trace.excitation_exposure += exposed;
                trace.cz_gate_count += gates.len();
                trace.rydberg_stage_count += 1;
            }
        }

        // Time accounting: storage-zone residents accrue storage time; other
        // qubits accrue idle time unless they actively participate.
        trace.total_time += duration;
        for i in 0..n {
            let q = Qubit::new(i);
            let Some(site) = layout.site_of(q) else {
                continue;
            };
            if grid.zone_of(site) == Zone::Storage && !active.contains(&q) {
                trace.storage_time[i as usize] += duration;
            } else if !active.contains(&q) {
                trace.idle_time[i as usize] += duration;
            }
        }
    }

    trace.final_layout = layout;
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CollMove, SiteMove};
    use powermove_circuit::{CzGate, OneQubitGate};
    use powermove_hardware::{AodId, Architecture, SiteId};

    fn q(i: u32) -> Qubit {
        Qubit::new(i)
    }

    fn arch4() -> Architecture {
        Architecture::for_qubits(4)
    }

    fn compute_layout(arch: &Architecture, n: u32) -> Layout {
        Layout::row_major(arch, n, Zone::Compute).unwrap()
    }

    fn site(arch: &Architecture, zone: Zone, c: u32, r: u32) -> SiteId {
        arch.grid().site(zone, c, r).unwrap()
    }

    #[test]
    fn empty_program_produces_zero_trace() {
        let arch = arch4();
        let layout = compute_layout(&arch, 4);
        let p = CompiledProgram::new(arch, 4, layout, vec![]);
        let t = simulate(&p).unwrap();
        assert_eq!(t.total_time, 0.0);
        assert_eq!(t.cz_gate_count, 0);
        assert_eq!(t.transfer_count, 0);
        assert_eq!(t.total_idle_time(), 0.0);
    }

    #[test]
    fn unplaced_qubit_is_rejected() {
        let arch = arch4();
        let layout = Layout::empty(4);
        let p = CompiledProgram::new(arch, 4, layout, vec![]);
        assert!(matches!(
            simulate(&p),
            Err(ScheduleError::UnplacedQubit { .. })
        ));
    }

    #[test]
    fn move_then_cz_is_valid_and_counted() {
        let arch = arch4();
        let layout = compute_layout(&arch, 4);
        let from = site(&arch, Zone::Compute, 1, 0);
        let to = site(&arch, Zone::Compute, 0, 0);
        let p = CompiledProgram::new(
            arch.clone(),
            4,
            layout,
            vec![
                Instruction::move_group(vec![CollMove::new(
                    AodId::new(0),
                    vec![SiteMove::new(q(1), from, to)],
                )]),
                Instruction::rydberg(vec![CzGate::new(q(0), q(1))]),
            ],
        );
        let t = simulate(&p).unwrap();
        assert_eq!(t.cz_gate_count, 1);
        assert_eq!(t.transfer_count, 2);
        assert_eq!(t.rydberg_stage_count, 1);
        // Qubits 2 and 3 stay in the computation zone without a gate: they
        // are exposed to the excitation.
        assert_eq!(t.excitation_exposure, 2);
        assert!(t.total_time > 0.0);
        assert!((t.total_move_distance - 15e-6).abs() < 1e-12);
    }

    #[test]
    fn cz_without_colocation_is_rejected() {
        let arch = arch4();
        let layout = compute_layout(&arch, 4);
        let p = CompiledProgram::new(
            arch,
            4,
            layout,
            vec![Instruction::rydberg(vec![CzGate::new(q(0), q(1))])],
        );
        assert!(matches!(
            simulate(&p),
            Err(ScheduleError::PairNotColocated { .. })
        ));
    }

    #[test]
    fn overlapping_gates_in_stage_rejected() {
        let arch = arch4();
        let mut layout = compute_layout(&arch, 4);
        let s0 = site(&arch, Zone::Compute, 0, 0);
        layout.place(q(1), s0);
        let p = CompiledProgram::new(
            arch,
            4,
            layout,
            vec![Instruction::rydberg(vec![
                CzGate::new(q(0), q(1)),
                CzGate::new(q(1), q(2)),
            ])],
        );
        assert!(matches!(
            simulate(&p),
            Err(ScheduleError::OverlappingGatesInStage { .. })
        ));
    }

    #[test]
    fn clustering_is_detected() {
        let arch = arch4();
        let mut layout = compute_layout(&arch, 4);
        // Put q2 on the same site as q3 without gating them.
        let s = layout.site_of(q(3)).unwrap();
        layout.place(q(2), s);
        // And co-locate the actual pair 0-1.
        let s0 = layout.site_of(q(0)).unwrap();
        layout.place(q(1), s0);
        let p = CompiledProgram::new(
            arch,
            4,
            layout,
            vec![Instruction::rydberg(vec![CzGate::new(q(0), q(1))])],
        );
        assert!(matches!(
            simulate(&p),
            Err(ScheduleError::Clustering { .. })
        ));
    }

    #[test]
    fn gate_in_storage_is_rejected() {
        let arch = arch4();
        let mut layout = compute_layout(&arch, 4);
        let s = site(&arch, Zone::Storage, 0, 0);
        layout.place(q(0), s);
        layout.place(q(1), s);
        let p = CompiledProgram::new(
            arch,
            4,
            layout,
            vec![Instruction::rydberg(vec![CzGate::new(q(0), q(1))])],
        );
        assert!(matches!(
            simulate(&p),
            Err(ScheduleError::GateInStorage { .. })
        ));
    }

    #[test]
    fn conflicting_moves_in_one_coll_move_rejected() {
        let arch = arch4();
        let layout = compute_layout(&arch, 4);
        // q0 at (0,0) moves right past q1 at (1,0) which moves left: crossing.
        let a = SiteMove::new(
            q(0),
            site(&arch, Zone::Compute, 0, 0),
            site(&arch, Zone::Compute, 1, 1),
        );
        let b = SiteMove::new(
            q(1),
            site(&arch, Zone::Compute, 1, 0),
            site(&arch, Zone::Compute, 0, 1),
        );
        let p = CompiledProgram::new(
            arch,
            4,
            layout,
            vec![Instruction::move_group(vec![CollMove::new(
                AodId::new(0),
                vec![a, b],
            )])],
        );
        assert!(matches!(simulate(&p), Err(ScheduleError::Hardware(_))));
    }

    #[test]
    fn too_many_parallel_moves_rejected() {
        let arch = arch4(); // 1 AOD
        let layout = compute_layout(&arch, 4);
        let a = SiteMove::new(
            q(0),
            site(&arch, Zone::Compute, 0, 0),
            site(&arch, Zone::Compute, 0, 1),
        );
        let b = SiteMove::new(
            q(1),
            site(&arch, Zone::Compute, 1, 0),
            site(&arch, Zone::Compute, 1, 1),
        );
        let p = CompiledProgram::new(
            arch,
            4,
            layout,
            vec![Instruction::move_group(vec![
                CollMove::new(AodId::new(0), vec![a]),
                CollMove::new(AodId::new(1), vec![b]),
            ])],
        );
        assert!(matches!(
            simulate(&p),
            Err(ScheduleError::TooManyParallelMoves { .. })
        ));
    }

    #[test]
    fn intra_aod_overlap_rejected() {
        // Two collective moves on the same AOD in one window: even with two
        // AODs available, one lattice cannot run two moves at once.
        let arch = arch4().with_num_aods(2);
        let layout = compute_layout(&arch, 4);
        let a = SiteMove::new(
            q(0),
            site(&arch, Zone::Compute, 0, 0),
            site(&arch, Zone::Compute, 0, 1),
        );
        let b = SiteMove::new(
            q(1),
            site(&arch, Zone::Compute, 1, 0),
            site(&arch, Zone::Compute, 1, 1),
        );
        let p = CompiledProgram::new(
            arch,
            4,
            layout,
            vec![Instruction::move_group(vec![
                CollMove::new(AodId::new(0), vec![a]),
                CollMove::new(AodId::new(0), vec![b]),
            ])],
        );
        assert!(matches!(
            simulate(&p),
            Err(ScheduleError::IntraAodOverlap { .. })
        ));
    }

    #[test]
    fn aod_index_beyond_architecture_rejected() {
        let arch = arch4().with_num_aods(2);
        let layout = compute_layout(&arch, 4);
        let m = SiteMove::new(
            q(0),
            site(&arch, Zone::Compute, 0, 0),
            site(&arch, Zone::Compute, 0, 1),
        );
        let p = CompiledProgram::new(
            arch,
            4,
            layout,
            vec![Instruction::move_group(vec![CollMove::new(
                AodId::new(2),
                vec![m],
            )])],
        );
        assert!(matches!(
            simulate(&p),
            Err(ScheduleError::AodOutOfRange { .. })
        ));
    }

    #[test]
    fn distinct_aods_may_run_conflicting_moves_in_one_window() {
        // Crossing moves conflict within one AOD lattice but are legal on
        // two independent arrays sharing a parallel window.
        let arch = arch4().with_num_aods(2);
        let layout = compute_layout(&arch, 4);
        let a = SiteMove::new(
            q(0),
            site(&arch, Zone::Compute, 0, 0),
            site(&arch, Zone::Compute, 1, 1),
        );
        let b = SiteMove::new(
            q(1),
            site(&arch, Zone::Compute, 1, 0),
            site(&arch, Zone::Compute, 0, 1),
        );
        assert!(a.to_trap_move(&arch).conflicts_with(&b.to_trap_move(&arch)));
        let p = CompiledProgram::new(
            arch,
            4,
            layout,
            vec![Instruction::move_group(vec![
                CollMove::new(AodId::new(0), vec![a]),
                CollMove::new(AodId::new(1), vec![b]),
            ])],
        );
        let t = simulate(&p).unwrap();
        assert_eq!(t.coll_move_count, 2);
        assert_eq!(t.move_group_count, 1);
    }

    #[test]
    fn move_source_mismatch_rejected() {
        let arch = arch4();
        let layout = compute_layout(&arch, 4);
        let wrong_from = site(&arch, Zone::Compute, 0, 1);
        let m = SiteMove::new(q(0), wrong_from, site(&arch, Zone::Compute, 1, 1));
        let p = CompiledProgram::new(
            arch,
            4,
            layout,
            vec![Instruction::move_group(vec![CollMove::new(
                AodId::new(0),
                vec![m],
            )])],
        );
        assert!(matches!(
            simulate(&p),
            Err(ScheduleError::MoveSourceMismatch { .. })
        ));
    }

    #[test]
    fn storage_residents_accrue_storage_not_idle_time() {
        let arch = Architecture::for_qubits(4);
        let mut layout = compute_layout(&arch, 4);
        // Park q3 in storage.
        layout.place(q(3), site(&arch, Zone::Storage, 0, 0));
        // Co-locate 0-1 for a gate.
        let s0 = layout.site_of(q(0)).unwrap();
        layout.place(q(1), s0);
        let p = CompiledProgram::new(
            arch,
            4,
            layout,
            vec![Instruction::rydberg(vec![CzGate::new(q(0), q(1))])],
        );
        let t = simulate(&p).unwrap();
        // q3 is in storage: storage time accrues, no idle time, no exposure.
        assert!(t.storage_time[3] > 0.0);
        assert_eq!(t.idle_time[3], 0.0);
        // q2 idles in the computation zone: exposed and idle.
        assert!(t.idle_time[2] > 0.0);
        assert_eq!(t.excitation_exposure, 1);
        // Gated qubits are busy.
        assert_eq!(t.idle_time[0], 0.0);
        assert_eq!(t.idle_time[1], 0.0);
    }

    #[test]
    fn one_qubit_layer_counts_and_idle() {
        let arch = arch4();
        let layout = compute_layout(&arch, 4);
        let p = CompiledProgram::new(
            arch,
            4,
            layout,
            vec![Instruction::one_qubit_layer(vec![
                (q(0), OneQubitGate::H),
                (q(1), OneQubitGate::H),
            ])],
        );
        let t = simulate(&p).unwrap();
        assert_eq!(t.one_qubit_gate_count, 2);
        assert_eq!(t.idle_time[0], 0.0);
        assert!((t.idle_time[2] - 1e-6).abs() < 1e-12);
        assert!((t.total_time - 1e-6).abs() < 1e-12);
    }

    #[test]
    fn overcrowding_after_move_rejected() {
        let arch = arch4();
        let mut layout = compute_layout(&arch, 4);
        // Pre-pair 0 and 1 at one site, then move 2 onto the same site.
        let s0 = layout.site_of(q(0)).unwrap();
        layout.place(q(1), s0);
        let from2 = layout.site_of(q(2)).unwrap();
        let p = CompiledProgram::new(
            arch,
            4,
            layout,
            vec![Instruction::move_group(vec![CollMove::new(
                AodId::new(0),
                vec![SiteMove::new(q(2), from2, s0)],
            )])],
        );
        assert!(matches!(
            simulate(&p),
            Err(ScheduleError::SiteOvercrowded { .. })
        ));
    }
}
