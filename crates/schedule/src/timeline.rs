//! Time-stamped view of a compiled program.
//!
//! The [`Timeline`] expands a [`CompiledProgram`] into absolute-time events,
//! which is what one would hand to a control-system backend or a schedule
//! visualizer, and provides aggregate occupancy statistics (how much of the
//! wall-clock time is spent moving, exciting, or executing 1Q layers).

use crate::{instruction_duration, CompiledProgram, Instruction};
use powermove_hardware::AodId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The kind of a timeline event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// A layer of parallel single-qubit gates.
    OneQubitLayer,
    /// A group of collective qubit movements (including the trap transfers).
    Movement,
    /// A global Rydberg excitation executing one CZ stage.
    RydbergStage,
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EventKind::OneQubitLayer => write!(f, "1q-layer"),
            EventKind::Movement => write!(f, "movement"),
            EventKind::RydbergStage => write!(f, "rydberg"),
        }
    }
}

/// One event of the timeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimelineEvent {
    /// Index of the originating instruction in the program.
    pub instruction_index: usize,
    /// Event kind.
    pub kind: EventKind,
    /// Absolute start time in seconds.
    pub start: f64,
    /// Duration in seconds.
    pub duration: f64,
    /// Number of qubits actively involved (gated or moved).
    pub active_qubits: usize,
}

impl TimelineEvent {
    /// Absolute end time in seconds.
    #[must_use]
    pub fn end(&self) -> f64 {
        self.start + self.duration
    }
}

/// The busy window of one AOD array within one move-group instruction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AodWindow {
    /// Index of the originating move-group instruction.
    pub instruction_index: usize,
    /// The AOD array executing the collective move.
    pub aod: AodId,
    /// Absolute start time in seconds (shared by every AOD of the group).
    pub start: f64,
    /// Busy duration: two trap transfers plus this AOD's own translation.
    pub duration: f64,
}

impl AodWindow {
    /// Absolute end time in seconds.
    #[must_use]
    pub fn end(&self) -> f64 {
        self.start + self.duration
    }

    /// Whether this window overlaps `other` in time.
    #[must_use]
    pub fn overlaps(&self, other: &AodWindow) -> bool {
        self.start < other.end() && other.start < self.end()
    }
}

/// The absolute-time expansion of a compiled program.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Timeline {
    events: Vec<TimelineEvent>,
    total_duration: f64,
}

impl Timeline {
    /// Builds the timeline of a program by laying its instructions out
    /// back-to-back (the hardware executes them sequentially: a global
    /// Rydberg pulse, a collective move and a Raman layer cannot overlap).
    #[must_use]
    pub fn of(program: &CompiledProgram) -> Self {
        let arch = program.architecture();
        let mut events = Vec::with_capacity(program.num_instructions());
        let mut clock = 0.0;
        for (index, instruction) in program.instructions().iter().enumerate() {
            let duration = instruction_duration(instruction, arch);
            let kind = match instruction {
                Instruction::OneQubitLayer { .. } => EventKind::OneQubitLayer,
                Instruction::MoveGroup { .. } => EventKind::Movement,
                Instruction::RydbergStage { .. } => EventKind::RydbergStage,
            };
            events.push(TimelineEvent {
                instruction_index: index,
                kind,
                start: clock,
                duration,
                active_qubits: instruction.active_qubits().len(),
            });
            clock += duration;
        }
        Timeline {
            events,
            total_duration: clock,
        }
    }

    /// The events in execution order.
    #[must_use]
    pub fn events(&self) -> &[TimelineEvent] {
        &self.events
    }

    /// Total duration in seconds (equals the program's `T_exe`).
    #[must_use]
    pub fn total_duration(&self) -> f64 {
        self.total_duration
    }

    /// Total time spent in events of the given kind, in seconds.
    #[must_use]
    pub fn time_in(&self, kind: EventKind) -> f64 {
        self.events
            .iter()
            .filter(|e| e.kind == kind)
            .map(|e| e.duration)
            .sum()
    }

    /// Fraction of the total duration spent in events of the given kind.
    ///
    /// Returns 0 for an empty timeline.
    #[must_use]
    pub fn fraction_in(&self, kind: EventKind) -> f64 {
        if self.total_duration <= 0.0 {
            0.0
        } else {
            self.time_in(kind) / self.total_duration
        }
    }

    /// Expands every movement event of `program` into per-AOD busy windows.
    ///
    /// Collective moves of one move group share the group's start time —
    /// their windows *overlap*, which is exactly the multi-AOD parallelism
    /// the scheduler exploits — but each window lasts only two transfers
    /// plus that AOD's own translation, so an AOD driving a short move goes
    /// idle before the group's slowest member finishes. Windows of the same
    /// AOD never overlap: groups execute sequentially and the validator
    /// rejects a doubly-booked AOD within one group
    /// ([`crate::ScheduleError::IntraAodOverlap`]).
    ///
    /// The timeline must have been built from the same program.
    #[must_use]
    pub fn aod_windows(&self, program: &CompiledProgram) -> Vec<AodWindow> {
        let arch = program.architecture();
        let mut windows = Vec::new();
        for event in &self.events {
            let Some(Instruction::MoveGroup { coll_moves }) =
                program.instructions().get(event.instruction_index)
            else {
                continue;
            };
            for cm in coll_moves {
                if cm.is_empty() {
                    continue;
                }
                windows.push(AodWindow {
                    instruction_index: event.instruction_index,
                    aod: cm.aod,
                    start: event.start,
                    duration: 2.0 * arch.params().transfer_duration + cm.move_duration(arch),
                });
            }
        }
        windows
    }

    /// Renders a compact text summary, one line per event, with times in
    /// microseconds. Useful for debugging schedules.
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for event in &self.events {
            let _ = writeln!(
                out,
                "[{:>10.2} us + {:>8.2} us] {:<9} ({} qubits)",
                event.start * 1e6,
                event.duration * 1e6,
                event.kind.to_string(),
                event.active_qubits
            );
        }
        let _ = writeln!(out, "total: {:.2} us", self.total_duration * 1e6);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CollMove, Layout, SiteMove};
    use powermove_circuit::{CzGate, OneQubitGate, Qubit};
    use powermove_hardware::{AodId, Architecture, Zone};

    fn q(i: u32) -> Qubit {
        Qubit::new(i)
    }

    fn sample_program() -> CompiledProgram {
        let arch = Architecture::for_qubits(4);
        let layout = Layout::row_major(&arch, 4, Zone::Compute).unwrap();
        let g = arch.grid().clone();
        let s = |c, r| g.site(Zone::Compute, c, r).unwrap();
        CompiledProgram::new(
            arch,
            4,
            layout,
            vec![
                Instruction::one_qubit_layer(vec![(q(0), OneQubitGate::H)]),
                Instruction::move_group(vec![CollMove::new(
                    AodId::new(0),
                    vec![SiteMove::new(q(1), s(1, 0), s(0, 0))],
                )]),
                Instruction::rydberg(vec![CzGate::new(q(0), q(1))]),
            ],
        )
    }

    #[test]
    fn timeline_is_contiguous_and_ordered() {
        let timeline = Timeline::of(&sample_program());
        assert_eq!(timeline.events().len(), 3);
        let mut clock = 0.0;
        for event in timeline.events() {
            assert!((event.start - clock).abs() < 1e-12);
            clock = event.end();
        }
        assert!((timeline.total_duration() - clock).abs() < 1e-12);
    }

    #[test]
    fn total_duration_matches_simulated_time() {
        let program = sample_program();
        let timeline = Timeline::of(&program);
        let trace = crate::simulate(&program).unwrap();
        assert!((timeline.total_duration() - trace.total_time).abs() < 1e-12);
    }

    #[test]
    fn kind_breakdown_sums_to_total() {
        let timeline = Timeline::of(&sample_program());
        let sum = timeline.time_in(EventKind::OneQubitLayer)
            + timeline.time_in(EventKind::Movement)
            + timeline.time_in(EventKind::RydbergStage);
        assert!((sum - timeline.total_duration()).abs() < 1e-12);
        let fractions = timeline.fraction_in(EventKind::Movement);
        assert!(fractions > 0.9, "movement dominates this schedule");
    }

    #[test]
    fn empty_program_has_empty_timeline() {
        let arch = Architecture::for_qubits(2);
        let layout = Layout::row_major(&arch, 2, Zone::Compute).unwrap();
        let program = CompiledProgram::new(arch, 2, layout, vec![]);
        let timeline = Timeline::of(&program);
        assert!(timeline.events().is_empty());
        assert_eq!(timeline.total_duration(), 0.0);
        assert_eq!(timeline.fraction_in(EventKind::Movement), 0.0);
    }

    #[test]
    fn aod_windows_overlap_across_arrays_but_never_within_one() {
        let arch = Architecture::for_qubits(9).with_num_aods(2);
        let layout = Layout::row_major(&arch, 6, Zone::Compute).unwrap();
        let g = arch.grid().clone();
        let s = |c, r| g.site(Zone::Compute, c, r).unwrap();
        let program = CompiledProgram::new(
            arch,
            6,
            layout,
            vec![
                Instruction::move_group(vec![
                    CollMove::new(AodId::new(0), vec![SiteMove::new(q(2), s(2, 0), s(2, 2))]),
                    CollMove::new(AodId::new(1), vec![SiteMove::new(q(3), s(0, 1), s(0, 2))]),
                ]),
                Instruction::move_group(vec![CollMove::new(
                    AodId::new(0),
                    vec![SiteMove::new(q(2), s(2, 2), s(2, 1))],
                )]),
            ],
        );
        let timeline = Timeline::of(&program);
        let windows = timeline.aod_windows(&program);
        assert_eq!(windows.len(), 3);
        // The two windows of the first group share a start and overlap.
        assert_eq!(windows[0].start, windows[1].start);
        assert!(windows[0].overlaps(&windows[1]));
        assert_ne!(windows[0].aod, windows[1].aod);
        // The longer translation outlives the shorter one's window.
        assert!(windows[0].duration > windows[1].duration);
        // Same-AOD windows (groups 1 and 2 on aod0) never overlap.
        assert!(!windows[0].overlaps(&windows[2]));
        assert!(windows[2].start >= windows[0].end());
        // Every window ends within its group's event.
        let events = timeline.events();
        assert!(windows
            .iter()
            .all(|w| w.end() <= events[w.instruction_index].end() + 1e-12));
    }

    #[test]
    fn render_lists_every_event() {
        let timeline = Timeline::of(&sample_program());
        let text = timeline.render();
        assert_eq!(text.lines().count(), 4);
        assert!(text.contains("rydberg"));
        assert!(text.contains("total:"));
    }
}
