//! Low-level schedule representation for neutral-atom programs.
//!
//! Compilers (PowerMove and the Enola baseline) lower a circuit into a
//! [`CompiledProgram`]: a sequence of hardware-level [`Instruction`]s over an
//! [`Architecture`](powermove_hardware::Architecture) —
//! parallel single-qubit layers, collective qubit movements executed by one
//! or more AOD arrays, and global Rydberg excitations that realize a stage of
//! CZ gates.
//!
//! The crate also provides:
//!
//! * [`Layout`]: the mapping from logical qubits to trap sites, with
//!   occupancy tracking;
//! * [`simulate`]: an execution-trace simulator that replays a program,
//!   validates it against the hardware rules (AOD order constraints,
//!   Rydberg-radius pairing, no clustering) and accumulates the quantities
//!   needed by the fidelity model of Eq. (1) — execution time, per-qubit
//!   idle/storage time, transfer counts and excitation exposure;
//! * [`validate`]: validation without trace accumulation;
//! * [`canonical_json`] / [`canonical_program_bytes`] / [`program_digest`]:
//!   deterministic serialized forms used for content hashing (the compile
//!   service's schedule cache) and byte-identity checks (the determinism
//!   tests).
//!
//! # Example
//!
//! ```
//! use powermove_circuit::Qubit;
//! use powermove_hardware::{Architecture, Zone};
//! use powermove_schedule::{CompiledProgram, Instruction, Layout};
//!
//! let arch = Architecture::for_qubits(4);
//! let layout = Layout::row_major(&arch, 4, Zone::Compute).unwrap();
//! let program = CompiledProgram::new(arch, 4, layout, vec![Instruction::rydberg(vec![])]);
//! let trace = powermove_schedule::simulate(&program).unwrap();
//! assert_eq!(trace.rydberg_stage_count, 1);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod canonical;
mod error;
mod instruction;
mod layout;
mod program;
mod timeline;
mod timing;
mod trace;
mod validate;

pub use canonical::{canonical_json, canonical_program_bytes, fnv1a_64, program_digest};
pub use error::ScheduleError;
pub use instruction::{CollMove, Instruction, SiteMove};
pub use layout::Layout;
pub use program::{CompileMetadata, CompiledProgram, PassCounter, PassTiming};
pub use timeline::{AodWindow, EventKind, Timeline, TimelineEvent};
pub use timing::{
    instruction_duration, move_group_duration, movement_wall_clock, one_qubit_layer_duration,
    MovementClock,
};
pub use trace::{simulate, ExecutionTrace};
pub use validate::validate;
