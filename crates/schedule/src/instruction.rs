//! Hardware-level instructions of a compiled neutral-atom program.

use powermove_circuit::{CzGate, OneQubitGate, Qubit};
use powermove_hardware::{AodId, Architecture, SiteId, TrapMove};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// A single-qubit movement between two sites, part of a collective move.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SiteMove {
    /// The qubit being moved.
    pub qubit: Qubit,
    /// Source site.
    pub from: SiteId,
    /// Destination site.
    pub to: SiteId,
}

impl SiteMove {
    /// Creates a site-level move.
    #[must_use]
    pub const fn new(qubit: Qubit, from: SiteId, to: SiteId) -> Self {
        SiteMove { qubit, from, to }
    }

    /// Converts to a physical [`TrapMove`] using the machine geometry.
    #[must_use]
    pub fn to_trap_move(&self, arch: &Architecture) -> TrapMove {
        TrapMove::new(
            self.qubit,
            arch.grid().position(self.from),
            arch.grid().position(self.to),
        )
    }

    /// Movement distance in meters.
    #[must_use]
    pub fn distance(&self, arch: &Architecture) -> f64 {
        arch.grid().distance(self.from, self.to)
    }
}

impl fmt::Display for SiteMove {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {} -> {}", self.qubit, self.from, self.to)
    }
}

/// A collective move: a set of single-qubit moves executed together by one
/// AOD array (Coll-Move in the paper's terminology).
///
/// Every qubit of a collective move is transferred from its static trap into
/// the AOD (one transfer), translated, and dropped back into a static trap
/// (a second transfer).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CollMove {
    /// The AOD array executing this collective move.
    pub aod: AodId,
    /// The constituent single-qubit moves.
    pub moves: Vec<SiteMove>,
}

impl CollMove {
    /// Creates a collective move on the given AOD.
    #[must_use]
    pub fn new(aod: AodId, moves: Vec<SiteMove>) -> Self {
        CollMove { aod, moves }
    }

    /// Number of qubits moved.
    #[must_use]
    pub fn len(&self) -> usize {
        self.moves.len()
    }

    /// Returns `true` if no qubit is moved.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.moves.is_empty()
    }

    /// The longest single-qubit movement distance, in meters, which
    /// determines the duration of the collective move.
    #[must_use]
    pub fn max_distance(&self, arch: &Architecture) -> f64 {
        self.moves
            .iter()
            .map(|m| m.distance(arch))
            .fold(0.0, f64::max)
    }

    /// Total movement distance over all constituent moves, in meters.
    #[must_use]
    pub fn total_distance(&self, arch: &Architecture) -> f64 {
        self.moves.iter().map(|m| m.distance(arch)).sum()
    }

    /// Duration of the translation (excluding transfers), in seconds.
    #[must_use]
    pub fn move_duration(&self, arch: &Architecture) -> f64 {
        powermove_hardware::move_duration(self.max_distance(arch), arch.params().max_acceleration)
    }

    /// The physical trap moves of this collective move.
    #[must_use]
    pub fn trap_moves(&self, arch: &Architecture) -> Vec<TrapMove> {
        self.moves.iter().map(|m| m.to_trap_move(arch)).collect()
    }
}

/// One instruction of a compiled program.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Instruction {
    /// A layer of single-qubit gates executed by parallel Raman pulses.
    OneQubitLayer {
        /// The gates of the layer.
        gates: Vec<(Qubit, OneQubitGate)>,
    },
    /// One or more collective moves executed in parallel on distinct AOD
    /// arrays.
    MoveGroup {
        /// The collective moves, at most one per AOD array.
        coll_moves: Vec<CollMove>,
    },
    /// A global Rydberg excitation executing one stage of CZ gates on
    /// co-located qubit pairs in the computation zone.
    RydbergStage {
        /// The CZ gates realized by this excitation.
        gates: Vec<CzGate>,
    },
}

impl Instruction {
    /// Convenience constructor for a single-qubit layer.
    #[must_use]
    pub fn one_qubit_layer(gates: Vec<(Qubit, OneQubitGate)>) -> Self {
        Instruction::OneQubitLayer { gates }
    }

    /// Convenience constructor for a move group.
    #[must_use]
    pub fn move_group(coll_moves: Vec<CollMove>) -> Self {
        Instruction::MoveGroup { coll_moves }
    }

    /// Convenience constructor for a Rydberg stage.
    #[must_use]
    pub fn rydberg(gates: Vec<CzGate>) -> Self {
        Instruction::RydbergStage { gates }
    }

    /// Number of qubit transfers (SLM <-> AOD) implied by this instruction:
    /// two per moved qubit, zero otherwise.
    #[must_use]
    pub fn transfer_count(&self) -> usize {
        match self {
            Instruction::MoveGroup { coll_moves } => {
                2 * coll_moves.iter().map(CollMove::len).sum::<usize>()
            }
            _ => 0,
        }
    }

    /// The qubits that actively participate in this instruction (gate
    /// targets or moved qubits).
    #[must_use]
    pub fn active_qubits(&self) -> Vec<Qubit> {
        match self {
            Instruction::OneQubitLayer { gates } => gates.iter().map(|(q, _)| *q).collect(),
            Instruction::MoveGroup { coll_moves } => coll_moves
                .iter()
                .flat_map(|cm| cm.moves.iter().map(|m| m.qubit))
                .collect(),
            Instruction::RydbergStage { gates } => gates.iter().flat_map(|g| g.qubits()).collect(),
        }
    }

    /// The serial depth of a 1Q layer: the maximum number of gates applied
    /// to any single qubit. Zero for other instructions.
    #[must_use]
    pub fn one_qubit_depth(&self) -> usize {
        match self {
            Instruction::OneQubitLayer { gates } => {
                let mut counts: HashMap<Qubit, usize> = HashMap::new();
                for (q, _) in gates {
                    *counts.entry(*q).or_insert(0) += 1;
                }
                counts.values().copied().max().unwrap_or(0)
            }
            _ => 0,
        }
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instruction::OneQubitLayer { gates } => write!(f, "1q-layer({} gates)", gates.len()),
            Instruction::MoveGroup { coll_moves } => {
                let moved: usize = coll_moves.iter().map(CollMove::len).sum();
                write!(
                    f,
                    "move-group({} coll-moves, {moved} qubits)",
                    coll_moves.len()
                )
            }
            Instruction::RydbergStage { gates } => write!(f, "rydberg({} cz)", gates.len()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powermove_hardware::Zone;

    fn q(i: u32) -> Qubit {
        Qubit::new(i)
    }

    #[test]
    fn site_move_distance_uses_grid() {
        let arch = Architecture::for_qubits(9);
        let a = arch.grid().site(Zone::Compute, 0, 0).unwrap();
        let b = arch.grid().site(Zone::Compute, 1, 0).unwrap();
        let m = SiteMove::new(q(0), a, b);
        assert!((m.distance(&arch) - 15e-6).abs() < 1e-12);
        let tm = m.to_trap_move(&arch);
        assert_eq!(tm.qubit, q(0));
    }

    #[test]
    fn coll_move_max_and_total_distance() {
        let arch = Architecture::for_qubits(9);
        let g = arch.grid();
        let s = |c, r| g.site(Zone::Compute, c, r).unwrap();
        let cm = CollMove::new(
            AodId::new(0),
            vec![
                SiteMove::new(q(0), s(0, 0), s(0, 1)),
                SiteMove::new(q(1), s(1, 0), s(1, 2)),
            ],
        );
        assert!((cm.max_distance(&arch) - 30e-6).abs() < 1e-12);
        assert!((cm.total_distance(&arch) - 45e-6).abs() < 1e-12);
        assert!(cm.move_duration(&arch) > 0.0);
        assert_eq!(cm.len(), 2);
        assert!(!cm.is_empty());
    }

    #[test]
    fn transfer_count_is_two_per_moved_qubit() {
        let arch = Architecture::for_qubits(4);
        let g = arch.grid();
        let s = |c, r| g.site(Zone::Compute, c, r).unwrap();
        let instr = Instruction::move_group(vec![
            CollMove::new(AodId::new(0), vec![SiteMove::new(q(0), s(0, 0), s(1, 0))]),
            CollMove::new(AodId::new(1), vec![SiteMove::new(q(1), s(0, 1), s(1, 1))]),
        ]);
        assert_eq!(instr.transfer_count(), 4);
        assert_eq!(Instruction::rydberg(vec![]).transfer_count(), 0);
    }

    #[test]
    fn active_qubits_per_instruction_kind() {
        let layer = Instruction::one_qubit_layer(vec![(q(0), OneQubitGate::H)]);
        assert_eq!(layer.active_qubits(), vec![q(0)]);
        let stage = Instruction::rydberg(vec![CzGate::new(q(1), q(2))]);
        assert_eq!(stage.active_qubits(), vec![q(1), q(2)]);
    }

    #[test]
    fn one_qubit_depth_counts_per_qubit() {
        let layer = Instruction::one_qubit_layer(vec![
            (q(0), OneQubitGate::H),
            (q(0), OneQubitGate::Rz(0.2)),
            (q(1), OneQubitGate::X),
        ]);
        assert_eq!(layer.one_qubit_depth(), 2);
        assert_eq!(Instruction::rydberg(vec![]).one_qubit_depth(), 0);
    }

    #[test]
    fn display_summaries() {
        assert_eq!(
            Instruction::rydberg(vec![CzGate::new(q(0), q(1))]).to_string(),
            "rydberg(1 cz)"
        );
        assert_eq!(
            Instruction::one_qubit_layer(vec![(q(0), OneQubitGate::H)]).to_string(),
            "1q-layer(1 gates)"
        );
    }
}
