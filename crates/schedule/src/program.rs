//! The compiled-program container.

use crate::{CollMove, Instruction, Layout};
use powermove_hardware::Architecture;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Wall-clock time attributed to one named pipeline pass.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct PassTiming {
    /// Pass name, e.g. `"stage"` or `"route"`.
    pub pass: String,
    /// Accumulated wall-clock seconds spent in the pass.
    pub seconds: f64,
}

/// A named work counter accumulated during compilation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct PassCounter {
    /// Counter name, e.g. `"coll_moves"`.
    pub name: String,
    /// Accumulated value.
    pub value: u64,
}

/// Metadata describing how a program was produced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct CompileMetadata {
    /// Human-readable compiler name, e.g. `"powermove"` or `"enola"`.
    pub compiler: String,
    /// Wall-clock compilation time in seconds, if recorded.
    pub compile_time: Option<f64>,
    /// Whether the storage zone was used by the compiler.
    pub uses_storage: bool,
    /// Number of Rydberg stages scheduled.
    pub num_stages: usize,
    /// Number of AOD arrays the program was scheduled for (the resolved
    /// `Architecture::num_aods`, so bench reports record the count that
    /// actually drove multi-AOD packing). Zero when unrecorded.
    pub num_aods: usize,
    /// Name of the routing strategy an auto-tuning compiler selected for
    /// this program (e.g. `"multi-aod"`). `None` when the strategy was fixed
    /// by configuration rather than chosen per instance.
    pub selected_strategy: Option<String>,
    /// Per-pass wall-clock timings, in pipeline order.
    pub pass_timings: Vec<PassTiming>,
    /// Work counters accumulated by the passes.
    pub counters: Vec<PassCounter>,
}

impl CompileMetadata {
    /// Seconds attributed to the named pass, if it was recorded.
    #[must_use]
    pub fn pass_seconds(&self, pass: &str) -> Option<f64> {
        self.pass_timings
            .iter()
            .find(|t| t.pass == pass)
            .map(|t| t.seconds)
    }

    /// The value of the named work counter, if it was recorded.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// Total wall-clock seconds attributed to passes.
    #[must_use]
    pub fn total_pass_seconds(&self) -> f64 {
        self.pass_timings.iter().map(|t| t.seconds).sum()
    }
}

/// A fully lowered neutral-atom program: an initial qubit layout plus a
/// sequence of hardware instructions over a concrete [`Architecture`].
///
/// # Example
///
/// ```
/// use powermove_hardware::{Architecture, Zone};
/// use powermove_schedule::{CompiledProgram, Instruction, Layout};
///
/// let arch = Architecture::for_qubits(4);
/// let layout = Layout::row_major(&arch, 4, Zone::Compute).unwrap();
/// let program = CompiledProgram::new(arch, 4, layout, vec![Instruction::rydberg(vec![])]);
/// assert_eq!(program.num_instructions(), 1);
/// assert_eq!(program.rydberg_stage_count(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompiledProgram {
    architecture: Architecture,
    num_qubits: u32,
    initial_layout: Layout,
    instructions: Vec<Instruction>,
    metadata: CompileMetadata,
}

impl CompiledProgram {
    /// Creates a program from its parts with default metadata.
    #[must_use]
    pub fn new(
        architecture: Architecture,
        num_qubits: u32,
        initial_layout: Layout,
        instructions: Vec<Instruction>,
    ) -> Self {
        CompiledProgram {
            architecture,
            num_qubits,
            initial_layout,
            instructions,
            metadata: CompileMetadata::default(),
        }
    }

    /// Attaches compiler metadata.
    #[must_use]
    pub fn with_metadata(mut self, metadata: CompileMetadata) -> Self {
        self.metadata = metadata;
        self
    }

    /// The target machine.
    #[must_use]
    pub fn architecture(&self) -> &Architecture {
        &self.architecture
    }

    /// Program width in qubits.
    #[must_use]
    pub const fn num_qubits(&self) -> u32 {
        self.num_qubits
    }

    /// The qubit layout before the first instruction.
    #[must_use]
    pub fn initial_layout(&self) -> &Layout {
        &self.initial_layout
    }

    /// The instruction sequence.
    #[must_use]
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// Compiler metadata.
    #[must_use]
    pub fn metadata(&self) -> &CompileMetadata {
        &self.metadata
    }

    /// Total number of instructions.
    #[must_use]
    pub fn num_instructions(&self) -> usize {
        self.instructions.len()
    }

    /// Number of Rydberg stages.
    #[must_use]
    pub fn rydberg_stage_count(&self) -> usize {
        self.instructions
            .iter()
            .filter(|i| matches!(i, Instruction::RydbergStage { .. }))
            .count()
    }

    /// Number of move-group instructions.
    #[must_use]
    pub fn move_group_count(&self) -> usize {
        self.instructions
            .iter()
            .filter(|i| matches!(i, Instruction::MoveGroup { .. }))
            .count()
    }

    /// Total number of collective moves across all move groups.
    #[must_use]
    pub fn coll_move_count(&self) -> usize {
        self.instructions
            .iter()
            .map(|i| match i {
                Instruction::MoveGroup { coll_moves } => coll_moves.len(),
                _ => 0,
            })
            .sum()
    }

    /// Total number of CZ gates executed.
    #[must_use]
    pub fn cz_gate_count(&self) -> usize {
        self.instructions
            .iter()
            .map(|i| match i {
                Instruction::RydbergStage { gates } => gates.len(),
                _ => 0,
            })
            .sum()
    }

    /// Total number of single-qubit gates executed.
    #[must_use]
    pub fn one_qubit_gate_count(&self) -> usize {
        self.instructions
            .iter()
            .map(|i| match i {
                Instruction::OneQubitLayer { gates } => gates.len(),
                _ => 0,
            })
            .sum()
    }

    /// Total number of SLM <-> AOD transfers.
    #[must_use]
    pub fn transfer_count(&self) -> usize {
        self.instructions
            .iter()
            .map(Instruction::transfer_count)
            .sum()
    }

    /// Iterates over every collective move of the program.
    pub fn coll_moves(&self) -> impl Iterator<Item = &CollMove> + '_ {
        self.instructions.iter().flat_map(|i| match i {
            Instruction::MoveGroup { coll_moves } => coll_moves.as_slice(),
            _ => &[],
        })
    }
}

impl fmt::Display for CompiledProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "program[{}]: {} qubits, {} instructions ({} stages, {} move groups, {} transfers)",
            if self.metadata.compiler.is_empty() {
                "unknown"
            } else {
                &self.metadata.compiler
            },
            self.num_qubits,
            self.num_instructions(),
            self.rydberg_stage_count(),
            self.move_group_count(),
            self.transfer_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SiteMove;
    use powermove_circuit::{CzGate, OneQubitGate, Qubit};
    use powermove_hardware::{AodId, Zone};

    fn q(i: u32) -> Qubit {
        Qubit::new(i)
    }

    fn sample_program() -> CompiledProgram {
        let arch = Architecture::for_qubits(4);
        let layout = Layout::row_major(&arch, 4, Zone::Compute).unwrap();
        let g = arch.grid();
        let s = |c, r| g.site(Zone::Compute, c, r).unwrap();
        let instructions = vec![
            Instruction::one_qubit_layer(vec![(q(0), OneQubitGate::H), (q(1), OneQubitGate::H)]),
            Instruction::move_group(vec![CollMove::new(
                AodId::new(0),
                vec![SiteMove::new(q(1), s(1, 0), s(0, 0))],
            )]),
            Instruction::rydberg(vec![CzGate::new(q(0), q(1))]),
        ];
        CompiledProgram::new(arch, 4, layout, instructions)
    }

    #[test]
    fn counts_are_consistent() {
        let p = sample_program();
        assert_eq!(p.num_instructions(), 3);
        assert_eq!(p.rydberg_stage_count(), 1);
        assert_eq!(p.move_group_count(), 1);
        assert_eq!(p.coll_move_count(), 1);
        assert_eq!(p.cz_gate_count(), 1);
        assert_eq!(p.one_qubit_gate_count(), 2);
        assert_eq!(p.transfer_count(), 2);
        assert_eq!(p.coll_moves().count(), 1);
    }

    #[test]
    fn metadata_round_trip() {
        let p = sample_program().with_metadata(CompileMetadata {
            compiler: "powermove".to_string(),
            compile_time: Some(0.5),
            uses_storage: true,
            num_stages: 1,
            num_aods: 2,
            selected_strategy: Some("multi-aod".to_string()),
            pass_timings: vec![
                PassTiming {
                    pass: "stage".to_string(),
                    seconds: 0.1,
                },
                PassTiming {
                    pass: "route".to_string(),
                    seconds: 0.3,
                },
            ],
            counters: vec![PassCounter {
                name: "coll_moves".to_string(),
                value: 4,
            }],
        });
        assert_eq!(p.metadata().compiler, "powermove");
        assert_eq!(p.metadata().compile_time, Some(0.5));
        assert!(p.metadata().uses_storage);
        assert_eq!(p.metadata().num_aods, 2);
        assert_eq!(p.metadata().selected_strategy.as_deref(), Some("multi-aod"));
        assert_eq!(p.metadata().pass_seconds("route"), Some(0.3));
        assert_eq!(p.metadata().pass_seconds("moves"), None);
        assert_eq!(p.metadata().counter("coll_moves"), Some(4));
        assert!((p.metadata().total_pass_seconds() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn display_mentions_compiler_and_counts() {
        let p = sample_program().with_metadata(CompileMetadata {
            compiler: "enola".to_string(),
            ..CompileMetadata::default()
        });
        let text = p.to_string();
        assert!(text.contains("enola"));
        assert!(text.contains("4 qubits"));
    }
}
