//! Mapping from logical qubits to trap sites.

use crate::ScheduleError;
use powermove_circuit::Qubit;
use powermove_hardware::{Architecture, SiteId, Zone};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The assignment of logical qubits to trap sites at one point in time.
///
/// A site may hold at most two qubits (an interacting pair brought together
/// for a CZ gate); a single qubit otherwise occupies a site alone
/// (Sec. 5.1 of the paper).
///
/// # Example
///
/// ```
/// use powermove_hardware::{Architecture, Zone};
/// use powermove_schedule::Layout;
/// use powermove_circuit::Qubit;
///
/// let arch = Architecture::for_qubits(9);
/// let layout = Layout::row_major(&arch, 9, Zone::Compute).unwrap();
/// assert!(layout.site_of(Qubit::new(0)).is_some());
/// assert_eq!(layout.num_placed(), 9);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Layout {
    sites: Vec<Option<SiteId>>,
    occupants: BTreeMap<SiteId, Vec<Qubit>>,
}

impl Layout {
    /// Creates a layout with `num_qubits` unplaced qubits.
    #[must_use]
    pub fn empty(num_qubits: u32) -> Self {
        Layout {
            sites: vec![None; num_qubits as usize],
            occupants: BTreeMap::new(),
        }
    }

    /// Places the first `num_qubits` qubits row-major in the given zone:
    /// qubit `i` goes to column `i % cols`, row `i / cols` of that zone.
    ///
    /// This is the paper's initial layout: entirely in the storage zone for
    /// the with-storage mode (Sec. 4.2), entirely in the computation zone
    /// for the non-storage mode and for the Enola baseline.
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError::SiteOutOfRange`] if the zone has fewer sites
    /// than qubits.
    pub fn row_major(
        arch: &Architecture,
        num_qubits: u32,
        zone: Zone,
    ) -> Result<Self, ScheduleError> {
        let grid = arch.grid();
        let cols = grid.cols();
        let mut layout = Layout::empty(num_qubits);
        for i in 0..num_qubits {
            let col = i % cols;
            let row = i / cols;
            let site = grid
                .site(zone, col, row)
                .ok_or(ScheduleError::SiteOutOfRange {
                    site: SiteId::new(usize::MAX),
                })?;
            layout.place(Qubit::new(i), site);
        }
        Ok(layout)
    }

    /// Number of qubits tracked by the layout (placed or not).
    #[must_use]
    pub fn num_qubits(&self) -> u32 {
        self.sites.len() as u32
    }

    /// Number of qubits currently placed on a site.
    #[must_use]
    pub fn num_placed(&self) -> usize {
        self.sites.iter().filter(|s| s.is_some()).count()
    }

    /// The site currently holding `q`, if any.
    #[must_use]
    pub fn site_of(&self, q: Qubit) -> Option<SiteId> {
        self.sites.get(q.as_usize()).copied().flatten()
    }

    /// The qubits currently occupying `site`.
    #[must_use]
    pub fn occupants(&self, site: SiteId) -> &[Qubit] {
        self.occupants.get(&site).map_or(&[], Vec::as_slice)
    }

    /// Number of qubits currently occupying `site`.
    #[must_use]
    pub fn occupancy(&self, site: SiteId) -> usize {
        self.occupants(site).len()
    }

    /// Returns `true` if no qubit occupies `site`.
    #[must_use]
    pub fn is_empty_site(&self, site: SiteId) -> bool {
        self.occupancy(site) == 0
    }

    /// Places (or re-places) `q` on `site`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside the layout width.
    pub fn place(&mut self, q: Qubit, site: SiteId) {
        assert!(
            q.as_usize() < self.sites.len(),
            "qubit {q} outside layout width"
        );
        self.remove(q);
        self.sites[q.as_usize()] = Some(site);
        self.occupants.entry(site).or_default().push(q);
    }

    /// Removes `q` from its current site, if placed.
    pub fn remove(&mut self, q: Qubit) {
        if let Some(Some(old)) = self.sites.get(q.as_usize()).copied().map(Some) {
            if let Some(old_site) = old {
                if let Some(list) = self.occupants.get_mut(&old_site) {
                    list.retain(|&x| x != q);
                    if list.is_empty() {
                        self.occupants.remove(&old_site);
                    }
                }
            }
            self.sites[q.as_usize()] = None;
        }
    }

    /// Moves `q` to `site` (equivalent to [`Layout::place`], provided for
    /// readability at call sites that express movement).
    pub fn move_qubit(&mut self, q: Qubit, site: SiteId) {
        self.place(q, site);
    }

    /// Iterates over `(qubit, site)` pairs for every placed qubit.
    pub fn iter(&self) -> impl Iterator<Item = (Qubit, SiteId)> + '_ {
        self.sites
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.map(|site| (Qubit::new(i as u32), site)))
    }

    /// Iterates over occupied sites and their occupants.
    pub fn occupied_sites(&self) -> impl Iterator<Item = (SiteId, &[Qubit])> + '_ {
        self.occupants.iter().map(|(s, v)| (*s, v.as_slice()))
    }

    /// Largest occupancy over all sites (0 for an empty layout).
    #[must_use]
    pub fn max_occupancy(&self) -> usize {
        self.occupants.values().map(Vec::len).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(i: u32) -> Qubit {
        Qubit::new(i)
    }

    #[test]
    fn row_major_compute_layout() {
        let arch = Architecture::for_qubits(10); // 4 cols
        let layout = Layout::row_major(&arch, 10, Zone::Compute).unwrap();
        assert_eq!(layout.num_placed(), 10);
        // Qubit 5 -> col 1, row 1.
        let expected = arch.grid().site(Zone::Compute, 1, 1).unwrap();
        assert_eq!(layout.site_of(q(5)), Some(expected));
        assert_eq!(layout.max_occupancy(), 1);
    }

    #[test]
    fn row_major_storage_layout() {
        let arch = Architecture::for_qubits(10);
        let layout = Layout::row_major(&arch, 10, Zone::Storage).unwrap();
        for (_, site) in layout.iter() {
            assert_eq!(arch.grid().zone_of(site), Zone::Storage);
        }
    }

    #[test]
    fn row_major_fails_when_zone_too_small() {
        let arch = Architecture::for_qubits(4); // 2x2 compute
        assert!(Layout::row_major(&arch, 5, Zone::Compute).is_err());
    }

    #[test]
    fn place_and_move_update_occupancy() {
        let mut layout = Layout::empty(3);
        let s0 = SiteId::new(0);
        let s1 = SiteId::new(1);
        layout.place(q(0), s0);
        layout.place(q(1), s0);
        assert_eq!(layout.occupancy(s0), 2);
        layout.move_qubit(q(1), s1);
        assert_eq!(layout.occupancy(s0), 1);
        assert_eq!(layout.occupants(s1), &[q(1)]);
        assert_eq!(layout.site_of(q(1)), Some(s1));
    }

    #[test]
    fn remove_clears_qubit() {
        let mut layout = Layout::empty(2);
        let s = SiteId::new(3);
        layout.place(q(0), s);
        layout.remove(q(0));
        assert!(layout.is_empty_site(s));
        assert_eq!(layout.site_of(q(0)), None);
        assert_eq!(layout.num_placed(), 0);
    }

    #[test]
    fn replacing_moves_not_duplicates() {
        let mut layout = Layout::empty(1);
        layout.place(q(0), SiteId::new(0));
        layout.place(q(0), SiteId::new(1));
        assert!(layout.is_empty_site(SiteId::new(0)));
        assert_eq!(layout.occupancy(SiteId::new(1)), 1);
        assert_eq!(layout.num_placed(), 1);
    }

    #[test]
    fn iter_lists_placed_qubits() {
        let mut layout = Layout::empty(3);
        layout.place(q(0), SiteId::new(5));
        layout.place(q(2), SiteId::new(7));
        let pairs: Vec<_> = layout.iter().collect();
        assert_eq!(pairs, vec![(q(0), SiteId::new(5)), (q(2), SiteId::new(7))]);
        assert_eq!(layout.occupied_sites().count(), 2);
    }

    #[test]
    #[should_panic(expected = "outside layout width")]
    fn place_out_of_width_panics() {
        let mut layout = Layout::empty(1);
        layout.place(q(3), SiteId::new(0));
    }
}
