//! Instruction timing model.
//!
//! Execution time is the metric `T_exe` of the paper (Sec. 7.1): the total
//! time needed for single-qubit layers, Rydberg stages, trap transfers and
//! qubit movements.

use crate::{CollMove, Instruction};
use powermove_hardware::Architecture;

/// Duration of a single-qubit layer: the per-qubit serial depth times the
/// single-qubit gate duration (gates on distinct qubits run in parallel).
#[must_use]
pub fn one_qubit_layer_duration(depth: usize, arch: &Architecture) -> f64 {
    depth as f64 * arch.params().one_qubit_duration
}

/// Duration of a group of collective moves executed in parallel on distinct
/// AOD arrays.
///
/// Every moved qubit is picked up from its static trap before the translation
/// and dropped off afterwards, so the group costs two transfer times plus the
/// longest translation among its collective moves (Sec. 6.2: the execution
/// duration of a parallel group is `t_transfer + max(t'_i)`; we account the
/// drop-off transfer explicitly as a second transfer).
#[must_use]
pub fn move_group_duration(coll_moves: &[CollMove], arch: &Architecture) -> f64 {
    if coll_moves.iter().all(CollMove::is_empty) {
        return 0.0;
    }
    let max_move = coll_moves
        .iter()
        .map(|cm| cm.move_duration(arch))
        .fold(0.0, f64::max);
    2.0 * arch.params().transfer_duration + max_move
}

/// Total movement wall clock of an instruction sequence, in seconds: the
/// sum of every move group's duration. This is exactly the quantity the
/// trace simulator accumulates as `movement_time` — the slice of the
/// execution time multi-AOD scheduling and routing auto-tuning compress.
#[must_use]
pub fn movement_wall_clock(instructions: &[Instruction], arch: &Architecture) -> f64 {
    instructions
        .iter()
        .map(|instruction| match instruction {
            Instruction::MoveGroup { coll_moves } => move_group_duration(coll_moves, arch),
            _ => 0.0,
        })
        .sum()
}

/// An incremental movement-wall-clock accumulator.
///
/// Folds per-instruction move-group durations in stream order, so observing
/// every instruction of a sequence yields a total **bit-identical** to
/// [`movement_wall_clock`] over the same sequence — both are the same
/// left-to-right `f64` summation (floating-point addition is not
/// associative, so any other grouping of the partial sums could differ in
/// the last ulp). Routing replay uses this to score candidates while
/// instructions stream out of move scheduling, without a second pass over
/// the finished program.
///
/// # Example
///
/// ```
/// use powermove_schedule::{movement_wall_clock, Instruction, MovementClock};
/// use powermove_hardware::Architecture;
///
/// let arch = Architecture::for_qubits(4);
/// let instructions: Vec<Instruction> = Vec::new();
/// let mut clock = MovementClock::new();
/// for instruction in &instructions {
///     clock.observe(instruction, &arch);
/// }
/// assert_eq!(clock.total(), movement_wall_clock(&instructions, &arch));
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct MovementClock {
    total: f64,
}

impl MovementClock {
    /// A clock at zero.
    #[must_use]
    pub fn new() -> Self {
        MovementClock::default()
    }

    /// Adds one instruction's movement contribution (zero unless it is a
    /// move group).
    pub fn observe(&mut self, instruction: &Instruction, arch: &Architecture) {
        self.total += match instruction {
            Instruction::MoveGroup { coll_moves } => move_group_duration(coll_moves, arch),
            _ => 0.0,
        };
    }

    /// The accumulated movement wall clock, in seconds.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.total
    }
}

/// Duration of one instruction, in seconds.
#[must_use]
pub fn instruction_duration(instruction: &Instruction, arch: &Architecture) -> f64 {
    match instruction {
        Instruction::OneQubitLayer { .. } => {
            one_qubit_layer_duration(instruction.one_qubit_depth(), arch)
        }
        Instruction::MoveGroup { coll_moves } => move_group_duration(coll_moves, arch),
        Instruction::RydbergStage { .. } => arch.params().cz_duration,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SiteMove;
    use powermove_circuit::{CzGate, OneQubitGate, Qubit};
    use powermove_hardware::{AodId, Zone};

    fn q(i: u32) -> Qubit {
        Qubit::new(i)
    }

    #[test]
    fn one_qubit_layer_duration_scales_with_depth() {
        let arch = Architecture::for_qubits(4);
        assert_eq!(one_qubit_layer_duration(0, &arch), 0.0);
        assert!((one_qubit_layer_duration(1, &arch) - 1e-6).abs() < 1e-12);
        assert!((one_qubit_layer_duration(3, &arch) - 3e-6).abs() < 1e-12);
    }

    #[test]
    fn rydberg_stage_costs_cz_duration() {
        let arch = Architecture::for_qubits(4);
        let instr = Instruction::rydberg(vec![CzGate::new(q(0), q(1))]);
        assert!((instruction_duration(&instr, &arch) - 270e-9).abs() < 1e-15);
    }

    #[test]
    fn move_group_duration_includes_two_transfers() {
        let arch = Architecture::for_qubits(9);
        let g = arch.grid();
        let s = |c, r| g.site(Zone::Compute, c, r).unwrap();
        // A 15 um move: sqrt(15e-6/2750) ~ 73.9 us.
        let cm = CollMove::new(AodId::new(0), vec![SiteMove::new(q(0), s(0, 0), s(1, 0))]);
        let expected_move = (15e-6_f64 / 2750.0).sqrt();
        let d = move_group_duration(&[cm], &arch);
        assert!((d - (2.0 * 15e-6 + expected_move)).abs() < 1e-12);
    }

    #[test]
    fn parallel_moves_cost_the_max_translation() {
        let arch = Architecture::for_qubits(9);
        let g = arch.grid();
        let s = |c, r| g.site(Zone::Compute, c, r).unwrap();
        let short = CollMove::new(AodId::new(0), vec![SiteMove::new(q(0), s(0, 0), s(1, 0))]);
        let long = CollMove::new(AodId::new(1), vec![SiteMove::new(q(1), s(0, 1), s(2, 2))]);
        let together = move_group_duration(&[short.clone(), long.clone()], &arch);
        let alone = move_group_duration(&[long], &arch);
        assert!((together - alone).abs() < 1e-15);
        assert!(together > move_group_duration(&[short], &arch));
    }

    #[test]
    fn empty_move_group_costs_nothing() {
        let arch = Architecture::for_qubits(4);
        assert_eq!(move_group_duration(&[], &arch), 0.0);
        assert_eq!(
            move_group_duration(&[CollMove::new(AodId::new(0), vec![])], &arch),
            0.0
        );
    }

    #[test]
    fn movement_clock_is_bit_identical_to_the_wall_clock_fold() {
        let arch = Architecture::for_qubits(9);
        let g = arch.grid();
        let s = |c, r| g.site(Zone::Compute, c, r).unwrap();
        let instructions = vec![
            Instruction::move_group(vec![CollMove::new(
                AodId::new(0),
                vec![SiteMove::new(q(0), s(0, 0), s(1, 0))],
            )]),
            Instruction::rydberg(vec![CzGate::new(q(0), q(1))]),
            Instruction::move_group(vec![
                CollMove::new(AodId::new(0), vec![SiteMove::new(q(1), s(0, 1), s(2, 2))]),
                CollMove::new(AodId::new(1), vec![SiteMove::new(q(2), s(2, 0), s(0, 2))]),
            ]),
            Instruction::move_group(vec![CollMove::new(
                AodId::new(0),
                vec![SiteMove::new(q(0), s(1, 0), s(2, 1))],
            )]),
        ];
        let mut clock = MovementClock::new();
        for instruction in &instructions {
            clock.observe(instruction, &arch);
        }
        // Exact equality on purpose: the clock must replay the same
        // left-to-right summation, not merely approximate it.
        assert_eq!(
            clock.total().to_bits(),
            movement_wall_clock(&instructions, &arch).to_bits()
        );
    }

    #[test]
    fn one_qubit_layer_instruction_duration_uses_depth() {
        let arch = Architecture::for_qubits(4);
        let instr = Instruction::one_qubit_layer(vec![
            (q(0), OneQubitGate::H),
            (q(0), OneQubitGate::Rz(0.3)),
            (q(1), OneQubitGate::H),
        ]);
        assert!((instruction_duration(&instr, &arch) - 2e-6).abs() < 1e-12);
    }
}
