//! Stand-alone program validation.

use crate::{simulate, CompiledProgram, ScheduleError};

/// Validates a compiled program against the hardware rules without returning
/// the execution trace.
///
/// This checks everything [`simulate`] checks:
///
/// * every qubit is placed on a valid site of the grid, at most two per site;
/// * every collective move starts from the qubits' actual sites and respects
///   the AOD row/column order constraint;
/// * no more collective moves run in parallel than there are AOD arrays,
///   every named AOD exists, and no AOD is assigned two collective moves in
///   one parallel window (overlapping windows are legal only across
///   *distinct* AODs — intra-AOD overlap is rejected);
/// * every CZ gate of a Rydberg stage acts on a pair co-located at one
///   computation-zone site, stages have disjoint gates, and no unrelated
///   qubits are clustered at a shared site during an excitation.
///
/// # Errors
///
/// Returns the first violation found.
///
/// # Example
///
/// ```
/// use powermove_hardware::{Architecture, Zone};
/// use powermove_schedule::{validate, CompiledProgram, Layout};
///
/// let arch = Architecture::for_qubits(4);
/// let layout = Layout::row_major(&arch, 4, Zone::Compute).unwrap();
/// let program = CompiledProgram::new(arch, 4, layout, vec![]);
/// assert!(validate(&program).is_ok());
/// ```
pub fn validate(program: &CompiledProgram) -> Result<(), ScheduleError> {
    simulate(program).map(|_| ())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Instruction, Layout};
    use powermove_circuit::{CzGate, Qubit};
    use powermove_hardware::{Architecture, Zone};

    #[test]
    fn valid_empty_program_passes() {
        let arch = Architecture::for_qubits(4);
        let layout = Layout::row_major(&arch, 4, Zone::Compute).unwrap();
        let p = CompiledProgram::new(arch, 4, layout, vec![]);
        assert!(validate(&p).is_ok());
    }

    #[test]
    fn invalid_program_fails() {
        let arch = Architecture::for_qubits(4);
        let layout = Layout::row_major(&arch, 4, Zone::Compute).unwrap();
        let p = CompiledProgram::new(
            arch,
            4,
            layout,
            vec![Instruction::rydberg(vec![CzGate::new(
                Qubit::new(0),
                Qubit::new(1),
            )])],
        );
        assert!(validate(&p).is_err());
    }
}
