//! Error types for program construction, validation and simulation.

use powermove_circuit::Qubit;
use powermove_hardware::{HardwareError, SiteId};
use std::error::Error;
use std::fmt;

/// Errors detected while building, validating or simulating a compiled
/// program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// A qubit index is outside the program width.
    QubitOutOfRange {
        /// The offending qubit.
        qubit: Qubit,
        /// Program width.
        num_qubits: u32,
    },
    /// A site does not belong to the machine grid.
    SiteOutOfRange {
        /// The offending site.
        site: SiteId,
    },
    /// A qubit was not placed in the layout when it was needed.
    UnplacedQubit {
        /// The offending qubit.
        qubit: Qubit,
    },
    /// A move's source site does not match the qubit's current site.
    MoveSourceMismatch {
        /// The moved qubit.
        qubit: Qubit,
        /// Site claimed by the instruction.
        claimed: SiteId,
        /// Site the qubit actually occupies.
        actual: SiteId,
    },
    /// A hardware constraint (AOD ordering, duplicate qubit) was violated.
    Hardware(HardwareError),
    /// More collective moves were scheduled in parallel than there are AOD
    /// arrays.
    TooManyParallelMoves {
        /// Collective moves in the group.
        requested: usize,
        /// AOD arrays available.
        available: usize,
    },
    /// One AOD array was assigned two collective moves within the same
    /// parallel window (an intra-AOD move-window overlap).
    IntraAodOverlap {
        /// The doubly-booked AOD.
        aod: powermove_hardware::AodId,
    },
    /// A collective move names an AOD array the architecture does not have.
    AodOutOfRange {
        /// The named AOD.
        aod: powermove_hardware::AodId,
        /// AOD arrays available.
        available: usize,
    },
    /// After a move group, a site ended up with more than two qubits.
    SiteOvercrowded {
        /// The overcrowded site.
        site: SiteId,
        /// Number of occupants.
        occupants: usize,
    },
    /// A CZ gate was scheduled while its qubits are not co-located at one
    /// computation-zone site.
    PairNotColocated {
        /// First qubit of the gate.
        a: Qubit,
        /// Second qubit of the gate.
        b: Qubit,
    },
    /// A Rydberg stage contains two gates sharing a qubit.
    OverlappingGatesInStage {
        /// The shared qubit.
        qubit: Qubit,
    },
    /// During a Rydberg stage, two qubits that are not gate partners share a
    /// site (unwanted clustering).
    Clustering {
        /// The clustered site.
        site: SiteId,
    },
    /// A CZ gate was scheduled on a qubit sitting in the storage zone.
    GateInStorage {
        /// The offending qubit.
        qubit: Qubit,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::QubitOutOfRange { qubit, num_qubits } => {
                write!(
                    f,
                    "qubit {qubit} out of range for {num_qubits}-qubit program"
                )
            }
            ScheduleError::SiteOutOfRange { site } => write!(f, "site {site} outside the grid"),
            ScheduleError::UnplacedQubit { qubit } => write!(f, "qubit {qubit} has no site"),
            ScheduleError::MoveSourceMismatch {
                qubit,
                claimed,
                actual,
            } => write!(
                f,
                "move of {qubit} claims source {claimed} but the qubit is at {actual}"
            ),
            ScheduleError::Hardware(e) => write!(f, "{e}"),
            ScheduleError::TooManyParallelMoves {
                requested,
                available,
            } => write!(
                f,
                "{requested} collective moves scheduled in parallel but only {available} AODs exist"
            ),
            ScheduleError::IntraAodOverlap { aod } => write!(
                f,
                "AOD {aod} is assigned two collective moves in one parallel window"
            ),
            ScheduleError::AodOutOfRange { aod, available } => write!(
                f,
                "collective move targets {aod} but the machine has {available} AODs"
            ),
            ScheduleError::SiteOvercrowded { site, occupants } => {
                write!(f, "site {site} holds {occupants} qubits (max 2)")
            }
            ScheduleError::PairNotColocated { a, b } => {
                write!(f, "cz pair {a},{b} not co-located in the computation zone")
            }
            ScheduleError::OverlappingGatesInStage { qubit } => {
                write!(f, "two gates of one Rydberg stage share qubit {qubit}")
            }
            ScheduleError::Clustering { site } => {
                write!(
                    f,
                    "non-interacting qubits clustered at site {site} during excitation"
                )
            }
            ScheduleError::GateInStorage { qubit } => {
                write!(
                    f,
                    "cz gate scheduled on {qubit} while it is in the storage zone"
                )
            }
        }
    }
}

impl Error for ScheduleError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ScheduleError::Hardware(e) => Some(e),
            _ => None,
        }
    }
}

impl From<HardwareError> for ScheduleError {
    fn from(e: HardwareError) -> Self {
        ScheduleError::Hardware(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ScheduleError::PairNotColocated {
            a: Qubit::new(1),
            b: Qubit::new(2),
        };
        assert!(e.to_string().contains("q1"));
        let e = ScheduleError::TooManyParallelMoves {
            requested: 3,
            available: 1,
        };
        assert!(e.to_string().contains('3'));
    }

    #[test]
    fn hardware_error_is_wrapped_with_source() {
        let inner = HardwareError::DuplicateMovedQubit {
            qubit: Qubit::new(0),
        };
        let e: ScheduleError = inner.clone().into();
        assert_eq!(e, ScheduleError::Hardware(inner));
        assert!(e.source().is_some());
    }

    #[test]
    fn implements_error_trait() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<ScheduleError>();
    }
}
