//! Canonical serialized forms for content hashing and byte-identity checks.
//!
//! Two consumers need a *deterministic* textual form of compiler data:
//!
//! * the compile service's content-addressed schedule cache, which keys
//!   entries by a hash of the serialized `(circuit, architecture, config)`
//!   triple and must produce the same key for the same inputs on every
//!   machine and run;
//! * the determinism tests (and the cache's byte-identity guarantee), which
//!   compare the *observable* content of two [`CompiledProgram`]s while
//!   ignoring wall-clock measurements that legitimately differ run to run.
//!
//! The canonical form is the vendored serializer's compact JSON: struct
//! fields render in declaration order, map keys are never reordered, and
//! float rendering is fixed, so equal values always produce equal bytes.

use crate::CompiledProgram;
use serde::Serialize;

/// Renders any serializable value in its canonical compact-JSON form.
///
/// Determinism contract: two values that are `==` serialize to identical
/// bytes — struct fields appear in declaration order and the number
/// formatting is fixed — so the output is safe to hash or compare.
///
/// # Example
///
/// ```
/// let a = powermove_schedule::canonical_json(&(1_u32, "x"));
/// let b = powermove_schedule::canonical_json(&(1_u32, "x"));
/// assert_eq!(a, b);
/// assert_eq!(a, "[1,\"x\"]");
/// ```
#[must_use]
pub fn canonical_json<T: Serialize + ?Sized>(value: &T) -> String {
    serde_json::to_string(value).expect("the vendored serializer is infallible")
}

/// 64-bit FNV-1a hash of a byte string.
///
/// Chosen for content addressing because it is fully deterministic across
/// platforms, allocation-free and has no dependencies; it is **not** a
/// cryptographic hash — cache keys assume cooperative clients, not
/// adversarial collision construction.
#[must_use]
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET_BASIS;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// Serializes the observable content of a program — initial layout,
/// instruction stream, work counters, stage count and storage flag — to a
/// canonical byte string. Pass timings and the end-to-end compile clock are
/// **excluded**: they are wall-clock measurements and differ run to run even
/// for byte-identical schedules.
///
/// This is the byte-identity yardstick shared by the parallel-determinism
/// tests and the compile service's cache (`cache hit == cold compile` is
/// asserted on exactly these bytes).
///
/// # Example
///
/// ```
/// use powermove_hardware::{Architecture, Zone};
/// use powermove_schedule::{canonical_program_bytes, CompiledProgram, Layout};
///
/// let arch = Architecture::for_qubits(2);
/// let layout = Layout::row_major(&arch, 2, Zone::Compute).unwrap();
/// let program = CompiledProgram::new(arch, 2, layout, vec![]);
/// assert_eq!(
///     canonical_program_bytes(&program),
///     canonical_program_bytes(&program.clone()),
/// );
/// ```
#[must_use]
pub fn canonical_program_bytes(program: &CompiledProgram) -> String {
    let metadata = program.metadata();
    format!(
        "{layout}|{instructions}|{counters}|stages={stages}|storage={storage}",
        layout = canonical_json(program.initial_layout()),
        instructions = canonical_json(program.instructions()),
        counters = canonical_json(&metadata.counters),
        stages = metadata.num_stages,
        storage = metadata.uses_storage,
    )
}

/// 16-hex-digit digest of [`canonical_program_bytes`].
///
/// Small enough to embed in every service response frame, so clients can
/// verify that a cache hit is byte-identical to a cold compile without
/// shipping the full program back.
#[must_use]
pub fn program_digest(program: &CompiledProgram) -> String {
    format!(
        "{:016x}",
        fnv1a_64(canonical_program_bytes(program).as_bytes())
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Instruction, Layout};
    use powermove_circuit::{CzGate, Qubit};
    use powermove_hardware::{Architecture, Zone};

    fn sample_program(gates: usize) -> CompiledProgram {
        let arch = Architecture::for_qubits(4);
        let layout = Layout::row_major(&arch, 4, Zone::Compute).unwrap();
        let cz: Vec<CzGate> = (0..gates as u32)
            .map(|i| CzGate::new(Qubit::new(2 * i % 4), Qubit::new((2 * i + 1) % 4)))
            .collect();
        CompiledProgram::new(arch, 4, layout, vec![Instruction::rydberg(cz)])
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn canonical_json_is_deterministic() {
        let p = sample_program(2);
        assert_eq!(canonical_json(&p), canonical_json(&p.clone()));
    }

    #[test]
    fn equal_programs_share_bytes_and_digest() {
        let a = sample_program(2);
        let b = sample_program(2);
        assert_eq!(canonical_program_bytes(&a), canonical_program_bytes(&b));
        assert_eq!(program_digest(&a), program_digest(&b));
        assert_eq!(program_digest(&a).len(), 16);
    }

    #[test]
    fn different_programs_differ() {
        let a = sample_program(1);
        let b = sample_program(2);
        assert_ne!(canonical_program_bytes(&a), canonical_program_bytes(&b));
        assert_ne!(program_digest(&a), program_digest(&b));
    }

    #[test]
    fn timings_do_not_affect_the_canonical_bytes() {
        use crate::{CompileMetadata, PassTiming};
        let plain = sample_program(2);
        let timed = plain.clone().with_metadata(CompileMetadata {
            compile_time: Some(12.5),
            pass_timings: vec![PassTiming {
                pass: "route".to_string(),
                seconds: 3.25,
            }],
            ..plain.metadata().clone()
        });
        assert_eq!(
            canonical_program_bytes(&plain),
            canonical_program_bytes(&timed)
        );
    }
}
