//! Acceptance tests for the compile service: cache byte-identity,
//! coalescing, eviction, malformed-frame resilience and a concurrent
//! hundred-request burst over the smoke cells.

use powermove::CompilerConfig;
use powermove_bench::service_smoke_cells;
use powermove_circuit::{Circuit, Qubit};
use powermove_exec::{Parallelism, ThreadPool};
use powermove_hardware::Architecture;
use powermove_schedule::{canonical_program_bytes, program_digest};
use powermove_service::{CacheOutcome, CompileService, Daemon};
use serde::Value;
use std::sync::{Arc, Barrier};

fn ring(n: u32) -> Circuit {
    let mut c = Circuit::new(n);
    for i in 0..n {
        c.cz(Qubit::new(i), Qubit::new((i + 1) % n)).unwrap();
    }
    c
}

#[test]
fn cache_hit_is_byte_identical_to_cold_compile() {
    let service = CompileService::new(8);
    let circuit = ring(8);
    let arch = Architecture::for_qubits(8);
    let config = CompilerConfig::default();

    let cold = powermove::compile(&circuit, &arch, &config).unwrap();
    let (first, outcome) = service.compile(&circuit, &arch, &config).unwrap();
    assert_eq!(outcome, CacheOutcome::Miss);
    let (second, outcome) = service.compile(&circuit, &arch, &config).unwrap();
    assert_eq!(outcome, CacheOutcome::Hit);

    assert_eq!(
        canonical_program_bytes(&cold),
        canonical_program_bytes(&first)
    );
    assert_eq!(
        canonical_program_bytes(&cold),
        canonical_program_bytes(&second)
    );
    assert_eq!(service.compiles(), 1);
}

#[test]
fn concurrent_identical_requests_coalesce_to_one_compile() {
    let service = Arc::new(CompileService::new(8));
    let workers = 8;
    let barrier = Arc::new(Barrier::new(workers));
    let handles: Vec<_> = (0..workers)
        .map(|_| {
            let service = Arc::clone(&service);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let circuit = ring(10);
                let arch = Architecture::for_qubits(10);
                let config = CompilerConfig::default().with_threads(1);
                barrier.wait();
                service.compile(&circuit, &arch, &config).unwrap()
            })
        })
        .collect();
    let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    // All eight threads raced the same triple: exactly one cold compile ran.
    assert_eq!(service.compiles(), 1);
    let misses = results
        .iter()
        .filter(|(_, o)| *o == CacheOutcome::Miss)
        .count();
    assert_eq!(misses, 1);
    let digests: Vec<String> = results.iter().map(|(p, _)| program_digest(p)).collect();
    assert!(digests.windows(2).all(|w| w[0] == w[1]));
}

#[test]
fn eviction_respects_capacity_under_a_rolling_working_set() {
    let service = CompileService::new(2);
    let config = CompilerConfig::default();
    for n in [4_u32, 6, 8, 10] {
        let (_, outcome) = service
            .compile(&ring(n), &Architecture::for_qubits(n), &config)
            .unwrap();
        assert_eq!(outcome, CacheOutcome::Miss);
    }
    let stats = service.stats();
    assert_eq!(stats.cache.entries, 2);
    assert_eq!(stats.cache.capacity, 2);
    assert_eq!(stats.cache.evictions, 2);
    // The oldest entry was evicted: compiling it again is a cold miss.
    let (_, outcome) = service
        .compile(&ring(4), &Architecture::for_qubits(4), &config)
        .unwrap();
    assert_eq!(outcome, CacheOutcome::Miss);
    // The most recent entry survived.
    let (_, outcome) = service
        .compile(&ring(10), &Architecture::for_qubits(10), &config)
        .unwrap();
    assert_eq!(outcome, CacheOutcome::Hit);
}

#[test]
fn hundred_concurrent_requests_over_the_smoke_cells() {
    let service = CompileService::new(16);
    let pool = ThreadPool::new(Parallelism::fixed(8));
    let cells = service_smoke_cells();
    let config = CompilerConfig::default().with_threads(1);

    let mut requests = Vec::new();
    for round in 0..20 {
        for (family, qubits) in cells {
            // Interleave rounds so identical requests overlap in flight.
            let _ = round;
            let instance = powermove_benchmarks::generate(family, qubits, 20250);
            let arch = Architecture::for_qubits(qubits);
            requests.push((instance.circuit, arch, config));
        }
    }
    assert_eq!(requests.len(), 100);

    let results = service.compile_batch(&pool, requests);
    assert_eq!(results.len(), 100);
    let results: Vec<_> = results.into_iter().map(Result::unwrap).collect();

    // Five distinct triples → five cold compiles, everything else served
    // from cache or coalesced onto an in-flight compile.
    assert_eq!(service.compiles(), cells.len() as u64);
    let stats = service.stats();
    assert_eq!(stats.compiles + stats.coalesced + stats.cache.hits, 100);
    assert!(stats.cache.hits > 0);

    // Byte-identity: results come back in input order, so response `i`
    // belongs to cell `i % 5`; every one must match that cell's cold
    // compile.
    let cold: Vec<String> = cells
        .iter()
        .map(|&(family, qubits)| {
            let instance = powermove_benchmarks::generate(family, qubits, 20250);
            let program = powermove::compile(
                &instance.circuit,
                &Architecture::for_qubits(qubits),
                &config,
            )
            .unwrap();
            canonical_program_bytes(&program)
        })
        .collect();
    for (i, (program, _)) in results.iter().enumerate() {
        assert_eq!(
            canonical_program_bytes(program),
            cold[i % cells.len()],
            "response {i} diverged from its cold compile"
        );
    }
}

#[test]
fn daemon_survives_malformed_frames_and_acks_shutdown_last() {
    let service = CompileService::new(8);
    let daemon = Daemon::new(&service).with_parallelism(Parallelism::fixed(2));
    let input = concat!(
        r#"{"id": 0, "benchmark": {"family": "VQE", "qubits": 8}}"#,
        "\n",
        "{{{ definitely not json\n",
        r#"{"id": 1, "benchmark": {"family": "VQE", "qubits": 8}}"#,
        "\n",
        r#"{"id": 2, "qasm": "OPENQASM 3.0;"}"#,
        "\n",
        r#"{"id": 3, "op": "shutdown"}"#,
        "\n",
    );
    let mut out = Vec::new();
    let report = daemon.serve(input.as_bytes(), &mut out);
    assert!(report.shutdown);
    assert_eq!(report.frames, 5);
    assert_eq!(report.errors, 2);

    let frames: Vec<Value> =
        serde_json::from_str_jsonl(std::str::from_utf8(&out).unwrap()).unwrap();
    assert_eq!(frames.len(), 5);
    assert_eq!(
        frames
            .last()
            .and_then(|f| f.get("shutdown"))
            .and_then(Value::as_bool),
        Some(true)
    );
    // Both valid compiles succeeded with identical digests despite the
    // garbage between them.
    let digests: Vec<&str> = frames
        .iter()
        .filter_map(|f| f.get("digest").and_then(Value::as_str))
        .collect();
    assert_eq!(digests.len(), 2);
    assert_eq!(digests[0], digests[1]);
}

#[cfg(unix)]
#[test]
fn unix_socket_serves_frames_across_connections() {
    use std::io::{BufRead, BufReader, Write};
    use std::os::unix::net::UnixStream;

    let dir = std::env::temp_dir().join(format!("powermove-serve-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let socket = dir.join("daemon.sock");

    let service = CompileService::new(8);
    let daemon = Daemon::new(&service).with_parallelism(Parallelism::fixed(2));
    let report = std::thread::scope(|s| {
        let handle = s.spawn(|| daemon.serve_unix(&socket).unwrap());
        // Wait for the socket to appear.
        for _ in 0..500 {
            if socket.exists() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        // First connection: compile, expect a miss.
        let mut first = UnixStream::connect(&socket).unwrap();
        writeln!(
            first,
            r#"{{"id": 1, "benchmark": {{"family": "BV", "qubits": 6}}}}"#
        )
        .unwrap();
        let mut reply = String::new();
        BufReader::new(first.try_clone().unwrap())
            .read_line(&mut reply)
            .unwrap();
        let frame = serde_json::from_str(&reply).unwrap();
        assert_eq!(frame.get("cache").and_then(Value::as_str), Some("miss"));
        drop(first);
        // Second connection: the shared cache answers with a hit, then stop.
        let mut second = UnixStream::connect(&socket).unwrap();
        writeln!(
            second,
            r#"{{"id": 2, "benchmark": {{"family": "BV", "qubits": 6}}}}"#
        )
        .unwrap();
        writeln!(second, r#"{{"id": 3, "op": "shutdown"}}"#).unwrap();
        let mut lines = BufReader::new(second.try_clone().unwrap()).lines();
        let frame = serde_json::from_str(&lines.next().unwrap().unwrap()).unwrap();
        assert_eq!(frame.get("cache").and_then(Value::as_str), Some("hit"));
        let ack = serde_json::from_str(&lines.next().unwrap().unwrap()).unwrap();
        assert_eq!(ack.get("shutdown").and_then(Value::as_bool), Some(true));
        handle.join().unwrap()
    });
    assert!(report.shutdown);
    assert_eq!(service.compiles(), 1);
    let _ = std::fs::remove_dir_all(&dir);
}
