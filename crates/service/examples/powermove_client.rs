//! Smoke-test client for the compile daemon.
//!
//! Spawns `powermove-serve` (sibling binary, overridable via
//! `POWERMOVE_SERVE_BIN`), fires a burst of concurrent compile requests
//! over the service smoke cells — every cell repeated many times so the
//! burst mixes cold misses with hits and coalesced requests — then asserts:
//!
//! * every request succeeded and every response correlates to a request;
//! * responses sharing a content `key` report the same program `digest`
//!   (cache hits are byte-identical to the cold compile);
//! * the cache recorded hits and the daemon compiled each distinct cell at
//!   most a handful of times (coalescing keeps redundant compiles down);
//! * the daemon acknowledged `shutdown` as its final frame and exited
//!   cleanly.
//!
//! Exits nonzero on any violation, so CI can run it as a gate.

use powermove_bench::service_smoke_cells;
use serde::Value;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::path::PathBuf;
use std::process::{Command, ExitCode, Stdio};

const ROUNDS: usize = 24;

fn serve_binary() -> PathBuf {
    if let Ok(path) = std::env::var("POWERMOVE_SERVE_BIN") {
        return PathBuf::from(path);
    }
    // target/<profile>/examples/powermove_client → target/<profile>/powermove-serve
    let exe = std::env::current_exe().expect("current_exe");
    let profile_dir = exe
        .parent()
        .and_then(|examples| examples.parent())
        .expect("example binary has no profile directory");
    profile_dir.join("powermove-serve")
}

fn fail(message: &str) -> ExitCode {
    eprintln!("powermove_client: FAIL: {message}");
    ExitCode::FAILURE
}

#[allow(clippy::too_many_lines)]
fn main() -> ExitCode {
    let cells = service_smoke_cells();
    let requests: usize = ROUNDS * cells.len();

    let binary = serve_binary();
    let mut child = match Command::new(&binary)
        .args(["--cache-capacity", "16"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
    {
        Ok(child) => child,
        Err(e) => return fail(&format!("cannot spawn {}: {e}", binary.display())),
    };
    let mut stdin = child.stdin.take().expect("child stdin");
    let stdout = BufReader::new(child.stdout.take().expect("child stdout"));

    // Fire the whole burst before reading anything back: the daemon queues
    // the frames onto its pool, so the requests genuinely overlap. Rounds
    // interleave the cells, so identical requests arrive back to back and
    // exercise both coalescing (while round 0 compiles) and plain hits.
    let mut sent = 0_i64;
    for round in 0..ROUNDS {
        for (cell, (family, qubits)) in cells.iter().enumerate() {
            let id = (round * cells.len() + cell) as i64;
            let frame = format!(
                r#"{{"id": {id}, "op": "compile", "benchmark": {{"family": "{family}", "qubits": {qubits}}}}}"#
            );
            if writeln!(stdin, "{frame}").is_err() {
                return fail("daemon closed stdin early");
            }
            sent += 1;
        }
    }
    let stats_id = sent;
    let shutdown_id = sent + 1;
    if writeln!(stdin, r#"{{"id": {stats_id}, "op": "stats"}}"#).is_err()
        || writeln!(stdin, r#"{{"id": {shutdown_id}, "op": "shutdown"}}"#).is_err()
    {
        return fail("daemon closed stdin before shutdown");
    }
    drop(stdin);

    let mut digest_by_key: HashMap<String, String> = HashMap::new();
    let mut ok_replies = 0_usize;
    let mut hits = 0_u64;
    let mut compiles = 0_u64;
    let mut coalesced = 0_u64;
    let mut last_was_shutdown = false;
    for line in stdout.lines() {
        let Ok(line) = line else {
            return fail("daemon stdout died mid-stream");
        };
        let frame = match serde_json::from_str(&line) {
            Ok(frame) => frame,
            Err(e) => return fail(&format!("unparseable response frame: {e}")),
        };
        last_was_shutdown = frame.get("shutdown").and_then(Value::as_bool) == Some(true);
        if frame.get("ok").and_then(Value::as_bool) != Some(true) {
            return fail(&format!("request failed: {line}"));
        }
        if let Some(stats) = frame.get("stats") {
            let read = |path: &[&str]| {
                let mut v = stats;
                for key in path {
                    v = v.get(key)?;
                }
                v.as_i64().map(|n| n as u64)
            };
            hits = read(&["cache", "hits"]).unwrap_or(0);
            compiles = read(&["compiles"]).unwrap_or(0);
            coalesced = read(&["coalesced"]).unwrap_or(0);
            continue;
        }
        let (Some(key), Some(digest)) = (
            frame.get("key").and_then(Value::as_str),
            frame.get("digest").and_then(Value::as_str),
        ) else {
            continue; // the shutdown ack
        };
        ok_replies += 1;
        if let Some(previous) = digest_by_key.insert(key.to_string(), digest.to_string()) {
            if previous != digest {
                return fail(&format!(
                    "cache served a different program for key {key}: {previous} vs {digest}"
                ));
            }
        }
    }

    let status = match child.wait() {
        Ok(status) => status,
        Err(e) => return fail(&format!("daemon did not exit: {e}")),
    };
    if !status.success() {
        return fail(&format!("daemon exited with {status}"));
    }
    if !last_was_shutdown {
        return fail("the final frame was not the shutdown acknowledgement");
    }
    if ok_replies != requests {
        return fail(&format!(
            "expected {requests} compile replies, got {ok_replies}"
        ));
    }
    if digest_by_key.len() != cells.len() {
        return fail(&format!(
            "expected {} distinct content keys, saw {}",
            cells.len(),
            digest_by_key.len()
        ));
    }
    if hits == 0 {
        return fail("cache recorded zero hits over a repeated burst");
    }
    if compiles + coalesced + hits < requests as u64 {
        return fail(&format!(
            "counters do not cover the burst: {compiles} compiles + {coalesced} coalesced + {hits} hits < {requests}"
        ));
    }
    println!(
        "powermove_client: OK: {requests} requests over {} cells → {compiles} compiles, {hits} hits, {coalesced} coalesced",
        cells.len(),
    );
    ExitCode::SUCCESS
}
