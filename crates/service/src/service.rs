//! The compile service: cache, in-flight coalescing and batch admission.

use crate::cache::{CacheStats, LruCache, ScheduleCache};
use powermove::{
    content_hash, stage_hash, CompileError, CompilerConfig, PowerMoveCompiler, StagedIr,
};
use powermove_circuit::Circuit;
use powermove_hardware::Architecture;
use powermove_schedule::{canonical_json, fnv1a_64, CompiledProgram};
use serde::Serialize;
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// How a compile request was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// The program was already cached.
    Hit,
    /// The request compiled cold and populated the cache.
    Miss,
    /// An identical request was already in flight; this one waited for it
    /// and shares its program without compiling.
    Coalesced,
}

impl CacheOutcome {
    /// Wire name used in service response frames.
    #[must_use]
    pub fn as_str(&self) -> &'static str {
        match self {
            CacheOutcome::Hit => "hit",
            CacheOutcome::Miss => "miss",
            CacheOutcome::Coalesced => "coalesced",
        }
    }
}

/// A point-in-time snapshot of service counters, reported by the `stats`
/// frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct ServiceStats {
    /// Program-cache effectiveness counters.
    pub cache: CacheStats,
    /// Cold compiles whose front end was answered from the stage cache
    /// (only the route/emit back end ran).
    pub stage_hits: u64,
    /// Cold compiles that staged from scratch and populated the stage
    /// cache.
    pub stage_misses: u64,
    /// Cold compiles actually executed (misses that reached the compiler).
    pub compiles: u64,
    /// Requests that coalesced onto another request's in-flight compile.
    pub coalesced: u64,
}

/// State guarded by the service mutex: the program and stage caches plus
/// the set of content keys whose compiles are currently in flight.
#[derive(Debug)]
struct Inner {
    cache: ScheduleCache,
    /// Frozen front-end IRs keyed by [`stage_hash`]: the front end is
    /// architecture-independent, so requests that differ only in their
    /// target machine share one staged IR and replay only the back end.
    stages: LruCache<StagedIr>,
    in_flight: HashSet<u64>,
}

/// A thread-safe compile front end with a content-addressed schedule cache
/// and in-flight request coalescing.
///
/// Every request is keyed by [`content_hash`] over its `(circuit,
/// architecture, config)` triple. A request whose key is cached returns the
/// cached program ([`CacheOutcome::Hit`]); a request whose key is currently
/// compiling on another thread blocks until that compile lands and shares
/// its result ([`CacheOutcome::Coalesced`]); otherwise the request compiles
/// cold exactly once ([`CacheOutcome::Miss`]). Since compilation is pure,
/// all three paths yield byte-identical programs.
///
/// Cold compiles are themselves split along the compiler's front/back-end
/// seam: the front end ([`PowerMoveCompiler::stage`]) depends only on the
/// `(circuit, config)` pair, so its frozen [`StagedIr`] is cached under
/// [`stage_hash`] and shared by requests that differ only in architecture —
/// those requests replay only the route/emit back end. The `stage_hits` /
/// `stage_misses` counters in [`ServiceStats`] report how often that
/// happens.
///
/// # Example
///
/// ```
/// use powermove::CompilerConfig;
/// use powermove_circuit::{Circuit, Qubit};
/// use powermove_hardware::Architecture;
/// use powermove_service::{CacheOutcome, CompileService};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let service = CompileService::new(16);
/// let mut circuit = Circuit::new(2);
/// circuit.cz(Qubit::new(0), Qubit::new(1))?;
/// let arch = Architecture::for_qubits(2);
/// let config = CompilerConfig::default();
///
/// let (cold, outcome) = service.compile(&circuit, &arch, &config)?;
/// assert_eq!(outcome, CacheOutcome::Miss);
/// let (warm, outcome) = service.compile(&circuit, &arch, &config)?;
/// assert_eq!(outcome, CacheOutcome::Hit);
/// assert_eq!(
///     powermove_schedule::canonical_program_bytes(&cold),
///     powermove_schedule::canonical_program_bytes(&warm),
/// );
/// assert_eq!(service.compiles(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct CompileService {
    inner: Mutex<Inner>,
    landed: Condvar,
    compiles: AtomicU64,
    coalesced: AtomicU64,
}

impl CompileService {
    /// Creates a service whose program cache holds at most `capacity`
    /// emitted programs and whose stage cache at most `capacity` frozen
    /// front-end IRs.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        CompileService {
            inner: Mutex::new(Inner {
                cache: ScheduleCache::new(capacity),
                stages: LruCache::new(capacity),
                in_flight: HashSet::new(),
            }),
            landed: Condvar::new(),
            compiles: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
        }
    }

    /// Compiles a request, satisfying it from the cache or an in-flight
    /// identical compile when possible.
    ///
    /// # Errors
    ///
    /// Propagates [`CompileError`] from a cold compile. A failed compile is
    /// not cached, and any coalesced waiters retry (the first retrier
    /// becomes the new cold compiler).
    ///
    /// # Panics
    ///
    /// Panics if another thread panicked while holding the service lock.
    pub fn compile(
        &self,
        circuit: &Circuit,
        arch: &Architecture,
        config: &CompilerConfig,
    ) -> Result<(Arc<CompiledProgram>, CacheOutcome), CompileError> {
        let key = content_hash(circuit, arch, config).value();
        let mut waited = false;
        {
            let mut inner = self.inner.lock().expect("service lock poisoned");
            loop {
                if let Some(program) = inner.cache.get(key) {
                    let outcome = if waited {
                        self.coalesced.fetch_add(1, Ordering::Relaxed);
                        CacheOutcome::Coalesced
                    } else {
                        CacheOutcome::Hit
                    };
                    return Ok((program, outcome));
                }
                if !inner.in_flight.contains(&key) {
                    inner.in_flight.insert(key);
                    break;
                }
                waited = true;
                inner = self
                    .landed
                    .wait(inner)
                    .expect("service lock poisoned while waiting");
            }
        }
        // Compile outside the lock: identical concurrent requests block on
        // the condvar above, different requests proceed in parallel. The
        // front end is served from the stage cache when possible, so a
        // request that differs from a cached one only in architecture pays
        // only for the route/emit back end.
        let result = self.emit_via_stage_cache(circuit, arch, config);
        let mut inner = self.inner.lock().expect("service lock poisoned");
        inner.in_flight.remove(&key);
        let result = result.map(|program| {
            self.compiles.fetch_add(1, Ordering::Relaxed);
            let program = Arc::new(program);
            inner.cache.insert(key, Arc::clone(&program));
            (program, CacheOutcome::Miss)
        });
        drop(inner);
        self.landed.notify_all();
        result
    }

    /// Runs one cold compile, reusing a cached front-end IR if one exists
    /// for this `(circuit, config)` pair.
    fn emit_via_stage_cache(
        &self,
        circuit: &Circuit,
        arch: &Architecture,
        config: &CompilerConfig,
    ) -> Result<CompiledProgram, CompileError> {
        let compiler = PowerMoveCompiler::new(*config);
        let stage_key = stage_hash(circuit, config).value();
        let cached = {
            let mut inner = self.inner.lock().expect("service lock poisoned");
            inner.stages.get(stage_key)
        };
        let ir = match cached {
            Some(ir) => ir,
            None => {
                // Stage outside the lock; a concurrent duplicate insert is
                // benign because staging is pure — both IRs are identical.
                let ir = Arc::new(compiler.stage(circuit));
                let mut inner = self.inner.lock().expect("service lock poisoned");
                inner.stages.insert(stage_key, Arc::clone(&ir));
                ir
            }
        };
        compiler.emit(&ir, arch)
    }

    /// Compiles a batch of requests on `pool`, grouping them by
    /// architecture.
    ///
    /// Requests for the same architecture are admitted to the pool as one
    /// job and run back to back (via
    /// [`ThreadPool::par_map_grouped`](powermove_exec::ThreadPool::par_map_grouped)),
    /// which keeps a warm request stream from spreading one architecture's
    /// working set across every worker; distinct architectures still compile
    /// in parallel. Results come back in input order, each with its
    /// [`CacheOutcome`].
    ///
    /// # Panics
    ///
    /// Panics if another thread panicked while holding the service lock.
    pub fn compile_batch(
        &self,
        pool: &powermove_exec::ThreadPool,
        requests: Vec<(Circuit, Architecture, CompilerConfig)>,
    ) -> Vec<Result<(Arc<CompiledProgram>, CacheOutcome), CompileError>> {
        pool.par_map_grouped(
            requests,
            |(_, arch, _)| fnv1a_64(canonical_json(arch).as_bytes()),
            |(circuit, arch, config)| self.compile(&circuit, &arch, &config),
        )
    }

    /// Number of cold compiles executed so far.
    #[must_use]
    pub fn compiles(&self) -> u64 {
        self.compiles.load(Ordering::Relaxed)
    }

    /// A snapshot of the service counters.
    ///
    /// # Panics
    ///
    /// Panics if another thread panicked while holding the service lock.
    #[must_use]
    pub fn stats(&self) -> ServiceStats {
        let inner = self.inner.lock().expect("service lock poisoned");
        let stages = inner.stages.stats();
        ServiceStats {
            cache: inner.cache.stats(),
            stage_hits: stages.hits,
            stage_misses: stages.misses,
            compiles: self.compiles.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powermove_circuit::Qubit;

    fn ring(n: u32) -> Circuit {
        let mut c = Circuit::new(n);
        for i in 0..n {
            c.cz(Qubit::new(i), Qubit::new((i + 1) % n)).unwrap();
        }
        c
    }

    #[test]
    fn distinct_requests_each_compile_once() {
        let service = CompileService::new(16);
        let config = CompilerConfig::default();
        for n in [4, 6, 8] {
            let (_, outcome) = service
                .compile(&ring(n), &Architecture::for_qubits(n), &config)
                .unwrap();
            assert_eq!(outcome, CacheOutcome::Miss);
        }
        assert_eq!(service.compiles(), 3);
        let stats = service.stats();
        assert_eq!(stats.cache.entries, 3);
        assert_eq!(stats.cache.misses, 3);
    }

    #[test]
    fn architecture_sweep_shares_one_staged_ir() {
        let service = CompileService::new(16);
        let config = CompilerConfig::default();
        let circuit = ring(6);
        // Same circuit and config, three different machines: three distinct
        // content keys (three cold compiles) but one shared front end.
        for aods in [1, 2, 4] {
            let arch = Architecture::for_qubits(6).with_num_aods(aods);
            let (_, outcome) = service.compile(&circuit, &arch, &config).unwrap();
            assert_eq!(outcome, CacheOutcome::Miss);
        }
        let stats = service.stats();
        assert_eq!(stats.compiles, 3);
        assert_eq!(stats.stage_misses, 1);
        assert_eq!(stats.stage_hits, 2);
    }

    #[test]
    fn stage_and_emit_match_the_all_in_one_compile() {
        let service = CompileService::new(16);
        let config = CompilerConfig::default();
        let circuit = ring(8);
        // Warm the stage cache with a different architecture first, so the
        // second request emits from a cached IR.
        let first = Architecture::for_qubits(8);
        let second = Architecture::for_qubits(8).with_num_aods(2);
        service.compile(&circuit, &first, &config).unwrap();
        let (via_cache, outcome) = service.compile(&circuit, &second, &config).unwrap();
        assert_eq!(outcome, CacheOutcome::Miss);
        assert_eq!(service.stats().stage_hits, 1);
        let direct = powermove::compile(&circuit, &second, &config).unwrap();
        assert_eq!(
            powermove_schedule::canonical_program_bytes(&via_cache),
            powermove_schedule::canonical_program_bytes(&direct),
        );
    }

    #[test]
    fn compile_errors_are_not_cached() {
        let service = CompileService::new(16);
        // 10 qubits on a 2x2 compute grid cannot fit.
        let tiny = Architecture::for_qubits(10)
            .with_grid(powermove_hardware::ZonedGrid::with_dims(2, 2, 4).unwrap());
        let config = CompilerConfig::default();
        assert!(service.compile(&ring(10), &tiny, &config).is_err());
        assert!(service.compile(&ring(10), &tiny, &config).is_err());
        assert_eq!(service.compiles(), 0);
        assert_eq!(service.stats().cache.entries, 0);
    }

    #[test]
    fn batch_returns_results_in_input_order() {
        let service = CompileService::new(16);
        let pool = powermove_exec::ThreadPool::new(powermove_exec::Parallelism::fixed(4));
        let config = CompilerConfig::default().with_threads(1);
        let requests: Vec<_> = [4_u32, 6, 4, 8, 6]
            .iter()
            .map(|&n| (ring(n), Architecture::for_qubits(n), config))
            .collect();
        let results = service.compile_batch(&pool, requests);
        assert_eq!(results.len(), 5);
        let widths: Vec<u32> = results
            .iter()
            .map(|r| r.as_ref().unwrap().0.num_qubits())
            .collect();
        assert_eq!(widths, vec![4, 6, 4, 8, 6]);
        // Three distinct triples → three cold compiles, two cache hits.
        assert_eq!(service.compiles(), 3);
        assert_eq!(service.stats().cache.hits, 2);
    }
}
