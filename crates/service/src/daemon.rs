//! The serve loop: JSONL frames over stdio or a Unix socket.

use crate::protocol::{
    CompileReply, CompileRequest, FrameError, Request, ShutdownReply, StatsReply,
};
use crate::CompileService;
use powermove_exec::{Parallelism, ThreadPool};
use powermove_hardware::Architecture;
use serde::Serialize;
use std::fs::File;
use std::io::{BufRead, BufReader, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// What one serve loop processed, returned when its input closes or a
/// shutdown frame arrives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeReport {
    /// Non-blank input lines consumed.
    pub frames: u64,
    /// Error frames written.
    pub errors: u64,
    /// Whether the loop ended on an explicit `shutdown` frame (as opposed
    /// to end of input).
    pub shutdown: bool,
}

/// Serializes frames to an output stream with the one-line-per-frame,
/// flush-after-every-line discipline of the bench report writer, so a
/// crash never truncates a frame and clients can stream responses as they
/// land. An optional log sink receives a copy of every frame.
struct FrameWriter<W: Write> {
    out: Mutex<W>,
    log: Option<Arc<Mutex<File>>>,
}

impl<W: Write> FrameWriter<W> {
    fn new(out: W, log: Option<Arc<Mutex<File>>>) -> Self {
        FrameWriter {
            out: Mutex::new(out),
            log,
        }
    }

    /// Writes one frame. The line is rendered before the lock is taken, so
    /// frames from concurrent handlers interleave line-atomically.
    fn write<T: Serialize>(&self, frame: &T) {
        let line = serde_json::to_jsonl_line(frame);
        {
            let mut out = self.out.lock().expect("frame writer lock poisoned");
            // Best effort: a closed pipe must not kill the daemon loop.
            let _ = out.write_all(line.as_bytes());
            let _ = out.flush();
        }
        if let Some(log) = &self.log {
            let mut log = log.lock().expect("frame log lock poisoned");
            let _ = log.write_all(line.as_bytes());
            let _ = log.flush();
        }
    }
}

/// The compile daemon: drives a [`CompileService`] from JSONL frame
/// streams.
///
/// One daemon can serve stdio ([`Daemon::serve`]) or a Unix socket
/// ([`Daemon::serve_unix`]); both share the same service, so the cache and
/// its counters span all connections. Compile frames are handled
/// concurrently on a work-stealing pool — identical concurrent requests
/// coalesce onto one compile — while `stats` and `shutdown` are answered
/// inline. Responses stream in completion order, correlated by `id`; the
/// shutdown acknowledgement is always the last frame written.
pub struct Daemon<'a> {
    service: &'a CompileService,
    parallelism: Parallelism,
    log: Option<Arc<Mutex<File>>>,
}

impl<'a> Daemon<'a> {
    /// Creates a daemon over `service` with worker count resolved from the
    /// environment ([`Parallelism::from_env`]).
    #[must_use]
    pub fn new(service: &'a CompileService) -> Self {
        Daemon {
            service,
            parallelism: Parallelism::from_env(),
            log: None,
        }
    }

    /// Pins the handler pool's worker count.
    #[must_use]
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Appends a copy of every response frame to a JSONL log file (created
    /// or truncated), e.g. for CI artifact upload.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the file cannot be created.
    pub fn with_log(mut self, path: &Path) -> std::io::Result<Self> {
        self.log = Some(Arc::new(Mutex::new(File::create(path)?)));
        Ok(self)
    }

    /// Serves one frame stream until end of input or a `shutdown` frame.
    ///
    /// Malformed frames produce error responses and the loop continues —
    /// one bad client line never kills the daemon. On shutdown, in-flight
    /// compiles drain before the acknowledgement is written.
    pub fn serve(&self, input: impl BufRead, output: impl Write + Send) -> ServeReport {
        let writer = FrameWriter::new(output, self.log.clone());
        self.serve_frames(input, &writer)
    }

    fn serve_frames(
        &self,
        input: impl BufRead,
        writer: &FrameWriter<impl Write + Send>,
    ) -> ServeReport {
        let pool = ThreadPool::new(self.parallelism);
        let frames = AtomicU64::new(0);
        let errors = AtomicU64::new(0);
        let mut shutdown_id = None;
        pool.scope(|scope| {
            for line in input.lines() {
                let Ok(line) = line else { break };
                if line.trim().is_empty() {
                    continue;
                }
                frames.fetch_add(1, Ordering::Relaxed);
                match Request::parse(&line) {
                    Err(err) => {
                        errors.fetch_add(1, Ordering::Relaxed);
                        writer.write(&err.reply());
                    }
                    Ok(Request::Stats { id }) => writer.write(&StatsReply {
                        id,
                        ok: true,
                        stats: self.service.stats(),
                    }),
                    Ok(Request::Shutdown { id }) => {
                        shutdown_id = Some(id);
                        break;
                    }
                    Ok(Request::Compile(request)) => {
                        let service = self.service;
                        let errors = &errors;
                        scope.spawn(move || match handle_compile(service, &request) {
                            Ok(reply) => writer.write(&reply),
                            Err(err) => {
                                errors.fetch_add(1, Ordering::Relaxed);
                                writer.write(&err.reply());
                            }
                        });
                    }
                }
            }
        });
        // The scope has drained every in-flight compile; the shutdown
        // acknowledgement is the daemon's final frame.
        if let Some(id) = shutdown_id {
            writer.write(&ShutdownReply {
                id,
                ok: true,
                shutdown: true,
            });
        }
        ServeReport {
            frames: frames.into_inner(),
            errors: errors.into_inner(),
            shutdown: shutdown_id.is_some(),
        }
    }

    /// Binds a Unix socket and serves connections until one of them sends a
    /// `shutdown` frame.
    ///
    /// Connections are served concurrently, each with its own frame stream
    /// over the shared service, so cache hits cross connection boundaries.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the socket cannot be bound. A pre-existing
    /// socket file at `path` is removed first (the conventional takeover
    /// for daemon restarts).
    #[cfg(unix)]
    pub fn serve_unix(&self, path: &Path) -> std::io::Result<ServeReport> {
        use std::os::unix::net::UnixListener;

        let _ = std::fs::remove_file(path);
        let listener = UnixListener::bind(path)?;
        listener.set_nonblocking(true)?;
        let stop = AtomicBool::new(false);
        let frames = AtomicU64::new(0);
        let errors = AtomicU64::new(0);
        std::thread::scope(|s| {
            while !stop.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let stop = &stop;
                        let frames = &frames;
                        let errors = &errors;
                        s.spawn(move || {
                            stream
                                .set_nonblocking(false)
                                .expect("stream mode reset failed");
                            let reader = match stream.try_clone() {
                                Ok(clone) => BufReader::new(clone),
                                Err(_) => return,
                            };
                            let report = self.serve(reader, stream);
                            frames.fetch_add(report.frames, Ordering::Relaxed);
                            errors.fetch_add(report.errors, Ordering::Relaxed);
                            if report.shutdown {
                                stop.store(true, Ordering::SeqCst);
                            }
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(std::time::Duration::from_millis(10));
                    }
                    Err(_) => break,
                }
            }
        });
        let _ = std::fs::remove_file(path);
        Ok(ServeReport {
            frames: frames.into_inner(),
            errors: errors.into_inner(),
            shutdown: stop.into_inner(),
        })
    }
}

/// Handles one compile request end to end: materialize the circuit, derive
/// the architecture, compile through the service, shape the reply.
fn handle_compile(
    service: &CompileService,
    request: &CompileRequest,
) -> Result<CompileReply, FrameError> {
    let circuit = request.circuit()?;
    let arch = Architecture::for_qubits(circuit.num_qubits()).with_num_aods(request.aods);
    let key = powermove::content_hash(&circuit, &arch, &request.config);
    let (program, outcome) = service
        .compile(&circuit, &arch, &request.config)
        .map_err(|e| FrameError::new(Some(request.id), format!("compile: {e}")))?;
    Ok(CompileReply {
        id: request.id,
        ok: true,
        cache: outcome.as_str().to_string(),
        key: key.hex(),
        digest: powermove_schedule::program_digest(&program),
        qubits: program.num_qubits(),
        instructions: program.num_instructions(),
        stages: program.rydberg_stage_count(),
        program: request
            .include_program
            .then(|| serde_json::to_value(&*program)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Value;

    fn parse_lines(out: &[u8]) -> Vec<Value> {
        serde_json::from_str_jsonl(std::str::from_utf8(out).unwrap()).unwrap()
    }

    #[test]
    fn serve_answers_compile_stats_and_shutdown() {
        let service = CompileService::new(8);
        let daemon = Daemon::new(&service).with_parallelism(Parallelism::fixed(2));
        let input = concat!(
            r#"{"id": 1, "benchmark": {"family": "BV", "qubits": 6}}"#,
            "\n",
            r#"{"id": 2, "benchmark": {"family": "BV", "qubits": 6}}"#,
            "\n",
            r#"{"id": 3, "op": "stats"}"#,
            "\n",
            r#"{"id": 4, "op": "shutdown"}"#,
            "\n",
        );
        let mut out = Vec::new();
        let report = daemon.serve(input.as_bytes(), &mut out);
        assert_eq!(report.frames, 4);
        assert!(report.shutdown);
        let frames = parse_lines(&out);
        assert_eq!(frames.len(), 4);
        // The shutdown ack is last; compile replies precede it in some order.
        let last = frames.last().unwrap();
        assert_eq!(last.get("shutdown").and_then(Value::as_bool), Some(true));
        let digests: Vec<&str> = frames
            .iter()
            .filter(|f| f.get("digest").is_some())
            .filter_map(|f| f.get("digest").and_then(Value::as_str))
            .collect();
        assert_eq!(digests.len(), 2);
        assert_eq!(
            digests[0], digests[1],
            "identical requests, identical programs"
        );
    }

    #[test]
    fn malformed_frames_do_not_kill_the_loop() {
        let service = CompileService::new(8);
        let daemon = Daemon::new(&service).with_parallelism(Parallelism::fixed(1));
        let input = concat!(
            "this is not json\n",
            r#"{"op": "stats"}"#,
            "\n",
            r#"{"id": 2, "op": "teleport"}"#,
            "\n",
            r#"{"id": 3, "benchmark": {"family": "QFT", "qubits": 6}}"#,
            "\n",
            r#"{"id": 4, "op": "shutdown"}"#,
            "\n",
        );
        let mut out = Vec::new();
        let report = daemon.serve(input.as_bytes(), &mut out);
        assert_eq!(report.frames, 5);
        assert_eq!(report.errors, 3);
        assert!(report.shutdown);
        let frames = parse_lines(&out);
        assert_eq!(frames.len(), 5);
        let oks: Vec<bool> = frames
            .iter()
            .filter_map(|f| f.get("ok").and_then(Value::as_bool))
            .collect();
        assert_eq!(oks.iter().filter(|ok| !**ok).count(), 3);
        // The compile after the garbage still succeeded.
        assert!(frames
            .iter()
            .any(|f| f.get("id").and_then(Value::as_i64) == Some(3)
                && f.get("ok").and_then(Value::as_bool) == Some(true)));
    }

    #[test]
    fn end_of_input_without_shutdown_reports_clean_exit() {
        let service = CompileService::new(8);
        let daemon = Daemon::new(&service).with_parallelism(Parallelism::fixed(1));
        let mut out = Vec::new();
        let report = daemon.serve(b"".as_slice(), &mut out);
        assert_eq!(report, ServeReport::default());
        assert!(out.is_empty());
    }
}
