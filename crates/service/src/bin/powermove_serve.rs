//! The compile daemon binary.
//!
//! ```text
//! powermove-serve [--socket PATH] [--cache-capacity N] [--threads N] [--log PATH]
//! ```
//!
//! Without `--socket`, the daemon speaks the JSONL frame protocol (see
//! `powermove_service::protocol`) over stdin/stdout and exits when stdin
//! closes or a `shutdown` frame arrives. With `--socket`, it binds a Unix
//! socket, serves connections concurrently, and exits on the first
//! `shutdown` frame from any connection. `--log` appends a copy of every
//! response frame to a JSONL file.

use powermove_exec::Parallelism;
use powermove_service::{CompileService, Daemon};
use std::io::{stdin, stdout, BufReader};
use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    socket: Option<PathBuf>,
    cache_capacity: usize,
    threads: usize,
    log: Option<PathBuf>,
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options {
        socket: None,
        cache_capacity: 64,
        threads: 0,
        log: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take_value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--socket" => options.socket = Some(PathBuf::from(take_value("--socket")?)),
            "--log" => options.log = Some(PathBuf::from(take_value("--log")?)),
            "--cache-capacity" => {
                options.cache_capacity = take_value("--cache-capacity")?
                    .parse()
                    .map_err(|e| format!("--cache-capacity: {e}"))?;
            }
            "--threads" => {
                options.threads = take_value("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
            }
            "--help" | "-h" => {
                return Err(
                    "usage: powermove-serve [--socket PATH] [--cache-capacity N] \
                     [--threads N] [--log PATH]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(options)
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    let service = CompileService::new(options.cache_capacity);
    let mut daemon =
        Daemon::new(&service).with_parallelism(Parallelism::from_setting(options.threads));
    if let Some(path) = &options.log {
        daemon = match daemon.with_log(path) {
            Ok(daemon) => daemon,
            Err(e) => {
                eprintln!("cannot open log {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
    }
    let report = match &options.socket {
        #[cfg(unix)]
        Some(path) => match daemon.serve_unix(path) {
            Ok(report) => report,
            Err(e) => {
                eprintln!("cannot serve on {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        },
        #[cfg(not(unix))]
        Some(_) => {
            eprintln!("--socket is only supported on Unix platforms");
            return ExitCode::FAILURE;
        }
        None => daemon.serve(BufReader::new(stdin().lock()), stdout()),
    };
    let stats = service.stats();
    eprintln!(
        "powermove-serve: {} frames, {} errors, {} compiles, {} hits, {} coalesced, {} evictions",
        report.frames,
        report.errors,
        stats.compiles,
        stats.cache.hits,
        stats.coalesced,
        stats.cache.evictions,
    );
    ExitCode::SUCCESS
}
