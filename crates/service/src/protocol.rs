//! The JSONL frame protocol spoken by the compile daemon.
//!
//! Every frame is one JSON object on one line. Requests arrive on stdin (or
//! a Unix-socket connection); each produces exactly one response frame,
//! correlated by the client-chosen `id`. Responses to concurrent compile
//! requests stream back in completion order, so clients must match on `id`,
//! not on arrival order.
//!
//! # Request frames
//!
//! ```json
//! {"id": 1, "op": "compile", "qasm": "OPENQASM 2.0; ...", "aods": 2}
//! {"id": 2, "op": "compile",
//!  "benchmark": {"family": "QFT", "qubits": 10, "seed": 20250},
//!  "config": {"storage": true, "alpha": 0.97, "routing": "lookahead",
//!             "lookahead": 2}}
//! {"id": 3, "op": "stats"}
//! {"id": 4, "op": "shutdown"}
//! ```
//!
//! A compile request names its circuit either inline (`qasm`, OpenQASM 2.0
//! text) or as a generated benchmark instance (`benchmark` with a Table 2
//! `family` name, `qubits`, and an optional `seed` defaulting to the bench
//! harness default). The architecture is derived from the circuit width
//! (plus optional `aods`, default 1), and `config` fields override
//! [`CompilerConfig`] defaults one by one; `threads` defaults to 1 inside
//! the daemon because request-level parallelism already saturates the pool.
//!
//! # Response frames
//!
//! ```json
//! {"id": 1, "ok": true, "cache": "miss", "key": "92b11c…", "digest": "5d1f…",
//!  "qubits": 10, "instructions": 42, "stages": 9, "program": null}
//! {"id": 7, "ok": false, "error": "unknown benchmark family `qproc`"}
//! ```
//!
//! `key` is the request's content hash, `digest` the canonical digest of
//! the emitted program ([`program_digest`](powermove_schedule::program_digest));
//! identical keys always report identical digests, which is how the smoke
//! test asserts cache hits are byte-identical to cold compiles. With
//! `"include_program": true` the response carries the full serialized
//! program in `program`.

use powermove::{CompilerConfig, RoutingConfig};
use powermove_benchmarks::BenchmarkFamily;
use powermove_circuit::Circuit;
use serde::{Serialize, Value};

/// Default RNG seed for `benchmark` sources, matching the bench harness.
pub const DEFAULT_SEED: u64 = 20250;

/// A parsed request frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Compile a circuit (from QASM text or a generated benchmark).
    Compile(CompileRequest),
    /// Report service counters.
    Stats {
        /// Correlation id echoed in the response.
        id: i64,
    },
    /// Drain in-flight work, acknowledge, and stop the daemon.
    Shutdown {
        /// Correlation id echoed in the response.
        id: i64,
    },
}

/// The circuit source of a compile request.
#[derive(Debug, Clone, PartialEq)]
pub enum Source {
    /// Inline OpenQASM 2.0 text.
    Qasm(String),
    /// A generated Table 2 benchmark instance.
    Benchmark {
        /// Benchmark family.
        family: BenchmarkFamily,
        /// Circuit width.
        qubits: u32,
        /// Generator seed.
        seed: u64,
    },
}

/// A parsed compile request frame.
#[derive(Debug, Clone, PartialEq)]
pub struct CompileRequest {
    /// Correlation id echoed in the response.
    pub id: i64,
    /// Where the circuit comes from.
    pub source: Source,
    /// AOD-array count for the derived architecture.
    pub aods: usize,
    /// Compiler configuration after applying frame overrides.
    pub config: CompilerConfig,
    /// Whether the response should embed the full serialized program.
    pub include_program: bool,
}

impl CompileRequest {
    /// Materializes the request's circuit.
    ///
    /// # Errors
    ///
    /// Returns a [`FrameError`] if the QASM text does not parse or the
    /// benchmark parameters are infeasible.
    pub fn circuit(&self) -> Result<Circuit, FrameError> {
        match &self.source {
            Source::Qasm(text) => powermove_circuit::qasm::from_qasm(text)
                .map_err(|e| FrameError::new(Some(self.id), format!("qasm: {e}"))),
            Source::Benchmark {
                family,
                qubits,
                seed,
            } => {
                if *qubits < 2 {
                    return Err(FrameError::new(
                        Some(self.id),
                        "benchmark.qubits must be at least 2",
                    ));
                }
                Ok(powermove_benchmarks::generate(*family, *qubits, *seed).circuit)
            }
        }
    }
}

/// A malformed frame: carries the offending request's `id` when one could
/// be extracted, so the error response still correlates.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameError {
    /// Correlation id, if the frame carried a usable one.
    pub id: Option<i64>,
    /// Human-readable description of the problem.
    pub message: String,
}

impl FrameError {
    /// Creates a frame error.
    pub fn new(id: Option<i64>, message: impl Into<String>) -> Self {
        FrameError {
            id,
            message: message.into(),
        }
    }

    /// The error response frame for this failure.
    #[must_use]
    pub fn reply(&self) -> Value {
        Value::Object(vec![
            ("id".into(), self.id.map_or(Value::Null, Value::Int)),
            ("ok".into(), Value::Bool(false)),
            ("error".into(), Value::String(self.message.clone())),
        ])
    }
}

impl Request {
    /// Parses one JSONL frame.
    ///
    /// # Errors
    ///
    /// Returns a [`FrameError`] (with the frame's `id` when recoverable) on
    /// malformed JSON, a missing or non-integer `id`, an unknown `op`, or
    /// invalid compile parameters.
    pub fn parse(line: &str) -> Result<Request, FrameError> {
        let value = serde_json::from_str(line)
            .map_err(|e| FrameError::new(None, format!("malformed frame: {e}")))?;
        let id = value
            .get("id")
            .and_then(Value::as_i64)
            .ok_or_else(|| FrameError::new(None, "frame is missing an integer `id`"))?;
        let op = value
            .get("op")
            .map_or(Some("compile"), Value::as_str)
            .ok_or_else(|| FrameError::new(Some(id), "`op` must be a string"))?;
        match op {
            "stats" => Ok(Request::Stats { id }),
            "shutdown" => Ok(Request::Shutdown { id }),
            "compile" => parse_compile(id, &value).map(Request::Compile),
            other => Err(FrameError::new(Some(id), format!("unknown op `{other}`"))),
        }
    }
}

fn parse_compile(id: i64, value: &Value) -> Result<CompileRequest, FrameError> {
    let source = match (value.get("qasm"), value.get("benchmark")) {
        (Some(_), Some(_)) => {
            return Err(FrameError::new(
                Some(id),
                "specify either `qasm` or `benchmark`, not both",
            ))
        }
        (Some(qasm), None) => Source::Qasm(
            qasm.as_str()
                .ok_or_else(|| FrameError::new(Some(id), "`qasm` must be a string"))?
                .to_string(),
        ),
        (None, Some(bench)) => parse_benchmark(id, bench)?,
        (None, None) => {
            return Err(FrameError::new(
                Some(id),
                "compile frame needs a `qasm` or `benchmark` source",
            ))
        }
    };
    let aods = match value.get("aods") {
        None => 1,
        Some(v) => usize::try_from(v.as_i64().unwrap_or(-1))
            .ok()
            .filter(|a| *a >= 1)
            .ok_or_else(|| FrameError::new(Some(id), "`aods` must be a positive integer"))?,
    };
    let config = parse_config(id, value.get("config"))?;
    let include_program = value
        .get("include_program")
        .and_then(Value::as_bool)
        .unwrap_or(false);
    Ok(CompileRequest {
        id,
        source,
        aods,
        config,
        include_program,
    })
}

fn parse_benchmark(id: i64, bench: &Value) -> Result<Source, FrameError> {
    let family_name = bench
        .get("family")
        .and_then(Value::as_str)
        .ok_or_else(|| FrameError::new(Some(id), "`benchmark.family` must be a string"))?;
    let family = BenchmarkFamily::from_name(family_name).ok_or_else(|| {
        FrameError::new(
            Some(id),
            format!("unknown benchmark family `{family_name}`"),
        )
    })?;
    let qubits = bench
        .get("qubits")
        .and_then(Value::as_i64)
        .and_then(|q| u32::try_from(q).ok())
        .ok_or_else(|| {
            FrameError::new(
                Some(id),
                "`benchmark.qubits` must be a non-negative integer",
            )
        })?;
    let seed = match bench.get("seed") {
        None => DEFAULT_SEED,
        Some(v) => v
            .as_i64()
            .and_then(|s| u64::try_from(s).ok())
            .ok_or_else(|| {
                FrameError::new(Some(id), "`benchmark.seed` must be a non-negative integer")
            })?,
    };
    Ok(Source::Benchmark {
        family,
        qubits,
        seed,
    })
}

fn parse_config(id: i64, value: Option<&Value>) -> Result<CompilerConfig, FrameError> {
    // Inside the daemon, request-level parallelism already keeps the pool
    // busy; per-compile pools default to one worker.
    let mut config = CompilerConfig::default().with_threads(1);
    let Some(value) = value else {
        return Ok(config);
    };
    if let Some(storage) = value.get("storage") {
        match storage.as_bool() {
            Some(true) => {}
            Some(false) => config.use_storage = false,
            None => {
                return Err(FrameError::new(
                    Some(id),
                    "`config.storage` must be a boolean",
                ))
            }
        }
    }
    if let Some(alpha) = value.get("alpha") {
        config.alpha = alpha
            .as_f64()
            .ok_or_else(|| FrameError::new(Some(id), "`config.alpha` must be a number"))?;
    }
    if let Some(grouping) = value.get("grouping") {
        config.use_grouping = grouping
            .as_bool()
            .ok_or_else(|| FrameError::new(Some(id), "`config.grouping` must be a boolean"))?;
    }
    if let Some(threads) = value.get("threads") {
        config.threads = threads
            .as_i64()
            .and_then(|t| usize::try_from(t).ok())
            .ok_or_else(|| {
                FrameError::new(Some(id), "`config.threads` must be a non-negative integer")
            })?;
    }
    if let Some(routing) = value.get("routing") {
        let name = routing
            .as_str()
            .ok_or_else(|| FrameError::new(Some(id), "`config.routing` must be a string"))?;
        let lookahead = match value.get("lookahead") {
            None => 2,
            Some(v) => v
                .as_i64()
                .and_then(|d| usize::try_from(d).ok())
                .ok_or_else(|| {
                    FrameError::new(
                        Some(id),
                        "`config.lookahead` must be a non-negative integer",
                    )
                })?,
        };
        config.routing = match name {
            "greedy" => RoutingConfig::greedy(),
            "lookahead" => RoutingConfig::lookahead(lookahead),
            "multi-aod" => RoutingConfig::multi_aod(),
            "auto" => RoutingConfig::auto(),
            "auto-model" => RoutingConfig::auto_model(),
            other => {
                return Err(FrameError::new(
                    Some(id),
                    format!("unknown routing strategy `{other}`"),
                ))
            }
        };
    }
    Ok(config)
}

/// The response frame for a successful compile.
#[derive(Debug, Serialize)]
pub struct CompileReply {
    /// Correlation id from the request.
    pub id: i64,
    /// Always `true` for this frame type.
    pub ok: bool,
    /// How the request was satisfied: `"hit"`, `"miss"` or `"coalesced"`.
    pub cache: String,
    /// The request's content hash (16 hex digits).
    pub key: String,
    /// Canonical digest of the emitted program (16 hex digits).
    pub digest: String,
    /// Program width in qubits.
    pub qubits: u32,
    /// Instruction count of the emitted program.
    pub instructions: usize,
    /// Rydberg stage count of the emitted program.
    pub stages: usize,
    /// The full serialized program when `include_program` was set, else
    /// `null`.
    pub program: Option<Value>,
}

/// The response frame for a `stats` request.
#[derive(Debug, Serialize)]
pub struct StatsReply {
    /// Correlation id from the request.
    pub id: i64,
    /// Always `true` for this frame type.
    pub ok: bool,
    /// The service counters.
    pub stats: crate::ServiceStats,
}

/// The acknowledgement frame for a `shutdown` request — always the last
/// frame the daemon writes.
#[derive(Debug, Serialize)]
pub struct ShutdownReply {
    /// Correlation id from the request.
    pub id: i64,
    /// Always `true` for this frame type.
    pub ok: bool,
    /// Always `true`: marks the daemon as stopping.
    pub shutdown: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_benchmark_compile_frame() {
        let req = Request::parse(
            r#"{"id": 3, "op": "compile", "benchmark": {"family": "QFT", "qubits": 10}, "aods": 2}"#,
        )
        .unwrap();
        let Request::Compile(req) = req else {
            panic!("expected compile");
        };
        assert_eq!(req.id, 3);
        assert_eq!(req.aods, 2);
        assert_eq!(
            req.source,
            Source::Benchmark {
                family: BenchmarkFamily::Qft,
                qubits: 10,
                seed: DEFAULT_SEED
            }
        );
        assert_eq!(req.config.threads, 1);
        assert!(req.circuit().unwrap().num_qubits() == 10);
    }

    #[test]
    fn parses_qasm_compile_frame() {
        let qasm = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\ncz q[0], q[1];\n";
        let mut circuit = Circuit::new(2);
        circuit
            .cz(
                powermove_circuit::Qubit::new(0),
                powermove_circuit::Qubit::new(1),
            )
            .unwrap();
        let frame = serde_json::to_jsonl_line(&Value::Object(vec![
            ("id".into(), Value::Int(1)),
            ("qasm".into(), Value::String(qasm.into())),
        ]));
        let Request::Compile(req) = Request::parse(&frame).unwrap() else {
            panic!("expected compile");
        };
        assert_eq!(req.circuit().unwrap(), circuit);
    }

    #[test]
    fn config_overrides_apply() {
        let req = Request::parse(
            r#"{"id": 1, "benchmark": {"family": "BV", "qubits": 8},
                "config": {"storage": false, "alpha": 0.5, "grouping": false,
                           "threads": 2, "routing": "lookahead", "lookahead": 3}}"#,
        )
        .unwrap();
        let Request::Compile(req) = req else {
            panic!("expected compile");
        };
        assert!(!req.config.use_storage);
        assert!(!req.config.use_grouping);
        assert_eq!(req.config.alpha, 0.5);
        assert_eq!(req.config.threads, 2);
        assert_eq!(req.config.routing, RoutingConfig::lookahead(3));
    }

    #[test]
    fn malformed_frames_report_errors() {
        assert!(Request::parse("not json").unwrap_err().id.is_none());
        assert!(Request::parse(r#"{"op": "stats"}"#)
            .unwrap_err()
            .id
            .is_none());
        let err = Request::parse(r#"{"id": 9, "op": "launch"}"#).unwrap_err();
        assert_eq!(err.id, Some(9));
        assert!(err.message.contains("unknown op"));
        let err = Request::parse(r#"{"id": 4, "benchmark": {"family": "nope", "qubits": 4}}"#)
            .unwrap_err();
        assert_eq!(err.id, Some(4));
        assert!(err.message.contains("unknown benchmark family"));
        let reply = serde_json::to_string(&err.reply()).unwrap();
        assert!(reply.contains("\"ok\": false") || reply.contains("\"ok\":false"));
    }

    #[test]
    fn stats_and_shutdown_parse() {
        assert_eq!(
            Request::parse(r#"{"id": 5, "op": "stats"}"#).unwrap(),
            Request::Stats { id: 5 }
        );
        assert_eq!(
            Request::parse(r#"{"id": 6, "op": "shutdown"}"#).unwrap(),
            Request::Shutdown { id: 6 }
        );
    }
}
