//! A long-running compile daemon with a content-addressed schedule cache.
//!
//! The PowerMove pipeline is a pure function of its `(circuit,
//! architecture, config)` input triple ([`powermove::compile`]), which
//! makes compile results cacheable and identical concurrent requests
//! coalescible. This crate builds the serving layer on top of that purity:
//!
//! * [`ScheduleCache`]: an LRU cache ([`LruCache`]) of emitted programs
//!   keyed by [`content_hash`](powermove::content_hash), with
//!   hit/miss/eviction counters — a hit is byte-identical to a cold compile
//!   by construction;
//! * a second [`LruCache`] of frozen front-end IRs keyed by
//!   [`stage_hash`](powermove::stage_hash): cold compiles that differ only
//!   in target architecture share one staged IR and replay only the
//!   route/emit back end;
//! * [`CompileService`]: thread-safe compile admission over the cache, with
//!   in-flight coalescing (identical concurrent requests share one
//!   compile) and same-architecture batching onto the `powermove-exec`
//!   pool;
//! * [`protocol`]: the JSONL frame protocol — one request or response
//!   object per line, correlated by `id`;
//! * [`Daemon`]: the serve loop, speaking the protocol over stdin/stdout
//!   or a Unix socket, with a flush-per-frame writer and an optional JSONL
//!   response log.
//!
//! The `powermove-serve` binary wraps [`Daemon`] for the command line; the
//! `powermove_client` example drives it with a concurrent request burst
//! and doubles as the CI smoke test.
//!
//! # Example
//!
//! ```
//! use powermove_exec::Parallelism;
//! use powermove_service::{CompileService, Daemon};
//!
//! let service = CompileService::new(16);
//! let daemon = Daemon::new(&service).with_parallelism(Parallelism::fixed(2));
//! let input = concat!(
//!     r#"{"id": 1, "benchmark": {"family": "QFT", "qubits": 6}}"#,
//!     "\n",
//!     r#"{"id": 2, "op": "shutdown"}"#,
//!     "\n",
//! );
//! let mut output = Vec::new();
//! let report = daemon.serve(input.as_bytes(), &mut output);
//! assert_eq!(report.frames, 2);
//! assert!(report.shutdown);
//! assert_eq!(service.compiles(), 1);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod cache;
mod daemon;
pub mod protocol;
mod service;

pub use cache::{CacheStats, LruCache, ScheduleCache};
pub use daemon::{Daemon, ServeReport};
pub use service::{CacheOutcome, CompileService, ServiceStats};
