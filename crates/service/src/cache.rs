//! The content-addressed LRU cache backing the compile service.

use powermove_schedule::CompiledProgram;
use serde::Serialize;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// A bounded LRU cache of `Arc`-shared values keyed by a 64-bit content
/// hash.
///
/// The service instantiates it twice: as [`ScheduleCache`] for emitted
/// programs (keyed by [`content_hash`](powermove::content_hash) over the
/// full request triple) and for frozen front-end IRs (keyed by
/// [`stage_hash`](powermove::stage_hash) over the architecture-independent
/// `(circuit, config)` pair). Entries are shared as [`Arc`]s, so a hit
/// never clones the value.
///
/// The cache is not internally synchronized;
/// [`CompileService`](crate::CompileService) wraps it in a mutex and adds
/// in-flight coalescing on top.
#[derive(Debug)]
pub struct LruCache<T> {
    capacity: usize,
    entries: HashMap<u64, Arc<T>>,
    /// Recency order: front is least recently used, back most recent.
    recency: VecDeque<u64>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// An LRU cache of emitted programs, keyed by the
/// [`ContentHash`](powermove::ContentHash) of the compile request that
/// produced them.
///
/// Because compilation is a pure function of the request triple, a cached
/// program is byte-identical (in the sense of
/// [`canonical_program_bytes`](powermove_schedule::canonical_program_bytes))
/// to what a cold compile of the same triple would emit — the cache can
/// never serve a stale or divergent schedule.
///
/// # Example
///
/// ```
/// use powermove_service::ScheduleCache;
/// use powermove::{content_hash, CompilerConfig};
/// use powermove_circuit::{Circuit, Qubit};
/// use powermove_hardware::Architecture;
/// use std::sync::Arc;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut circuit = Circuit::new(2);
/// circuit.cz(Qubit::new(0), Qubit::new(1))?;
/// let arch = Architecture::for_qubits(2);
/// let config = CompilerConfig::default();
/// let key = content_hash(&circuit, &arch, &config);
///
/// let mut cache = ScheduleCache::new(8);
/// assert!(cache.get(key.value()).is_none());
/// let program = powermove::compile(&circuit, &arch, &config)?;
/// cache.insert(key.value(), Arc::new(program));
/// assert!(cache.get(key.value()).is_some());
/// assert_eq!(cache.stats().hits, 1);
/// assert_eq!(cache.stats().misses, 1);
/// # Ok(())
/// # }
/// ```
pub type ScheduleCache = LruCache<CompiledProgram>;

/// A point-in-time snapshot of cache effectiveness counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that found no entry.
    pub misses: u64,
    /// Entries discarded to respect the capacity bound.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Maximum number of resident entries.
    pub capacity: usize,
}

impl<T> LruCache<T> {
    /// Creates a cache holding at most `capacity` values.
    ///
    /// A capacity of `0` disables caching: every lookup misses and inserts
    /// are dropped, which keeps the service correct (every request compiles
    /// cold) while storing nothing.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        LruCache {
            capacity,
            entries: HashMap::new(),
            recency: VecDeque::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Looks up a value by content key, marking the entry most recently
    /// used on a hit. Counts a hit or a miss either way.
    pub fn get(&mut self, key: u64) -> Option<Arc<T>> {
        match self.entries.get(&key) {
            Some(value) => {
                self.hits += 1;
                if let Some(pos) = self.recency.iter().position(|k| *k == key) {
                    self.recency.remove(pos);
                }
                self.recency.push_back(key);
                Some(Arc::clone(value))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Checks for a key without touching recency or counters.
    #[must_use]
    pub fn contains(&self, key: u64) -> bool {
        self.entries.contains_key(&key)
    }

    /// Inserts a value under its content key, evicting the least recently
    /// used entries if the cache is over capacity. Re-inserting an existing
    /// key refreshes its recency (the value is identical by construction,
    /// so which copy survives is immaterial).
    pub fn insert(&mut self, key: u64, value: Arc<T>) {
        if self.capacity == 0 {
            return;
        }
        if self.entries.insert(key, value).is_none() {
            self.recency.push_back(key);
        } else if let Some(pos) = self.recency.iter().position(|k| *k == key) {
            self.recency.remove(pos);
            self.recency.push_back(key);
        }
        while self.entries.len() > self.capacity {
            let Some(oldest) = self.recency.pop_front() else {
                break;
            };
            self.entries.remove(&oldest);
            self.evictions += 1;
        }
    }

    /// Number of resident entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The configured capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// A snapshot of the effectiveness counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            entries: self.entries.len(),
            capacity: self.capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powermove::CompilerConfig;
    use powermove_circuit::{Circuit, Qubit};
    use powermove_hardware::Architecture;

    fn program(n: u32) -> Arc<CompiledProgram> {
        let mut circuit = Circuit::new(n);
        circuit.cz(Qubit::new(0), Qubit::new(1)).unwrap();
        Arc::new(
            powermove::compile(
                &circuit,
                &Architecture::for_qubits(n),
                &CompilerConfig::default(),
            )
            .unwrap(),
        )
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut cache = ScheduleCache::new(2);
        let p = program(2);
        cache.insert(1, Arc::clone(&p));
        cache.insert(2, Arc::clone(&p));
        // Touch key 1 so key 2 becomes the eviction victim.
        assert!(cache.get(1).is_some());
        cache.insert(3, Arc::clone(&p));
        assert_eq!(cache.len(), 2);
        assert!(cache.contains(1));
        assert!(!cache.contains(2));
        assert!(cache.contains(3));
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn capacity_is_never_exceeded() {
        let mut cache = ScheduleCache::new(3);
        let p = program(2);
        for key in 0..10_u64 {
            cache.insert(key, Arc::clone(&p));
            assert!(cache.len() <= 3);
        }
        assert_eq!(cache.stats().evictions, 7);
    }

    #[test]
    fn zero_capacity_disables_storage() {
        let mut cache = ScheduleCache::new(0);
        cache.insert(1, program(2));
        assert!(cache.is_empty());
        assert!(cache.get(1).is_none());
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(cache.stats().hits, 0);
    }

    #[test]
    fn reinserting_refreshes_recency_without_growing() {
        let mut cache = ScheduleCache::new(2);
        let p = program(2);
        cache.insert(1, Arc::clone(&p));
        cache.insert(2, Arc::clone(&p));
        cache.insert(1, Arc::clone(&p));
        assert_eq!(cache.len(), 2);
        cache.insert(3, Arc::clone(&p));
        // Key 2 was the least recently used after 1's refresh.
        assert!(cache.contains(1));
        assert!(!cache.contains(2));
    }

    #[test]
    fn cache_is_generic_over_the_stored_value() {
        let mut cache: LruCache<&str> = LruCache::new(2);
        cache.insert(7, Arc::new("staged"));
        assert_eq!(cache.get(7).as_deref(), Some(&"staged"));
        assert!(cache.get(8).is_none());
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 1);
    }
}
