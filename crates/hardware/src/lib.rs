//! Neutral-atom hardware model for the PowerMove compiler.
//!
//! This crate models the aspects of zoned neutral-atom quantum computers
//! (NAQCs) that the compiler must reason about (Sec. 2.1 of the paper):
//!
//! * physical operation fidelities and durations ([`PhysicalParams`],
//!   Table 1 of the paper),
//! * the zoned 2D site geometry — a computation zone and a storage zone
//!   separated by an inter-zone gap ([`ZonedGrid`], [`Zone`], [`SiteId`]),
//! * qubit movement physics and the AOD collective-movement constraints
//!   ([`TrapMove`], [`move_duration`], [`validate_collective_move`]),
//! * the overall machine description handed to compilers
//!   ([`Architecture`]).
//!
//! # Example
//!
//! ```
//! use powermove_hardware::{Architecture, Zone};
//!
//! let arch = Architecture::for_qubits(30);
//! // 30 qubits -> ceil(sqrt(30)) = 6 columns, 6 compute rows, 12 storage rows.
//! assert_eq!(arch.grid().num_compute_sites(), 36);
//! assert_eq!(arch.grid().num_storage_sites(), 72);
//! let (w, h) = arch.grid().zone_size_um(Zone::Compute);
//! assert_eq!((w, h), (90.0, 90.0));
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod arch;
mod error;
mod geometry;
mod movement;
mod params;
mod ring;
mod zones;

pub use arch::Architecture;
pub use error::HardwareError;
pub use geometry::{Point, SiteId};
pub use movement::{
    move_duration, validate_aod_batches, validate_collective_move, AodBatch, AodId, TrapMove,
};
pub use params::PhysicalParams;
pub use ring::RingEnumerator;
pub use zones::{Zone, ZonedGrid};
