//! Expanding-ring enumeration of a zone's sites by distance to an anchor.
//!
//! [`ZonedGrid::ring_sites`] yields every site of one zone in non-decreasing
//! Euclidean distance from an anchor point, ties broken by site index. It is
//! the geometric substrate of the routing layer's pruned free-site search: a
//! consumer that can reject sites cheaply walks the ring outwards and stops
//! as soon as the ring distance alone can no longer beat its best candidate
//! — an A*-style cutoff that never changes which site wins, only how many
//! are examined.
//!
//! The enumerator exploits the grid structure instead of sorting all sites:
//! within one row, distance to the anchor is minimal at the column nearest
//! the anchor's `x` ([`ZonedGrid::nearest_col`]) and non-decreasing stepping
//! away in either direction. Each row therefore contributes two monotone
//! *arms* (left and right of the seed column), and a binary heap over the
//! arms' current heads merges all rows into one globally sorted stream.
//! Memory is `O(rows)`; each `next()` costs `O(log rows)`.

use crate::{Point, SiteId, Zone, ZonedGrid};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Which direction an arm extends from its row's seed column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Arm {
    Left,
    Right,
}

/// One arm head waiting in the frontier heap.
#[derive(Debug, Clone, Copy)]
struct Head {
    dist: f64,
    site: SiteId,
    pos: Point,
    row: u32,
    col: u32,
    arm: Arm,
}

impl PartialEq for Head {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Head {}

impl PartialOrd for Head {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Head {
    // Reversed on purpose: `BinaryHeap` is a max-heap and the enumerator
    // pops the *nearest* head first, ties broken toward the smaller site
    // index (the planner's deterministic total order). `total_cmp` gives a
    // lawful order; distances are never NaN.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .dist
            .total_cmp(&self.dist)
            .then_with(|| other.site.cmp(&self.site))
    }
}

/// Iterator over one zone's sites in non-decreasing distance from an anchor
/// point, ties broken by site index. Created by [`ZonedGrid::ring_sites`];
/// yields `(site, position, distance)` triples.
#[derive(Debug, Clone)]
pub struct RingEnumerator<'g> {
    grid: &'g ZonedGrid,
    zone: Zone,
    anchor: Point,
    heap: BinaryHeap<Head>,
}

impl ZonedGrid {
    /// Enumerates the sites of `zone` in non-decreasing distance from
    /// `anchor`, ties broken by site index.
    ///
    /// # Example
    ///
    /// ```
    /// use powermove_hardware::{Zone, ZonedGrid};
    ///
    /// let grid = ZonedGrid::for_qubits(9);
    /// let anchor = grid.position(grid.site(Zone::Compute, 1, 1).unwrap());
    /// let mut ring = grid.ring_sites(Zone::Compute, anchor);
    /// // The anchor's own site comes first, at distance zero.
    /// let (site, _, dist) = ring.next().unwrap();
    /// assert_eq!(site, grid.site(Zone::Compute, 1, 1).unwrap());
    /// assert_eq!(dist, 0.0);
    /// ```
    #[must_use]
    pub fn ring_sites(&self, zone: Zone, anchor: Point) -> RingEnumerator<'_> {
        let mut ring = RingEnumerator {
            grid: self,
            zone,
            anchor,
            heap: BinaryHeap::new(),
        };
        let seed = self.nearest_col(anchor.x);
        for row in 0..self.rows_in(zone) {
            ring.push(row, seed, Arm::Left);
            if seed + 1 < self.cols() {
                ring.push(row, seed + 1, Arm::Right);
            }
        }
        ring
    }
}

impl RingEnumerator<'_> {
    fn push(&mut self, row: u32, col: u32, arm: Arm) {
        let site = self
            .grid
            .site(self.zone, col, row)
            .expect("arm head is on the grid");
        let pos = self.grid.position(site);
        self.heap.push(Head {
            dist: pos.distance(self.anchor),
            site,
            pos,
            row,
            col,
            arm,
        });
    }

    /// The distance of the nearest not-yet-yielded site, if any.
    ///
    /// Every site yielded later is at least this far from the anchor — the
    /// lower bound a pruned search tests its cutoff against.
    #[must_use]
    pub fn peek_distance(&self) -> Option<f64> {
        self.heap.peek().map(|h| h.dist)
    }
}

impl Iterator for RingEnumerator<'_> {
    type Item = (SiteId, Point, f64);

    fn next(&mut self) -> Option<Self::Item> {
        let head = self.heap.pop()?;
        // Advance the popped head's arm: the successor is farther from the
        // anchor (column distance is monotone along an arm), so the global
        // stream stays sorted.
        match head.arm {
            Arm::Left => {
                if head.col > 0 {
                    self.push(head.row, head.col - 1, Arm::Left);
                }
            }
            Arm::Right => {
                if head.col + 1 < self.grid.cols() {
                    self.push(head.row, head.col + 1, Arm::Right);
                }
            }
        }
        Some((head.site, head.pos, head.dist))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The reference order: sort all sites of the zone by
    /// `(distance, site index)` under the same total order the enumerator
    /// promises.
    fn sorted_reference(grid: &ZonedGrid, zone: Zone, anchor: Point) -> Vec<(SiteId, f64)> {
        let mut sites: Vec<(SiteId, f64)> = grid
            .sites_in(zone)
            .map(|s| (s, grid.position(s).distance(anchor)))
            .collect();
        sites.sort_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
        sites
    }

    fn anchors(grid: &ZonedGrid) -> Vec<Point> {
        let mut anchors: Vec<Point> = grid.all_sites().map(|s| grid.position(s)).collect();
        // Off-grid anchors: beyond every edge and between columns.
        anchors.push(Point::new(-1e-3, 0.0));
        anchors.push(Point::new(1e-3, -1e-3));
        anchors.push(Point::new(22e-6, 7e-6));
        anchors
    }

    #[test]
    fn ring_matches_the_sorted_reference_exactly() {
        for n in [1, 2, 5, 9, 20, 50] {
            let grid = ZonedGrid::for_qubits(n);
            for zone in [Zone::Compute, Zone::Storage] {
                for anchor in anchors(&grid) {
                    let got: Vec<(SiteId, f64)> = grid
                        .ring_sites(zone, anchor)
                        .map(|(s, _, d)| (s, d))
                        .collect();
                    assert_eq!(
                        got,
                        sorted_reference(&grid, zone, anchor),
                        "ring order diverged for n={n} zone={zone} anchor={anchor}"
                    );
                }
            }
        }
    }

    #[test]
    fn ring_positions_and_distances_are_consistent() {
        let grid = ZonedGrid::for_qubits(12);
        let anchor = Point::new(10e-6, -50e-6);
        for (site, pos, dist) in grid.ring_sites(Zone::Storage, anchor) {
            assert_eq!(pos, grid.position(site));
            assert_eq!(dist, pos.distance(anchor));
        }
    }

    #[test]
    fn peek_distance_lower_bounds_every_later_site() {
        let grid = ZonedGrid::for_qubits(30);
        let anchor = grid.position(grid.site(Zone::Compute, 3, 2).unwrap());
        let mut ring = grid.ring_sites(Zone::Compute, anchor);
        while let Some(bound) = ring.peek_distance() {
            let (_, _, dist) = ring.next().unwrap();
            assert_eq!(dist, bound);
            if let Some(next_bound) = ring.peek_distance() {
                assert!(next_bound >= bound);
            }
        }
        assert!(ring.next().is_none());
    }

    #[test]
    fn empty_storage_zone_yields_nothing() {
        let grid = ZonedGrid::with_dims(3, 3, 0).unwrap();
        assert_eq!(
            grid.ring_sites(Zone::Storage, Point::new(0.0, 0.0)).count(),
            0
        );
    }
}
