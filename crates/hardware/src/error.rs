//! Error types for the hardware model.

use crate::SiteId;
use powermove_circuit::Qubit;
use std::error::Error;
use std::fmt;

/// Errors produced by the hardware model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HardwareError {
    /// A grid was requested with zero columns or zero compute rows.
    InvalidDimensions {
        /// Requested number of columns.
        cols: u32,
        /// Requested number of compute rows.
        compute_rows: u32,
        /// Requested number of storage rows.
        storage_rows: u32,
    },
    /// A site identifier does not belong to the grid.
    SiteOutOfRange {
        /// The offending site.
        site: SiteId,
        /// Number of sites in the grid.
        num_sites: usize,
    },
    /// Two moves of the same collective move violate the AOD order
    /// constraint.
    ConflictingMoves {
        /// Qubit of the first conflicting move.
        first: Qubit,
        /// Qubit of the second conflicting move.
        second: Qubit,
    },
    /// The same qubit appears twice in one collective move.
    DuplicateMovedQubit {
        /// The repeated qubit.
        qubit: Qubit,
    },
    /// The machine does not have enough sites to host the circuit.
    InsufficientCapacity {
        /// Number of qubits requested.
        qubits: u32,
        /// Number of available sites.
        sites: usize,
    },
    /// An architecture was requested with zero AOD arrays.
    InvalidAodCount {
        /// The requested number of AOD arrays.
        requested: usize,
    },
    /// Two collective-move batches of one parallel window claim the same
    /// AOD array.
    DuplicateAodAssignment {
        /// The doubly-assigned AOD.
        aod: crate::AodId,
    },
}

impl fmt::Display for HardwareError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HardwareError::InvalidDimensions {
                cols,
                compute_rows,
                storage_rows,
            } => write!(
                f,
                "invalid grid dimensions: {cols} cols, {compute_rows} compute rows, {storage_rows} storage rows"
            ),
            HardwareError::SiteOutOfRange { site, num_sites } => {
                write!(f, "site {site} out of range for grid of {num_sites} sites")
            }
            HardwareError::ConflictingMoves { first, second } => write!(
                f,
                "moves of {first} and {second} violate the AOD order constraint"
            ),
            HardwareError::DuplicateMovedQubit { qubit } => {
                write!(f, "qubit {qubit} appears twice in one collective move")
            }
            HardwareError::InsufficientCapacity { qubits, sites } => write!(
                f,
                "machine has {sites} sites but the circuit needs {qubits} qubits"
            ),
            HardwareError::InvalidAodCount { requested } => write!(
                f,
                "an architecture needs at least one AOD array (requested {requested})"
            ),
            HardwareError::DuplicateAodAssignment { aod } => {
                write!(f, "AOD array {aod} is assigned two overlapping batches")
            }
        }
    }
}

impl Error for HardwareError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = HardwareError::ConflictingMoves {
            first: Qubit::new(1),
            second: Qubit::new(2),
        };
        assert!(e.to_string().contains("q1"));
        assert!(e.to_string().contains("q2"));

        let e = HardwareError::SiteOutOfRange {
            site: SiteId::new(99),
            num_sites: 10,
        };
        assert!(e.to_string().contains("s99"));
    }

    #[test]
    fn implements_error_trait() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<HardwareError>();
    }
}
