//! Zoned site grid: computation zone, inter-zone gap and storage zone.

use crate::{HardwareError, Point, SiteId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The zone a site belongs to.
///
/// The zoned architecture (Sec. 2.1) separates a **computation zone**, where
/// the global Rydberg laser acts and CZ gates are executed, from a **storage
/// zone**, where qubits are unaffected by Rydberg excitation and suffer
/// negligible decoherence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Zone {
    /// Computation zone: Rydberg excitation acts here.
    Compute,
    /// Storage zone: protected from excitation and decoherence.
    Storage,
}

impl fmt::Display for Zone {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Zone::Compute => write!(f, "compute"),
            Zone::Storage => write!(f, "storage"),
        }
    }
}

/// The zoned 2D grid of trap sites.
///
/// The grid has `cols` columns shared by both zones. The computation zone has
/// `compute_rows` rows located at `y >= 0` (row 0 at `y = 0`, rows increasing
/// upwards); the storage zone has `storage_rows` rows located below the
/// inter-zone gap (storage row 0 at `y = -zone_gap`, rows decreasing
/// downwards). Adjacent sites are separated by `site_spacing`.
///
/// The default configuration of the paper (Sec. 7.1) for an `n`-qubit program
/// is `ceil(sqrt(n))` columns, `ceil(sqrt(n))` compute rows and
/// `2 * ceil(sqrt(n))` storage rows; see [`ZonedGrid::for_qubits`].
///
/// # Example
///
/// ```
/// use powermove_hardware::{Zone, ZonedGrid};
///
/// let grid = ZonedGrid::for_qubits(30);
/// assert_eq!(grid.cols(), 6);
/// assert_eq!(grid.compute_rows(), 6);
/// assert_eq!(grid.storage_rows(), 12);
/// let site = grid.site(Zone::Storage, 2, 1).unwrap();
/// assert_eq!(grid.zone_of(site), Zone::Storage);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ZonedGrid {
    cols: u32,
    compute_rows: u32,
    storage_rows: u32,
    site_spacing: f64,
    zone_gap: f64,
}

impl ZonedGrid {
    /// Builds the paper's default grid for an `n`-qubit program:
    /// `ceil(sqrt(n))` columns, `ceil(sqrt(n))` compute rows,
    /// `2*ceil(sqrt(n))` storage rows, 15 µm spacing and a 30 µm gap.
    ///
    /// # Panics
    ///
    /// Panics if `num_qubits` is zero.
    #[must_use]
    pub fn for_qubits(num_qubits: u32) -> Self {
        assert!(num_qubits > 0, "grid requires at least one qubit");
        let side = (f64::from(num_qubits)).sqrt().ceil() as u32;
        ZonedGrid {
            cols: side,
            compute_rows: side,
            storage_rows: 2 * side,
            site_spacing: 15e-6,
            zone_gap: 30e-6,
        }
    }

    /// Builds a grid with explicit dimensions and the default 15 µm / 30 µm
    /// spacing.
    ///
    /// # Errors
    ///
    /// Returns [`HardwareError::InvalidDimensions`] if `cols` or
    /// `compute_rows` is zero.
    pub fn with_dims(
        cols: u32,
        compute_rows: u32,
        storage_rows: u32,
    ) -> Result<Self, HardwareError> {
        if cols == 0 || compute_rows == 0 {
            return Err(HardwareError::InvalidDimensions {
                cols,
                compute_rows,
                storage_rows,
            });
        }
        Ok(ZonedGrid {
            cols,
            compute_rows,
            storage_rows,
            site_spacing: 15e-6,
            zone_gap: 30e-6,
        })
    }

    /// Overrides the site spacing (meters).
    #[must_use]
    pub fn with_site_spacing(mut self, spacing: f64) -> Self {
        self.site_spacing = spacing;
        self
    }

    /// Overrides the inter-zone gap (meters).
    #[must_use]
    pub fn with_zone_gap(mut self, gap: f64) -> Self {
        self.zone_gap = gap;
        self
    }

    /// Number of columns (shared by both zones).
    #[must_use]
    pub const fn cols(&self) -> u32 {
        self.cols
    }

    /// Number of rows in the computation zone.
    #[must_use]
    pub const fn compute_rows(&self) -> u32 {
        self.compute_rows
    }

    /// Number of rows in the storage zone.
    #[must_use]
    pub const fn storage_rows(&self) -> u32 {
        self.storage_rows
    }

    /// Number of rows in the given zone.
    #[must_use]
    pub const fn rows_in(&self, zone: Zone) -> u32 {
        match zone {
            Zone::Compute => self.compute_rows,
            Zone::Storage => self.storage_rows,
        }
    }

    /// The column whose `x` coordinate is nearest to `x`, clamped to the
    /// grid.
    ///
    /// Within any single row, distance to a fixed point is non-decreasing
    /// as columns step away from this one in either direction — the seed of
    /// the expanding-ring enumeration ([`ZonedGrid::ring_sites`]).
    #[must_use]
    pub fn nearest_col(&self, x: f64) -> u32 {
        let c = (x / self.site_spacing).round();
        if c <= 0.0 {
            0
        } else if c >= f64::from(self.cols - 1) {
            self.cols - 1
        } else {
            c as u32
        }
    }

    /// Site spacing in meters.
    #[must_use]
    pub const fn site_spacing(&self) -> f64 {
        self.site_spacing
    }

    /// Inter-zone gap in meters.
    #[must_use]
    pub const fn zone_gap(&self) -> f64 {
        self.zone_gap
    }

    /// Number of sites in the computation zone.
    #[must_use]
    pub fn num_compute_sites(&self) -> usize {
        (self.cols * self.compute_rows) as usize
    }

    /// Number of sites in the storage zone.
    #[must_use]
    pub fn num_storage_sites(&self) -> usize {
        (self.cols * self.storage_rows) as usize
    }

    /// Total number of sites.
    #[must_use]
    pub fn num_sites(&self) -> usize {
        self.num_compute_sites() + self.num_storage_sites()
    }

    /// The site at `(col, row)` within the given zone, if it exists.
    ///
    /// Rows are counted from the zone boundary outwards: compute row 0 is the
    /// compute row closest to the storage zone, storage row 0 is the storage
    /// row closest to the compute zone.
    #[must_use]
    pub fn site(&self, zone: Zone, col: u32, row: u32) -> Option<SiteId> {
        if col >= self.cols {
            return None;
        }
        match zone {
            Zone::Compute => {
                if row >= self.compute_rows {
                    None
                } else {
                    Some(SiteId::new((row * self.cols + col) as usize))
                }
            }
            Zone::Storage => {
                if row >= self.storage_rows {
                    None
                } else {
                    Some(SiteId::new(
                        self.num_compute_sites() + (row * self.cols + col) as usize,
                    ))
                }
            }
        }
    }

    /// Returns `true` if `site` is a valid site of this grid.
    #[must_use]
    pub fn contains(&self, site: SiteId) -> bool {
        site.index() < self.num_sites()
    }

    /// The zone a site belongs to.
    ///
    /// # Panics
    ///
    /// Panics if the site does not belong to this grid.
    #[must_use]
    pub fn zone_of(&self, site: SiteId) -> Zone {
        assert!(self.contains(site), "site {site} out of range");
        if site.index() < self.num_compute_sites() {
            Zone::Compute
        } else {
            Zone::Storage
        }
    }

    /// The `(col, row)` coordinates of a site within its zone.
    ///
    /// # Panics
    ///
    /// Panics if the site does not belong to this grid.
    #[must_use]
    pub fn col_row(&self, site: SiteId) -> (u32, u32) {
        assert!(self.contains(site), "site {site} out of range");
        let idx = if site.index() < self.num_compute_sites() {
            site.index()
        } else {
            site.index() - self.num_compute_sites()
        } as u32;
        (idx % self.cols, idx / self.cols)
    }

    /// The physical position of a site.
    ///
    /// # Panics
    ///
    /// Panics if the site does not belong to this grid.
    #[must_use]
    pub fn position(&self, site: SiteId) -> Point {
        let (col, row) = self.col_row(site);
        let x = f64::from(col) * self.site_spacing;
        match self.zone_of(site) {
            Zone::Compute => Point::new(x, f64::from(row) * self.site_spacing),
            Zone::Storage => Point::new(x, -self.zone_gap - f64::from(row) * self.site_spacing),
        }
    }

    /// Euclidean distance between two sites, in meters.
    ///
    /// # Panics
    ///
    /// Panics if either site does not belong to this grid.
    #[must_use]
    pub fn distance(&self, a: SiteId, b: SiteId) -> f64 {
        self.position(a).distance(self.position(b))
    }

    /// Iterates over the sites of a zone in index order.
    pub fn sites_in(&self, zone: Zone) -> impl Iterator<Item = SiteId> + '_ {
        let (start, end) = match zone {
            Zone::Compute => (0, self.num_compute_sites()),
            Zone::Storage => (self.num_compute_sites(), self.num_sites()),
        };
        (start..end).map(SiteId::new)
    }

    /// Iterates over all sites.
    pub fn all_sites(&self) -> impl Iterator<Item = SiteId> + '_ {
        (0..self.num_sites()).map(SiteId::new)
    }

    /// Width and height of a zone in micrometers, as reported in Table 2 of
    /// the paper (`15·cols x 15·rows` for compute/storage).
    #[must_use]
    pub fn zone_size_um(&self, zone: Zone) -> (f64, f64) {
        let w = f64::from(self.cols) * self.site_spacing * 1e6;
        match zone {
            Zone::Compute => (w, f64::from(self.compute_rows) * self.site_spacing * 1e6),
            Zone::Storage => (w, f64::from(self.storage_rows) * self.site_spacing * 1e6),
        }
    }

    /// Width and height of the inter-zone region in micrometers
    /// (`15·cols x zone_gap`).
    #[must_use]
    pub fn inter_zone_size_um(&self) -> (f64, f64) {
        (
            f64::from(self.cols) * self.site_spacing * 1e6,
            self.zone_gap * 1e6,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_dimensions_follow_paper_rule() {
        let g = ZonedGrid::for_qubits(50);
        // ceil(sqrt(50)) = 8
        assert_eq!(g.cols(), 8);
        assert_eq!(g.compute_rows(), 8);
        assert_eq!(g.storage_rows(), 16);
        assert_eq!(g.num_compute_sites(), 64);
        assert_eq!(g.num_storage_sites(), 128);
        assert_eq!(g.num_sites(), 192);
    }

    #[test]
    fn zone_sizes_match_table_2() {
        // Table 2: 30-qubit entries use 90x90 compute, 90x30 inter, 90x180 storage.
        let g = ZonedGrid::for_qubits(30);
        assert_eq!(g.zone_size_um(Zone::Compute), (90.0, 90.0));
        assert_eq!(g.inter_zone_size_um(), (90.0, 30.0));
        assert_eq!(g.zone_size_um(Zone::Storage), (90.0, 180.0));
    }

    #[test]
    fn site_indexing_round_trips() {
        let g = ZonedGrid::for_qubits(20); // 5x5 compute, 5x10 storage
        for zone in [Zone::Compute, Zone::Storage] {
            let rows = match zone {
                Zone::Compute => g.compute_rows(),
                Zone::Storage => g.storage_rows(),
            };
            for row in 0..rows {
                for col in 0..g.cols() {
                    let site = g.site(zone, col, row).unwrap();
                    assert_eq!(g.zone_of(site), zone);
                    assert_eq!(g.col_row(site), (col, row));
                }
            }
        }
    }

    #[test]
    fn out_of_range_site_is_none() {
        let g = ZonedGrid::for_qubits(10); // 4 cols
        assert!(g.site(Zone::Compute, 4, 0).is_none());
        assert!(g.site(Zone::Compute, 0, 4).is_none());
        assert!(g.site(Zone::Storage, 0, 8).is_none());
    }

    #[test]
    fn positions_respect_spacing_and_gap() {
        let g = ZonedGrid::for_qubits(9); // 3x3 compute, 3x6 storage
        let c00 = g.position(g.site(Zone::Compute, 0, 0).unwrap());
        let c10 = g.position(g.site(Zone::Compute, 1, 0).unwrap());
        let c01 = g.position(g.site(Zone::Compute, 0, 1).unwrap());
        let s00 = g.position(g.site(Zone::Storage, 0, 0).unwrap());
        let s01 = g.position(g.site(Zone::Storage, 0, 1).unwrap());
        assert!((c10.x - c00.x - 15e-6).abs() < 1e-12);
        assert!((c01.y - c00.y - 15e-6).abs() < 1e-12);
        // Storage row 0 sits exactly one zone gap below compute row 0.
        assert!((c00.y - s00.y - 30e-6).abs() < 1e-12);
        // Storage rows grow downwards.
        assert!(s01.y < s00.y);
    }

    #[test]
    fn distance_between_adjacent_compute_sites() {
        let g = ZonedGrid::for_qubits(16);
        let a = g.site(Zone::Compute, 0, 0).unwrap();
        let b = g.site(Zone::Compute, 1, 0).unwrap();
        assert!((g.distance(a, b) - 15e-6).abs() < 1e-12);
    }

    #[test]
    fn sites_in_zone_counts() {
        let g = ZonedGrid::for_qubits(12); // 4 cols: 16 compute, 32 storage
        assert_eq!(g.sites_in(Zone::Compute).count(), g.num_compute_sites());
        assert_eq!(g.sites_in(Zone::Storage).count(), g.num_storage_sites());
        assert_eq!(g.all_sites().count(), g.num_sites());
        assert!(g
            .sites_in(Zone::Storage)
            .all(|s| g.zone_of(s) == Zone::Storage));
    }

    #[test]
    fn with_dims_validates() {
        assert!(ZonedGrid::with_dims(0, 3, 3).is_err());
        assert!(ZonedGrid::with_dims(3, 0, 3).is_err());
        let g = ZonedGrid::with_dims(3, 3, 0).unwrap();
        assert_eq!(g.num_storage_sites(), 0);
    }

    #[test]
    fn builder_overrides() {
        let g = ZonedGrid::for_qubits(4)
            .with_site_spacing(10e-6)
            .with_zone_gap(40e-6);
        assert_eq!(g.site_spacing(), 10e-6);
        assert_eq!(g.zone_gap(), 40e-6);
        let c = g.position(g.site(Zone::Compute, 0, 0).unwrap());
        let s = g.position(g.site(Zone::Storage, 0, 0).unwrap());
        assert!((c.y - s.y - 40e-6).abs() < 1e-12);
    }

    #[test]
    fn rows_in_matches_the_per_zone_accessors() {
        let g = ZonedGrid::for_qubits(20);
        assert_eq!(g.rows_in(Zone::Compute), g.compute_rows());
        assert_eq!(g.rows_in(Zone::Storage), g.storage_rows());
    }

    #[test]
    fn nearest_col_rounds_and_clamps() {
        let g = ZonedGrid::for_qubits(16); // 4 cols, 15 µm spacing
        assert_eq!(g.nearest_col(0.0), 0);
        assert_eq!(g.nearest_col(15e-6), 1);
        assert_eq!(g.nearest_col(22e-6), 1); // 22/15 rounds down
        assert_eq!(g.nearest_col(23e-6), 2); // 23/15 rounds up
        assert_eq!(g.nearest_col(-40e-6), 0); // clamped left
        assert_eq!(g.nearest_col(1.0), 3); // clamped right
    }

    #[test]
    fn zone_display() {
        assert_eq!(Zone::Compute.to_string(), "compute");
        assert_eq!(Zone::Storage.to_string(), "storage");
    }
}
