//! Physical operation parameters (Table 1 of the paper).

use serde::{Deserialize, Serialize};

/// Fidelities and durations of the elementary neutral-atom operations,
/// together with the geometric constants of the zoned architecture.
///
/// All durations are in **seconds**, distances in **meters** and
/// accelerations in **m/s²**. Defaults reproduce Table 1 of the paper plus
/// the geometric constants quoted in Sec. 2.1 and Sec. 5.1.
///
/// # Example
///
/// ```
/// use powermove_hardware::PhysicalParams;
///
/// let p = PhysicalParams::default();
/// assert_eq!(p.cz_fidelity, 0.995);
/// assert_eq!(p.site_spacing, 15e-6);
/// // 27.5 um at the maximum acceleration takes 100 us.
/// let t = (27.5e-6_f64 / p.max_acceleration).sqrt();
/// assert!((t - 100e-6).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhysicalParams {
    /// Fidelity of a single-qubit (Raman) gate. Paper: 99.99 %.
    pub one_qubit_fidelity: f64,
    /// Fidelity of a CZ gate. Paper: 99.5 %.
    pub cz_fidelity: f64,
    /// Fidelity retained by a *non-interacting* qubit exposed to a Rydberg
    /// excitation in the computation zone. Paper: 99.75 %.
    pub excitation_fidelity: f64,
    /// Fidelity of one SLM <-> AOD trap transfer. Paper: 99.9 %.
    pub transfer_fidelity: f64,
    /// Duration of a single-qubit gate. Paper: 1 µs.
    pub one_qubit_duration: f64,
    /// Duration of a CZ gate / global Rydberg excitation. Paper: 270 ns.
    pub cz_duration: f64,
    /// Duration of one SLM <-> AOD trap transfer. Paper: 15 µs.
    pub transfer_duration: f64,
    /// Qubit coherence time T2. Paper: 1.5 s.
    pub coherence_time: f64,
    /// Maximum movement acceleration preserving fidelity. Paper: 2750 m/s².
    pub max_acceleration: f64,
    /// Spacing between adjacent qubit sites. Paper: 15 µm.
    pub site_spacing: f64,
    /// Spatial separation between the computation and storage zones.
    /// Paper: 30 µm.
    pub zone_gap: f64,
    /// Rydberg blockade radius within which a CZ interaction occurs.
    /// Paper: ~6 µm.
    pub rydberg_radius: f64,
    /// Minimum spacing required between non-interacting qubits during a
    /// Rydberg excitation to avoid unwanted interactions. Paper: 10 µm.
    pub min_separation: f64,
}

impl Default for PhysicalParams {
    fn default() -> Self {
        PhysicalParams {
            one_qubit_fidelity: 0.9999,
            cz_fidelity: 0.995,
            excitation_fidelity: 0.9975,
            transfer_fidelity: 0.999,
            one_qubit_duration: 1e-6,
            cz_duration: 270e-9,
            transfer_duration: 15e-6,
            coherence_time: 1.5,
            max_acceleration: 2750.0,
            site_spacing: 15e-6,
            zone_gap: 30e-6,
            rydberg_radius: 6e-6,
            min_separation: 10e-6,
        }
    }
}

impl PhysicalParams {
    /// Creates the default parameter set of Table 1.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns `true` if every fidelity lies in `(0, 1]`, every duration and
    /// distance is positive, and the coherence time is positive.
    #[must_use]
    pub fn is_valid(&self) -> bool {
        let fidelities = [
            self.one_qubit_fidelity,
            self.cz_fidelity,
            self.excitation_fidelity,
            self.transfer_fidelity,
        ];
        let positives = [
            self.one_qubit_duration,
            self.cz_duration,
            self.transfer_duration,
            self.coherence_time,
            self.max_acceleration,
            self.site_spacing,
            self.zone_gap,
            self.rydberg_radius,
            self.min_separation,
        ];
        fidelities.iter().all(|f| *f > 0.0 && *f <= 1.0)
            && positives.iter().all(|d| *d > 0.0 && d.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_1() {
        let p = PhysicalParams::default();
        assert_eq!(p.one_qubit_fidelity, 0.9999);
        assert_eq!(p.cz_fidelity, 0.995);
        assert_eq!(p.excitation_fidelity, 0.9975);
        assert_eq!(p.transfer_fidelity, 0.999);
        assert_eq!(p.one_qubit_duration, 1e-6);
        assert_eq!(p.cz_duration, 270e-9);
        assert_eq!(p.transfer_duration, 15e-6);
        assert_eq!(p.coherence_time, 1.5);
        assert_eq!(p.max_acceleration, 2750.0);
    }

    #[test]
    fn geometric_constants_match_paper() {
        let p = PhysicalParams::default();
        assert_eq!(p.site_spacing, 15e-6);
        assert_eq!(p.zone_gap, 30e-6);
        assert_eq!(p.rydberg_radius, 6e-6);
        assert_eq!(p.min_separation, 10e-6);
    }

    #[test]
    fn default_is_valid() {
        assert!(PhysicalParams::default().is_valid());
    }

    #[test]
    fn invalid_fidelity_detected() {
        let mut p = PhysicalParams {
            cz_fidelity: 1.2,
            ..PhysicalParams::default()
        };
        assert!(!p.is_valid());
        p.cz_fidelity = 0.0;
        assert!(!p.is_valid());
    }

    #[test]
    fn invalid_duration_detected() {
        let mut p = PhysicalParams {
            transfer_duration: -1.0,
            ..PhysicalParams::default()
        };
        assert!(!p.is_valid());
        p.transfer_duration = f64::NAN;
        assert!(!p.is_valid());
    }

    #[test]
    fn movement_duration_examples_from_paper() {
        // The paper quotes 100 us for 27.5 um and 200 us for 110 um.
        let p = PhysicalParams::default();
        let t1 = (27.5e-6_f64 / p.max_acceleration).sqrt();
        let t2 = (110e-6_f64 / p.max_acceleration).sqrt();
        assert!((t1 - 100e-6).abs() < 1e-9);
        assert!((t2 - 200e-6).abs() < 1e-9);
    }
}
