//! The machine description handed to compilers.

use crate::{HardwareError, PhysicalParams, ZonedGrid};
use serde::{Deserialize, Serialize};

/// A complete neutral-atom machine description: zoned site grid, physical
/// parameters and number of independently-operating AOD arrays.
///
/// # Example
///
/// ```
/// use powermove_hardware::Architecture;
///
/// let arch = Architecture::for_qubits(40).with_num_aods(2);
/// assert_eq!(arch.num_aods(), 2);
/// assert!(arch.grid().num_compute_sites() >= 40);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Architecture {
    grid: ZonedGrid,
    params: PhysicalParams,
    num_aods: usize,
}

impl Architecture {
    /// Builds the paper's default architecture for an `n`-qubit program
    /// (Sec. 7.1): `ceil(sqrt(n))` grid, default physical parameters and a
    /// single AOD array.
    ///
    /// # Panics
    ///
    /// Panics if `num_qubits` is zero.
    #[must_use]
    pub fn for_qubits(num_qubits: u32) -> Self {
        Architecture {
            grid: ZonedGrid::for_qubits(num_qubits),
            params: PhysicalParams::default(),
            num_aods: 1,
        }
    }

    /// Builds an architecture from explicit parts.
    ///
    /// A zero AOD count is clamped to 1 (with a debug assertion); use
    /// [`Architecture::try_with_num_aods`] to surface the error instead.
    #[must_use]
    pub fn new(grid: ZonedGrid, params: PhysicalParams, num_aods: usize) -> Self {
        debug_assert!(num_aods >= 1, "an architecture needs at least one AOD");
        Architecture {
            grid,
            params,
            num_aods: num_aods.max(1),
        }
    }

    /// Replaces the number of AOD arrays.
    ///
    /// A machine without a single AOD array cannot move qubits at all, so a
    /// zero count is a configuration bug: it trips a debug assertion, and in
    /// release builds it is clamped to 1 (the clamp is documented behaviour,
    /// not silent — the resolved count is surfaced through
    /// `CompileMetadata::num_aods` in every bench report). Use
    /// [`Architecture::try_with_num_aods`] where the count comes from
    /// untrusted input.
    #[must_use]
    pub fn with_num_aods(mut self, num_aods: usize) -> Self {
        debug_assert!(num_aods >= 1, "an architecture needs at least one AOD");
        self.num_aods = num_aods.max(1);
        self
    }

    /// Fallible variant of [`Architecture::with_num_aods`].
    ///
    /// # Errors
    ///
    /// Returns [`HardwareError::InvalidAodCount`] when `num_aods` is zero.
    pub fn try_with_num_aods(mut self, num_aods: usize) -> Result<Self, HardwareError> {
        if num_aods == 0 {
            return Err(HardwareError::InvalidAodCount { requested: 0 });
        }
        self.num_aods = num_aods;
        Ok(self)
    }

    /// Replaces the physical parameters.
    #[must_use]
    pub fn with_params(mut self, params: PhysicalParams) -> Self {
        self.params = params;
        self
    }

    /// Replaces the site grid.
    #[must_use]
    pub fn with_grid(mut self, grid: ZonedGrid) -> Self {
        self.grid = grid;
        self
    }

    /// The zoned site grid.
    #[must_use]
    pub fn grid(&self) -> &ZonedGrid {
        &self.grid
    }

    /// The physical parameters.
    #[must_use]
    pub fn params(&self) -> &PhysicalParams {
        &self.params
    }

    /// Number of independently-operating AOD arrays.
    #[must_use]
    pub const fn num_aods(&self) -> usize {
        self.num_aods
    }

    /// Checks that the machine can host a circuit of the given width.
    ///
    /// The computation zone alone must be able to hold every qubit (the
    /// non-storage compilation mode keeps all qubits there), and the storage
    /// zone must be able to hold every qubit for the with-storage initial
    /// layout.
    ///
    /// # Errors
    ///
    /// Returns [`HardwareError::InsufficientCapacity`] if either zone is too
    /// small.
    pub fn check_capacity(&self, num_qubits: u32) -> Result<(), HardwareError> {
        let needed = num_qubits as usize;
        if self.grid.num_compute_sites() < needed {
            return Err(HardwareError::InsufficientCapacity {
                qubits: num_qubits,
                sites: self.grid.num_compute_sites(),
            });
        }
        if self.grid.num_storage_sites() > 0 && self.grid.num_storage_sites() < needed {
            return Err(HardwareError::InsufficientCapacity {
                qubits: num_qubits,
                sites: self.grid.num_storage_sites(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Zone;

    #[test]
    fn default_architecture_has_one_aod() {
        let a = Architecture::for_qubits(10);
        assert_eq!(a.num_aods(), 1);
        assert!(a.params().is_valid());
    }

    #[test]
    fn zero_aods_is_a_validation_error() {
        let err = Architecture::for_qubits(10)
            .try_with_num_aods(0)
            .unwrap_err();
        assert!(matches!(
            err,
            HardwareError::InvalidAodCount { requested: 0 }
        ));
        let a = Architecture::for_qubits(10).try_with_num_aods(4).unwrap();
        assert_eq!(a.num_aods(), 4);
        assert_eq!(Architecture::for_qubits(10).with_num_aods(4).num_aods(), 4);
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "at least one AOD"))]
    fn zero_aods_trips_the_debug_assertion_or_clamps() {
        // Debug builds assert; release builds clamp to one (documented).
        let a = Architecture::for_qubits(10).with_num_aods(0);
        assert_eq!(a.num_aods(), 1);
    }

    #[test]
    fn capacity_check_passes_for_default_grid() {
        for n in [1_u32, 10, 30, 100] {
            let a = Architecture::for_qubits(n);
            assert!(a.check_capacity(n).is_ok());
        }
    }

    #[test]
    fn capacity_check_fails_for_tiny_grid() {
        let grid = ZonedGrid::with_dims(2, 2, 4).unwrap();
        let a = Architecture::new(grid, PhysicalParams::default(), 1);
        assert!(a.check_capacity(10).is_err());
    }

    #[test]
    fn builder_replaces_parts() {
        let grid = ZonedGrid::with_dims(3, 3, 6).unwrap();
        let params = PhysicalParams {
            cz_fidelity: 0.99,
            ..PhysicalParams::default()
        };
        let a = Architecture::for_qubits(9)
            .with_grid(grid.clone())
            .with_params(params);
        assert_eq!(a.grid(), &grid);
        assert_eq!(a.params().cz_fidelity, 0.99);
        assert_eq!(a.grid().zone_size_um(Zone::Compute), (45.0, 45.0));
    }
}
