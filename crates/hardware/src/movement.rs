//! Qubit movement physics and AOD collective-movement constraints.
//!
//! Qubits are moved by transferring them from static SLM traps into a mobile
//! AOD lattice, translating the lattice, and dropping them back into SLM
//! traps (Sec. 2.1). All moves executed by one AOD in a single collective
//! move must preserve the relative order of rows and columns: the lattice can
//! stretch and contract but rows/columns cannot cross or merge (Fig. 2(c) and
//! Fig. 5 of the paper).

use crate::{HardwareError, Point};
use powermove_circuit::Qubit;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// Identifier of an AOD array.
///
/// NAQC hardware may drive several independently-operating AOD arrays;
/// conflicting moves can be executed in parallel if they are assigned to
/// different arrays (Sec. 6.2).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct AodId(usize);

impl AodId {
    /// Creates an AOD identifier.
    #[must_use]
    pub const fn new(index: usize) -> Self {
        AodId(index)
    }

    /// The dense index of the AOD array.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for AodId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "aod{}", self.0)
    }
}

/// Duration of an AOD translation over `distance` meters at the maximum
/// allowed acceleration, in seconds.
///
/// The time model `t = sqrt(d / a_max)` reproduces the examples quoted in
/// Table 1 of the paper: 100 µs for 27.5 µm and 200 µs for 110 µm at
/// `a_max = 2750 m/s²`.
///
/// # Example
///
/// ```
/// use powermove_hardware::move_duration;
///
/// let t = move_duration(27.5e-6, 2750.0);
/// assert!((t - 100e-6).abs() < 1e-9);
/// ```
#[must_use]
pub fn move_duration(distance: f64, max_acceleration: f64) -> f64 {
    if distance <= 0.0 {
        return 0.0;
    }
    (distance / max_acceleration).sqrt()
}

/// A single-qubit movement between two physical positions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrapMove {
    /// The qubit being moved.
    pub qubit: Qubit,
    /// Start position.
    pub from: Point,
    /// End position.
    pub to: Point,
}

impl TrapMove {
    /// Creates a movement of `qubit` from `from` to `to`.
    #[must_use]
    pub const fn new(qubit: Qubit, from: Point, to: Point) -> Self {
        TrapMove { qubit, from, to }
    }

    /// Euclidean length of the movement, in meters.
    #[must_use]
    pub fn distance(&self) -> f64 {
        self.from.distance(self.to)
    }

    /// Duration of the movement at the given maximum acceleration.
    #[must_use]
    pub fn duration(&self, max_acceleration: f64) -> f64 {
        move_duration(self.distance(), max_acceleration)
    }

    /// Returns `true` if the movement ends at a lower `y` than it starts
    /// (i.e. heads towards the storage zone in the default layout).
    #[must_use]
    pub fn heads_down(&self) -> bool {
        self.to.y < self.from.y
    }

    /// Returns `true` if this move and `other` cannot be executed within the
    /// same AOD collective move.
    ///
    /// Following the conflict definition of Sec. 5.3 of the paper, two moves
    /// conflict on a coordinate when their order *reverses*: `x1_start <=
    /// x2_start` but `x1_end > x2_end`, or `x1_start >= x2_start` but
    /// `x1_end < x2_end` (and likewise for `y`). Moves whose coordinates
    /// become equal at the destination do not conflict — two qubits brought
    /// to the same interaction site are dropped into static traps a few
    /// micrometres apart, so their AOD rows/columns never coincide.
    #[must_use]
    pub fn conflicts_with(&self, other: &TrapMove) -> bool {
        fn reversed(s1: f64, s2: f64, e1: f64, e2: f64) -> bool {
            (matches!(s1.partial_cmp(&s2), Some(Ordering::Less | Ordering::Equal)) && e1 > e2)
                || (matches!(
                    s1.partial_cmp(&s2),
                    Some(Ordering::Greater | Ordering::Equal)
                ) && e1 < e2)
        }
        let x_conflict = reversed(self.from.x, other.from.x, self.to.x, other.to.x);
        let y_conflict = reversed(self.from.y, other.from.y, self.to.y, other.to.y);
        x_conflict || y_conflict
    }
}

impl fmt::Display for TrapMove {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {} -> {}", self.qubit, self.from, self.to)
    }
}

/// A batch of single-qubit movements owned by one AOD array.
///
/// Batches are the unit the multi-AOD scheduler partitions a stage's
/// [`TrapMove`] set into: every batch is internally conflict-free (the AOD
/// order constraint), and batches assigned to *distinct* AODs may execute in
/// the same parallel window even when their moves would conflict within a
/// single lattice (Sec. 6.2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AodBatch {
    /// The AOD array that executes this batch.
    pub aod: AodId,
    /// The constituent single-qubit movements.
    pub moves: Vec<TrapMove>,
}

impl AodBatch {
    /// Creates a batch owned by `aod`.
    #[must_use]
    pub fn new(aod: AodId, moves: Vec<TrapMove>) -> Self {
        AodBatch { aod, moves }
    }

    /// Number of qubits moved by this batch.
    #[must_use]
    pub fn len(&self) -> usize {
        self.moves.len()
    }

    /// Returns `true` if the batch moves no qubit.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.moves.is_empty()
    }

    /// The longest single movement distance of the batch, in meters, which
    /// determines its translation duration.
    #[must_use]
    pub fn max_distance(&self) -> f64 {
        self.moves
            .iter()
            .map(TrapMove::distance)
            .fold(0.0, f64::max)
    }

    /// Checks the batch against the AOD order constraint.
    ///
    /// # Errors
    ///
    /// Same as [`validate_collective_move`].
    pub fn validate(&self) -> Result<(), HardwareError> {
        validate_collective_move(&self.moves)
    }
}

/// Checks that a set of per-AOD batches can execute in one parallel window:
/// every batch must be internally conflict-free, and no AOD array may own
/// two batches (an AOD cannot run two collective moves at once — that is an
/// intra-AOD overlap).
///
/// # Errors
///
/// Returns [`HardwareError::DuplicateAodAssignment`] on an AOD owning two
/// batches, or the first per-batch error from [`validate_collective_move`].
pub fn validate_aod_batches(batches: &[AodBatch]) -> Result<(), HardwareError> {
    for (i, batch) in batches.iter().enumerate() {
        if batches[i + 1..].iter().any(|b| b.aod == batch.aod) {
            return Err(HardwareError::DuplicateAodAssignment { aod: batch.aod });
        }
        batch.validate()?;
    }
    Ok(())
}

/// Checks that a set of single-qubit moves can be executed as one AOD
/// collective move.
///
/// # Errors
///
/// Returns [`HardwareError::ConflictingMoves`] identifying the first pair of
/// conflicting moves, or [`HardwareError::DuplicateMovedQubit`] if the same
/// qubit appears twice.
pub fn validate_collective_move(moves: &[TrapMove]) -> Result<(), HardwareError> {
    for (i, a) in moves.iter().enumerate() {
        for b in &moves[i + 1..] {
            if a.qubit == b.qubit {
                return Err(HardwareError::DuplicateMovedQubit { qubit: a.qubit });
            }
            if a.conflicts_with(b) {
                return Err(HardwareError::ConflictingMoves {
                    first: a.qubit,
                    second: b.qubit,
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mv(q: u32, fx: f64, fy: f64, tx: f64, ty: f64) -> TrapMove {
        TrapMove::new(
            Qubit::new(q),
            Point::from_um(fx, fy),
            Point::from_um(tx, ty),
        )
    }

    #[test]
    fn duration_matches_paper_examples() {
        assert!((move_duration(27.5e-6, 2750.0) - 100e-6).abs() < 1e-9);
        assert!((move_duration(110e-6, 2750.0) - 200e-6).abs() < 1e-9);
        assert_eq!(move_duration(0.0, 2750.0), 0.0);
    }

    #[test]
    fn distance_and_duration_of_move() {
        let m = mv(0, 0.0, 0.0, 30.0, 40.0);
        assert!((m.distance() - 50e-6).abs() < 1e-12);
        assert!(m.duration(2750.0) > 0.0);
    }

    #[test]
    fn order_preserving_moves_do_not_conflict() {
        // Both move right by the same offset: order preserved.
        let a = mv(0, 0.0, 0.0, 15.0, 0.0);
        let b = mv(1, 30.0, 0.0, 45.0, 0.0);
        assert!(!a.conflicts_with(&b));
        // Stretch: distances change but order preserved.
        let c = mv(2, 30.0, 0.0, 60.0, 0.0);
        assert!(!a.conflicts_with(&c));
    }

    #[test]
    fn crossing_moves_conflict() {
        // a starts left of b but ends right of b: x-order crossing.
        let a = mv(0, 0.0, 0.0, 45.0, 0.0);
        let b = mv(1, 30.0, 0.0, 15.0, 0.0);
        assert!(a.conflicts_with(&b));
        assert!(b.conflicts_with(&a));
    }

    #[test]
    fn converging_on_one_interaction_site_is_allowed() {
        // Start at different x, end at the same x: the qubits are dropped
        // into separate static traps at the shared site, so their columns
        // never coincide and the moves may share a collective move.
        let a = mv(0, 0.0, 0.0, 15.0, 15.0);
        let b = mv(1, 30.0, 15.0, 15.0, 30.0);
        assert!(!a.conflicts_with(&b));
    }

    #[test]
    fn splitting_a_column_conflicts() {
        // Start at the same x, end at different x (Fig. 5, first case).
        let a = mv(0, 15.0, 0.0, 0.0, 0.0);
        let b = mv(1, 15.0, 15.0, 30.0, 15.0);
        assert!(a.conflicts_with(&b));
    }

    #[test]
    fn y_axis_conflicts_detected() {
        let a = mv(0, 0.0, 0.0, 0.0, 30.0);
        let b = mv(1, 15.0, 15.0, 15.0, 0.0);
        assert!(a.conflicts_with(&b));
    }

    #[test]
    fn tandem_column_moves_are_compatible() {
        // Same column moving down together; row order (b above a) preserved.
        let a = mv(0, 15.0, 0.0, 15.0, -30.0);
        let b = mv(1, 15.0, 15.0, 15.0, -15.0);
        assert!(!a.conflicts_with(&b));
    }

    #[test]
    fn row_stretch_that_reorders_conflicts() {
        // Same column, but the upper qubit overtakes the lower one.
        let a = mv(0, 15.0, 0.0, 15.0, -30.0);
        let b = mv(1, 15.0, 15.0, 15.0, -45.0);
        assert!(a.conflicts_with(&b));
    }

    #[test]
    fn validate_collective_move_accepts_compatible_set() {
        // One AOD row moving down into storage in tandem.
        let moves = vec![
            mv(0, 0.0, 0.0, 0.0, -30.0),
            mv(1, 15.0, 0.0, 15.0, -30.0),
            mv(2, 30.0, 0.0, 30.0, -30.0),
        ];
        assert!(validate_collective_move(&moves).is_ok());
    }

    #[test]
    fn validate_collective_move_rejects_conflict() {
        let moves = vec![mv(0, 0.0, 0.0, 45.0, 0.0), mv(1, 30.0, 0.0, 15.0, 0.0)];
        let err = validate_collective_move(&moves).unwrap_err();
        assert!(matches!(err, HardwareError::ConflictingMoves { .. }));
    }

    #[test]
    fn validate_collective_move_rejects_duplicate_qubit() {
        let moves = vec![mv(0, 0.0, 0.0, 15.0, 0.0), mv(0, 30.0, 0.0, 45.0, 0.0)];
        let err = validate_collective_move(&moves).unwrap_err();
        assert!(matches!(err, HardwareError::DuplicateMovedQubit { .. }));
    }

    #[test]
    fn heads_down_detects_storage_direction() {
        assert!(mv(0, 0.0, 0.0, 0.0, -30.0).heads_down());
        assert!(!mv(0, 0.0, -30.0, 0.0, 0.0).heads_down());
    }

    #[test]
    fn aod_id_round_trip() {
        let a = AodId::new(2);
        assert_eq!(a.index(), 2);
        assert_eq!(a.to_string(), "aod2");
    }

    #[test]
    fn aod_batches_on_distinct_arrays_may_conflict() {
        // Crossing moves conflict within one lattice but are fine when
        // partitioned onto two independent AODs.
        let crossing_a = mv(0, 0.0, 0.0, 45.0, 0.0);
        let crossing_b = mv(1, 30.0, 0.0, 15.0, 0.0);
        assert!(crossing_a.conflicts_with(&crossing_b));
        let batches = vec![
            AodBatch::new(AodId::new(0), vec![crossing_a]),
            AodBatch::new(AodId::new(1), vec![crossing_b]),
        ];
        assert!(validate_aod_batches(&batches).is_ok());
    }

    #[test]
    fn duplicate_aod_assignment_is_rejected() {
        let batches = vec![
            AodBatch::new(AodId::new(0), vec![mv(0, 0.0, 0.0, 15.0, 0.0)]),
            AodBatch::new(AodId::new(0), vec![mv(1, 30.0, 0.0, 45.0, 0.0)]),
        ];
        let err = validate_aod_batches(&batches).unwrap_err();
        assert!(matches!(err, HardwareError::DuplicateAodAssignment { .. }));
    }

    #[test]
    fn batch_internal_conflicts_are_rejected() {
        let batches = vec![AodBatch::new(
            AodId::new(0),
            vec![mv(0, 0.0, 0.0, 45.0, 0.0), mv(1, 30.0, 0.0, 15.0, 0.0)],
        )];
        assert!(validate_aod_batches(&batches).is_err());
    }

    #[test]
    fn batch_reports_size_and_longest_move() {
        let batch = AodBatch::new(
            AodId::new(1),
            vec![mv(0, 0.0, 0.0, 30.0, 0.0), mv(1, 0.0, 15.0, 15.0, 15.0)],
        );
        assert_eq!(batch.len(), 2);
        assert!(!batch.is_empty());
        assert!((batch.max_distance() - 30e-6).abs() < 1e-12);
        assert!(AodBatch::new(AodId::new(0), vec![]).is_empty());
    }
}
