//! Planar geometry primitives: physical positions and site identifiers.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A position in the 2D atom plane, in **meters**.
///
/// The storage zone lies at negative `y`, the computation zone at
/// non-negative `y` (see [`crate::ZonedGrid`] for the exact layout).
///
/// # Example
///
/// ```
/// use powermove_hardware::Point;
///
/// let a = Point::from_um(0.0, 0.0);
/// let b = Point::from_um(30.0, 40.0);
/// assert!((a.distance(b) - 50e-6).abs() < 1e-12);
/// assert!((b.x_um() - 30.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Point {
    /// Horizontal coordinate in meters.
    pub x: f64,
    /// Vertical coordinate in meters.
    pub y: f64,
}

impl Point {
    /// Creates a point from coordinates in meters.
    #[must_use]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Creates a point from coordinates in micrometers.
    #[must_use]
    pub fn from_um(x_um: f64, y_um: f64) -> Self {
        Point {
            x: x_um * 1e-6,
            y: y_um * 1e-6,
        }
    }

    /// The horizontal coordinate in micrometers.
    #[must_use]
    pub fn x_um(&self) -> f64 {
        self.x * 1e6
    }

    /// The vertical coordinate in micrometers.
    #[must_use]
    pub fn y_um(&self) -> f64 {
        self.y * 1e6
    }

    /// Euclidean distance to another point, in meters.
    #[must_use]
    pub fn distance(&self, other: Point) -> f64 {
        (self.x - other.x).hypot(self.y - other.y)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.1} um, {:.1} um)", self.x_um(), self.y_um())
    }
}

/// Identifier of a trap site in a [`crate::ZonedGrid`].
///
/// Sites are indexed densely: all computation-zone sites first (row-major),
/// followed by all storage-zone sites (row-major).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct SiteId(usize);

impl SiteId {
    /// Creates a site identifier from a dense index.
    #[must_use]
    pub const fn new(index: usize) -> Self {
        SiteId(index)
    }

    /// The dense index of the site.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl From<usize> for SiteId {
    fn from(index: usize) -> Self {
        SiteId(index)
    }
}

impl From<SiteId> for usize {
    fn from(site: SiteId) -> Self {
        site.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_distance_is_euclidean() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3e-6, 4e-6);
        assert!((a.distance(b) - 5e-6).abs() < 1e-15);
        assert_eq!(a.distance(a), 0.0);
    }

    #[test]
    fn micrometer_round_trip() {
        let p = Point::from_um(15.0, -30.0);
        assert!((p.x - 15e-6).abs() < 1e-15);
        assert!((p.y + 30e-6).abs() < 1e-15);
        assert!((p.x_um() - 15.0).abs() < 1e-9);
        assert!((p.y_um() + 30.0).abs() < 1e-9);
    }

    #[test]
    fn point_display_in_um() {
        let p = Point::from_um(15.0, -30.0);
        assert_eq!(p.to_string(), "(15.0 um, -30.0 um)");
    }

    #[test]
    fn site_id_round_trip() {
        let s = SiteId::new(7);
        assert_eq!(s.index(), 7);
        assert_eq!(usize::from(s), 7);
        assert_eq!(SiteId::from(7_usize), s);
        assert_eq!(s.to_string(), "s7");
    }
}
