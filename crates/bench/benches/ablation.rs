//! Ablation benchmarks for the design choices called out in DESIGN.md:
//! the stage-scheduling weight α, and the storage zone on/off.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use powermove::{CompilerConfig, PowerMoveCompiler};
use powermove_benchmarks::{generate, BenchmarkFamily};
use powermove_hardware::Architecture;
use std::hint::black_box;
use std::time::Duration;

fn bench_alpha_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_alpha");
    group.sample_size(10).measurement_time(Duration::from_secs(3));

    let instance = generate(BenchmarkFamily::QaoaRegular3, 40, 29);
    let arch = Architecture::for_qubits(40);
    for alpha in [0.0_f64, 0.5, 1.0] {
        group.bench_with_input(
            BenchmarkId::from_parameter(alpha),
            &instance,
            |b, inst| {
                let compiler =
                    PowerMoveCompiler::new(CompilerConfig::default().with_alpha(alpha));
                b.iter(|| black_box(compiler.compile(&inst.circuit, &arch).unwrap()));
            },
        );
    }
    group.finish();
}

fn bench_storage_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_storage");
    group.sample_size(10).measurement_time(Duration::from_secs(3));

    let instance = generate(BenchmarkFamily::Bv, 50, 29);
    let arch = Architecture::for_qubits(50);
    for (label, config) in [
        ("with_storage", CompilerConfig::default()),
        ("non_storage", CompilerConfig::without_storage()),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &instance, |b, inst| {
            let compiler = PowerMoveCompiler::new(config);
            b.iter(|| black_box(compiler.compile(&inst.circuit, &arch).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_alpha_ablation, bench_storage_ablation);
criterion_main!(benches);
