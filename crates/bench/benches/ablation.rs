//! Ablation benchmarks for the design choices called out in DESIGN.md:
//! the stage-scheduling weight α, the storage zone on/off, and collective-
//! move grouping on/off.
//!
//! The storage and grouping ablations are expressed as extra backends
//! registered with the shared [`BackendRegistry`] — the same drop-in
//! mechanism any new routing strategy would use.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use powermove::{CompilerConfig, PowerMoveCompiler};
use powermove_bench::{BackendRegistry, POWERMOVE_NON_STORAGE, POWERMOVE_STORAGE};
use powermove_benchmarks::{generate, BenchmarkFamily};
use powermove_hardware::Architecture;
use std::hint::black_box;
use std::time::Duration;

fn bench_alpha_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_alpha");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));

    let instance = generate(BenchmarkFamily::QaoaRegular3, 40, 29);
    let arch = Architecture::for_qubits(40);
    for alpha in [0.0_f64, 0.5, 1.0] {
        group.bench_with_input(BenchmarkId::from_parameter(alpha), &instance, |b, inst| {
            let compiler = PowerMoveCompiler::new(CompilerConfig::default().with_alpha(alpha));
            b.iter(|| black_box(compiler.compile(&inst.circuit, &arch).unwrap()));
        });
    }
    group.finish();
}

fn bench_backend_ablations(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_backends");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));

    // Register the ablation configurations next to the standard ones; the
    // harness needs no changes to pick them up.
    let mut registry = BackendRegistry::new();
    registry.register(
        POWERMOVE_STORAGE,
        Box::new(PowerMoveCompiler::new(CompilerConfig::default())),
    );
    registry.register(
        POWERMOVE_NON_STORAGE,
        Box::new(PowerMoveCompiler::new(CompilerConfig::without_storage())),
    );
    registry.register(
        "powermove-no-grouping",
        Box::new(PowerMoveCompiler::new(
            CompilerConfig::default().without_grouping(),
        )),
    );

    // Like the alpha ablation above, time compilation alone: architecture
    // construction and fidelity scoring stay outside the measured loop.
    let instance = generate(BenchmarkFamily::Bv, 50, 29);
    let arch = Architecture::for_qubits(50);
    for entry in registry.iter() {
        group.bench_with_input(
            BenchmarkId::from_parameter(entry.id()),
            &instance,
            |b, inst| {
                b.iter(|| {
                    black_box(
                        entry
                            .backend()
                            .compile_circuit(&inst.circuit, &arch)
                            .unwrap(),
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_alpha_ablation, bench_backend_ablations);
criterion_main!(benches);
