//! Fig. 7 benchmark: compile + score the with-storage configuration while
//! sweeping the number of AOD arrays from 1 to 4.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use powermove_bench::{run_instance, BackendRegistry, POWERMOVE_STORAGE};
use powermove_benchmarks::{generate, BenchmarkFamily};
use std::hint::black_box;
use std::time::Duration;

fn bench_multi_aod(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_multi_aod");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));

    let registry = BackendRegistry::standard();
    let storage = registry.entry(POWERMOVE_STORAGE).expect("registered");
    let instance = generate(BenchmarkFamily::QaoaRegular3, 40, 23);
    for aods in 1..=4_usize {
        group.bench_with_input(BenchmarkId::from_parameter(aods), &instance, |b, inst| {
            b.iter(|| black_box(run_instance(inst, aods, storage)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_multi_aod);
criterion_main!(benches);
