//! Fidelity-model benchmark: cost of replaying a compiled program and
//! evaluating Eq. (1) over the resulting execution trace.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use powermove::{CompilerConfig, PowerMoveCompiler};
use powermove_benchmarks::{generate, BenchmarkFamily};
use powermove_fidelity::evaluate_program;
use powermove_hardware::Architecture;
use std::hint::black_box;
use std::time::Duration;

fn bench_fidelity_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("fidelity_eval");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));

    for n in [30_u32, 60] {
        let instance = generate(BenchmarkFamily::QaoaRegular3, n, 5);
        let arch = Architecture::for_qubits(n);
        let program = PowerMoveCompiler::new(CompilerConfig::default())
            .compile(&instance.circuit, &arch)
            .unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &program, |b, program| {
            b.iter(|| black_box(evaluate_program(program).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fidelity_eval);
criterion_main!(benches);
