//! Continuous-router benchmark: cost of planning one full circuit's layout
//! transitions in the with-storage and non-storage configurations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use powermove::{partition_stages, schedule_stages, RoutingState, ZeroBias};
use powermove_benchmarks::{generate, BenchmarkFamily};
use powermove_circuit::BlockProgram;
use powermove_hardware::{Architecture, Zone};
use powermove_schedule::Layout;
use std::hint::black_box;
use std::time::Duration;

fn bench_router(c: &mut Criterion) {
    let mut group = c.benchmark_group("continuous_router");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));

    for n in [30_u32, 60] {
        let instance = generate(BenchmarkFamily::QaoaRegular3, n, 3);
        let program = BlockProgram::from_circuit(&instance.circuit);
        let stages: Vec<_> = program
            .cz_blocks()
            .flat_map(|b| schedule_stages(partition_stages(b), 0.5))
            .collect();
        let arch = Architecture::for_qubits(n);

        group.bench_with_input(BenchmarkId::new("with_storage", n), &stages, |b, stages| {
            b.iter(|| {
                let layout = Layout::row_major(&arch, n, Zone::Storage).unwrap();
                let mut router = RoutingState::new(arch.clone(), layout, true);
                for stage in stages {
                    black_box(router.route_stage_with(stage, &ZeroBias).unwrap());
                }
            });
        });
        group.bench_with_input(BenchmarkId::new("non_storage", n), &stages, |b, stages| {
            b.iter(|| {
                let layout = Layout::row_major(&arch, n, Zone::Compute).unwrap();
                let mut router = RoutingState::new(arch.clone(), layout, false);
                for stage in stages {
                    black_box(router.route_stage_with(stage, &ZeroBias).unwrap());
                }
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_router);
criterion_main!(benches);
