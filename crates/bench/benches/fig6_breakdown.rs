//! Fig. 6 benchmark: cost of producing one fidelity-breakdown point
//! (compile + simulate + Eq. (1)) for each benchmark family of the figure.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use powermove_bench::{run_instance, BackendRegistry, POWERMOVE_STORAGE};
use powermove_benchmarks::{generate, BenchmarkFamily};
use std::hint::black_box;
use std::time::Duration;

fn bench_fig6_points(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_breakdown_point");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));

    let registry = BackendRegistry::standard();
    let storage = registry.entry(POWERMOVE_STORAGE).expect("registered");
    let cases = [
        (BenchmarkFamily::QaoaRegular3, 40_u32),
        (BenchmarkFamily::QsimRand, 20),
        (BenchmarkFamily::Qft, 20),
        (BenchmarkFamily::Vqe, 30),
        (BenchmarkFamily::Bv, 30),
    ];
    for (family, n) in cases {
        let instance = generate(family, n, 17);
        group.bench_with_input(
            BenchmarkId::from_parameter(&instance.name),
            &instance,
            |b, inst| b.iter(|| black_box(run_instance(inst, 1, storage))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig6_points);
criterion_main!(benches);
