//! End-to-end Table 3 benchmark: compile + validate + score one benchmark
//! instance under every registered compiler configuration. The reported
//! times are the full per-row cost of regenerating Table 3; the printed
//! table itself is produced by the `table3` binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use powermove_bench::{run_instance, BackendRegistry};
use powermove_benchmarks::{generate, BenchmarkFamily};
use std::hint::black_box;
use std::time::Duration;

fn bench_table3(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3_row");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4));

    let registry = BackendRegistry::standard();
    let cases = [
        (BenchmarkFamily::QaoaRegular3, 30_u32),
        (BenchmarkFamily::Bv, 50),
        (BenchmarkFamily::Vqe, 30),
    ];
    for (family, n) in cases {
        let instance = generate(family, n, 11);
        for entry in registry.iter() {
            group.bench_with_input(
                BenchmarkId::new(entry.id(), &instance.name),
                &instance,
                |b, inst| b.iter(|| black_box(run_instance(inst, 1, entry))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_table3);
criterion_main!(benches);
