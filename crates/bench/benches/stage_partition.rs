//! Stage-partition benchmark: PowerMove's greedy edge colouring (Alg. 1)
//! versus the Enola-style iterated maximum-independent-set scheduler, on
//! commuting CZ blocks of increasing size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use enola_baseline::partition_stages_mis;
use powermove::partition_stages;
use powermove_benchmarks::random_regular_graph;
use powermove_circuit::{CzBlock, CzGate, Qubit};
use std::hint::black_box;
use std::time::Duration;

fn block_for(n: u32, degree: u32) -> CzBlock {
    random_regular_graph(n, degree, 13)
        .into_iter()
        .map(|(a, b)| CzGate::new(Qubit::new(a), Qubit::new(b)))
        .collect()
}

fn bench_stage_partition(c: &mut Criterion) {
    let mut group = c.benchmark_group("stage_partition");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));

    for n in [20_u32, 50, 100] {
        let block = block_for(n, 3);
        group.bench_with_input(BenchmarkId::new("edge_coloring", n), &block, |b, block| {
            b.iter(|| black_box(partition_stages(block)))
        });
        group.bench_with_input(BenchmarkId::new("iterated_mis", n), &block, |b, block| {
            b.iter(|| black_box(partition_stages_mis(block, 50_000)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_stage_partition);
criterion_main!(benches);
