//! Compilation-time benchmark: PowerMove versus the Enola baseline
//! (the `T_comp` columns of Table 3).
//!
//! PowerMove's near-linear heuristics should compile one to two orders of
//! magnitude faster than the MIS-solver-based baseline on the same circuits.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use enola_baseline::EnolaCompiler;
use powermove::{CompilerConfig, PowerMoveCompiler};
use powermove_benchmarks::{generate, BenchmarkFamily};
use powermove_hardware::Architecture;
use std::hint::black_box;
use std::time::Duration;

fn bench_compile_time(c: &mut Criterion) {
    let mut group = c.benchmark_group("compile_time");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));

    let cases = [
        (BenchmarkFamily::QaoaRegular3, 20_u32),
        (BenchmarkFamily::QaoaRegular3, 40),
        (BenchmarkFamily::Bv, 30),
        (BenchmarkFamily::QsimRand, 20),
    ];
    for (family, n) in cases {
        let instance = generate(family, n, 7);
        let arch = Architecture::for_qubits(n);

        group.bench_with_input(
            BenchmarkId::new("powermove", &instance.name),
            &instance,
            |b, inst| {
                let compiler = PowerMoveCompiler::new(CompilerConfig::default());
                b.iter(|| black_box(compiler.compile(&inst.circuit, &arch).unwrap()));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("enola", &instance.name),
            &instance,
            |b, inst| {
                let compiler = EnolaCompiler::default();
                b.iter(|| black_box(compiler.compile(&inst.circuit, &arch).unwrap()));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_compile_time);
criterion_main!(benches);
