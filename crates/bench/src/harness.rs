//! Shared experiment-runner utilities.

use enola_baseline::{EnolaCompiler, EnolaConfig};
use powermove::{CompilerConfig, PowerMoveCompiler};
use powermove_benchmarks::BenchmarkInstance;
use powermove_fidelity::{evaluate_program, FidelityBreakdown};
use powermove_hardware::Architecture;
use powermove_schedule::CompiledProgram;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::time::Instant;

/// Seed used by every experiment binary, making the reported numbers
/// reproducible run to run.
pub const DEFAULT_SEED: u64 = 20250;

/// Which compiler / configuration to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CompilerKind {
    /// The Enola-style baseline (no storage zone, revert-to-initial routing).
    Enola,
    /// PowerMove with only the continuous router (non-storage case).
    PowerMoveNonStorage,
    /// Full PowerMove with the storage zone (with-storage case).
    PowerMoveStorage,
}

impl CompilerKind {
    /// All three evaluation configurations, in Table 3 column order.
    pub const ALL: [CompilerKind; 3] = [
        CompilerKind::Enola,
        CompilerKind::PowerMoveNonStorage,
        CompilerKind::PowerMoveStorage,
    ];
}

impl fmt::Display for CompilerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompilerKind::Enola => write!(f, "enola"),
            CompilerKind::PowerMoveNonStorage => write!(f, "powermove(non-storage)"),
            CompilerKind::PowerMoveStorage => write!(f, "powermove(with-storage)"),
        }
    }
}

/// The outcome of compiling and scoring one benchmark instance with one
/// compiler configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunResult {
    /// The compiler configuration.
    pub compiler: CompilerKind,
    /// Benchmark name, e.g. `"QAOA-regular3-30"`.
    pub benchmark: String,
    /// Circuit width.
    pub num_qubits: u32,
    /// Output fidelity excluding the 1Q factor (the paper's convention).
    pub fidelity: f64,
    /// Per-factor fidelity breakdown.
    pub breakdown: FidelityBreakdown,
    /// Execution time in microseconds.
    pub execution_time_us: f64,
    /// Compilation wall-clock time in seconds.
    pub compile_time_s: f64,
    /// Number of Rydberg stages.
    pub stages: usize,
    /// Number of SLM↔AOD transfers.
    pub transfers: usize,
    /// Total excitation exposure (Σ n_i).
    pub excitation_exposure: usize,
    /// Number of CZ gates.
    pub cz_gates: usize,
}

/// Compiles one benchmark instance with the given configuration and number
/// of AOD arrays, then validates and scores the program.
///
/// # Panics
///
/// Panics if compilation or validation fails; the experiment binaries treat
/// that as a reproduction bug worth failing loudly on.
#[must_use]
pub fn run_instance(
    instance: &BenchmarkInstance,
    num_aods: usize,
    kind: CompilerKind,
) -> RunResult {
    let arch = Architecture::for_qubits(instance.num_qubits).with_num_aods(num_aods);
    let start = Instant::now();
    let program: CompiledProgram = match kind {
        CompilerKind::Enola => EnolaCompiler::new(EnolaConfig::default())
            .compile(&instance.circuit, &arch)
            .expect("enola compilation succeeds"),
        CompilerKind::PowerMoveNonStorage => {
            PowerMoveCompiler::new(CompilerConfig::without_storage())
                .compile(&instance.circuit, &arch)
                .expect("powermove compilation succeeds")
        }
        CompilerKind::PowerMoveStorage => PowerMoveCompiler::new(CompilerConfig::default())
            .compile(&instance.circuit, &arch)
            .expect("powermove compilation succeeds"),
    };
    let compile_time_s = start.elapsed().as_secs_f64();
    let report = evaluate_program(&program).expect("compiled program is valid");
    RunResult {
        compiler: kind,
        benchmark: instance.name.clone(),
        num_qubits: instance.num_qubits,
        fidelity: report.fidelity_excluding_one_qubit(),
        breakdown: report.breakdown,
        execution_time_us: report.execution_time_us(),
        compile_time_s,
        stages: report.trace.rydberg_stage_count,
        transfers: report.trace.transfer_count,
        excitation_exposure: report.trace.excitation_exposure,
        cz_gates: report.trace.cz_gate_count,
    }
}

/// One row of Table 3: the three configurations on one benchmark instance
/// plus the improvement ratios the paper reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table3Row {
    /// Benchmark name.
    pub benchmark: String,
    /// Enola baseline result.
    pub enola: RunResult,
    /// PowerMove non-storage result.
    pub non_storage: RunResult,
    /// PowerMove with-storage result.
    pub with_storage: RunResult,
}

impl Table3Row {
    /// Fidelity improvement of the with-storage configuration over Enola.
    #[must_use]
    pub fn fidelity_improvement(&self) -> f64 {
        safe_ratio(self.with_storage.fidelity, self.enola.fidelity)
    }

    /// Execution-time improvement (Enola / best PowerMove configuration).
    #[must_use]
    pub fn execution_time_improvement(&self) -> f64 {
        let best = self
            .non_storage
            .execution_time_us
            .min(self.with_storage.execution_time_us);
        safe_ratio(self.enola.execution_time_us, best)
    }

    /// Compilation-time improvement (Enola / mean PowerMove compile time).
    #[must_use]
    pub fn compile_time_improvement(&self) -> f64 {
        let ours = 0.5 * (self.non_storage.compile_time_s + self.with_storage.compile_time_s);
        safe_ratio(self.enola.compile_time_s, ours)
    }
}

fn safe_ratio(numerator: f64, denominator: f64) -> f64 {
    if denominator <= 0.0 {
        f64::INFINITY
    } else {
        numerator / denominator
    }
}

/// Runs the three Table 3 configurations on one benchmark instance.
#[must_use]
pub fn table3_row(instance: &BenchmarkInstance) -> Table3Row {
    Table3Row {
        benchmark: instance.name.clone(),
        enola: run_instance(instance, 1, CompilerKind::Enola),
        non_storage: run_instance(instance, 1, CompilerKind::PowerMoveNonStorage),
        with_storage: run_instance(instance, 1, CompilerKind::PowerMoveStorage),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powermove_benchmarks::{generate, BenchmarkFamily};

    #[test]
    fn run_instance_produces_consistent_result() {
        let instance = generate(BenchmarkFamily::QaoaRegular3, 10, DEFAULT_SEED);
        let result = run_instance(&instance, 1, CompilerKind::PowerMoveStorage);
        assert_eq!(result.num_qubits, 10);
        assert_eq!(result.cz_gates, 15);
        assert!(result.fidelity > 0.0 && result.fidelity <= 1.0);
        assert!(result.execution_time_us > 0.0);
        assert!(result.stages >= 3);
    }

    #[test]
    fn storage_mode_eliminates_exposure_on_benchmarks() {
        let instance = generate(BenchmarkFamily::Bv, 14, DEFAULT_SEED);
        let with = run_instance(&instance, 1, CompilerKind::PowerMoveStorage);
        let enola = run_instance(&instance, 1, CompilerKind::Enola);
        assert_eq!(with.excitation_exposure, 0);
        assert!(enola.excitation_exposure > 0);
    }

    #[test]
    fn table3_row_improvements_favour_powermove() {
        // At toy scale the storage-zone benefit is small (the paper's
        // smallest instance has 30 qubits), so only require that PowerMove
        // is not meaningfully worse on fidelity and clearly faster to
        // execute.
        let instance = generate(BenchmarkFamily::QaoaRegular3, 12, DEFAULT_SEED);
        let row = table3_row(&instance);
        assert!(
            row.fidelity_improvement() > 0.9,
            "fidelity improvement {}",
            row.fidelity_improvement()
        );
        assert!(row.execution_time_improvement() > 1.0);
        // The storage zone removes every excitation exposure.
        assert_eq!(row.with_storage.excitation_exposure, 0);
    }
}
