//! Shared experiment-runner utilities.
//!
//! Compilers are driven through the open [`BackendRegistry`]: every
//! registered [`CompilerBackend`] trait object is compiled, validated and
//! scored by exactly the same code path, so new strategies (ablations,
//! alternative routers, external baselines) appear in every table and figure
//! without touching the harness.
//!
//! The harness is the second parallel layer of the workspace (the compile
//! pipeline itself is the first): [`run_all`], [`run_matrix`] and
//! [`table3_rows`] fan the backend × suite matrix out over a
//! [`ThreadPool`] sized by `POWERMOVE_THREADS` (default: available cores),
//! with results always returned in deterministic (instance-major,
//! registration-order) order. Backends compile through `&self` from several
//! workers at once — which is why [`CompilerBackend`] requires
//! `Send + Sync`.
//!
//! Caveat on wall clocks: a cell's `compile_time_s` is measured while other
//! matrix cells compete for the same cores, so parallel-run compile times
//! (and Table 3's compile-time improvement ratios) include scheduling
//! contention. Fidelity, execution time and schedule-shape metrics are
//! unaffected (compilation is deterministic). For paper-grade compile-time
//! numbers, run with `POWERMOVE_THREADS=1`; the `bench-gate` tolerances
//! absorb the contention noise instead (generous slack + absolute floor).

use crate::gate::Baseline;
use crate::stats::SampleStats;
use enola_baseline::{EnolaCompiler, EnolaConfig};
use powermove::{CompilerBackend, CompilerConfig, PowerMoveCompiler, RoutingConfig};
use powermove_benchmarks::{generate, table2_suite, BenchmarkFamily, BenchmarkInstance};
use powermove_exec::ThreadPool;
use powermove_fidelity::{evaluate_program, FidelityBreakdown};
use powermove_hardware::{Architecture, PhysicalParams, ZonedGrid};
use powermove_schedule::PassTiming;
use serde::{Deserialize, Serialize};
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Seed used by every experiment binary, making the reported numbers
/// reproducible run to run.
pub const DEFAULT_SEED: u64 = 20250;

/// Registry id of the Enola baseline configuration.
pub const ENOLA: &str = "enola";
/// Registry id of the PowerMove non-storage configuration.
pub const POWERMOVE_NON_STORAGE: &str = "powermove-non-storage";
/// Registry id of the PowerMove with-storage configuration.
pub const POWERMOVE_STORAGE: &str = "powermove-storage";
/// Registry id of the with-storage configuration driven by the multi-AOD
/// collective-move scheduler (duration-balanced per-AOD windows).
pub const POWERMOVE_MULTI_AOD: &str = "powermove-multi-aod";
/// Registry id of the with-storage configuration driven by the lookahead
/// router with a two-stage window.
pub const POWERMOVE_LOOKAHEAD: &str = "powermove@lookahead2";
/// Registry id of the with-storage configuration driven by the routing
/// auto-tuner in portfolio mode: every candidate strategy compiles each
/// instance and the schedule with the lower movement wall clock wins, so
/// this variant can never move slower than any portfolio member.
pub const POWERMOVE_AUTO: &str = "powermove-auto";

/// One registered compilation strategy: a display id plus the backend.
pub struct RegisteredBackend {
    id: String,
    backend: Box<dyn CompilerBackend>,
}

impl RegisteredBackend {
    /// The id under which the backend was registered, e.g.
    /// `"powermove-storage"`.
    #[must_use]
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The backend itself.
    #[must_use]
    pub fn backend(&self) -> &dyn CompilerBackend {
        &*self.backend
    }
}

/// An ordered, open collection of compiler backends.
///
/// The experiment binaries iterate over whatever is registered — there is no
/// closed enum of compilers anywhere in the harness.
///
/// # Example
///
/// Registering a custom backend next to the standard three:
///
/// ```
/// use powermove::{CompilerConfig, PowerMoveCompiler};
/// use powermove_bench::BackendRegistry;
///
/// let mut registry = BackendRegistry::standard();
/// registry.register(
///     "powermove-no-grouping",
///     Box::new(PowerMoveCompiler::new(
///         CompilerConfig::default().without_grouping(),
///     )),
/// );
/// assert_eq!(registry.len(), 4);
/// assert!(registry.get("powermove-no-grouping").is_some());
///
/// // Every registered backend is driven identically.
/// let instance = powermove_benchmarks::generate(
///     powermove_benchmarks::BenchmarkFamily::Bv,
///     8,
///     powermove_bench::DEFAULT_SEED,
/// );
/// for entry in registry.iter() {
///     let result = powermove_bench::run_instance(&instance, 1, entry);
///     assert!(result.fidelity > 0.0);
/// }
/// ```
#[derive(Default)]
pub struct BackendRegistry {
    entries: Vec<RegisteredBackend>,
}

impl BackendRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        BackendRegistry::default()
    }

    /// The three evaluation configurations of the paper, in Table 3 column
    /// order: [`ENOLA`], [`POWERMOVE_NON_STORAGE`], [`POWERMOVE_STORAGE`].
    ///
    /// Every backend pins its compile-side fan-out to one worker
    /// (`with_threads(1)` — PowerMove's pass pipeline and Enola's MIS stage
    /// extraction alike): the harness matrix is already fanned out over
    /// the `POWERMOVE_THREADS` pool, and nesting an N-worker pipeline pool
    /// inside each of N matrix workers would oversubscribe the machine
    /// quadratically. Single-threaded compiles also keep the sampled
    /// compile wall clocks comparable across machines with different core
    /// counts. Compiled programs are byte-identical either way; for
    /// single-instance workloads that want pipeline-level parallelism,
    /// register a backend configured with
    /// [`CompilerConfig::with_threads`](powermove::CompilerConfig::with_threads)
    /// or [`EnolaConfig::with_threads`](enola_baseline::EnolaConfig::with_threads).
    #[must_use]
    pub fn standard() -> Self {
        let mut registry = BackendRegistry::new();
        registry.register(
            ENOLA,
            Box::new(EnolaCompiler::new(EnolaConfig::default().with_threads(1))),
        );
        registry.register(
            POWERMOVE_NON_STORAGE,
            Box::new(PowerMoveCompiler::new(
                CompilerConfig::without_storage().with_threads(1),
            )),
        );
        registry.register(
            POWERMOVE_STORAGE,
            Box::new(PowerMoveCompiler::new(
                CompilerConfig::default().with_threads(1),
            )),
        );
        registry
    }

    /// Adds the routing-strategy variants of the with-storage configuration:
    /// [`POWERMOVE_MULTI_AOD`] (the multi-AOD collective-move scheduler),
    /// [`POWERMOVE_LOOKAHEAD`] (the two-stage lookahead router) and
    /// [`POWERMOVE_AUTO`] (the portfolio auto-tuner; gated with the greedy
    /// router and the scheduler on the `fig7/multi-aod` shard). Like the
    /// standard backends, all pin their pipelines to one worker.
    ///
    /// Ids follow the usual [`BackendRegistry::register`] uniqueness
    /// semantics: a user-registered backend under one of the variant ids is
    /// displaced by the variant (never silently kept alongside it), and the
    /// displacement is logged to stderr so the collision is visible.
    ///
    /// ```
    /// use powermove_bench::{BackendRegistry, POWERMOVE_AUTO, POWERMOVE_MULTI_AOD};
    ///
    /// let registry = BackendRegistry::standard().with_routing_variants();
    /// assert_eq!(registry.len(), 6);
    /// assert!(registry.get(POWERMOVE_MULTI_AOD).is_some());
    /// assert!(registry.get(POWERMOVE_AUTO).is_some());
    /// ```
    #[must_use]
    pub fn with_routing_variants(mut self) -> Self {
        let variants: [(&str, RoutingConfig); 3] = [
            (POWERMOVE_MULTI_AOD, RoutingConfig::multi_aod()),
            (POWERMOVE_LOOKAHEAD, RoutingConfig::lookahead(2)),
            (POWERMOVE_AUTO, RoutingConfig::auto()),
        ];
        for (id, routing) in variants {
            let displaced = self.register(
                id,
                Box::new(PowerMoveCompiler::new(
                    CompilerConfig::default()
                        .with_threads(1)
                        .with_routing(routing),
                )),
            );
            if let Some(displaced) = displaced {
                eprintln!(
                    "powermove-bench: with_routing_variants displaced backend {:?} \
                     previously registered under {id:?}",
                    displaced.name()
                );
            }
        }
        self
    }

    /// Registers a backend under `id`.
    ///
    /// Ids are unique: registering an id that is already present **replaces**
    /// the old entry, and the displaced backend is returned so callers can
    /// detect — or chain onto — the collision. The replacement is appended
    /// at the end of the iteration order, like a fresh registration (the old
    /// entry's position is not preserved). Registering a fresh id returns
    /// `None`.
    ///
    /// ```
    /// use powermove::{CompilerConfig, PowerMoveCompiler};
    /// use powermove_bench::{BackendRegistry, ENOLA};
    ///
    /// let mut registry = BackendRegistry::standard();
    /// let displaced = registry.register(
    ///     ENOLA,
    ///     Box::new(PowerMoveCompiler::new(CompilerConfig::default())),
    /// );
    /// assert_eq!(displaced.unwrap().name(), "enola");
    /// assert_eq!(registry.len(), 3); // still three entries, no duplicates
    /// assert!(registry
    ///     .register("brand-new", Box::new(PowerMoveCompiler::default()))
    ///     .is_none());
    /// ```
    pub fn register(
        &mut self,
        id: impl Into<String>,
        backend: Box<dyn CompilerBackend>,
    ) -> Option<Box<dyn CompilerBackend>> {
        let id = id.into();
        let displaced = self
            .entries
            .iter()
            .position(|e| e.id == id)
            .map(|index| self.entries.remove(index).backend);
        self.entries.push(RegisteredBackend { id, backend });
        displaced
    }

    /// Looks up a registered entry by id.
    #[must_use]
    pub fn entry(&self, id: &str) -> Option<&RegisteredBackend> {
        self.entries.iter().find(|e| e.id == id)
    }

    /// Looks up a backend by id.
    #[must_use]
    pub fn get(&self, id: &str) -> Option<&dyn CompilerBackend> {
        self.entry(id).map(RegisteredBackend::backend)
    }

    /// Iterates over the registered backends in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &RegisteredBackend> {
        self.entries.iter()
    }

    /// Number of registered backends.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// The outcome of compiling and scoring one benchmark instance with one
/// registered backend.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunResult {
    /// Registry id of the backend, e.g. `"powermove-storage"`.
    pub compiler: String,
    /// Benchmark name, e.g. `"QAOA-regular3-30"`.
    pub benchmark: String,
    /// Circuit width.
    pub num_qubits: u32,
    /// Number of AOD arrays the schedule was packed for (from
    /// `CompileMetadata::num_aods`), so reports record the count that drove
    /// multi-AOD packing.
    pub num_aods: usize,
    /// Output fidelity excluding the 1Q factor (the paper's convention).
    pub fidelity: f64,
    /// Per-factor fidelity breakdown.
    pub breakdown: FidelityBreakdown,
    /// Execution time in microseconds.
    pub execution_time_us: f64,
    /// Total movement wall clock (translations plus transfers) in
    /// microseconds — the slice of the execution time multi-AOD scheduling
    /// compresses.
    pub movement_time_us: f64,
    /// Compilation wall-clock time in seconds: the **median** of
    /// [`RunResult::compile_time_samples`].
    pub compile_time_s: f64,
    /// Every sampled compilation wall clock (one per repeat run; a single
    /// entry when the cell ran once). Deterministic metrics are taken from
    /// the first run — re-compiling cannot change them.
    pub compile_time_samples: Vec<f64>,
    /// Per-pass compilation timings reported by the backend (first run).
    pub pass_timings: Vec<PassTiming>,
    /// Number of Rydberg stages.
    pub stages: usize,
    /// Number of SLM↔AOD transfers.
    pub transfers: usize,
    /// Total excitation exposure (Σ n_i).
    pub excitation_exposure: usize,
    /// Number of CZ gates.
    pub cz_gates: usize,
}

/// Compiles one benchmark instance with the given registered backend and
/// number of AOD arrays, then validates and scores the program.
///
/// # Panics
///
/// Panics if compilation or validation fails; the experiment binaries treat
/// that as a reproduction bug worth failing loudly on.
#[must_use]
pub fn run_instance(
    instance: &BenchmarkInstance,
    num_aods: usize,
    entry: &RegisteredBackend,
) -> RunResult {
    run_instance_sampled(instance, num_aods, entry, 1)
}

/// Like [`run_instance`], but compiles the instance `repeats` times (at
/// least once) and records every compilation wall clock in
/// [`RunResult::compile_time_samples`], with [`RunResult::compile_time_s`]
/// set to their median. Deterministic metrics (fidelity, execution time,
/// schedule shape) come from the first run: re-compiling cannot change them,
/// so only the wall clock is worth sampling.
///
/// # Panics
///
/// Panics if compilation or validation fails (see [`run_instance`]).
#[must_use]
pub fn run_instance_sampled(
    instance: &BenchmarkInstance,
    num_aods: usize,
    entry: &RegisteredBackend,
    repeats: usize,
) -> RunResult {
    let arch = Architecture::for_qubits(instance.num_qubits).with_num_aods(num_aods);
    run_on_architecture(instance, &arch, entry, repeats)
}

/// Like [`run_instance_sampled`], but compiles against an explicit
/// [`Architecture`] instead of deriving the paper's default machine from the
/// qubit count — the entry point for heterogeneous-architecture cells
/// ([`ShardCell::architecture`], the schedule-lint corpus campaign).
///
/// # Panics
///
/// Panics if compilation or validation fails (see [`run_instance`]).
#[must_use]
pub fn run_on_architecture(
    instance: &BenchmarkInstance,
    arch: &Architecture,
    entry: &RegisteredBackend,
    repeats: usize,
) -> RunResult {
    let mut samples = Vec::with_capacity(repeats.max(1));
    let mut first_program = None;
    for _ in 0..repeats.max(1) {
        let start = std::time::Instant::now();
        let program = entry
            .backend()
            .compile_circuit(&instance.circuit, arch)
            .unwrap_or_else(|e| {
                panic!(
                    "{} compilation failed on {}: {e}",
                    entry.id(),
                    instance.name
                )
            });
        let measured = start.elapsed().as_secs_f64();
        // Prefer the backend's own compile clock (it excludes harness
        // overhead); fall back to the measured wall clock.
        samples.push(program.metadata().compile_time.unwrap_or(measured));
        first_program.get_or_insert(program);
    }
    score_program_sampled(
        entry.id(),
        instance,
        &first_program.expect("at least one compile ran"),
        samples,
    )
}

/// Validates and scores an already-compiled program, labelling the result
/// with `compiler_id`. `measured_compile_time_s` is used when the backend
/// did not record a compile time in its metadata.
///
/// # Panics
///
/// Panics if validation fails (see [`run_instance`]).
#[must_use]
pub fn score_program(
    compiler_id: &str,
    instance: &BenchmarkInstance,
    program: &powermove_schedule::CompiledProgram,
    measured_compile_time_s: f64,
) -> RunResult {
    let resolved = program
        .metadata()
        .compile_time
        .unwrap_or(measured_compile_time_s);
    score_program_sampled(compiler_id, instance, program, vec![resolved])
}

/// Validates and scores an already-compiled program against a set of
/// repeat-run compile-time samples (see [`run_instance_sampled`]).
///
/// # Panics
///
/// Panics if validation fails (see [`run_instance`]) or if
/// `compile_time_samples` is empty.
#[must_use]
pub fn score_program_sampled(
    compiler_id: &str,
    instance: &BenchmarkInstance,
    program: &powermove_schedule::CompiledProgram,
    compile_time_samples: Vec<f64>,
) -> RunResult {
    let metadata = program.metadata().clone();
    let report = evaluate_program(program).expect("compiled program is valid");
    let compile_time_s = SampleStats::from_samples(compile_time_samples.clone()).median();
    RunResult {
        compiler: compiler_id.to_string(),
        benchmark: instance.name.clone(),
        num_qubits: instance.num_qubits,
        num_aods: metadata.num_aods,
        fidelity: report.fidelity_excluding_one_qubit(),
        breakdown: report.breakdown,
        execution_time_us: report.execution_time_us(),
        movement_time_us: report.trace.movement_time * 1e6,
        compile_time_s,
        compile_time_samples,
        pass_timings: metadata.pass_timings,
        stages: report.trace.rydberg_stage_count,
        transfers: report.trace.transfer_count,
        excitation_exposure: report.trace.excitation_exposure,
        cz_gates: report.trace.cz_gate_count,
    }
}

/// Runs every backend of the registry on one benchmark instance.
///
/// Backends run concurrently on a pool sized by `POWERMOVE_THREADS`
/// (default: available cores); results come back in registration order
/// regardless of completion order.
///
/// # Panics
///
/// Panics if compilation or validation fails (see [`run_instance`]).
#[must_use]
pub fn run_all(
    instance: &BenchmarkInstance,
    num_aods: usize,
    registry: &BackendRegistry,
) -> Vec<RunResult> {
    let entries: Vec<&RegisteredBackend> = registry.iter().collect();
    ThreadPool::from_env().par_map(entries, |entry| run_instance(instance, num_aods, entry))
}

/// Runs the full backend × suite matrix: every registered backend on every
/// benchmark instance, fanned out over a pool sized by `POWERMOVE_THREADS`.
///
/// Results are returned in deterministic instance-major order (all backends
/// of `instances[0]` in registration order, then `instances[1]`, ...), so
/// the output is independent of scheduling. This is the entry point behind
/// the table/figure binaries and the `bench-gate` CI gate.
///
/// # Panics
///
/// Panics if compilation or validation fails (see [`run_instance`]).
#[must_use]
pub fn run_matrix(
    instances: &[BenchmarkInstance],
    num_aods: usize,
    registry: &BackendRegistry,
) -> Vec<RunResult> {
    run_matrix_sampled(instances, num_aods, registry, 1)
}

/// [`run_matrix`] with `repeats` compile-time samples per cell (see
/// [`run_instance_sampled`]).
///
/// # Panics
///
/// Panics if compilation or validation fails (see [`run_instance`]).
#[must_use]
pub fn run_matrix_sampled(
    instances: &[BenchmarkInstance],
    num_aods: usize,
    registry: &BackendRegistry,
    repeats: usize,
) -> Vec<RunResult> {
    let jobs: Vec<(&BenchmarkInstance, &RegisteredBackend)> = instances
        .iter()
        .flat_map(|instance| registry.iter().map(move |entry| (instance, entry)))
        .collect();
    ThreadPool::from_env().par_map(jobs, |(instance, entry)| {
        run_instance_sampled(instance, num_aods, entry, repeats)
    })
}

/// Threshold splitting the Table 2 suite into the `table2/small` and
/// `table2/large` shards: instances with at least this many qubits land in
/// the large shard.
pub const LARGE_SHARD_QUBITS: u32 = 50;

/// The qubit sweeps of Fig. 6(a)–(e), the single source of truth shared by
/// the `fig6` binary and the `fig6/sweep` shard.
#[must_use]
pub fn fig6_sweeps() -> Vec<(BenchmarkFamily, Vec<u32>)> {
    vec![
        (BenchmarkFamily::QaoaRegular3, vec![20, 40, 60, 80, 100]),
        (BenchmarkFamily::QsimRand, vec![10, 20, 40, 60, 80]),
        (BenchmarkFamily::Qft, vec![20, 30, 40, 50, 60]),
        (BenchmarkFamily::Vqe, vec![10, 20, 30, 40, 50]),
        (BenchmarkFamily::Bv, vec![20, 30, 40, 50, 60, 70]),
    ]
}

/// The five benchmark instances of Fig. 7, the single source of truth shared
/// by the `fig7` binary and the `fig7/multi-aod` shard.
#[must_use]
pub fn fig7_cases() -> [(BenchmarkFamily, u32); 5] {
    [
        (BenchmarkFamily::QaoaRegular3, 100),
        (BenchmarkFamily::QsimRand, 20),
        (BenchmarkFamily::Qft, 18),
        (BenchmarkFamily::Vqe, 50),
        (BenchmarkFamily::Bv, 70),
    ]
}

/// The compile-request mix driven through the compile service by its smoke
/// test and the `powermove_client` example: the Fig. 7 families at reduced
/// widths, so a hundred-request burst (with repeats for cache hits) stays
/// fast enough for CI while still exercising every benchmark generator.
#[must_use]
pub fn service_smoke_cells() -> [(BenchmarkFamily, u32); 5] {
    [
        (BenchmarkFamily::QaoaRegular3, 20),
        (BenchmarkFamily::QsimRand, 12),
        (BenchmarkFamily::Qft, 10),
        (BenchmarkFamily::Vqe, 16),
        (BenchmarkFamily::Bv, 20),
    ]
}

/// The heterogeneous-architecture grid of the `lint/corpus` shard: three
/// stress geometries ([`ArchVariant::Wide`], [`ArchVariant::DeepStorage`],
/// [`ArchVariant::SlowTransfer`]) × three benchmark families at 2–4 AOD
/// arrays. The single source of truth shared by the shard registry, the
/// `schedule-lint` campaign and the shard-cover workspace test. Cell names
/// carry both an `@aods<k>` and an `@arch:<variant>` suffix so every cell
/// keys uniquely in the baseline.
#[must_use]
pub fn lint_corpus_cells(seed: u64) -> Vec<ShardCell> {
    let cases: [(BenchmarkFamily, u32, usize); 3] = [
        (BenchmarkFamily::QaoaRegular3, 16, 2),
        (BenchmarkFamily::Qft, 12, 3),
        (BenchmarkFamily::Bv, 16, 4),
    ];
    let variants = [
        ArchVariant::Wide,
        ArchVariant::DeepStorage,
        ArchVariant::SlowTransfer,
    ];
    variants
        .into_iter()
        .flat_map(|variant| {
            cases.into_iter().map(move |(family, n, aods)| {
                let mut instance = generate(family, n, seed);
                instance.name = format!("{}@aods{aods}@arch:{}", instance.name, variant.name());
                ShardCell::new(instance, aods).with_arch(variant)
            })
        })
        .collect()
}

/// A named hardware-architecture variant for heterogeneous-architecture
/// cells: the paper's default machine plus three stress geometries the
/// `lint/corpus` shard and the schedule-lint campaign sweep so invariants
/// are exercised off the default `ceil(sqrt(n))` square.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ArchVariant {
    /// The paper's default machine ([`Architecture::for_qubits`]).
    Standard,
    /// Twice the columns, square compute zone, shallow storage — wide rows
    /// stress lateral packing and the free-site index's column sweep.
    Wide,
    /// A deep storage zone (4× rows) behind a doubled zone gap — long
    /// storage↔compute hauls stress retrieval ordering and move batching.
    DeepStorage,
    /// Default geometry with 2× transfer duration and halved maximum
    /// acceleration — slow physics shifts the movement/transfer trade-off
    /// the auto-tuner and the multi-AOD scheduler optimize over.
    SlowTransfer,
}

impl ArchVariant {
    /// Every variant, in canonical sweep order.
    pub const ALL: [ArchVariant; 4] = [
        ArchVariant::Standard,
        ArchVariant::Wide,
        ArchVariant::DeepStorage,
        ArchVariant::SlowTransfer,
    ];

    /// The stable name used in cell labels (`@arch:<name>`) and reproducer
    /// config files.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ArchVariant::Standard => "standard",
            ArchVariant::Wide => "wide",
            ArchVariant::DeepStorage => "deep-storage",
            ArchVariant::SlowTransfer => "slow-transfer",
        }
    }

    /// Parses a variant from its [`ArchVariant::name`].
    #[must_use]
    pub fn from_name(name: &str) -> Option<ArchVariant> {
        ArchVariant::ALL.into_iter().find(|v| v.name() == name)
    }

    /// Builds the variant's architecture for an `n`-qubit program with one
    /// AOD array (compose with [`Architecture::with_num_aods`]). Every
    /// variant keeps both zones large enough for `n` qubits, so
    /// [`Architecture::check_capacity`] holds by construction.
    ///
    /// # Panics
    ///
    /// Panics if `num_qubits` is zero (same contract as
    /// [`Architecture::for_qubits`]).
    #[must_use]
    pub fn architecture_for(self, num_qubits: u32) -> Architecture {
        let base = Architecture::for_qubits(num_qubits);
        let side = f64::from(num_qubits).sqrt().ceil() as u32;
        match self {
            ArchVariant::Standard => base,
            ArchVariant::Wide => base.with_grid(
                ZonedGrid::with_dims(2 * side, side, side)
                    .expect("wide dims are non-zero for any qubit count"),
            ),
            ArchVariant::DeepStorage => base.with_grid(
                ZonedGrid::with_dims(side, side, 4 * side)
                    .expect("deep-storage dims are non-zero for any qubit count")
                    .with_zone_gap(60e-6),
            ),
            ArchVariant::SlowTransfer => {
                let defaults = PhysicalParams::default();
                base.with_params(PhysicalParams {
                    transfer_duration: 2.0 * defaults.transfer_duration,
                    max_acceleration: 0.5 * defaults.max_acceleration,
                    ..defaults
                })
            }
        }
    }
}

/// One cell row of a shard: a benchmark instance plus the AOD-array count it
/// is compiled for.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ShardCell {
    /// The benchmark instance. Multi-AOD cells carry an `@aods<k>` suffix in
    /// the instance name so every cell keys uniquely in the baseline.
    pub instance: BenchmarkInstance,
    /// Number of AOD arrays the cell is compiled for.
    pub num_aods: usize,
    /// Hardware variant the cell compiles against. Non-standard cells carry
    /// an `@arch:<name>` suffix in the instance name so they key uniquely in
    /// the baseline.
    pub arch: ArchVariant,
}

impl ShardCell {
    /// A cell on the paper's default architecture.
    #[must_use]
    pub fn new(instance: BenchmarkInstance, num_aods: usize) -> Self {
        ShardCell {
            instance,
            num_aods,
            arch: ArchVariant::Standard,
        }
    }

    /// Replaces the cell's hardware variant.
    #[must_use]
    pub fn with_arch(mut self, arch: ArchVariant) -> Self {
        self.arch = arch;
        self
    }

    /// The concrete architecture the cell compiles against: the variant's
    /// geometry/physics at the cell's AOD count.
    #[must_use]
    pub fn architecture(&self) -> Architecture {
        self.arch
            .architecture_for(self.instance.num_qubits)
            .with_num_aods(self.num_aods)
    }
}

/// A named slice of the benchmark matrix: a set of instance × AOD cells plus
/// the registry ids of the backends gated on them.
///
/// The standard shards ([`ShardRegistry::standard`]) form a disjoint exact
/// cover of the full gated suite, so running every shard and merging the
/// per-shard reports reproduces a monolithic run cell for cell.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SuiteShard {
    name: String,
    backends: Vec<String>,
    cells: Vec<ShardCell>,
}

impl SuiteShard {
    /// Creates a shard from its parts.
    #[must_use]
    pub fn new(name: impl Into<String>, backends: Vec<String>, cells: Vec<ShardCell>) -> Self {
        SuiteShard {
            name: name.into(),
            backends,
            cells,
        }
    }

    /// The shard name, e.g. `"table2/small"`.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Registry ids of the backends gated on this shard.
    #[must_use]
    pub fn backends(&self) -> &[String] {
        &self.backends
    }

    /// The instance × AOD cells of the shard, in matrix order.
    #[must_use]
    pub fn cells(&self) -> &[ShardCell] {
        &self.cells
    }

    /// The `(compiler, benchmark)` ids of every gated cell, in run order
    /// (instance-major, then backend order).
    #[must_use]
    pub fn cell_ids(&self) -> Vec<(String, String)> {
        self.cells
            .iter()
            .flat_map(|cell| {
                self.backends
                    .iter()
                    .map(move |backend| (backend.clone(), cell.instance.name.clone()))
            })
            .collect()
    }

    /// Whether the shard gates the given `(compiler, benchmark)` cell.
    #[must_use]
    pub fn contains_cell(&self, compiler: &str, benchmark: &str) -> bool {
        self.backends.iter().any(|b| b == compiler)
            && self.cells.iter().any(|c| c.instance.name == benchmark)
    }

    /// A copy of the shard restricted to instances whose name contains
    /// `filter` (an empty filter keeps everything).
    #[must_use]
    pub fn filtered(&self, filter: &str) -> SuiteShard {
        SuiteShard {
            name: self.name.clone(),
            backends: self.backends.clone(),
            cells: self
                .cells
                .iter()
                .filter(|c| filter.is_empty() || c.instance.name.contains(filter))
                .cloned()
                .collect(),
        }
    }
}

/// The named shards of the benchmark matrix, in canonical (CI fan-out)
/// order.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ShardRegistry {
    shards: Vec<SuiteShard>,
}

impl ShardRegistry {
    /// The standard sharding of the gated suite:
    ///
    /// * `table2/small` / `table2/large` — the Table 2 suite split into a
    ///   fast and a slow half (see [`ShardRegistry::standard_with_baseline`]
    ///   for how the split is derived), all three standard backends plus
    ///   the portfolio auto-tuner ([`POWERMOVE_AUTO`]): the portfolio
    ///   compiles by staging once and replaying only the route/emit back
    ///   end per candidate, and gating its compile wall clock here — on the
    ///   heaviest Table 2 instances in particular — regression-guards that
    ///   replay fast path. Both halves carry the same backend list so the
    ///   baseline-driven split can never change *which* cells are gated,
    ///   only where;
    /// * `fig6/sweep` — Fig. 6 sweep sizes not already covered by Table 2,
    ///   all three standard backends;
    /// * `fig7/multi-aod` — the Fig. 7 instances at 2–4 AOD arrays
    ///   (`@aods<k>`-suffixed names), compiled under the greedy with-storage
    ///   configuration, the multi-AOD scheduler variant
    ///   ([`POWERMOVE_MULTI_AOD`]) and the portfolio auto-tuner
    ///   ([`POWERMOVE_AUTO`]), so the gate regression-guards both the
    ///   scheduler's movement-wall-clock win and the auto-tuner matching the
    ///   per-cell best portfolio member;
    /// * `lint/corpus` — the heterogeneous-architecture grid of
    ///   [`lint_corpus_cells`] (`@aods<k>@arch:<variant>`-suffixed names),
    ///   same backend list as `fig7/multi-aod`, so the gate pins schedule
    ///   invariants and scores off the paper's default machine geometry.
    ///
    /// Together the shards cover every gated cell exactly once
    /// (asserted by the workspace test suite).
    ///
    /// Without a baseline the Table 2 split falls back to the
    /// [`LARGE_SHARD_QUBITS`] qubit-count heuristic for every cell.
    #[must_use]
    pub fn standard(seed: u64) -> Self {
        Self::standard_with_baseline(seed, None)
    }

    /// [`ShardRegistry::standard`] with the Table 2 small/large split
    /// derived from recorded per-cell compile wall clocks.
    ///
    /// Each instance's cost is the sum of its standard backends' median
    /// compile times in `baseline`; costed instances are distributed over
    /// the two shards by greedy longest-first balancing, so shard runtimes
    /// stay level as the suite grows instead of drifting with the
    /// hand-tuned qubit threshold. Instances without any baseline entry
    /// (new benchmarks, bootstrap runs) fall back to the qubit-count
    /// heuristic. The split changes only *which* of the two table2 shards
    /// gates a cell — the union of gated cells is identical for every
    /// baseline, preserving the exact-cover invariant.
    #[must_use]
    pub fn standard_with_baseline(seed: u64, baseline: Option<&Baseline>) -> Self {
        let standard_backends = vec![
            ENOLA.to_string(),
            POWERMOVE_NON_STORAGE.to_string(),
            POWERMOVE_STORAGE.to_string(),
        ];
        // Both Table 2 halves additionally gate the portfolio auto-tuner's
        // compile wall clock (the stage-once replay fast path). Keeping the
        // two halves' backend lists identical preserves the invariant that
        // the baseline-driven split only moves cells between the halves and
        // never changes the union of gated cells.
        let mut table2_backends = standard_backends.clone();
        table2_backends.push(POWERMOVE_AUTO.to_string());
        let single_aod = |instance: BenchmarkInstance| ShardCell::new(instance, 1);

        let table2 = table2_suite(seed);
        let table2_names: Vec<&str> = table2.iter().map(|i| i.name.as_str()).collect();
        let (large, small) = split_table2(&table2, baseline);

        let fig6_cells: Vec<ShardCell> = fig6_sweeps()
            .into_iter()
            .flat_map(|(family, sizes)| {
                sizes
                    .into_iter()
                    .map(move |n| generate(family, n, seed))
                    .collect::<Vec<_>>()
            })
            .filter(|i| !table2_names.contains(&i.name.as_str()))
            .map(single_aod)
            .collect();

        let fig7_cells: Vec<ShardCell> = fig7_cases()
            .into_iter()
            .flat_map(|(family, n)| {
                (2..=4).map(move |aods| {
                    let mut instance = generate(family, n, seed);
                    instance.name = format!("{}@aods{aods}", instance.name);
                    ShardCell::new(instance, aods)
                })
            })
            .collect();
        let fig7_backends = vec![
            POWERMOVE_STORAGE.to_string(),
            POWERMOVE_MULTI_AOD.to_string(),
            POWERMOVE_AUTO.to_string(),
        ];
        let lint_backends = fig7_backends.clone();

        ShardRegistry {
            shards: vec![
                SuiteShard::new(
                    "table2/small",
                    table2_backends.clone(),
                    small.into_iter().map(single_aod).collect(),
                ),
                SuiteShard::new(
                    "table2/large",
                    table2_backends,
                    large.into_iter().map(single_aod).collect(),
                ),
                SuiteShard::new("fig6/sweep", standard_backends, fig6_cells),
                SuiteShard::new("fig7/multi-aod", fig7_backends, fig7_cells),
                SuiteShard::new("lint/corpus", lint_backends, lint_corpus_cells(seed)),
            ],
        }
    }

    /// Creates a registry from an explicit shard list (custom pipelines and
    /// tests; the CI gate uses [`ShardRegistry::standard`]). Shard order is
    /// canonical order.
    #[must_use]
    pub fn from_shards(shards: Vec<SuiteShard>) -> Self {
        ShardRegistry { shards }
    }

    /// Looks up a shard by name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&SuiteShard> {
        self.shards.iter().find(|s| s.name == name)
    }

    /// Iterates over the shards in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = &SuiteShard> {
        self.shards.iter()
    }

    /// The shard names, in canonical order.
    #[must_use]
    pub fn names(&self) -> Vec<&str> {
        self.shards.iter().map(|s| s.name.as_str()).collect()
    }

    /// Number of shards.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Whether the registry holds no shards.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// The canonical position of a `(compiler, benchmark)` cell across all
    /// shards (shard order, then cell order within the shard), or `None` for
    /// cells no shard gates. Used to keep baseline files and merged reports
    /// in one deterministic order.
    #[must_use]
    pub fn cell_rank(&self, compiler: &str, benchmark: &str) -> Option<usize> {
        let mut rank = 0;
        for shard in &self.shards {
            for (cell_compiler, cell_benchmark) in shard.cell_ids() {
                if cell_compiler == compiler && cell_benchmark == benchmark {
                    return Some(rank);
                }
                rank += 1;
            }
        }
        None
    }

    /// The shard gating a `(compiler, benchmark)` cell, if any.
    #[must_use]
    pub fn shard_of_cell(&self, compiler: &str, benchmark: &str) -> Option<&SuiteShard> {
        self.shards
            .iter()
            .find(|s| s.contains_cell(compiler, benchmark))
    }
}

/// Splits the Table 2 suite into its `(large, small)` shard halves.
///
/// Instances with recorded baseline entries are costed by the sum of their
/// standard backends' median compile wall clocks and distributed by greedy
/// longest-first balancing (the heavier bin is `large`); instances without
/// any entry use the [`LARGE_SHARD_QUBITS`] qubit heuristic. Each half
/// preserves the suite order, keeping shard cell lists deterministic.
fn split_table2(
    table2: &[BenchmarkInstance],
    baseline: Option<&Baseline>,
) -> (Vec<BenchmarkInstance>, Vec<BenchmarkInstance>) {
    let cost_of = |name: &str| -> Option<f64> {
        let baseline = baseline?;
        let mut total = 0.0;
        let mut found = false;
        for backend in [ENOLA, POWERMOVE_NON_STORAGE, POWERMOVE_STORAGE] {
            if let Some(entry) = baseline.entry(backend, name) {
                total += entry.compile_time.median();
                found = true;
            }
        }
        found.then_some(total)
    };

    let mut large_indices: Vec<usize> = Vec::new();
    let mut small_indices: Vec<usize> = Vec::new();
    let mut costed: Vec<(f64, usize)> = Vec::new();
    for (index, instance) in table2.iter().enumerate() {
        match cost_of(&instance.name) {
            Some(cost) => costed.push((cost, index)),
            None if instance.num_qubits >= LARGE_SHARD_QUBITS => large_indices.push(index),
            None => small_indices.push(index),
        }
    }
    // Longest first; ties keep suite order so the split is deterministic.
    costed.sort_by(|a, b| {
        b.0.partial_cmp(&a.0)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.1.cmp(&b.1))
    });
    let (mut large_cost, mut small_cost) = (0.0_f64, 0.0_f64);
    for (cost, index) in costed {
        if large_cost <= small_cost {
            large_indices.push(index);
            large_cost += cost;
        } else {
            small_indices.push(index);
            small_cost += cost;
        }
    }
    let in_suite_order = |mut indices: Vec<usize>| -> Vec<BenchmarkInstance> {
        indices.sort_unstable();
        indices.into_iter().map(|i| table2[i].clone()).collect()
    };
    (in_suite_order(large_indices), in_suite_order(small_indices))
}

/// Runs one shard's cell × backend matrix with `repeats` compile-time
/// samples per cell, fanned out over the `POWERMOVE_THREADS` pool.
///
/// `observer` fires once per **completed** cell — from worker threads, as
/// cells finish, in completion order — with the cell's run-order index; the
/// returned vector is still in deterministic run order. Streaming report
/// writers hook in here so a crashed run keeps every finished cell.
///
/// # Panics
///
/// Panics if a shard backend id is not registered, or if compilation or
/// validation fails (see [`run_instance`]).
#[must_use]
pub fn run_shard<F>(
    shard: &SuiteShard,
    registry: &BackendRegistry,
    repeats: usize,
    observer: F,
) -> Vec<RunResult>
where
    F: Fn(usize, &RunResult) + Sync,
{
    let jobs: Vec<(usize, &ShardCell, &RegisteredBackend)> = shard
        .cells()
        .iter()
        .flat_map(|cell| {
            shard.backends().iter().map(move |id| {
                let entry = registry.entry(id).unwrap_or_else(|| {
                    panic!("shard {} gates unregistered backend {id}", shard.name())
                });
                (cell, entry)
            })
        })
        .enumerate()
        .map(|(index, (cell, entry))| (index, cell, entry))
        .collect();
    ThreadPool::from_env().par_map(jobs, |(index, cell, entry)| {
        let result = run_on_architecture(&cell.instance, &cell.architecture(), entry, repeats);
        observer(index, &result);
        result
    })
}

/// One row of Table 3: the three standard configurations on one benchmark
/// instance plus the improvement ratios the paper reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table3Row {
    /// Benchmark name.
    pub benchmark: String,
    /// Enola baseline result.
    pub enola: RunResult,
    /// PowerMove non-storage result.
    pub non_storage: RunResult,
    /// PowerMove with-storage result.
    pub with_storage: RunResult,
}

impl Table3Row {
    /// Fidelity improvement of the with-storage configuration over Enola.
    #[must_use]
    pub fn fidelity_improvement(&self) -> f64 {
        safe_ratio(self.with_storage.fidelity, self.enola.fidelity)
    }

    /// Execution-time improvement (Enola / best PowerMove configuration).
    #[must_use]
    pub fn execution_time_improvement(&self) -> f64 {
        let best = self
            .non_storage
            .execution_time_us
            .min(self.with_storage.execution_time_us);
        safe_ratio(self.enola.execution_time_us, best)
    }

    /// Compilation-time improvement (Enola / mean PowerMove compile time).
    #[must_use]
    pub fn compile_time_improvement(&self) -> f64 {
        let ours = 0.5 * (self.non_storage.compile_time_s + self.with_storage.compile_time_s);
        safe_ratio(self.enola.compile_time_s, ours)
    }
}

fn safe_ratio(numerator: f64, denominator: f64) -> f64 {
    if denominator <= 0.0 {
        f64::INFINITY
    } else {
        numerator / denominator
    }
}

/// Runs the three standard Table 3 configurations on one benchmark instance.
///
/// # Panics
///
/// Panics if compilation or validation fails (see [`run_instance`]).
#[must_use]
pub fn table3_row(instance: &BenchmarkInstance) -> Table3Row {
    table3_rows(std::slice::from_ref(instance)).remove(0)
}

/// Runs the three standard Table 3 configurations over a whole suite, with
/// the instance × configuration matrix fanned out over the thread pool.
///
/// Rows come back in suite order.
///
/// # Panics
///
/// Panics if compilation or validation fails (see [`run_instance`]).
#[must_use]
pub fn table3_rows(instances: &[BenchmarkInstance]) -> Vec<Table3Row> {
    table3_rows_sampled(instances, 1)
}

/// [`table3_rows`] with `repeats` compile-time samples per cell, for
/// statistically honest compile-time-improvement columns.
///
/// # Panics
///
/// Panics if compilation or validation fails (see [`run_instance`]).
#[must_use]
pub fn table3_rows_sampled(instances: &[BenchmarkInstance], repeats: usize) -> Vec<Table3Row> {
    let registry = BackendRegistry::standard();
    let results = run_matrix_sampled(instances, 1, &registry, repeats);
    results
        .chunks_exact(registry.len())
        .zip(instances)
        .map(|(chunk, instance)| {
            // Select columns by registry id, not position, so the row stays
            // correct if `standard()` ever reorders or grows.
            let column = |id: &str| {
                chunk
                    .iter()
                    .find(|r| r.compiler == id)
                    .unwrap_or_else(|| panic!("standard registry provides {id}"))
                    .clone()
            };
            Table3Row {
                benchmark: instance.name.clone(),
                enola: column(ENOLA),
                non_storage: column(POWERMOVE_NON_STORAGE),
                with_storage: column(POWERMOVE_STORAGE),
            }
        })
        .collect()
}

/// Extracts a `--json <path>` flag from a CLI argument list, removing both
/// tokens when present. Every experiment binary uses this so results can be
/// recorded as JSON next to the printed tables.
pub fn take_json_path(args: &mut Vec<String>) -> Option<PathBuf> {
    take_flag(args, "--json").map(PathBuf::from)
}

/// Extracts `--flag <value>` from a CLI argument list, removing both tokens
/// and returning the value. Exits with code 2 when the value is missing —
/// the experiment binaries treat malformed invocations as usage errors.
/// Shared by every binary so flag handling cannot drift between them.
pub fn take_flag(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let index = args.iter().position(|a| a == flag)?;
    if index + 1 >= args.len() {
        eprintln!("{flag} requires an argument");
        std::process::exit(2);
    }
    let value = args.remove(index + 1);
    args.remove(index);
    Some(value)
}

/// Extracts a bare `--flag` switch, returning whether it was present.
pub fn take_switch(args: &mut Vec<String>, flag: &str) -> bool {
    if let Some(index) = args.iter().position(|a| a == flag) {
        args.remove(index);
        true
    } else {
        false
    }
}

/// [`take_flag`] parsed as a non-negative integer; exits with code 2 on a
/// non-numeric value.
pub fn take_usize_flag(args: &mut Vec<String>, flag: &str) -> Option<usize> {
    take_flag(args, flag).map(|value| {
        value.parse().unwrap_or_else(|_| {
            eprintln!("{flag} expects a non-negative integer, got {value:?}");
            std::process::exit(2);
        })
    })
}

/// [`take_flag`] parsed as a float; exits with code 2 on a non-numeric
/// value.
pub fn take_f64_flag(args: &mut Vec<String>, flag: &str) -> Option<f64> {
    take_flag(args, flag).map(|value| {
        value.parse().unwrap_or_else(|_| {
            eprintln!("{flag} expects a number, got {value:?}");
            std::process::exit(2);
        })
    })
}

/// Serializes `value` as pretty-printed JSON to `path`.
///
/// # Panics
///
/// Panics on I/O errors; the experiment binaries treat an unwritable report
/// path as fatal.
pub fn write_json<T: Serialize>(path: &Path, value: &T) {
    let json = serde_json::to_string_pretty(value).expect("serialization is infallible");
    let mut file = std::fs::File::create(path)
        .unwrap_or_else(|e| panic!("cannot create {}: {e}", path.display()));
    file.write_all(json.as_bytes())
        .and_then(|()| file.write_all(b"\n"))
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
    println!("wrote JSON report to {}", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;
    use powermove_benchmarks::{generate, BenchmarkFamily};
    use powermove_schedule::CompiledProgram;

    fn storage_entry() -> BackendRegistry {
        BackendRegistry::standard()
    }

    #[test]
    fn run_instance_produces_consistent_result() {
        let instance = generate(BenchmarkFamily::QaoaRegular3, 10, DEFAULT_SEED);
        let registry = storage_entry();
        let result = run_instance(&instance, 1, registry.entry(POWERMOVE_STORAGE).unwrap());
        assert_eq!(result.num_qubits, 10);
        assert_eq!(result.cz_gates, 15);
        assert!(result.fidelity > 0.0 && result.fidelity <= 1.0);
        assert!(result.execution_time_us > 0.0);
        assert!(result.stages >= 3);
        assert!(
            result.pass_timings.iter().any(|t| t.pass == "route"),
            "powermove results carry pass timings"
        );
    }

    #[test]
    fn storage_mode_eliminates_exposure_on_benchmarks() {
        let instance = generate(BenchmarkFamily::Bv, 14, DEFAULT_SEED);
        let registry = storage_entry();
        let with = run_instance(&instance, 1, registry.entry(POWERMOVE_STORAGE).unwrap());
        let enola = run_instance(&instance, 1, registry.entry(ENOLA).unwrap());
        assert_eq!(with.excitation_exposure, 0);
        assert!(enola.excitation_exposure > 0);
    }

    #[test]
    fn table3_row_improvements_favour_powermove() {
        // At toy scale the storage-zone benefit is small (the paper's
        // smallest instance has 30 qubits), so only require that PowerMove
        // is not meaningfully worse on fidelity and clearly faster to
        // execute.
        let instance = generate(BenchmarkFamily::QaoaRegular3, 12, DEFAULT_SEED);
        let row = table3_row(&instance);
        assert!(
            row.fidelity_improvement() > 0.9,
            "fidelity improvement {}",
            row.fidelity_improvement()
        );
        assert!(row.execution_time_improvement() > 1.0);
        // The storage zone removes every excitation exposure.
        assert_eq!(row.with_storage.excitation_exposure, 0);
    }

    #[test]
    fn registry_iterates_in_registration_order() {
        let registry = BackendRegistry::standard();
        let ids: Vec<&str> = registry.iter().map(RegisteredBackend::id).collect();
        assert_eq!(ids, vec![ENOLA, POWERMOVE_NON_STORAGE, POWERMOVE_STORAGE]);
        assert_eq!(registry.len(), 3);
        assert!(!registry.is_empty());
        assert!(registry.get("nonexistent").is_none());
    }

    #[test]
    fn registering_same_id_replaces_and_returns_the_old_backend() {
        let mut registry = BackendRegistry::standard();
        let displaced = registry.register(
            ENOLA,
            Box::new(PowerMoveCompiler::new(CompilerConfig::default())),
        );
        assert_eq!(registry.len(), 3);
        assert_eq!(registry.get(ENOLA).unwrap().name(), "powermove");
        assert_eq!(displaced.expect("enola was displaced").name(), "enola");
        // The replacement moved to the back of the iteration order.
        assert_eq!(
            registry.iter().map(RegisteredBackend::id).last(),
            Some(ENOLA)
        );
    }

    #[test]
    fn routing_variants_displace_user_backends_with_colliding_ids() {
        // A user backend squatting on a variant id is displaced (the
        // documented `register` semantics), never silently shadowed by — or
        // kept alongside — the variant.
        let mut registry = BackendRegistry::standard();
        registry.register(
            POWERMOVE_AUTO,
            Box::new(EnolaCompiler::new(EnolaConfig::default())),
        );
        let before = registry.len();
        let registry = registry.with_routing_variants();
        assert_eq!(registry.len(), before + 2, "3 variants, 1 id collision");
        assert_eq!(
            registry.get(POWERMOVE_AUTO).unwrap().name(),
            "powermove",
            "the variant displaced the squatter"
        );
        assert!(registry
            .get(POWERMOVE_AUTO)
            .unwrap()
            .config_description()
            .contains("routing=auto"));
    }

    #[test]
    fn registering_a_fresh_id_returns_none() {
        let mut registry = BackendRegistry::new();
        assert!(registry
            .register("a", Box::new(PowerMoveCompiler::default()))
            .is_none());
        assert!(registry
            .register("b", Box::new(PowerMoveCompiler::default()))
            .is_none());
        assert_eq!(registry.len(), 2);
    }

    #[test]
    fn run_matrix_is_instance_major_and_deterministic() {
        let registry = BackendRegistry::standard();
        let instances = vec![
            generate(BenchmarkFamily::Bv, 8, DEFAULT_SEED),
            generate(BenchmarkFamily::Qft, 6, DEFAULT_SEED),
        ];
        let results = run_matrix(&instances, 1, &registry);
        assert_eq!(results.len(), 6);
        let labels: Vec<(String, String)> = results
            .iter()
            .map(|r| (r.benchmark.clone(), r.compiler.clone()))
            .collect();
        for (i, instance) in instances.iter().enumerate() {
            for (j, entry) in registry.iter().enumerate() {
                assert_eq!(
                    labels[i * registry.len() + j],
                    (instance.name.clone(), entry.id().to_string())
                );
            }
        }
        // The parallel matrix agrees with the sequential per-instance path
        // on every deterministic metric.
        for (result, instance) in results.chunks_exact(3).zip(&instances) {
            for (parallel, entry) in result.iter().zip(registry.iter()) {
                let sequential = run_instance(instance, 1, entry);
                assert_eq!(parallel.fidelity, sequential.fidelity);
                assert_eq!(parallel.execution_time_us, sequential.execution_time_us);
                assert_eq!(parallel.stages, sequential.stages);
                assert_eq!(parallel.transfers, sequential.transfers);
                assert_eq!(parallel.cz_gates, sequential.cz_gates);
            }
        }
    }

    #[test]
    fn table3_rows_match_single_row_runs() {
        let instances = vec![
            generate(BenchmarkFamily::Bv, 8, DEFAULT_SEED),
            generate(BenchmarkFamily::QaoaRegular3, 10, DEFAULT_SEED),
        ];
        let rows = table3_rows(&instances);
        assert_eq!(rows.len(), 2);
        for (row, instance) in rows.iter().zip(&instances) {
            let single = table3_row(instance);
            assert_eq!(row.benchmark, instance.name);
            assert_eq!(row.enola.fidelity, single.enola.fidelity);
            assert_eq!(row.non_storage.fidelity, single.non_storage.fidelity);
            assert_eq!(row.with_storage.fidelity, single.with_storage.fidelity);
            assert_eq!(row.with_storage.stages, single.with_storage.stages);
        }
    }

    #[test]
    fn custom_backend_participates_in_run_all() {
        struct Fixed;
        impl CompilerBackend for Fixed {
            fn name(&self) -> &str {
                "fixed"
            }
            fn config_description(&self) -> String {
                "delegates to powermove defaults".to_string()
            }
            fn compile(
                &self,
                blocks: &powermove_circuit::BlockProgram,
                arch: &Architecture,
            ) -> Result<CompiledProgram, powermove::CompileError> {
                PowerMoveCompiler::new(CompilerConfig::default())
                    .compile_block_program(blocks, arch)
            }
        }

        let mut registry = BackendRegistry::new();
        registry.register("fixed", Box::new(Fixed));
        let instance = generate(BenchmarkFamily::Bv, 8, DEFAULT_SEED);
        let results = run_all(&instance, 1, &registry);
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].compiler, "fixed");
    }

    #[test]
    fn take_json_path_extracts_flag() {
        let mut args = vec![
            "QAOA".to_string(),
            "--json".to_string(),
            "out.json".to_string(),
        ];
        let path = take_json_path(&mut args);
        assert_eq!(path, Some(PathBuf::from("out.json")));
        assert_eq!(args, vec!["QAOA".to_string()]);
        assert_eq!(take_json_path(&mut args), None);
    }

    #[test]
    fn run_result_serializes_to_json() {
        let instance = generate(BenchmarkFamily::Bv, 8, DEFAULT_SEED);
        let registry = storage_entry();
        let result = run_instance(&instance, 1, registry.entry(ENOLA).unwrap());
        let json = serde_json::to_string(&result).unwrap();
        assert!(json.contains("\"compiler\":\"enola\""));
        assert!(json.contains("\"fidelity\""));
        assert!(json.contains("\"pass_timings\""));
    }
}
