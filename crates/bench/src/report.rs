//! Streaming JSONL matrix reports.
//!
//! A monolithic run that crashes after 40 minutes used to leave *nothing*:
//! the `--json` report was serialized only once every cell had finished.
//! [`ReportWriter`] instead appends one self-delimiting JSON line per
//! **completed** matrix cell, flushed as cells finish, so a crashed or
//! killed run still leaves a parseable partial report — and per-shard CI
//! jobs each leave a part-file that `bench-gate merge` reassembles into the
//! full-matrix report.
//!
//! Each line is a [`CellRecord`]: the shard name, the cell's deterministic
//! run-order index within the shard, and the full [`RunResult`]. Because
//! cells finish out of order under the thread pool, the *line order* of a
//! JSONL file is nondeterministic; [`merge_cells`] restores the canonical
//! order (shard registry order, then cell index), which is what makes a
//! merge of shard part-files byte-identical to a monolithic run's report.

use crate::gate::GateError;
use crate::harness::{RunResult, ShardRegistry};
use serde::{Serialize, Value};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// One streamed matrix cell: shard name, run-order index, and the result.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CellRecord {
    /// Name of the shard the cell belongs to, e.g. `"table2/small"`.
    pub shard: String,
    /// Deterministic run-order index of the cell within its shard.
    pub index: usize,
    /// The cell's run result.
    pub result: RunResult,
}

/// A cell read back from a JSONL stream. The result is kept as a parsed
/// [`Value`] tree: merging re-renders the tree verbatim (which preserves
/// byte-identity with the monolithic report), and the gate extracts only the
/// metrics it compares.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedCell {
    /// Name of the shard the cell belongs to.
    pub shard: String,
    /// Run-order index of the cell within its shard.
    pub index: usize,
    /// The serialized [`RunResult`] tree.
    pub result: Value,
}

/// Appends one JSON line per completed matrix cell to a `.jsonl` file.
///
/// `append` is safe to call from several pool workers at once (the file
/// handle sits behind a mutex) and flushes after every line, so the file is
/// a valid JSONL prefix at all times — killing the process mid-run loses at
/// most the cells that had not finished.
#[derive(Debug)]
pub struct ReportWriter {
    file: Mutex<std::fs::File>,
    path: PathBuf,
}

impl ReportWriter {
    /// Creates (truncating) the stream file.
    ///
    /// # Panics
    ///
    /// Panics if the file cannot be created; the experiment binaries treat
    /// an unwritable report path as fatal.
    #[must_use]
    pub fn create(path: &Path) -> Self {
        let file = std::fs::File::create(path)
            .unwrap_or_else(|e| panic!("cannot create {}: {e}", path.display()));
        ReportWriter {
            file: Mutex::new(file),
            path: path.to_path_buf(),
        }
    }

    /// The path the writer streams to.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one completed cell as a single JSON line and flushes it.
    ///
    /// # Panics
    ///
    /// Panics on I/O errors (see [`ReportWriter::create`]).
    pub fn append(&self, shard: &str, index: usize, result: &RunResult) {
        let record = CellRecord {
            shard: shard.to_string(),
            index,
            result: result.clone(),
        };
        let line = serde_json::to_jsonl_line(&record);
        let mut file = self.file.lock().expect("report stream poisoned");
        file.write_all(line.as_bytes())
            .and_then(|()| file.flush())
            .unwrap_or_else(|e| panic!("cannot append to {}: {e}", self.path.display()));
    }
}

/// Parses the text of a JSONL cell stream (see [`ReportWriter`]).
///
/// # Errors
///
/// Returns [`GateError::Parse`] on a malformed line or a record missing the
/// `shard`/`index`/`result` fields.
pub fn parse_cells(text: &str) -> Result<Vec<ParsedCell>, GateError> {
    let lines = serde_json::from_str_jsonl(text).map_err(|e| GateError::Parse(e.to_string()))?;
    lines
        .into_iter()
        .enumerate()
        .map(|(line, record)| {
            let field = |key: &str| {
                record
                    .get(key)
                    .ok_or_else(|| GateError::Parse(format!("record {line}: missing `{key}`")))
            };
            let shard = field("shard")?
                .as_str()
                .ok_or_else(|| GateError::Parse(format!("record {line}: `shard` is not a string")))?
                .to_string();
            let index = field("index")?
                .as_i64()
                .and_then(|i| usize::try_from(i).ok())
                .ok_or_else(|| {
                    GateError::Parse(format!(
                        "record {line}: `index` is not a non-negative integer"
                    ))
                })?;
            let result = field("result")?.clone();
            Ok(ParsedCell {
                shard,
                index,
                result,
            })
        })
        .collect()
}

/// Loads and parses one JSONL cell stream.
///
/// # Errors
///
/// Returns [`GateError::Io`] if the file cannot be read and
/// [`GateError::Parse`] if a record is malformed.
pub fn read_cells(path: &Path) -> Result<Vec<ParsedCell>, GateError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| GateError::Io(format!("{}: {e}", path.display())))?;
    parse_cells(&text)
}

/// Reassembles shard part-files into canonical full-matrix order: shards in
/// registry order (unknown shard names after the known ones, alphabetically),
/// then cells by run-order index. Rejects duplicate `(shard, index)` cells —
/// the same shard streamed twice into one merge is operator error, not data.
///
/// # Errors
///
/// Returns [`GateError::Parse`] on duplicate cells.
pub fn merge_cells(
    files: Vec<Vec<ParsedCell>>,
    shards: &ShardRegistry,
) -> Result<Vec<ParsedCell>, GateError> {
    let mut cells: Vec<ParsedCell> = files.into_iter().flatten().collect();
    let shard_rank = |name: &str| {
        shards
            .names()
            .iter()
            .position(|n| *n == name)
            .unwrap_or(usize::MAX)
    };
    cells.sort_by(|a, b| {
        shard_rank(&a.shard)
            .cmp(&shard_rank(&b.shard))
            .then_with(|| a.shard.cmp(&b.shard))
            .then_with(|| a.index.cmp(&b.index))
    });
    for pair in cells.windows(2) {
        if pair[0].shard == pair[1].shard && pair[0].index == pair[1].index {
            return Err(GateError::Parse(format!(
                "duplicate cell {}#{} — was the same shard report passed twice?",
                pair[0].shard, pair[0].index
            )));
        }
    }
    Ok(cells)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::DEFAULT_SEED;
    use crate::{run_instance, BackendRegistry, ENOLA};
    use powermove_benchmarks::{generate, BenchmarkFamily};

    fn sample_result() -> RunResult {
        let registry = BackendRegistry::standard();
        let instance = generate(BenchmarkFamily::Bv, 8, DEFAULT_SEED);
        run_instance(&instance, 1, registry.entry(ENOLA).unwrap())
    }

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "powermove-report-{tag}-{}.jsonl",
            std::process::id()
        ))
    }

    #[test]
    fn writer_streams_parseable_cells() {
        let result = sample_result();
        let path = temp_path("stream");
        let writer = ReportWriter::create(&path);
        assert_eq!(writer.path(), path.as_path());
        writer.append("table2/small", 0, &result);
        writer.append("table2/small", 1, &result);
        let cells = read_cells(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].shard, "table2/small");
        assert_eq!(cells[1].index, 1);
        assert_eq!(
            cells[0].result.get("compiler").and_then(Value::as_str),
            Some("enola")
        );
    }

    #[test]
    fn partial_stream_with_truncated_tail_still_parses_whole_lines() {
        let result = sample_result();
        let path = temp_path("partial");
        let writer = ReportWriter::create(&path);
        writer.append("fig6/sweep", 0, &result);
        writer.append("fig6/sweep", 1, &result);
        drop(writer);
        // Simulate a crash mid-append: keep line 1 plus half of line 2.
        let text = std::fs::read_to_string(&path).unwrap();
        let first_len = text.find('\n').unwrap() + 1;
        std::fs::write(&path, &text[..first_len + 40]).unwrap();
        let err = read_cells(&path).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
        // A crash *between* appends (the flush boundary) parses cleanly.
        std::fs::write(&path, &text[..first_len]).unwrap();
        let cells = read_cells(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].index, 0);
    }

    #[test]
    fn merge_orders_by_shard_registry_then_index() {
        let result = sample_result();
        let value = serde_json::to_value(&result);
        let cell = |shard: &str, index: usize| ParsedCell {
            shard: shard.to_string(),
            index,
            result: value.clone(),
        };
        let shards = ShardRegistry::standard(DEFAULT_SEED);
        let merged = merge_cells(
            vec![
                vec![cell("fig6/sweep", 1), cell("fig6/sweep", 0)],
                vec![cell("table2/large", 0)],
                vec![cell("custom/extra", 0), cell("table2/small", 0)],
            ],
            &shards,
        )
        .unwrap();
        let order: Vec<(String, usize)> =
            merged.iter().map(|c| (c.shard.clone(), c.index)).collect();
        assert_eq!(
            order,
            vec![
                ("table2/small".to_string(), 0),
                ("table2/large".to_string(), 0),
                ("fig6/sweep".to_string(), 0),
                ("fig6/sweep".to_string(), 1),
                ("custom/extra".to_string(), 0),
            ]
        );
    }

    #[test]
    fn merge_rejects_duplicate_cells() {
        let result = sample_result();
        let value = serde_json::to_value(&result);
        let cell = ParsedCell {
            shard: "table2/small".to_string(),
            index: 3,
            result: value,
        };
        let shards = ShardRegistry::standard(DEFAULT_SEED);
        let err = merge_cells(vec![vec![cell.clone()], vec![cell]], &shards).unwrap_err();
        assert!(err.to_string().contains("duplicate"), "{err}");
    }

    #[test]
    fn parse_cells_reports_missing_fields() {
        assert!(parse_cells(r#"{"index": 0, "result": {}}"#)
            .unwrap_err()
            .to_string()
            .contains("shard"));
        assert!(parse_cells(r#"{"shard": "s", "index": -1, "result": {}}"#)
            .unwrap_err()
            .to_string()
            .contains("index"));
        assert!(parse_cells(r#"{"shard": "s", "index": 0}"#)
            .unwrap_err()
            .to_string()
            .contains("result"));
        assert_eq!(parse_cells("").unwrap(), Vec::new());
    }
}
