//! Streaming JSONL matrix reports.
//!
//! A monolithic run that crashes after 40 minutes used to leave *nothing*:
//! the `--json` report was serialized only once every cell had finished.
//! [`ReportWriter`] instead appends one self-delimiting JSON line per
//! **completed** matrix cell, flushed as cells finish, so a crashed or
//! killed run still leaves a parseable partial report — and per-shard CI
//! jobs each leave a part-file that `bench-gate merge` reassembles into the
//! full-matrix report.
//!
//! Each line is a [`CellRecord`]: the shard name, the cell's deterministic
//! run-order index within the shard, and the full [`RunResult`]. Because
//! cells finish out of order under the thread pool, the *line order* of a
//! JSONL file is nondeterministic; [`merge_cells`] restores the canonical
//! order (shard registry order, then cell index), which is what makes a
//! merge of shard part-files byte-identical to a monolithic run's report.

use crate::gate::GateError;
use crate::harness::{RunResult, ShardRegistry};
use serde::{Serialize, Value};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// One streamed matrix cell: shard name, run-order index, and the result.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CellRecord {
    /// Name of the shard the cell belongs to, e.g. `"table2/small"`.
    pub shard: String,
    /// Deterministic run-order index of the cell within its shard.
    pub index: usize,
    /// The cell's run result.
    pub result: RunResult,
}

/// A cell read back from a JSONL stream. The result is kept as a parsed
/// [`Value`] tree: merging re-renders the tree verbatim (which preserves
/// byte-identity with the monolithic report), and the gate extracts only the
/// metrics it compares.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedCell {
    /// Name of the shard the cell belongs to.
    pub shard: String,
    /// Run-order index of the cell within its shard.
    pub index: usize,
    /// The serialized [`RunResult`] tree.
    pub result: Value,
}

/// Appends one JSON line per completed matrix cell to a `.jsonl` file.
///
/// `append` is safe to call from several pool workers at once (the file
/// handle sits behind a mutex) and flushes after every line, so the file is
/// a valid JSONL prefix at all times — killing the process mid-run loses at
/// most the cells that had not finished.
#[derive(Debug)]
pub struct ReportWriter {
    file: Mutex<std::fs::File>,
    path: PathBuf,
}

impl ReportWriter {
    /// Creates (truncating) the stream file.
    ///
    /// # Panics
    ///
    /// Panics if the file cannot be created; the experiment binaries treat
    /// an unwritable report path as fatal.
    #[must_use]
    pub fn create(path: &Path) -> Self {
        let file = std::fs::File::create(path)
            .unwrap_or_else(|e| panic!("cannot create {}: {e}", path.display()));
        ReportWriter {
            file: Mutex::new(file),
            path: path.to_path_buf(),
        }
    }

    /// The path the writer streams to.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one completed cell as a single JSON line and flushes it.
    ///
    /// # Panics
    ///
    /// Panics on I/O errors (see [`ReportWriter::create`]).
    pub fn append(&self, shard: &str, index: usize, result: &RunResult) {
        let record = CellRecord {
            shard: shard.to_string(),
            index,
            result: result.clone(),
        };
        let line = serde_json::to_jsonl_line(&record);
        let mut file = self.file.lock().expect("report stream poisoned");
        file.write_all(line.as_bytes())
            .and_then(|()| file.flush())
            .unwrap_or_else(|e| panic!("cannot append to {}: {e}", self.path.display()));
    }
}

/// Parses the text of a JSONL cell stream (see [`ReportWriter`]).
///
/// # Errors
///
/// Returns [`GateError::Parse`] on a malformed line or a record missing the
/// `shard`/`index`/`result` fields.
pub fn parse_cells(text: &str) -> Result<Vec<ParsedCell>, GateError> {
    let lines = serde_json::from_str_jsonl(text).map_err(|e| GateError::Parse(e.to_string()))?;
    lines
        .into_iter()
        .enumerate()
        .map(|(line, record)| {
            let field = |key: &str| {
                record
                    .get(key)
                    .ok_or_else(|| GateError::Parse(format!("record {line}: missing `{key}`")))
            };
            let shard = field("shard")?
                .as_str()
                .ok_or_else(|| GateError::Parse(format!("record {line}: `shard` is not a string")))?
                .to_string();
            let index = field("index")?
                .as_i64()
                .and_then(|i| usize::try_from(i).ok())
                .ok_or_else(|| {
                    GateError::Parse(format!(
                        "record {line}: `index` is not a non-negative integer"
                    ))
                })?;
            let result = field("result")?.clone();
            Ok(ParsedCell {
                shard,
                index,
                result,
            })
        })
        .collect()
}

/// Loads and parses one JSONL cell stream.
///
/// # Errors
///
/// Returns [`GateError::Io`] if the file cannot be read and
/// [`GateError::Parse`] if a record is malformed.
pub fn read_cells(path: &Path) -> Result<Vec<ParsedCell>, GateError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| GateError::Io(format!("{}: {e}", path.display())))?;
    parse_cells(&text)
}

/// Like [`parse_cells`], but forgives an **unterminated** malformed final
/// line — the artifact a SIGKILL leaves when it lands mid-append (the
/// writer appends one newline-terminated line per cell and flushes it, so
/// only an unfinished write can leave a tail without its newline). The
/// valid prefix parses normally and the dropped tail's parse error is
/// returned alongside it, so callers can warn; the lost cell then surfaces
/// as MISSING when the merged matrix is gated. A malformed line anywhere
/// *before* the tail — or a malformed final line that *is*
/// newline-terminated, which a crash cannot produce — is data corruption,
/// not a crash artifact, and still fails.
///
/// # Errors
///
/// Returns [`GateError::Parse`] when the stream is malformed beyond an
/// unterminated final line.
pub fn parse_cells_lossy(text: &str) -> Result<(Vec<ParsedCell>, Option<String>), GateError> {
    match parse_cells(text) {
        Ok(cells) => Ok((cells, None)),
        Err(error) => {
            if text.ends_with('\n') {
                // Every line made it out whole: whatever is malformed was
                // written that way.
                return Err(error);
            }
            let prefix = match text.rfind('\n') {
                Some(newline) => &text[..=newline],
                None => "",
            };
            match parse_cells(prefix) {
                Ok(cells) => Ok((cells, Some(error.to_string()))),
                Err(_) => Err(error),
            }
        }
    }
}

/// Loads one JSONL cell stream with [`parse_cells_lossy`] semantics.
///
/// # Errors
///
/// Returns [`GateError::Io`] if the file cannot be read, or
/// [`GateError::Parse`] when more than the final line is malformed.
pub fn read_cells_lossy(path: &Path) -> Result<(Vec<ParsedCell>, Option<String>), GateError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| GateError::Io(format!("{}: {e}", path.display())))?;
    parse_cells_lossy(&text)
}

/// Reassembles shard part-files into canonical full-matrix order: shards in
/// registry order (unknown shard names after the known ones, alphabetically),
/// then cells by run-order index. Rejects duplicate `(shard, index)` cells —
/// the same shard streamed twice into one merge is operator error, not data.
///
/// # Errors
///
/// Returns [`GateError::Parse`] on duplicate cells.
pub fn merge_cells(
    files: Vec<Vec<ParsedCell>>,
    shards: &ShardRegistry,
) -> Result<Vec<ParsedCell>, GateError> {
    let mut cells: Vec<ParsedCell> = files.into_iter().flatten().collect();
    let shard_rank = |name: &str| {
        shards
            .names()
            .iter()
            .position(|n| *n == name)
            .unwrap_or(usize::MAX)
    };
    cells.sort_by(|a, b| {
        shard_rank(&a.shard)
            .cmp(&shard_rank(&b.shard))
            .then_with(|| a.shard.cmp(&b.shard))
            .then_with(|| a.index.cmp(&b.index))
    });
    for pair in cells.windows(2) {
        if pair[0].shard == pair[1].shard && pair[0].index == pair[1].index {
            // Name the offending cell, not just its stream coordinates:
            // the operator greps the verdict table by compiler/benchmark.
            let label = |key: &str| {
                pair[0]
                    .result
                    .get(key)
                    .and_then(Value::as_str)
                    .unwrap_or("?")
                    .to_string()
            };
            return Err(GateError::Parse(format!(
                "duplicate cell {}#{} ({} on {}) — was the same shard report passed twice?",
                pair[0].shard,
                pair[0].index,
                label("compiler"),
                label("benchmark")
            )));
        }
    }
    Ok(cells)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::DEFAULT_SEED;
    use crate::{run_instance, BackendRegistry, ENOLA};
    use powermove_benchmarks::{generate, BenchmarkFamily};

    fn sample_result() -> RunResult {
        let registry = BackendRegistry::standard();
        let instance = generate(BenchmarkFamily::Bv, 8, DEFAULT_SEED);
        run_instance(&instance, 1, registry.entry(ENOLA).unwrap())
    }

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "powermove-report-{tag}-{}.jsonl",
            std::process::id()
        ))
    }

    #[test]
    fn writer_streams_parseable_cells() {
        let result = sample_result();
        let path = temp_path("stream");
        let writer = ReportWriter::create(&path);
        assert_eq!(writer.path(), path.as_path());
        writer.append("table2/small", 0, &result);
        writer.append("table2/small", 1, &result);
        let cells = read_cells(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].shard, "table2/small");
        assert_eq!(cells[1].index, 1);
        assert_eq!(
            cells[0].result.get("compiler").and_then(Value::as_str),
            Some("enola")
        );
    }

    #[test]
    fn partial_stream_with_truncated_tail_still_parses_whole_lines() {
        let result = sample_result();
        let path = temp_path("partial");
        let writer = ReportWriter::create(&path);
        writer.append("fig6/sweep", 0, &result);
        writer.append("fig6/sweep", 1, &result);
        drop(writer);
        // Simulate a crash mid-append: keep line 1 plus half of line 2.
        let text = std::fs::read_to_string(&path).unwrap();
        let first_len = text.find('\n').unwrap() + 1;
        std::fs::write(&path, &text[..first_len + 40]).unwrap();
        let err = read_cells(&path).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
        // A crash *between* appends (the flush boundary) parses cleanly.
        std::fs::write(&path, &text[..first_len]).unwrap();
        let cells = read_cells(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].index, 0);
    }

    #[test]
    fn merge_orders_by_shard_registry_then_index() {
        let result = sample_result();
        let value = serde_json::to_value(&result);
        let cell = |shard: &str, index: usize| ParsedCell {
            shard: shard.to_string(),
            index,
            result: value.clone(),
        };
        let shards = ShardRegistry::standard(DEFAULT_SEED);
        let merged = merge_cells(
            vec![
                vec![cell("fig6/sweep", 1), cell("fig6/sweep", 0)],
                vec![cell("table2/large", 0)],
                vec![cell("custom/extra", 0), cell("table2/small", 0)],
            ],
            &shards,
        )
        .unwrap();
        let order: Vec<(String, usize)> =
            merged.iter().map(|c| (c.shard.clone(), c.index)).collect();
        assert_eq!(
            order,
            vec![
                ("table2/small".to_string(), 0),
                ("table2/large".to_string(), 0),
                ("fig6/sweep".to_string(), 0),
                ("fig6/sweep".to_string(), 1),
                ("custom/extra".to_string(), 0),
            ]
        );
    }

    #[test]
    fn merge_rejects_duplicate_cells_naming_the_offender() {
        let result = sample_result();
        let value = serde_json::to_value(&result);
        let cell = ParsedCell {
            shard: "table2/small".to_string(),
            index: 3,
            result: value,
        };
        let shards = ShardRegistry::standard(DEFAULT_SEED);
        let err = merge_cells(vec![vec![cell.clone()], vec![cell]], &shards).unwrap_err();
        let message = err.to_string();
        assert!(message.contains("duplicate"), "{message}");
        assert!(message.contains("table2/small#3"), "{message}");
        // The offending cell is named, not just its stream coordinates.
        assert!(message.contains("enola"), "{message}");
        assert!(message.contains(&result.benchmark), "{message}");
    }

    #[test]
    fn duplicate_detection_survives_results_without_name_fields() {
        let cell = ParsedCell {
            shard: "table2/small".to_string(),
            index: 0,
            result: Value::Object(vec![]),
        };
        let shards = ShardRegistry::standard(DEFAULT_SEED);
        let err = merge_cells(vec![vec![cell.clone()], vec![cell]], &shards).unwrap_err();
        assert!(err.to_string().contains("? on ?"), "{err}");
    }

    #[test]
    fn lossy_parse_keeps_the_valid_prefix_of_a_torn_stream() {
        let result = sample_result();
        let path = temp_path("lossy");
        let writer = ReportWriter::create(&path);
        writer.append("fig6/sweep", 0, &result);
        writer.append("fig6/sweep", 1, &result);
        drop(writer);
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let first_len = text.find('\n').unwrap() + 1;

        // SIGKILL mid-append: half of line 2 survives. Strict parsing
        // errors; lossy parsing keeps line 1 and reports the dropped tail.
        let torn = &text[..first_len + 40];
        assert!(parse_cells(torn).is_err());
        let (cells, dropped) = parse_cells_lossy(torn).unwrap();
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].index, 0);
        assert!(dropped.unwrap().contains("line 2"));

        // Garbage bytes as the tail line behave the same way …
        let garbage = format!("{}not json at all", &text[..first_len]);
        let (cells, dropped) = parse_cells_lossy(&garbage).unwrap();
        assert_eq!(cells.len(), 1);
        assert!(dropped.is_some());

        // … a clean stream reports nothing dropped …
        let (cells, dropped) = parse_cells_lossy(&text).unwrap();
        assert_eq!(cells.len(), 2);
        assert!(dropped.is_none());

        // … corruption before the final line is not a crash artifact …
        let mid_corrupt = format!("broken\n{}", &text[first_len..]);
        assert!(parse_cells_lossy(&mid_corrupt).is_err());

        // … and neither is a malformed final line that was fully written
        // out (newline-terminated): the per-line flush means a crash can
        // only leave an unterminated tail.
        let terminated_bad = format!("{}{{\"index\": 0}}\n", &text[..first_len]);
        assert!(parse_cells_lossy(&terminated_bad).is_err());
    }

    #[test]
    fn read_cells_lossy_round_trips_through_a_file() {
        let result = sample_result();
        let path = temp_path("lossy-file");
        let writer = ReportWriter::create(&path);
        writer.append("table2/small", 0, &result);
        drop(writer);
        // Append a torn half-line as a crash would.
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("{\"shard\": \"table2/sm");
        std::fs::write(&path, &text).unwrap();
        let (cells, dropped) = read_cells_lossy(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(cells.len(), 1);
        assert!(dropped.is_some());
        assert!(read_cells_lossy(&PathBuf::from("/nonexistent/x.jsonl")).is_err());
    }

    #[test]
    fn parse_cells_reports_missing_fields() {
        assert!(parse_cells(r#"{"index": 0, "result": {}}"#)
            .unwrap_err()
            .to_string()
            .contains("shard"));
        assert!(parse_cells(r#"{"shard": "s", "index": -1, "result": {}}"#)
            .unwrap_err()
            .to_string()
            .contains("index"));
        assert!(parse_cells(r#"{"shard": "s", "index": 0}"#)
            .unwrap_err()
            .to_string()
            .contains("result"));
        assert_eq!(parse_cells("").unwrap(), Vec::new());
    }
}
