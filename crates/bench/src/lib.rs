//! Experiment harness for the PowerMove reproduction.
//!
//! This crate regenerates every table and figure of the paper's evaluation
//! (Sec. 7) from the reimplemented compilers:
//!
//! * `table1` — hardware parameters (Table 1);
//! * `table2` — benchmark instances and zone sizes (Table 2);
//! * `table3` — fidelity, execution time and compilation time of Enola vs
//!   PowerMove in the non-storage and with-storage configurations (Table 3);
//! * `fig6` — fidelity-factor breakdown versus qubit count for five
//!   benchmark families under the three compilers (Fig. 6);
//! * `fig7` — execution time and fidelity versus the number of AOD arrays
//!   (Fig. 7).
//!
//! Each binary prints a plain-text table and accepts a `--json <path>` flag
//! that serializes the underlying result structs, so results can be compared
//! against the numbers reported in the paper and recorded as trajectories.
//!
//! Compilers are dispatched through the open [`BackendRegistry`]: every
//! entry is a [`CompilerBackend`](powermove::CompilerBackend) trait object,
//! so additional strategies (ablations, new routers) can be registered
//! without modifying any experiment binary.
//!
//! The backend × suite matrix behind every binary fans out over the
//! `powermove-exec` thread pool ([`run_matrix`], [`run_all`],
//! [`table3_rows`]); set `POWERMOVE_THREADS` to pin the worker count.
//!
//! A seventh binary, `bench-gate`, runs the full matrix and compares the
//! results against the checked-in `bench/baseline.json` (see the [`gate`]
//! module), exiting non-zero on regression — CI runs it on every push.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod gate;
pub mod harness;

pub use gate::{
    compare, Baseline, BaselineEntry, GateError, GateReport, GateTolerance, MetricCheck, Verdict,
};
pub use harness::{
    run_all, run_instance, run_matrix, score_program, table3_row, table3_rows, take_json_path,
    write_json, BackendRegistry, RegisteredBackend, RunResult, Table3Row, DEFAULT_SEED, ENOLA,
    POWERMOVE_NON_STORAGE, POWERMOVE_STORAGE,
};
