//! Experiment harness for the PowerMove reproduction.
//!
//! This crate regenerates every table and figure of the paper's evaluation
//! (Sec. 7) from the reimplemented compilers:
//!
//! * `table1` — hardware parameters (Table 1);
//! * `table2` — benchmark instances and zone sizes (Table 2);
//! * `table3` — fidelity, execution time and compilation time of Enola vs
//!   PowerMove in the non-storage and with-storage configurations (Table 3);
//! * `fig6` — fidelity-factor breakdown versus qubit count for five
//!   benchmark families under the three compilers (Fig. 6);
//! * `fig7` — execution time and fidelity versus the number of AOD arrays
//!   (Fig. 7).
//!
//! Each binary prints a plain-text table and accepts a `--json <path>` flag
//! that serializes the underlying result structs, so results can be compared
//! against the numbers reported in the paper and recorded as trajectories.
//!
//! Compilers are dispatched through the open [`BackendRegistry`]: every
//! entry is a [`CompilerBackend`](powermove::CompilerBackend) trait object,
//! so additional strategies (ablations, new routers) can be registered
//! without modifying any experiment binary.
//!
//! The backend × suite matrix behind every binary fans out over the
//! `powermove-exec` thread pool ([`run_matrix`], [`run_all`],
//! [`table3_rows`]); set `POWERMOVE_THREADS` to pin the worker count.
//!
//! A seventh binary, `bench-gate`, runs the gated suite — **sharded** — and
//! compares the results against the checked-in `bench/baseline.json` (see
//! the [`gate`] module), exiting non-zero on regression; CI runs one matrix
//! job per shard plus a final merge-and-gate job.
//!
//! Three layers make the gate sharded, statistical and crash-tolerant:
//!
//! * **sharding** ([`harness::ShardRegistry`]) — the gated suite is split
//!   into named shards (`table2/small`, `table2/large`, `fig6/sweep`,
//!   `fig7/multi-aod`) that form a disjoint exact cover, so CI fans one job
//!   out per shard and `bench-gate --shard <name>` gates only that slice;
//! * **statistics** ([`stats::SampleStats`]) — wall-clock metrics are
//!   sampled over repeat runs (`--repeats`, default 3) and gated on a
//!   median-vs-confidence-interval comparison instead of a 4× slack;
//! * **streaming** ([`report::ReportWriter`]) — every completed matrix cell
//!   is appended to a JSONL report as it finishes, so a crashed shard still
//!   leaves a mergeable partial report, and `bench-gate merge` reassembles
//!   the shard part-files into the full-matrix report and verdict table.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod gate;
pub mod harness;
pub mod lint;
pub mod report;
pub mod stats;

pub use gate::{
    compare, Baseline, BaselineEntry, GateError, GateReport, GateTolerance, MetricCheck, Verdict,
    BASELINE_VERSION,
};
pub use harness::{
    fig6_sweeps, fig7_cases, lint_corpus_cells, run_all, run_instance, run_instance_sampled,
    run_matrix, run_matrix_sampled, run_on_architecture, run_shard, score_program,
    score_program_sampled, service_smoke_cells, table3_row, table3_rows, table3_rows_sampled,
    take_f64_flag, take_flag, take_json_path, take_switch, take_usize_flag, write_json,
    ArchVariant, BackendRegistry, RegisteredBackend, RunResult, ShardCell, ShardRegistry,
    SuiteShard, Table3Row, DEFAULT_SEED, ENOLA, LARGE_SHARD_QUBITS, POWERMOVE_AUTO,
    POWERMOVE_LOOKAHEAD, POWERMOVE_MULTI_AOD, POWERMOVE_NON_STORAGE, POWERMOVE_STORAGE,
};
pub use lint::{
    lint_circuit, lint_program, lint_service_log, replay_reproducer, run_campaign, shrink_instance,
    CampaignConfig, CampaignFailure, CampaignSummary, CorpusInstance, CorpusOp, JsonlReport,
    LintRule, LintViolation, ReproducerConfig,
};
pub use report::{
    merge_cells, parse_cells, parse_cells_lossy, read_cells, read_cells_lossy, CellRecord,
    ParsedCell, ReportWriter,
};
pub use stats::{SampleStats, DEFAULT_REPEATS};
