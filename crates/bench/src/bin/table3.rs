//! Regenerates Table 3 of the paper: fidelity, execution time and
//! compilation time of Enola versus PowerMove (non-storage and with-storage)
//! on every benchmark instance of Table 2.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p powermove-bench --bin table3 \
//!     [name-filter] [--repeats <n>] [--json <path>]
//! ```
//!
//! An optional substring filter restricts the run to matching benchmark
//! names (e.g. `QAOA-regular3` or `BV-70`); `--repeats` samples each cell's
//! compile wall clock over repeat runs and reports the median (default 1),
//! and `--json` additionally writes the rows as a JSON report.

use powermove_bench::{
    table3_rows_sampled, take_json_path, take_usize_flag, write_json, Table3Row, DEFAULT_SEED,
};
use powermove_benchmarks::table2_suite;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let json_path = take_json_path(&mut args);
    let repeats = take_usize_flag(&mut args, "--repeats").unwrap_or(1);
    let filter = args.first().cloned().unwrap_or_default();
    let suite = table2_suite(DEFAULT_SEED);

    println!(
        "{:<18} {:>12} {:>12} {:>12} {:>9} | {:>12} {:>12} {:>12} {:>7} | {:>10} {:>10} {:>8}",
        "Benchmark",
        "Enola Fid.",
        "Our(non-st)",
        "Our(storage)",
        "Fid.Impr",
        "Enola Texe",
        "non-st Texe",
        "storage Texe",
        "T.Impr",
        "Enola Tc(s)",
        "Our Tc(s)",
        "Tc.Impr"
    );
    // The instance × configuration matrix runs in parallel on the
    // POWERMOVE_THREADS pool; rows come back in suite order.
    let selected: Vec<_> = suite
        .into_iter()
        .filter(|i| filter.is_empty() || i.name.contains(&filter))
        .collect();
    let rows: Vec<Table3Row> = table3_rows_sampled(&selected, repeats);
    for row in &rows {
        let our_tcomp = 0.5 * (row.non_storage.compile_time_s + row.with_storage.compile_time_s);
        println!(
            "{:<18} {:>12.3e} {:>12.3e} {:>12.3e} {:>8.2}x | {:>12.1} {:>12.1} {:>12.1} {:>6.2}x | {:>10.3} {:>10.3} {:>7.2}x",
            row.benchmark,
            row.enola.fidelity,
            row.non_storage.fidelity,
            row.with_storage.fidelity,
            row.fidelity_improvement(),
            row.enola.execution_time_us,
            row.non_storage.execution_time_us,
            row.with_storage.execution_time_us,
            row.execution_time_improvement(),
            row.enola.compile_time_s,
            our_tcomp,
            row.compile_time_improvement(),
        );
    }
    if let Some(path) = json_path {
        write_json(&path, &rows);
    }
}
