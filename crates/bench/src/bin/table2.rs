//! Regenerates Table 2 of the paper: the benchmark instances and the zone
//! dimensions of the hardware configuration derived from each qubit count.

use powermove_bench::DEFAULT_SEED;
use powermove_benchmarks::table2_suite;
use powermove_circuit::CircuitStats;
use powermove_hardware::Zone;

fn main() {
    let suite = table2_suite(DEFAULT_SEED);
    println!(
        "{:<20} {:>8} {:>10} {:>9} {:>18} {:>16} {:>18}",
        "Name", "#Qubits", "#CZ gates", "#Blocks", "Compute (um^2)", "Inter (um^2)", "Storage (um^2)"
    );
    for instance in &suite {
        let arch = instance.architecture();
        let stats = CircuitStats::of(&instance.circuit);
        let (cw, ch) = arch.grid().zone_size_um(Zone::Compute);
        let (iw, ih) = arch.grid().inter_zone_size_um();
        let (sw, sh) = arch.grid().zone_size_um(Zone::Storage);
        println!(
            "{:<20} {:>8} {:>10} {:>9} {:>18} {:>16} {:>18}",
            instance.name,
            instance.num_qubits,
            stats.cz_gates,
            stats.cz_blocks,
            format!("{cw:.0} x {ch:.0}"),
            format!("{iw:.0} x {ih:.0}"),
            format!("{sw:.0} x {sh:.0}"),
        );
    }
}
