//! Regenerates Table 2 of the paper: the benchmark instances and the zone
//! dimensions of the hardware configuration derived from each qubit count,
//! plus the gate shard each instance belongs to.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p powermove-bench --bin table2 [--json <path>]
//! ```

use powermove_bench::{take_json_path, write_json, ShardRegistry, DEFAULT_SEED, POWERMOVE_STORAGE};
use powermove_benchmarks::table2_suite;
use powermove_circuit::CircuitStats;
use powermove_hardware::Zone;
use serde::Serialize;

/// One serializable row of Table 2.
#[derive(Debug, Clone, Serialize)]
struct Table2Row {
    name: String,
    num_qubits: u32,
    cz_gates: usize,
    cz_blocks: usize,
    shard: String,
    compute_zone_um: (f64, f64),
    inter_zone_um: (f64, f64),
    storage_zone_um: (f64, f64),
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let json_path = take_json_path(&mut args);
    let suite = table2_suite(DEFAULT_SEED);
    let shards = ShardRegistry::standard(DEFAULT_SEED);
    println!(
        "{:<20} {:>8} {:>10} {:>9} {:<14} {:>18} {:>16} {:>18}",
        "Name",
        "#Qubits",
        "#CZ gates",
        "#Blocks",
        "Shard",
        "Compute (um^2)",
        "Inter (um^2)",
        "Storage (um^2)"
    );
    let mut rows: Vec<Table2Row> = Vec::new();
    for instance in &suite {
        let arch = instance.architecture();
        let stats = CircuitStats::of(&instance.circuit);
        let (cw, ch) = arch.grid().zone_size_um(Zone::Compute);
        let (iw, ih) = arch.grid().inter_zone_size_um();
        let (sw, sh) = arch.grid().zone_size_um(Zone::Storage);
        // Every Table 2 instance is gated under the with-storage backend in
        // exactly one shard of the standard partition.
        let shard = shards
            .shard_of_cell(POWERMOVE_STORAGE, &instance.name)
            .map_or("-", |s| s.name())
            .to_string();
        println!(
            "{:<20} {:>8} {:>10} {:>9} {:<14} {:>18} {:>16} {:>18}",
            instance.name,
            instance.num_qubits,
            stats.cz_gates,
            stats.cz_blocks,
            shard,
            format!("{cw:.0} x {ch:.0}"),
            format!("{iw:.0} x {ih:.0}"),
            format!("{sw:.0} x {sh:.0}"),
        );
        rows.push(Table2Row {
            name: instance.name.clone(),
            num_qubits: instance.num_qubits,
            cz_gates: stats.cz_gates,
            cz_blocks: stats.cz_blocks,
            shard,
            compute_zone_um: (cw, ch),
            inter_zone_um: (iw, ih),
            storage_zone_um: (sw, sh),
        });
    }
    if let Some(path) = json_path {
        write_json(&path, &rows);
    }
}
