//! Regenerates Table 1 of the paper: fidelity and duration of the elementary
//! neutral-atom operations used by the compiler and the fidelity model.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p powermove-bench --bin table1 [--json <path>]
//! ```

use powermove_bench::{take_json_path, write_json};
use powermove_hardware::PhysicalParams;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let json_path = take_json_path(&mut args);
    if !args.is_empty() {
        // Table 1 takes no positional arguments; a typo'd flag silently
        // ignored would be mistaken for having taken effect.
        eprintln!("unrecognized arguments: {args:?}");
        std::process::exit(2);
    }
    let p = PhysicalParams::default();
    println!("Table 1: NAQC operation parameters");
    println!("{:<28} {:>12} {:>16}", "Operation", "Fidelity", "Duration");
    println!(
        "{:<28} {:>11.2}% {:>16}",
        "1Q gate (Raman)",
        p.one_qubit_fidelity * 100.0,
        format!("{:.0} us", p.one_qubit_duration * 1e6)
    );
    println!(
        "{:<28} {:>11.2}% {:>16}",
        "CZ gate (Rydberg)",
        p.cz_fidelity * 100.0,
        format!("{:.0} ns", p.cz_duration * 1e9)
    );
    println!(
        "{:<28} {:>11.2}% {:>16}",
        "Excitation (non-interacting)",
        p.excitation_fidelity * 100.0,
        format!("{:.0} ns", p.cz_duration * 1e9)
    );
    println!(
        "{:<28} {:>11.2}% {:>16}",
        "SLM<->AOD transfer",
        p.transfer_fidelity * 100.0,
        format!("{:.0} us", p.transfer_duration * 1e6)
    );
    println!();
    println!(
        "Qubit movement: ~100% fidelity while a < {:.0} m/s^2",
        p.max_acceleration
    );
    for d_um in [27.5_f64, 110.0] {
        let t = powermove_hardware::move_duration(d_um * 1e-6, p.max_acceleration);
        println!("  {:>6.1} um move -> {:>6.0} us", d_um, t * 1e6);
    }
    println!();
    println!(
        "Geometry: {:.0} um site spacing, {:.0} um compute/storage gap,",
        p.site_spacing * 1e6,
        p.zone_gap * 1e6
    );
    println!(
        "  Rydberg radius {:.0} um, minimum non-interacting separation {:.0} um,",
        p.rydberg_radius * 1e6,
        p.min_separation * 1e6
    );
    println!("  coherence time T2 = {:.1} s", p.coherence_time);

    if let Some(path) = json_path {
        write_json(&path, &p);
    }
}
