//! `schedule-lint` — replay emitted programs through the schedule
//! invariant rules, and sweep seeded circuit corpora for violations.
//!
//! ```text
//! schedule-lint qasm <file> [--aods N] [--arch VARIANT]
//! schedule-lint gen --seed S [--count N]
//! schedule-lint jsonl <file>
//! schedule-lint campaign [--cases N] [--seed BASE] [--out DIR] [--json PATH]
//! schedule-lint replay <config.json> [...]
//! ```
//!
//! * `qasm` lints one OpenQASM 2.0 file under all four routing strategies
//!   on the chosen architecture variant (default: the paper's machine at
//!   one AOD array).
//! * `gen` lints seeded generator cases (`--count` consecutive seeds,
//!   default 1) — the same generator the campaign sweeps.
//! * `jsonl` lints every compile frame of a service request log.
//! * `campaign` runs the corpus sweep: seeded circuits × 4 strategies ×
//!   1–4 AODs × the architecture-variant grid, shrinking failures and
//!   persisting reproducers under `--out` (default `bench/reproducers`).
//!   `POWERMOVE_LINT_CASES` overrides the default case count (1000) when
//!   `--cases` is not given; the summary JSON is written to `--json`
//!   (default `<out>/campaign-summary.json`).
//! * `replay` re-lints checked-in reproducer configs and fails if any
//!   still fires (the regression check behind `tests/lint_reproducers.rs`).
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage or input error.

use powermove_bench::harness::{take_flag, take_usize_flag, write_json, ArchVariant};
use powermove_bench::lint::{
    lint_circuit, lint_service_log, run_campaign, CampaignConfig, CorpusInstance, LintViolation,
};
use powermove_circuit::qasm;
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: schedule-lint <command>\n\
         \n\
         commands:\n\
         \x20 qasm <file> [--aods N] [--arch VARIANT]   lint one OpenQASM file\n\
         \x20 gen --seed S [--count N]                  lint seeded generator cases\n\
         \x20 jsonl <file>                              lint a service request log\n\
         \x20 campaign [--cases N] [--seed BASE] [--out DIR] [--json PATH]\n\
         \x20                                           run the corpus campaign\n\
         \x20 replay <config.json> [...]                re-lint checked-in reproducers\n\
         \n\
         architecture variants: standard, wide, deep-storage, slow-transfer"
    );
    ExitCode::from(2)
}

fn print_violations(label: &str, violations: &[LintViolation]) {
    for v in violations {
        println!(
            "VIOLATION {label} [{}] {}: {}",
            v.rule, v.strategy, v.message
        );
    }
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first().cloned() else {
        return usage();
    };
    args.remove(0);
    match command.as_str() {
        "qasm" => run_qasm(args),
        "gen" => run_gen(args),
        "jsonl" => run_jsonl(args),
        "campaign" => run_campaign_cmd(args),
        "replay" => run_replay(args),
        _ => usage(),
    }
}

fn parse_arch(args: &mut Vec<String>) -> Result<ArchVariant, ExitCode> {
    match take_flag(args, "--arch") {
        None => Ok(ArchVariant::Standard),
        Some(name) => ArchVariant::from_name(&name).ok_or_else(|| {
            eprintln!("unknown architecture variant {name:?}");
            ExitCode::from(2)
        }),
    }
}

fn run_qasm(mut args: Vec<String>) -> ExitCode {
    let aods = take_usize_flag(&mut args, "--aods").unwrap_or(1);
    let variant = match parse_arch(&mut args) {
        Ok(v) => v,
        Err(code) => return code,
    };
    let [path] = args.as_slice() else {
        return usage();
    };
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let circuit = match qasm::from_qasm(&text) {
        Ok(circuit) => circuit,
        Err(e) => {
            eprintln!("{path}: {e}");
            return ExitCode::from(2);
        }
    };
    let arch = variant
        .architecture_for(circuit.num_qubits())
        .with_num_aods(aods);
    let violations = lint_circuit(&circuit, &arch);
    print_violations(path, &violations);
    report_outcome(1, violations.len())
}

fn run_gen(mut args: Vec<String>) -> ExitCode {
    let Some(seed) = take_flag(&mut args, "--seed").and_then(|s| s.parse::<u64>().ok()) else {
        return usage();
    };
    let count = take_usize_flag(&mut args, "--count").unwrap_or(1) as u64;
    if !args.is_empty() {
        return usage();
    }
    let mut total = 0;
    for seed in seed..seed + count.max(1) {
        let instance = CorpusInstance::generate(seed);
        let violations = instance.lint();
        println!(
            "seed {seed}: {} qubits, {} gates, {} AODs, arch {} -> {}",
            instance.num_qubits,
            instance.ops.len(),
            instance.num_aods,
            instance.arch.name(),
            if violations.is_empty() {
                "clean".to_string()
            } else {
                format!("{} violation(s)", violations.len())
            }
        );
        print_violations(&format!("seed{seed}"), &violations);
        total += violations.len();
    }
    report_outcome(count.max(1) as usize, total)
}

fn run_jsonl(args: Vec<String>) -> ExitCode {
    let [path] = args.as_slice() else {
        return usage();
    };
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let report = lint_service_log(&text);
    for (line, v) in &report.violations {
        println!(
            "VIOLATION {path}:{line} [{}] {}: {}",
            v.rule, v.strategy, v.message
        );
    }
    println!(
        "{}: {} line(s), {} compile frame(s) linted, {} skipped",
        path, report.lines, report.linted, report.skipped
    );
    report_outcome(report.linted, report.violations.len())
}

fn run_campaign_cmd(mut args: Vec<String>) -> ExitCode {
    let env_cases = std::env::var("POWERMOVE_LINT_CASES")
        .ok()
        .and_then(|v| v.parse::<u64>().ok());
    let cases = take_usize_flag(&mut args, "--cases")
        .map(|c| c as u64)
        .or(env_cases)
        .unwrap_or(1000);
    let base_seed = take_flag(&mut args, "--seed")
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(0);
    let out_dir = take_flag(&mut args, "--out")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("bench/reproducers"));
    let json_path = take_flag(&mut args, "--json")
        .map(PathBuf::from)
        .unwrap_or_else(|| out_dir.join("campaign-summary.json"));
    if !args.is_empty() {
        return usage();
    }
    let config = CampaignConfig {
        cases,
        base_seed,
        out_dir: Some(out_dir.clone()),
    };
    println!(
        "campaign: {cases} case(s) from seed {base_seed}, reproducers -> {}",
        out_dir.display()
    );
    let (summary, failures) = run_campaign(&config);
    for failure in &failures {
        println!(
            "FAILURE seed {} shrunk to {} gate(s):",
            failure.instance.seed,
            failure.instance.ops.len()
        );
        print_violations(
            &format!("seed{}", failure.instance.seed),
            &failure.violations,
        );
    }
    if let Some(parent) = json_path.parent() {
        std::fs::create_dir_all(parent).ok();
    }
    write_json(&json_path, &summary);
    println!(
        "campaign: {} case(s), {} violation(s), {} reproducer(s), clean={}",
        summary.cases,
        summary.violations,
        summary.reproducers.len(),
        summary.clean
    );
    report_outcome(summary.cases as usize, summary.violations as usize)
}

fn run_replay(args: Vec<String>) -> ExitCode {
    if args.is_empty() {
        return usage();
    }
    let mut total = 0;
    for path in &args {
        match powermove_bench::replay_reproducer(std::path::Path::new(path)) {
            Ok(violations) => {
                print_violations(path, &violations);
                if violations.is_empty() {
                    println!("{path}: clean");
                }
                total += violations.len();
            }
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::from(2);
            }
        }
    }
    report_outcome(args.len(), total)
}

fn report_outcome(linted: usize, violations: usize) -> ExitCode {
    if violations == 0 {
        println!("schedule-lint: PASS ({linted} target(s) clean)");
        ExitCode::SUCCESS
    } else {
        println!("schedule-lint: FAIL ({violations} violation(s))");
        ExitCode::FAILURE
    }
}
