//! Regenerates Fig. 7 of the paper: execution time and fidelity of the
//! with-storage PowerMove configuration as the number of AOD arrays grows
//! from 1 to 4, on the five benchmark instances used in the figure — now
//! under three routing columns: the greedy router's chunked packing, the
//! multi-AOD collective-move scheduler's duration-balanced windows, and the
//! portfolio auto-tuner that compiles every candidate and keeps the
//! schedule with the lower movement wall clock.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p powermove-bench --bin fig7 [--json <path>]
//! ```

use powermove_bench::{
    fig7_cases, run_instance, take_json_path, write_json, BackendRegistry, RunResult, DEFAULT_SEED,
    POWERMOVE_AUTO, POWERMOVE_MULTI_AOD, POWERMOVE_STORAGE,
};
use powermove_benchmarks::generate;
use powermove_exec::ThreadPool;
use serde::Serialize;

/// One serializable point of Fig. 7: an AOD count paired with its result.
#[derive(Debug, Clone, Serialize)]
struct Fig7Point {
    aods: usize,
    result: RunResult,
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let json_path = take_json_path(&mut args);
    let registry = BackendRegistry::standard().with_routing_variants();
    // The case list and the backend columns are shared with the
    // `fig7/multi-aod` gate shard (`powermove_bench::fig7_cases`), so the
    // figure and the CI gate can never drift apart: greedy vs the multi-AOD
    // scheduler vs the portfolio auto-tuner.
    let backends = [POWERMOVE_STORAGE, POWERMOVE_MULTI_AOD, POWERMOVE_AUTO];
    let cases = fig7_cases();
    println!(
        "{:<20} {:<22} {:>6} {:>14} {:>14} {:>12} {:>8}",
        "Benchmark", "Backend", "#AODs", "Texe (us)", "Tmove (us)", "Fidelity", "Stages"
    );
    // Fan the instance × backend × AOD-count grid out over the
    // POWERMOVE_THREADS pool; par_map keeps the results in grid order.
    let instances: Vec<_> = cases
        .into_iter()
        .map(|(family, n)| generate(family, n, DEFAULT_SEED))
        .collect();
    let jobs: Vec<(usize, &str, usize)> = (0..instances.len())
        .flat_map(|i| {
            backends
                .iter()
                .flat_map(move |&backend| (1..=4_usize).map(move |aods| (i, backend, aods)))
        })
        .collect();
    let results: Vec<Fig7Point> = ThreadPool::from_env().par_map(jobs, |(i, backend, aods)| {
        let entry = registry.entry(backend).expect("backend registered");
        Fig7Point {
            aods,
            result: run_instance(&instances[i], aods, entry),
        }
    });

    for (i, point) in results.iter().enumerate() {
        println!(
            "{:<20} {:<22} {:>6} {:>14.1} {:>14.1} {:>12.3e} {:>8}",
            point.result.benchmark,
            point.result.compiler,
            point.aods,
            point.result.execution_time_us,
            point.result.movement_time_us,
            point.result.fidelity,
            point.result.stages
        );
        if (i + 1) % 4 == 0 {
            println!();
        }
    }
    if let Some(path) = json_path {
        write_json(&path, &results);
    }
}
