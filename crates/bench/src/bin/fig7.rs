//! Regenerates Fig. 7 of the paper: execution time and fidelity of the
//! with-storage PowerMove configuration as the number of AOD arrays grows
//! from 1 to 4, on the five benchmark instances used in the figure.

use powermove_bench::{run_instance, CompilerKind, DEFAULT_SEED};
use powermove_benchmarks::{generate, BenchmarkFamily};

fn main() {
    let cases = [
        (BenchmarkFamily::QaoaRegular3, 100_u32),
        (BenchmarkFamily::QsimRand, 20),
        (BenchmarkFamily::Qft, 18),
        (BenchmarkFamily::Vqe, 50),
        (BenchmarkFamily::Bv, 70),
    ];
    println!(
        "{:<20} {:>6} {:>14} {:>12} {:>12}",
        "Benchmark", "#AODs", "Texe (us)", "Fidelity", "Stages"
    );
    for (family, n) in cases {
        let instance = generate(family, n, DEFAULT_SEED);
        for aods in 1..=4_usize {
            let result = run_instance(&instance, aods, CompilerKind::PowerMoveStorage);
            println!(
                "{:<20} {:>6} {:>14.1} {:>12.3e} {:>12}",
                instance.name, aods, result.execution_time_us, result.fidelity, result.stages
            );
        }
        println!();
    }
}
