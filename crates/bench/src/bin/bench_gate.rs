//! The benchmark-regression gate: runs the full backend × suite matrix in
//! parallel and compares fidelity, execution-time, compile-time and
//! schedule-shape metrics against the checked-in `bench/baseline.json`,
//! exiting non-zero on any regression or coverage drift. CI runs this on
//! every push.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p powermove-bench --bin bench-gate -- \
//!     [--baseline <path>] [--json <path>] [--update] [--filter <substr>] \
//!     [--fidelity-tol <rel>] [--exec-tol <rel>] \
//!     [--compile-tol <rel>] [--compile-floor <seconds>]
//! ```
//!
//! * `--baseline` — baseline file (default `bench/baseline.json`);
//! * `--json` — additionally record the raw `RunResult`s of this run;
//! * `--update` — rewrite the baseline from this run instead of gating
//!   (use after intentional performance/fidelity changes, and commit the
//!   refreshed file);
//! * `--filter` — restrict the suite to benchmarks whose name contains the
//!   substring (missing-entry checks are restricted to the same subset);
//! * tolerance flags — override the [`GateTolerance`] defaults.
//!
//! Exit codes: `0` pass (improvements allowed), `1` regression or missing
//! entry, `2` usage/baseline errors.

use powermove_bench::gate::{compare, Baseline, GateTolerance, Verdict};
use powermove_bench::{
    run_matrix, take_json_path, write_json, BackendRegistry, BaselineEntry, DEFAULT_SEED,
};
use powermove_benchmarks::table2_suite;
use std::path::PathBuf;

/// Extracts `--flag <value>` from the argument list, returning the value.
fn take_flag(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let index = args.iter().position(|a| a == flag)?;
    if index + 1 >= args.len() {
        eprintln!("{flag} requires an argument");
        std::process::exit(2);
    }
    let value = args.remove(index + 1);
    args.remove(index);
    Some(value)
}

/// Extracts a bare `--flag`, returning whether it was present.
fn take_switch(args: &mut Vec<String>, flag: &str) -> bool {
    if let Some(index) = args.iter().position(|a| a == flag) {
        args.remove(index);
        true
    } else {
        false
    }
}

fn parse_f64_flag(args: &mut Vec<String>, flag: &str) -> Option<f64> {
    take_flag(args, flag).map(|value| {
        value.parse().unwrap_or_else(|_| {
            eprintln!("{flag} expects a number, got {value:?}");
            std::process::exit(2);
        })
    })
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let json_path = take_json_path(&mut args);
    let baseline_path = take_flag(&mut args, "--baseline")
        .map_or_else(|| PathBuf::from("bench/baseline.json"), PathBuf::from);
    let update = take_switch(&mut args, "--update");
    let filter = take_flag(&mut args, "--filter").unwrap_or_default();

    let mut tolerance = GateTolerance::default();
    if let Some(v) = parse_f64_flag(&mut args, "--fidelity-tol") {
        tolerance.fidelity = v;
    }
    if let Some(v) = parse_f64_flag(&mut args, "--exec-tol") {
        tolerance.exec_time = v;
    }
    if let Some(v) = parse_f64_flag(&mut args, "--compile-tol") {
        tolerance.compile_time = v;
    }
    if let Some(v) = parse_f64_flag(&mut args, "--compile-floor") {
        tolerance.compile_time_floor_s = v;
    }
    if !args.is_empty() {
        eprintln!("unrecognized arguments: {args:?}");
        std::process::exit(2);
    }

    // The full Table 2 suite under every registered backend, fanned out over
    // the POWERMOVE_THREADS pool.
    let suite: Vec<_> = table2_suite(DEFAULT_SEED)
        .into_iter()
        .filter(|i| filter.is_empty() || i.name.contains(&filter))
        .collect();
    if suite.is_empty() {
        // A vacuous gate (0 checks) must not report PASS: a typo'd filter
        // would otherwise silently disable the gate.
        eprintln!("bench-gate: --filter {filter:?} matches no benchmark instance");
        std::process::exit(2);
    }
    let registry = BackendRegistry::standard();
    println!(
        "bench-gate: {} instances x {} backends",
        suite.len(),
        registry.len()
    );
    let started = std::time::Instant::now();
    let results = run_matrix(&suite, 1, &registry);
    println!(
        "bench-gate: matrix finished in {:.1}s",
        started.elapsed().as_secs_f64()
    );
    if let Some(path) = json_path {
        write_json(&path, &results);
    }
    let current: Vec<BaselineEntry> = results.iter().map(BaselineEntry::from).collect();

    if update {
        let baseline = Baseline::from_results(&results);
        write_json(&baseline_path, &baseline);
        println!(
            "bench-gate: baseline refreshed with {} entries — review and commit it",
            baseline.entries.len()
        );
        return;
    }

    let baseline = match Baseline::load(&baseline_path) {
        Ok(baseline) => baseline,
        Err(e) => {
            eprintln!("bench-gate: {e}");
            eprintln!("bench-gate: run with --update to record a fresh baseline");
            std::process::exit(2);
        }
    };
    // When gating a filtered subset, only hold that subset accountable for
    // baseline coverage.
    let scoped = if filter.is_empty() {
        baseline
    } else {
        Baseline {
            entries: baseline
                .entries
                .into_iter()
                .filter(|e| e.benchmark.contains(&filter))
                .collect(),
        }
    };

    let report = compare(&scoped, &current, &tolerance);
    for check in &report.checks {
        match check.verdict {
            Verdict::Pass => {}
            Verdict::Improved => println!(
                "IMPROVED   {:<22} {:<18} {:<18} {:.6e} -> {:.6e}",
                check.compiler, check.benchmark, check.metric, check.baseline, check.current
            ),
            Verdict::Regressed => println!(
                "REGRESSED  {:<22} {:<18} {:<18} {:.6e} -> {:.6e}",
                check.compiler, check.benchmark, check.metric, check.baseline, check.current
            ),
        }
    }
    for (compiler, benchmark) in &report.missing_in_current {
        println!("MISSING    {compiler:<22} {benchmark:<18} (in baseline, not in this run)");
    }
    for (compiler, benchmark) in &report.missing_in_baseline {
        println!("UNGATED    {compiler:<22} {benchmark:<18} (in this run, not in baseline)");
    }

    let regressions = report.regressions().count();
    let improvements = report.improvements().count();
    println!(
        "bench-gate: {} checks, {} regressed, {} improved, {} missing, {} ungated",
        report.checks.len(),
        regressions,
        improvements,
        report.missing_in_current.len(),
        report.missing_in_baseline.len()
    );
    if report.passed() {
        if improvements > 0 {
            println!("bench-gate: PASS (improvements found — consider `bench-gate --update`)");
        } else {
            println!("bench-gate: PASS");
        }
    } else {
        println!("bench-gate: FAIL");
        std::process::exit(1);
    }
}
