//! The benchmark-regression gate: runs the sharded backend × suite matrix
//! with repeat-run wall-clock sampling, streams every completed cell to a
//! JSONL report, and compares the results against the checked-in
//! `bench/baseline.json` (schema v2), exiting non-zero on any regression or
//! coverage drift. CI runs one matrix job per shard plus a final
//! merge-and-gate job.
//!
//! Usage:
//!
//! ```text
//! bench-gate [--shard <name>] [--repeats <n>] [--jsonl <path>]
//!            [--baseline <path>] [--json <path>] [--update]
//!            [--filter <substr>] [--list-shards]
//!            [--fidelity-tol <rel>] [--exec-tol <rel>]
//!            [--compile-tol <rel>] [--compile-floor <seconds>]
//!
//! bench-gate merge <shard.jsonl>... [--baseline <path>] [--json <path>]
//!            [tolerance flags]
//! ```
//!
//! Gate mode:
//!
//! * `--shard` — run and gate only the named shard (see `--list-shards`);
//!   coverage-drift checks are scoped to that shard's cells;
//! * `--repeats` — compile-time samples per cell (default 3; exact metrics
//!   are single-run);
//! * `--jsonl` — stream one JSON line per completed cell; a crashed run
//!   still leaves a parseable partial report;
//! * `--json` — additionally record the full `RunResult` report at the end;
//! * `--update` — refresh the baseline from this run instead of gating:
//!   only the selected shard's cells are replaced, entries of other shards
//!   are never dropped (commit the refreshed file);
//! * `--filter` — restrict to benchmarks whose name contains the substring;
//! * tolerance flags — override the `GateTolerance` defaults.
//!
//! Merge mode reassembles per-shard JSONL part-files into the full-matrix
//! report (`--json` output is byte-identical to a monolithic run's) and
//! renders the verdict table against the **whole** baseline, so a shard
//! that crashed — leaving a partial part-file — surfaces as missing cells.
//!
//! Exit codes: `0` pass (improvements allowed), `1` regression or missing
//! entry, `2` usage/baseline errors.

use powermove_bench::gate::{compare, Baseline, GateReport, GateTolerance, Verdict};
use powermove_bench::{
    merge_cells, read_cells_lossy, run_shard, take_f64_flag, take_flag, take_json_path,
    take_switch, take_usize_flag, write_json, BackendRegistry, BaselineEntry, ParsedCell,
    ReportWriter, RunResult, ShardRegistry, SuiteShard, DEFAULT_REPEATS, DEFAULT_SEED,
};
use serde::Value;
use std::path::PathBuf;

/// Extracts the shared tolerance flags.
fn take_tolerance(args: &mut Vec<String>) -> GateTolerance {
    let mut tolerance = GateTolerance::default();
    if let Some(v) = take_f64_flag(args, "--fidelity-tol") {
        tolerance.fidelity = v;
    }
    if let Some(v) = take_f64_flag(args, "--exec-tol") {
        tolerance.exec_time = v;
    }
    if let Some(v) = take_f64_flag(args, "--compile-tol") {
        tolerance.compile_time = v;
    }
    if let Some(v) = take_f64_flag(args, "--compile-floor") {
        tolerance.compile_time_floor_s = v;
    }
    tolerance
}

/// Loads the baseline once, up front. A missing or corrupt file is fatal
/// (exit 2) unless `allow_missing` — the `--update` bootstrap, which starts
/// from an empty baseline when the file does not exist yet.
fn load_baseline(path: &std::path::Path, allow_missing: bool) -> Option<Baseline> {
    match Baseline::load(path) {
        Ok(baseline) => Some(baseline),
        Err(e) => {
            if allow_missing && !path.exists() {
                return None;
            }
            eprintln!("bench-gate: {e}");
            eprintln!("bench-gate: run with --update to record a fresh baseline");
            std::process::exit(2);
        }
    }
}

/// The shard registry for a loaded baseline: the `table2/small` /
/// `table2/large` split is balanced from its recorded per-cell compile wall
/// clocks (the qubit-count heuristic when bootstrapping without one).
/// Deriving the split from the *checked-in* medians keeps shard membership
/// deterministic across machines.
fn shards_for(baseline: Option<&Baseline>) -> ShardRegistry {
    ShardRegistry::standard_with_baseline(DEFAULT_SEED, baseline)
}

/// Prints the verdict table and summary line; returns whether the gate
/// passed.
fn render_report(report: &GateReport) -> bool {
    for check in &report.checks {
        match check.verdict {
            Verdict::Pass => {}
            Verdict::Improved => println!(
                "IMPROVED   {:<22} {:<18} {:<18} {:.6e} -> {:.6e}",
                check.compiler, check.benchmark, check.metric, check.baseline, check.current
            ),
            Verdict::Regressed => println!(
                "REGRESSED  {:<22} {:<18} {:<18} {:.6e} -> {:.6e}",
                check.compiler, check.benchmark, check.metric, check.baseline, check.current
            ),
        }
    }
    for (compiler, benchmark) in &report.missing_in_current {
        println!("MISSING    {compiler:<22} {benchmark:<18} (in baseline, not in this run)");
    }
    for (compiler, benchmark) in &report.missing_in_baseline {
        println!("UNGATED    {compiler:<22} {benchmark:<18} (in this run, not in baseline)");
    }
    let regressions = report.regressions().count();
    let improvements = report.improvements().count();
    println!(
        "bench-gate: {} checks, {} regressed, {} improved, {} missing, {} ungated",
        report.checks.len(),
        regressions,
        improvements,
        report.missing_in_current.len(),
        report.missing_in_baseline.len()
    );
    if report.passed() {
        if improvements > 0 {
            println!("bench-gate: PASS (improvements found — consider `bench-gate --update`)");
        } else {
            println!("bench-gate: PASS");
        }
        true
    } else {
        println!("bench-gate: FAIL");
        false
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("merge") {
        args.remove(0);
        merge_main(args);
    } else {
        gate_main(args);
    }
}

fn gate_main(mut args: Vec<String>) {
    let json_path = take_json_path(&mut args);
    let jsonl_path = take_flag(&mut args, "--jsonl").map(PathBuf::from);
    let baseline_path = take_flag(&mut args, "--baseline")
        .map_or_else(|| PathBuf::from("bench/baseline.json"), PathBuf::from);
    let update = take_switch(&mut args, "--update");
    let list_shards = take_switch(&mut args, "--list-shards");
    let shard_name = take_flag(&mut args, "--shard");
    let repeats = take_usize_flag(&mut args, "--repeats").unwrap_or(DEFAULT_REPEATS);
    let filter = take_flag(&mut args, "--filter").unwrap_or_default();
    let tolerance = take_tolerance(&mut args);
    if !args.is_empty() {
        eprintln!("unrecognized arguments: {args:?}");
        std::process::exit(2);
    }

    let loaded_baseline = load_baseline(&baseline_path, update || list_shards);
    let shards = shards_for(loaded_baseline.as_ref());
    if list_shards {
        println!("{:<16} {:>7}  backends", "shard", "cells");
        for shard in shards.iter() {
            println!(
                "{:<16} {:>7}  {}",
                shard.name(),
                shard.cells().len() * shard.backends().len(),
                shard.backends().join(",")
            );
        }
        return;
    }

    let selected: Vec<SuiteShard> = match &shard_name {
        None => shards.iter().map(|s| s.filtered(&filter)).collect(),
        Some(name) => match shards.get(name) {
            Some(shard) => vec![shard.filtered(&filter)],
            None => {
                eprintln!(
                    "bench-gate: unknown shard {name:?}; available: {}",
                    shards.names().join(", ")
                );
                std::process::exit(2);
            }
        },
    };
    let total_cells: usize = selected
        .iter()
        .map(|s| s.cells().len() * s.backends().len())
        .sum();
    if total_cells == 0 {
        // A vacuous gate (0 checks) must not report PASS: a typo'd filter
        // would otherwise silently disable the gate.
        eprintln!("bench-gate: --filter {filter:?} matches no benchmark instance");
        std::process::exit(2);
    }

    let registry = BackendRegistry::standard().with_routing_variants();
    let writer = jsonl_path.as_deref().map(ReportWriter::create);
    println!(
        "bench-gate: {} shard(s), {} cells, {} compile-time sample(s) per cell",
        selected.len(),
        total_cells,
        repeats.max(1)
    );
    let started = std::time::Instant::now();
    let mut runs: Vec<(String, Vec<RunResult>)> = Vec::new();
    for shard in &selected {
        let shard_started = std::time::Instant::now();
        let results = run_shard(shard, &registry, repeats, |index, result| {
            if let Some(writer) = &writer {
                writer.append(shard.name(), index, result);
            }
        });
        println!(
            "bench-gate: shard {} finished in {:.1}s ({} cells)",
            shard.name(),
            shard_started.elapsed().as_secs_f64(),
            results.len()
        );
        runs.push((shard.name().to_string(), results));
    }
    println!(
        "bench-gate: matrix finished in {:.1}s",
        started.elapsed().as_secs_f64()
    );
    if let Some(path) = json_path {
        let all_results: Vec<&RunResult> = runs.iter().flat_map(|(_, r)| r.iter()).collect();
        write_json(&path, &all_results);
    }

    let fresh = Baseline::from_shard_runs(&runs);
    if update {
        let previous = loaded_baseline.unwrap_or_default();
        // Stale-cell pruning is membership-based and therefore skipped for
        // --filter runs: a filtered update must only touch the cells it
        // actually re-ran.
        let prune: Vec<String> = if filter.is_empty() {
            selected.iter().map(|s| s.name().to_string()).collect()
        } else {
            Vec::new()
        };
        let updated = previous.merged_update(fresh.entries, &prune, &shards);
        write_json(&baseline_path, &updated);
        println!(
            "bench-gate: baseline refreshed with {} entries ({} shard(s) re-run) — review and commit it",
            updated.entries.len(),
            selected.len()
        );
        return;
    }

    let baseline = loaded_baseline.expect("gate mode always loads a baseline");
    // A full, unfiltered run holds the entire baseline accountable (stale
    // entries fail as missing); a shard or filter run only gates its slice.
    let scoped = if shard_name.is_none() && filter.is_empty() {
        baseline
    } else {
        let cells: Vec<(String, String)> = selected.iter().flat_map(SuiteShard::cell_ids).collect();
        baseline.scoped(&cells)
    };
    let report = compare(&scoped, &fresh.entries, &tolerance);
    if !render_report(&report) {
        std::process::exit(1);
    }
}

fn merge_main(mut args: Vec<String>) {
    let json_path = take_json_path(&mut args);
    let baseline_path = take_flag(&mut args, "--baseline")
        .map_or_else(|| PathBuf::from("bench/baseline.json"), PathBuf::from);
    let tolerance = take_tolerance(&mut args);
    if args.is_empty() {
        eprintln!("bench-gate merge: no part-files given");
        eprintln!("usage: bench-gate merge <shard.jsonl>... [--baseline <path>] [--json <path>]");
        std::process::exit(2);
    }

    let baseline = load_baseline(&baseline_path, false).expect("merge mode requires a baseline");
    let shards = shards_for(Some(&baseline));
    let mut files: Vec<Vec<ParsedCell>> = Vec::new();
    for path in &args {
        // Lossy read: a part-file whose run was SIGKILLed mid-append ends in
        // a torn line. The valid prefix still merges — the lost cell then
        // fails the gate as MISSING, which is the verdict the operator
        // needs, instead of a usage error hiding the crash.
        match read_cells_lossy(&PathBuf::from(path)) {
            Ok((cells, dropped)) => {
                println!("bench-gate merge: {path}: {} cells", cells.len());
                if let Some(dropped) = dropped {
                    eprintln!(
                        "bench-gate merge: {path}: dropped torn final line ({dropped}) — \
                         the unfinished cell will gate as MISSING"
                    );
                }
                files.push(cells);
            }
            Err(e) => {
                eprintln!("bench-gate merge: {path}: {e}");
                std::process::exit(2);
            }
        }
    }
    let cells = match merge_cells(files, &shards) {
        Ok(cells) => cells,
        Err(e) => {
            eprintln!("bench-gate merge: {e}");
            std::process::exit(2);
        }
    };
    println!(
        "bench-gate merge: {} cells reassembled from {} part-file(s)",
        cells.len(),
        args.len()
    );
    if let Some(path) = json_path {
        // Re-render the parsed result trees verbatim: the merged report is
        // byte-identical to the one a monolithic `bench-gate --json` writes.
        let results: Vec<&Value> = cells.iter().map(|c| &c.result).collect();
        write_json(&path, &results);
    }

    let current = cells
        .iter()
        .map(|c| BaselineEntry::from_result_value(&c.result, &c.shard))
        .collect::<Result<Vec<_>, _>>()
        .unwrap_or_else(|e| {
            eprintln!("bench-gate merge: {e}");
            std::process::exit(2);
        });
    // The merged matrix answers for the whole baseline: a shard that
    // crashed (partial part-file) or never uploaded surfaces as MISSING.
    let report = compare(&baseline, &current, &tolerance);
    if !render_report(&report) {
        std::process::exit(1);
    }
}
