//! Prints detailed schedule statistics (stages, collective moves, movement
//! time, distances) and per-pass compilation timings for one benchmark under
//! every registered compiler backend. Useful when investigating where
//! execution time — and compilation time — goes.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p powermove-bench --bin diagnostics \
//!     [family] [qubits] [--repeats <n>] [--json <path>]
//! ```
//!
//! `family` is matched against the Table 2 family names (default
//! `QAOA-regular3`), `qubits` defaults to 50. `--repeats` samples each
//! backend's compile wall clock over repeat runs (default 1) and prints the
//! median with its confidence interval.

use powermove_bench::{
    score_program_sampled, take_json_path, take_usize_flag, write_json, BackendRegistry,
    RegisteredBackend, RunResult, SampleStats, DEFAULT_SEED,
};
use powermove_benchmarks::{generate, BenchmarkFamily};
use powermove_exec::ThreadPool;
use powermove_fidelity::evaluate_program;
use powermove_hardware::Architecture;
use powermove_schedule::CompiledProgram;

fn pick_family(name: &str) -> BenchmarkFamily {
    BenchmarkFamily::ALL
        .into_iter()
        .find(|f| f.to_string().to_lowercase().contains(&name.to_lowercase()))
        .unwrap_or(BenchmarkFamily::QaoaRegular3)
}

fn describe(name: &str, program: &CompiledProgram) {
    let report = evaluate_program(program).expect("compiled program is valid");
    let t = &report.trace;
    println!(
        "{name:<26} stages={:<3} move-groups={:<4} coll-moves={:<4} moved-qubits={:<4}",
        t.rydberg_stage_count,
        t.move_group_count,
        t.coll_move_count,
        t.transfer_count / 2
    );
    println!(
        "{:<26} movement={:.0} us, total distance={:.0} um, longest move={:.0} um",
        "",
        t.movement_time * 1e6,
        t.total_move_distance * 1e6,
        t.max_move_distance * 1e6
    );
    println!(
        "{:<26} T_exe={:.1} us, fidelity={:.3e} ({})",
        "",
        report.execution_time_us(),
        report.fidelity_excluding_one_qubit(),
        report.breakdown
    );
    let metadata = program.metadata();
    if !metadata.pass_timings.is_empty() {
        let total = metadata.compile_time.unwrap_or_default();
        let passes = metadata
            .pass_timings
            .iter()
            .map(|t| format!("{}={:.1}ms", t.pass, t.seconds * 1e3))
            .collect::<Vec<_>>()
            .join("  ");
        println!("{:<26} passes: {passes}  (total {:.1}ms)", "", total * 1e3);
    }
    if !metadata.counters.is_empty() {
        let counters = metadata
            .counters
            .iter()
            .map(|c| format!("{}={}", c.name, c.value))
            .collect::<Vec<_>>()
            .join("  ");
        println!("{:<26} counters: {counters}", "");
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let json_path = take_json_path(&mut args);
    let repeats: usize = take_usize_flag(&mut args, "--repeats").unwrap_or(1).max(1);
    let family = pick_family(args.first().map(String::as_str).unwrap_or_default());
    let qubits: u32 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(50);
    let instance = generate(family, qubits, DEFAULT_SEED);
    let arch = Architecture::for_qubits(instance.num_qubits);
    println!("benchmark: {}", instance.name);

    // Compile under every backend concurrently (sampling the wall clock
    // over repeat runs), then print and score in registration order.
    let registry = BackendRegistry::standard();
    let entries: Vec<&RegisteredBackend> = registry.iter().collect();
    let programs = ThreadPool::from_env().par_map(entries, |entry| {
        let mut samples = Vec::with_capacity(repeats);
        let mut first_program = None;
        for _ in 0..repeats {
            let start = std::time::Instant::now();
            let program = entry
                .backend()
                .compile_circuit(&instance.circuit, &arch)
                .unwrap_or_else(|e| panic!("{} compiles: {e}", entry.id()));
            let measured = start.elapsed().as_secs_f64();
            samples.push(program.metadata().compile_time.unwrap_or(measured));
            first_program.get_or_insert(program);
        }
        (
            entry.id().to_string(),
            first_program.expect("at least one compile ran"),
            samples,
        )
    });

    let mut results: Vec<RunResult> = Vec::new();
    for (id, program, samples) in &programs {
        describe(id, program);
        if samples.len() > 1 {
            let stats = SampleStats::from_samples(samples.clone());
            let (ci_low, ci_high) = stats.ci();
            println!(
                "{:<26} compile median={:.1}ms ci=[{:.1}ms, {:.1}ms] over {} runs",
                "",
                stats.median() * 1e3,
                ci_low * 1e3,
                ci_high * 1e3,
                stats.len()
            );
        }
        if json_path.is_some() {
            results.push(score_program_sampled(
                id,
                &instance,
                program,
                samples.clone(),
            ));
        }
    }
    if let Some(path) = json_path {
        write_json(&path, &results);
    }
}
