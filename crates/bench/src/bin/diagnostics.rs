//! Prints detailed schedule statistics (stages, collective moves, movement
//! time, distances) for one benchmark under the three compiler
//! configurations. Useful when investigating where execution time goes.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p powermove-bench --bin diagnostics [family] [qubits]
//! ```
//!
//! `family` is matched against the Table 2 family names (default
//! `QAOA-regular3`), `qubits` defaults to 50.

use enola_baseline::EnolaCompiler;
use powermove::{CompilerConfig, PowerMoveCompiler};
use powermove_bench::DEFAULT_SEED;
use powermove_benchmarks::{generate, BenchmarkFamily};
use powermove_fidelity::evaluate_program;
use powermove_hardware::Architecture;
use powermove_schedule::CompiledProgram;

fn pick_family(name: &str) -> BenchmarkFamily {
    BenchmarkFamily::ALL
        .into_iter()
        .find(|f| f.to_string().to_lowercase().contains(&name.to_lowercase()))
        .unwrap_or(BenchmarkFamily::QaoaRegular3)
}

fn describe(name: &str, program: &CompiledProgram) {
    let report = evaluate_program(program).expect("compiled program is valid");
    let t = &report.trace;
    println!(
        "{name:<26} stages={:<3} move-groups={:<4} coll-moves={:<4} moved-qubits={:<4}",
        t.rydberg_stage_count,
        t.move_group_count,
        t.coll_move_count,
        t.transfer_count / 2
    );
    println!(
        "{:<26} movement={:.0} us, total distance={:.0} um, longest move={:.0} um",
        "",
        t.movement_time * 1e6,
        t.total_move_distance * 1e6,
        t.max_move_distance * 1e6
    );
    println!(
        "{:<26} T_exe={:.1} us, fidelity={:.3e} ({})",
        "",
        report.execution_time_us(),
        report.fidelity_excluding_one_qubit(),
        report.breakdown
    );
}

fn main() {
    let family = pick_family(&std::env::args().nth(1).unwrap_or_default());
    let qubits: u32 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(50);
    let instance = generate(family, qubits, DEFAULT_SEED);
    let arch = Architecture::for_qubits(instance.num_qubits);
    println!("benchmark: {}", instance.name);

    let enola = EnolaCompiler::default()
        .compile(&instance.circuit, &arch)
        .expect("enola compiles");
    describe("enola", &enola);

    let non_storage = PowerMoveCompiler::new(CompilerConfig::without_storage())
        .compile(&instance.circuit, &arch)
        .expect("powermove compiles");
    describe("powermove (non-storage)", &non_storage);

    let with_storage = PowerMoveCompiler::new(CompilerConfig::default())
        .compile(&instance.circuit, &arch)
        .expect("powermove compiles");
    describe("powermove (with-storage)", &with_storage);
}
