//! Regenerates Fig. 6 of the paper: the fidelity-factor breakdown (two-qubit,
//! excitation, transfer, decoherence) versus qubit count for five benchmark
//! families under every registered compiler backend.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p powermove-bench --bin fig6 [family-filter] [--json <path>]
//! ```

use powermove_bench::{
    fig6_sweeps, run_matrix, take_json_path, write_json, BackendRegistry, RunResult, DEFAULT_SEED,
};
use powermove_benchmarks::{generate, BenchmarkInstance};

fn print_row(result: &RunResult) {
    println!(
        "  {:<26} n={:<4} total={:>9.3e}  2q={:>9.3e}  exc={:>9.3e}  trans={:>9.3e}  deco={:>9.3e}",
        result.compiler,
        result.num_qubits,
        result.fidelity,
        result.breakdown.two_qubit,
        result.breakdown.excitation,
        result.breakdown.transfer,
        result.breakdown.decoherence,
    );
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let json_path = take_json_path(&mut args);
    let filter = args.first().cloned().unwrap_or_default();
    let registry = BackendRegistry::standard();

    // Generate every instance of the selected sweeps up front, run the whole
    // instance × backend matrix on the POWERMOVE_THREADS pool, then print in
    // sweep order (run_matrix returns instance-major, deterministic order).
    // The sweep definition is shared with the `fig6/sweep` gate shard
    // (`powermove_bench::fig6_sweeps`), so the figure and the CI gate can
    // never drift apart.
    let mut groups: Vec<(String, usize)> = Vec::new(); // (family name, #instances)
    let mut instances: Vec<BenchmarkInstance> = Vec::new();
    for (family, sizes) in fig6_sweeps() {
        let name = family.to_string();
        if !filter.is_empty() && !name.contains(&filter) {
            continue;
        }
        groups.push((name, sizes.len()));
        instances.extend(sizes.into_iter().map(|n| generate(family, n, DEFAULT_SEED)));
    }
    let results: Vec<RunResult> = run_matrix(&instances, 1, &registry);

    let per_instance = registry.len();
    let mut cursor = results.iter();
    for (name, count) in groups {
        println!("== Fig. 6: {name} ==");
        for _ in 0..count * per_instance {
            print_row(cursor.next().expect("one result per matrix cell"));
        }
        println!();
    }
    if let Some(path) = json_path {
        write_json(&path, &results);
    }
}
