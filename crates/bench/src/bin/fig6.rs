//! Regenerates Fig. 6 of the paper: the fidelity-factor breakdown (two-qubit,
//! excitation, transfer, decoherence) versus qubit count for five benchmark
//! families under every registered compiler backend.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p powermove-bench --bin fig6 [family-filter] [--json <path>]
//! ```

use powermove_bench::{
    run_all, take_json_path, write_json, BackendRegistry, RunResult, DEFAULT_SEED,
};
use powermove_benchmarks::{generate, BenchmarkFamily};

/// The qubit sweeps of Fig. 6(a)-(e).
fn sweeps() -> Vec<(BenchmarkFamily, Vec<u32>)> {
    vec![
        (BenchmarkFamily::QaoaRegular3, vec![20, 40, 60, 80, 100]),
        (BenchmarkFamily::QsimRand, vec![10, 20, 40, 60, 80]),
        (BenchmarkFamily::Qft, vec![20, 30, 40, 50, 60]),
        (BenchmarkFamily::Vqe, vec![10, 20, 30, 40, 50]),
        (BenchmarkFamily::Bv, vec![20, 30, 40, 50, 60, 70]),
    ]
}

fn print_row(result: &RunResult) {
    println!(
        "  {:<26} n={:<4} total={:>9.3e}  2q={:>9.3e}  exc={:>9.3e}  trans={:>9.3e}  deco={:>9.3e}",
        result.compiler,
        result.num_qubits,
        result.fidelity,
        result.breakdown.two_qubit,
        result.breakdown.excitation,
        result.breakdown.transfer,
        result.breakdown.decoherence,
    );
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let json_path = take_json_path(&mut args);
    let filter = args.first().cloned().unwrap_or_default();
    let registry = BackendRegistry::standard();
    let mut results: Vec<RunResult> = Vec::new();
    for (family, sizes) in sweeps() {
        let name = family.to_string();
        if !filter.is_empty() && !name.contains(&filter) {
            continue;
        }
        println!("== Fig. 6: {name} ==");
        for n in sizes {
            let instance = generate(family, n, DEFAULT_SEED);
            for result in run_all(&instance, 1, &registry) {
                print_row(&result);
                results.push(result);
            }
        }
        println!();
    }
    if let Some(path) = json_path {
        write_json(&path, &results);
    }
}
