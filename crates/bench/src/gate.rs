//! The benchmark-regression gate behind the `bench-gate` binary.
//!
//! CI runs the full backend × suite matrix ([`run_matrix`]), converts the
//! results into [`BaselineEntry`] records, and compares them against the
//! checked-in `bench/baseline.json` with a configurable [`GateTolerance`]:
//!
//! * **fidelity** — higher is better, relative tolerance;
//! * **execution time** — lower is better, relative tolerance;
//! * **compile wall-clock** — lower is better, compared **statistically**:
//!   each side is a set of repeat-run samples ([`SampleStats`]), and the
//!   current median regresses only when it exceeds the baseline's
//!   confidence-interval upper bound by more than the (now modest) relative
//!   tolerance. An absolute floor still short-circuits comparisons where
//!   both medians are scheduler noise;
//! * **stages / transfers** — lower is better, exact and single-run (the
//!   compilers are deterministic, so any drift is a real behaviour change);
//! * **CZ gate count** — must match exactly (a mismatch means the benchmark
//!   suite itself changed and the baseline needs a refresh).
//!
//! Every metric gets a [`Verdict`]; entries present on only one side are
//! reported as missing. The gate passes only when there is no regression
//! and no missing entry — improvements pass (with a nudge to refresh the
//! baseline via `bench-gate --update`).
//!
//! The baseline file is **schema v2**: a top-level `version` field, one
//! `shard` label per entry, and the compile wall clock stored as a
//! `{"samples": [...], "median": ..., "ci_low": ..., "ci_high": ...}`
//! object. Legacy v1 files (scalar `compile_time_s`, no version) still
//! parse — each scalar becomes a single-sample statistic with a degenerate
//! interval, and the next full `--update` relabels every live cell from the
//! current shard registry (and prunes cells no shard gates any more).
//!
//! [`run_matrix`]: crate::run_matrix

use crate::harness::ShardRegistry;
use crate::stats::SampleStats;
use crate::RunResult;
use serde::{Serialize, Value};
use std::fmt;
use std::path::Path;

/// Default relative tolerance for fidelity comparisons.
pub const DEFAULT_FIDELITY_TOLERANCE: f64 = 0.02;
/// Default relative tolerance for execution-time comparisons.
pub const DEFAULT_EXEC_TIME_TOLERANCE: f64 = 0.05;
/// Default relative slack applied *on top of* the baseline's
/// confidence-interval bound for compile wall-clock comparisons. Repeat-run
/// medians absorb scheduler noise and the standard backends compile
/// single-threaded (so core counts don't skew the clock), which let this
/// drop from the pre-statistics 4× slack (`3.0`) to 50 %. The interval
/// does **not** absorb raw single-thread speed differences between
/// machines: record the baseline on hardware comparable to whatever runs
/// the gate, or widen `--compile-tol` for a heterogeneous fleet.
pub const DEFAULT_COMPILE_TIME_TOLERANCE: f64 = 0.5;
/// Compile times where both sides' **medians** sit below this floor
/// (seconds) are treated as noise and pass unconditionally. Repeat-run
/// medians let the floor sit at half a second (it used to be a full
/// second): real algorithmic regressions push compiles well past it, while
/// sub-floor wall clocks on shared CI runners remain dominated by scheduler
/// and core-count differences.
pub const DEFAULT_COMPILE_TIME_FLOOR_S: f64 = 0.5;
/// Schema version written by [`Baseline::serialize`]; see the module docs.
pub const BASELINE_VERSION: i64 = 2;

/// Tolerances applied by [`compare`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct GateTolerance {
    /// Relative slack on fidelity (higher is better): a current value below
    /// `baseline * (1 - fidelity)` regresses.
    pub fidelity: f64,
    /// Relative slack on execution time (lower is better): a current value
    /// above `baseline * (1 + exec_time)` regresses.
    pub exec_time: f64,
    /// Relative slack on compile wall-clock time (lower is better), applied
    /// on top of the baseline's confidence-interval bound: the current
    /// median regresses above `ci_high * (1 + compile_time)` and improves
    /// below `ci_low * (1 - compile_time)`.
    pub compile_time: f64,
    /// Absolute compile-time floor in seconds; if both medians are below
    /// it, the comparison passes regardless of ratio.
    pub compile_time_floor_s: f64,
}

impl Default for GateTolerance {
    fn default() -> Self {
        GateTolerance {
            fidelity: DEFAULT_FIDELITY_TOLERANCE,
            exec_time: DEFAULT_EXEC_TIME_TOLERANCE,
            compile_time: DEFAULT_COMPILE_TIME_TOLERANCE,
            compile_time_floor_s: DEFAULT_COMPILE_TIME_FLOOR_S,
        }
    }
}

/// One benchmark × compiler cell of the baseline.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct BaselineEntry {
    /// Registry id of the backend, e.g. `"powermove-storage"`.
    pub compiler: String,
    /// Benchmark name, e.g. `"QAOA-regular3-30"`.
    pub benchmark: String,
    /// Name of the shard that gates this cell, e.g. `"table2/small"`
    /// (empty for entries read from a legacy v1 baseline).
    pub shard: String,
    /// Output fidelity excluding the 1Q factor.
    pub fidelity: f64,
    /// Execution time in microseconds.
    pub execution_time_us: f64,
    /// Repeat-run compilation wall-clock samples (seconds).
    pub compile_time: SampleStats,
    /// Number of Rydberg stages.
    pub stages: usize,
    /// Number of SLM↔AOD transfers.
    pub transfers: usize,
    /// Number of CZ gates (identity check: drift means the suite changed).
    pub cz_gates: usize,
}

impl BaselineEntry {
    /// Captures the gate metrics of one run under the given shard label.
    #[must_use]
    pub fn from_run(result: &RunResult, shard: &str) -> Self {
        BaselineEntry {
            compiler: result.compiler.clone(),
            benchmark: result.benchmark.clone(),
            shard: shard.to_string(),
            fidelity: result.fidelity,
            execution_time_us: result.execution_time_us,
            compile_time: SampleStats::from_samples(result.compile_time_samples.clone()),
            stages: result.stages,
            transfers: result.transfers,
            cz_gates: result.cz_gates,
        }
    }

    /// Extracts the gate metrics from a serialized [`RunResult`] tree (one
    /// `result` field of a streamed JSONL cell), labelled with `shard`.
    ///
    /// # Errors
    ///
    /// Returns [`GateError::Parse`] on missing or mistyped fields.
    pub fn from_result_value(value: &Value, shard: &str) -> Result<Self, GateError> {
        let samples = value
            .get("compile_time_samples")
            .and_then(Value::as_array)
            .ok_or_else(|| {
                GateError::Parse("result: missing `compile_time_samples` array".to_string())
            })?
            .iter()
            .map(|s| {
                s.as_f64().ok_or_else(|| {
                    GateError::Parse(
                        "result: `compile_time_samples` holds a non-number".to_string(),
                    )
                })
            })
            .collect::<Result<Vec<f64>, GateError>>()?;
        if samples.is_empty() {
            return Err(GateError::Parse(
                "result: `compile_time_samples` is empty".to_string(),
            ));
        }
        Ok(BaselineEntry {
            compiler: str_field(value, "compiler", 0)?,
            benchmark: str_field(value, "benchmark", 0)?,
            shard: shard.to_string(),
            fidelity: f64_field(value, "fidelity", 0)?,
            execution_time_us: f64_field(value, "execution_time_us", 0)?,
            compile_time: SampleStats::from_samples(samples),
            stages: usize_field(value, "stages", 0)?,
            transfers: usize_field(value, "transfers", 0)?,
            cz_gates: usize_field(value, "cz_gates", 0)?,
        })
    }
}

/// A parsed `bench/baseline.json` (schema v2; see the module docs).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Baseline {
    /// The recorded entries, in canonical shard order.
    pub entries: Vec<BaselineEntry>,
}

impl Serialize for Baseline {
    /// Serializes as `{"version": 2, "entries": [...]}`.
    fn serialize(&self) -> Value {
        Value::Object(vec![
            ("version".to_string(), Value::Int(BASELINE_VERSION)),
            ("entries".to_string(), self.entries.serialize()),
        ])
    }
}

/// Errors produced while loading a baseline file.
#[derive(Debug)]
pub enum GateError {
    /// The file could not be read.
    Io(String),
    /// The JSON was malformed or missing required fields.
    Parse(String),
}

impl fmt::Display for GateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GateError::Io(msg) => write!(f, "baseline I/O error: {msg}"),
            GateError::Parse(msg) => write!(f, "baseline parse error: {msg}"),
        }
    }
}

impl std::error::Error for GateError {}

fn field<'v>(object: &'v Value, key: &str, index: usize) -> Result<&'v Value, GateError> {
    object
        .get(key)
        .ok_or_else(|| GateError::Parse(format!("entry {index}: missing field `{key}`")))
}

fn f64_field(object: &Value, key: &str, index: usize) -> Result<f64, GateError> {
    field(object, key, index)?
        .as_f64()
        .ok_or_else(|| GateError::Parse(format!("entry {index}: `{key}` is not a number")))
}

fn usize_field(object: &Value, key: &str, index: usize) -> Result<usize, GateError> {
    let value = field(object, key, index)?
        .as_i64()
        .ok_or_else(|| GateError::Parse(format!("entry {index}: `{key}` is not an integer")))?;
    usize::try_from(value)
        .map_err(|_| GateError::Parse(format!("entry {index}: `{key}` is negative")))
}

fn str_field(object: &Value, key: &str, index: usize) -> Result<String, GateError> {
    Ok(field(object, key, index)?
        .as_str()
        .ok_or_else(|| GateError::Parse(format!("entry {index}: `{key}` is not a string")))?
        .to_string())
}

impl Baseline {
    /// Captures the gate metrics of a sequence of per-shard runs as a new
    /// baseline, labelling every entry with its shard.
    #[must_use]
    pub fn from_shard_runs(runs: &[(String, Vec<RunResult>)]) -> Self {
        Baseline {
            entries: runs
                .iter()
                .flat_map(|(shard, results)| {
                    results.iter().map(|r| BaselineEntry::from_run(r, shard))
                })
                .collect(),
        }
    }

    /// Parses the JSON text of a baseline file.
    ///
    /// Accepts both the current v2 schema (`{"version": 2, "entries":
    /// [...]}` with `shard` labels and `compile_time` sample objects) and
    /// the legacy v1 shape (no `version`, scalar `compile_time_s`, no
    /// `shard`); v1 scalars become single-sample statistics.
    ///
    /// # Errors
    ///
    /// Returns [`GateError::Parse`] on malformed JSON, missing/mistyped
    /// fields, or an unknown schema version.
    pub fn parse(text: &str) -> Result<Self, GateError> {
        let root = serde_json::from_str(text).map_err(|e| GateError::Parse(e.to_string()))?;
        let version = match root.get("version") {
            None => 1,
            Some(v) => v
                .as_i64()
                .ok_or_else(|| GateError::Parse("`version` is not an integer".to_string()))?,
        };
        if version != 1 && version != BASELINE_VERSION {
            return Err(GateError::Parse(format!(
                "unsupported baseline schema version {version} (expected 1 or {BASELINE_VERSION})"
            )));
        }
        let entries = root
            .get("entries")
            .and_then(Value::as_array)
            .ok_or_else(|| GateError::Parse("missing top-level `entries` array".to_string()))?;
        let entries = entries
            .iter()
            .enumerate()
            .map(|(index, entry)| {
                let compiler = str_field(entry, "compiler", index)?;
                let benchmark = str_field(entry, "benchmark", index)?;
                let (shard, compile_time) = if version == 1 {
                    (
                        String::new(),
                        SampleStats::single(f64_field(entry, "compile_time_s", index)?),
                    )
                } else {
                    let stats_value = field(entry, "compile_time", index)?;
                    let stats = SampleStats::from_value(stats_value).map_err(|e| {
                        GateError::Parse(format!("entry {index}: `compile_time` {e}"))
                    })?;
                    (str_field(entry, "shard", index)?, stats)
                };
                Ok(BaselineEntry {
                    compiler,
                    benchmark,
                    shard,
                    fidelity: f64_field(entry, "fidelity", index)?,
                    execution_time_us: f64_field(entry, "execution_time_us", index)?,
                    compile_time,
                    stages: usize_field(entry, "stages", index)?,
                    transfers: usize_field(entry, "transfers", index)?,
                    cz_gates: usize_field(entry, "cz_gates", index)?,
                })
            })
            .collect::<Result<Vec<_>, GateError>>()?;
        Ok(Baseline { entries })
    }

    /// Loads and parses a baseline file.
    ///
    /// # Errors
    ///
    /// Returns [`GateError::Io`] if the file cannot be read and
    /// [`GateError::Parse`] if its contents are malformed.
    pub fn load(path: &Path) -> Result<Self, GateError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| GateError::Io(format!("{}: {e}", path.display())))?;
        Baseline::parse(&text)
    }

    /// Looks up the entry for one compiler × benchmark cell.
    #[must_use]
    pub fn entry(&self, compiler: &str, benchmark: &str) -> Option<&BaselineEntry> {
        self.entries
            .iter()
            .find(|e| e.compiler == compiler && e.benchmark == benchmark)
    }

    /// The baseline restricted to the given `(compiler, benchmark)` cells.
    ///
    /// Per-shard gating scopes the baseline to the shard's **current** cell
    /// list (not the recorded `shard` labels), so a cell that migrated
    /// between shards is gated where it now lives and coverage-drift checks
    /// stay per-shard.
    #[must_use]
    pub fn scoped(&self, cells: &[(String, String)]) -> Baseline {
        Baseline {
            entries: self
                .entries
                .iter()
                .filter(|e| {
                    cells
                        .iter()
                        .any(|(c, b)| *c == e.compiler && *b == e.benchmark)
                })
                .cloned()
                .collect(),
        }
    }

    /// Merges freshly re-run entries into this baseline for
    /// `bench-gate --update`.
    ///
    /// Exactly the cells present in `fresh` are replaced; every other
    /// recorded entry is kept, so updating one shard can never silently
    /// drop another shard's entries. Additionally, stale entries are
    /// pruned:
    ///
    /// * entries recorded under a shard named in `prune_shards` whose cell
    ///   that shard no longer gates (the shard definition shrank);
    /// * when `prune_shards` covers **every** current shard (a full,
    ///   unfiltered `--update`), entries whose cell no shard gates at all —
    ///   this is what cleans out cells left behind by a removed benchmark
    ///   or carried over from a legacy v1 baseline (whose recorded shard
    ///   label is empty).
    ///
    /// Pass an empty list — e.g. for a `--filter`ed update — to prune
    /// nothing. The result is sorted into canonical order
    /// ([`ShardRegistry::cell_rank`]), with unknown cells last in their
    /// prior relative order.
    #[must_use]
    pub fn merged_update(
        self,
        fresh: Vec<BaselineEntry>,
        prune_shards: &[String],
        shards: &ShardRegistry,
    ) -> Baseline {
        let replaced = |e: &BaselineEntry| {
            fresh
                .iter()
                .any(|f| f.compiler == e.compiler && f.benchmark == e.benchmark)
        };
        let full_prune = !shards.is_empty()
            && shards
                .iter()
                .all(|s| prune_shards.iter().any(|p| p == s.name()));
        let stale = |e: &BaselineEntry| {
            let dropped_from_recorded_shard = prune_shards.contains(&e.shard)
                && shards
                    .get(&e.shard)
                    .map_or(true, |s| !s.contains_cell(&e.compiler, &e.benchmark));
            let orphaned = full_prune && shards.shard_of_cell(&e.compiler, &e.benchmark).is_none();
            dropped_from_recorded_shard || orphaned
        };
        let mut entries: Vec<BaselineEntry> = self
            .entries
            .into_iter()
            .filter(|e| !replaced(e) && !stale(e))
            .collect();
        entries.extend(fresh);
        entries.sort_by_key(|e| {
            shards
                .cell_rank(&e.compiler, &e.benchmark)
                .unwrap_or(usize::MAX)
        });
        Baseline { entries }
    }
}

/// Outcome of one metric comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Verdict {
    /// Within tolerance of the baseline.
    Pass,
    /// Better than the baseline by more than the tolerance. Worth a
    /// `bench-gate --update` so future regressions are caught from the new
    /// level.
    Improved,
    /// Worse than the baseline by more than the tolerance: the gate fails.
    Regressed,
}

/// One metric of one matrix cell compared against the baseline.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct MetricCheck {
    /// Registry id of the backend.
    pub compiler: String,
    /// Benchmark name.
    pub benchmark: String,
    /// Metric name, e.g. `"fidelity"`.
    pub metric: &'static str,
    /// The recorded baseline value.
    pub baseline: f64,
    /// The value measured by this run.
    pub current: f64,
    /// The comparison outcome.
    pub verdict: Verdict,
}

/// The full comparison produced by [`compare`].
#[derive(Debug, Clone, PartialEq, Serialize, Default)]
pub struct GateReport {
    /// Every metric comparison, in matrix order.
    pub checks: Vec<MetricCheck>,
    /// `(compiler, benchmark)` cells recorded in the baseline but absent
    /// from the current run — the suite shrank, which fails the gate.
    pub missing_in_current: Vec<(String, String)>,
    /// `(compiler, benchmark)` cells produced by the current run but absent
    /// from the baseline — new coverage that needs `--update` to be gated.
    pub missing_in_baseline: Vec<(String, String)>,
}

impl GateReport {
    /// The checks that regressed.
    pub fn regressions(&self) -> impl Iterator<Item = &MetricCheck> {
        self.checks
            .iter()
            .filter(|c| c.verdict == Verdict::Regressed)
    }

    /// The checks that improved beyond tolerance.
    pub fn improvements(&self) -> impl Iterator<Item = &MetricCheck> {
        self.checks
            .iter()
            .filter(|c| c.verdict == Verdict::Improved)
    }

    /// Whether the gate passes: no regression and no missing entry on
    /// either side. Improvements do not fail the gate.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.regressions().next().is_none()
            && self.missing_in_current.is_empty()
            && self.missing_in_baseline.is_empty()
    }
}

/// Higher-is-better comparison with relative tolerance.
fn check_higher(baseline: f64, current: f64, tolerance: f64) -> Verdict {
    if current < baseline * (1.0 - tolerance) {
        Verdict::Regressed
    } else if current > baseline * (1.0 + tolerance) {
        Verdict::Improved
    } else {
        Verdict::Pass
    }
}

/// Lower-is-better comparison with relative tolerance.
fn check_lower(baseline: f64, current: f64, tolerance: f64) -> Verdict {
    if current > baseline * (1.0 + tolerance) {
        Verdict::Regressed
    } else if current < baseline * (1.0 - tolerance) {
        Verdict::Improved
    } else {
        Verdict::Pass
    }
}

/// Exact comparison for deterministic integer metrics (lower is better).
fn check_exact_lower(baseline: f64, current: f64) -> Verdict {
    if current > baseline {
        Verdict::Regressed
    } else if current < baseline {
        Verdict::Improved
    } else {
        Verdict::Pass
    }
}

/// Compares a matrix run against a recorded baseline.
///
/// Every `(compiler, benchmark)` cell present on both sides contributes one
/// [`MetricCheck`] per gated metric; cells present on only one side land in
/// the report's missing lists. See the module docs for the metric policy.
#[must_use]
pub fn compare(baseline: &Baseline, current: &[BaselineEntry], tol: &GateTolerance) -> GateReport {
    let mut report = GateReport::default();
    for entry in current {
        let Some(base) = baseline.entry(&entry.compiler, &entry.benchmark) else {
            report
                .missing_in_baseline
                .push((entry.compiler.clone(), entry.benchmark.clone()));
            continue;
        };
        let mut push = |metric: &'static str, baseline: f64, current: f64, verdict: Verdict| {
            report.checks.push(MetricCheck {
                compiler: entry.compiler.clone(),
                benchmark: entry.benchmark.clone(),
                metric,
                baseline,
                current,
                verdict,
            });
        };
        push(
            "fidelity",
            base.fidelity,
            entry.fidelity,
            check_higher(base.fidelity, entry.fidelity, tol.fidelity),
        );
        push(
            "execution_time_us",
            base.execution_time_us,
            entry.execution_time_us,
            check_lower(
                base.execution_time_us,
                entry.execution_time_us,
                tol.exec_time,
            ),
        );
        // Compile wall clock: statistical comparison. The current median is
        // held against the baseline's confidence interval (plus the relative
        // slack), so run-to-run scheduler noise — which the interval of the
        // recorded samples captures — does not trip the gate, while a real
        // slowdown that pushes the median past the interval does.
        let base_median = base.compile_time.median();
        let current_median = entry.compile_time.median();
        let compile_verdict = if base_median.max(current_median) < tol.compile_time_floor_s {
            Verdict::Pass
        } else {
            let (ci_low, ci_high) = base.compile_time.ci();
            if current_median > ci_high * (1.0 + tol.compile_time) {
                Verdict::Regressed
            } else if current_median < ci_low * (1.0 - tol.compile_time) {
                Verdict::Improved
            } else {
                Verdict::Pass
            }
        };
        push(
            "compile_time_s",
            base_median,
            current_median,
            compile_verdict,
        );
        push(
            "stages",
            base.stages as f64,
            entry.stages as f64,
            check_exact_lower(base.stages as f64, entry.stages as f64),
        );
        push(
            "transfers",
            base.transfers as f64,
            entry.transfers as f64,
            check_exact_lower(base.transfers as f64, entry.transfers as f64),
        );
        // CZ gates are an identity check: any drift (either direction)
        // means the generated suite changed and the baseline is stale.
        let cz_verdict = if entry.cz_gates == base.cz_gates {
            Verdict::Pass
        } else {
            Verdict::Regressed
        };
        push(
            "cz_gates",
            base.cz_gates as f64,
            entry.cz_gates as f64,
            cz_verdict,
        );
    }
    for base in &baseline.entries {
        if !current
            .iter()
            .any(|e| e.compiler == base.compiler && e.benchmark == base.benchmark)
        {
            report
                .missing_in_current
                .push((base.compiler.clone(), base.benchmark.clone()));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(compiler: &str, benchmark: &str) -> BaselineEntry {
        BaselineEntry {
            compiler: compiler.to_string(),
            benchmark: benchmark.to_string(),
            shard: "table2/small".to_string(),
            fidelity: 0.8,
            execution_time_us: 1000.0,
            compile_time: SampleStats::single(2.0),
            stages: 10,
            transfers: 40,
            cz_gates: 15,
        }
    }

    fn baseline() -> Baseline {
        Baseline {
            entries: vec![entry("powermove-storage", "BV-14"), entry("enola", "BV-14")],
        }
    }

    #[test]
    fn identical_runs_pass() {
        let report = compare(&baseline(), &baseline().entries, &GateTolerance::default());
        assert!(report.passed());
        assert_eq!(report.checks.len(), 12);
        assert!(report.checks.iter().all(|c| c.verdict == Verdict::Pass));
    }

    #[test]
    fn fidelity_regression_fails_and_within_tolerance_passes() {
        let tol = GateTolerance::default();
        let mut current = baseline().entries;
        current[0].fidelity = 0.8 * (1.0 - tol.fidelity) - 1e-9;
        let report = compare(&baseline(), &current, &tol);
        assert!(!report.passed());
        let regression = report.regressions().next().unwrap();
        assert_eq!(regression.metric, "fidelity");
        assert_eq!(regression.compiler, "powermove-storage");

        current[0].fidelity = 0.8 * (1.0 - tol.fidelity) + 1e-9;
        assert!(compare(&baseline(), &current, &tol).passed());
    }

    #[test]
    fn fidelity_improvement_is_reported_but_passes() {
        let mut current = baseline().entries;
        current[0].fidelity = 0.9;
        let report = compare(&baseline(), &current, &GateTolerance::default());
        assert!(report.passed());
        let improvement = report.improvements().next().unwrap();
        assert_eq!(improvement.metric, "fidelity");
        assert_eq!(improvement.verdict, Verdict::Improved);
    }

    #[test]
    fn execution_time_regression_fails() {
        let tol = GateTolerance::default();
        let mut current = baseline().entries;
        current[1].execution_time_us = 1000.0 * (1.0 + tol.exec_time) + 1e-6;
        let report = compare(&baseline(), &current, &tol);
        assert!(!report.passed());
        assert_eq!(
            report.regressions().next().unwrap().metric,
            "execution_time_us"
        );
    }

    #[test]
    fn compile_time_noise_below_floor_passes() {
        let mut base = baseline();
        base.entries[0].compile_time = SampleStats::single(0.001);
        let mut current = base.entries.clone();
        // 100x slower, but both medians below the floor: noise, not signal.
        current[0].compile_time = SampleStats::single(0.1);
        assert!(compare(&base, &current, &GateTolerance::default()).passed());
    }

    #[test]
    fn compile_time_regression_above_floor_fails() {
        let tol = GateTolerance::default();
        let mut current = baseline().entries;
        // The baseline is a single sample (degenerate interval), so the
        // bound is median * (1 + tol).
        current[0].compile_time = SampleStats::single(2.0 * (1.0 + tol.compile_time) + 0.1);
        let report = compare(&baseline(), &current, &tol);
        assert!(!report.passed());
        assert_eq!(
            report.regressions().next().unwrap().metric,
            "compile_time_s"
        );
    }

    #[test]
    fn compile_time_within_baseline_interval_passes() {
        let mut base = baseline();
        // Noisy baseline samples around 2s: interval ~ [1.6, 2.4].
        base.entries[0].compile_time = SampleStats::from_samples(vec![1.6, 2.0, 2.4]);
        let (_, ci_high) = base.entries[0].compile_time.ci();
        let tol = GateTolerance::default();

        let mut current = base.entries.clone();
        // Just inside the interval-plus-slack bound: passes …
        current[0].compile_time = SampleStats::single(ci_high * (1.0 + tol.compile_time) - 1e-9);
        assert!(compare(&base, &current, &tol).passed());
        // … just past it: regresses. The pre-statistics gate would have
        // required a full 4× blowup to notice.
        current[0].compile_time = SampleStats::single(ci_high * (1.0 + tol.compile_time) + 1e-9);
        let report = compare(&base, &current, &tol);
        assert_eq!(
            report.regressions().next().unwrap().metric,
            "compile_time_s"
        );
        assert!(ci_high * (1.0 + tol.compile_time) < 2.0 * 4.0);
    }

    #[test]
    fn single_sample_baseline_cell_still_gates_correctly() {
        // A cell recorded with one sample (legacy v1 import or --repeats 1)
        // has a degenerate [value, value] interval: the gate must still
        // pass identical runs, flag regressions past the slack, and report
        // improvements — never divide by a zero-width notch into NaN.
        let tol = GateTolerance::default();
        let mut base = baseline();
        base.entries[0].compile_time = SampleStats::single(2.0);

        let mut current = base.entries.clone();
        current[0].compile_time = SampleStats::from_samples(vec![2.1, 2.0, 1.9]);
        assert!(
            compare(&base, &current, &tol).passed(),
            "median on the value"
        );

        current[0].compile_time = SampleStats::single(2.0 * (1.0 + tol.compile_time) + 1e-6);
        let report = compare(&base, &current, &tol);
        assert!(!report.passed());
        assert_eq!(
            report.regressions().next().unwrap().metric,
            "compile_time_s"
        );

        current[0].compile_time = SampleStats::single(0.9);
        let report = compare(&base, &current, &tol);
        assert!(report.passed());
        assert!(report
            .improvements()
            .any(|c| c.metric == "compile_time_s" && !c.current.is_nan()));
    }

    #[test]
    fn compile_time_median_ignores_one_outlier_sample() {
        let base = baseline();
        let mut current = base.entries.clone();
        // One wild sample out of three: the median stays at the baseline.
        current[0].compile_time = SampleStats::from_samples(vec![2.0, 50.0, 2.0]);
        assert!(compare(&base, &current, &GateTolerance::default()).passed());
    }

    #[test]
    fn stage_count_drift_is_exact() {
        let mut current = baseline().entries;
        current[0].stages = 11;
        let report = compare(&baseline(), &current, &GateTolerance::default());
        assert_eq!(report.regressions().next().unwrap().metric, "stages");

        current[0].stages = 9;
        let report = compare(&baseline(), &current, &GateTolerance::default());
        assert!(report.passed());
        assert_eq!(report.improvements().next().unwrap().metric, "stages");
    }

    #[test]
    fn cz_gate_drift_fails_in_both_directions() {
        for cz in [14, 16] {
            let mut current = baseline().entries;
            current[0].cz_gates = cz;
            let report = compare(&baseline(), &current, &GateTolerance::default());
            assert!(!report.passed(), "cz_gates {cz} must fail");
            assert_eq!(report.regressions().next().unwrap().metric, "cz_gates");
        }
    }

    #[test]
    fn missing_entries_are_reported_on_both_sides() {
        let current = vec![
            entry("powermove-storage", "BV-14"),
            entry("powermove-storage", "QFT-18"),
        ];
        let report = compare(&baseline(), &current, &GateTolerance::default());
        assert!(!report.passed());
        assert_eq!(
            report.missing_in_current,
            vec![("enola".to_string(), "BV-14".to_string())]
        );
        assert_eq!(
            report.missing_in_baseline,
            vec![("powermove-storage".to_string(), "QFT-18".to_string())]
        );
    }

    #[test]
    fn baseline_serializes_and_parses_back_as_v2() {
        let original = baseline();
        let json = serde_json::to_string_pretty(&original).unwrap();
        assert!(json.contains("\"version\": 2"));
        assert!(json.contains("\"shard\""));
        assert!(json.contains("\"samples\""));
        let parsed = Baseline::parse(&json).unwrap();
        assert_eq!(parsed, original);
        assert_eq!(parsed.entry("enola", "BV-14").unwrap().stages, 10);
        assert_eq!(
            parsed.entry("enola", "BV-14").unwrap().shard,
            "table2/small"
        );
        assert!(parsed.entry("enola", "nope").is_none());
    }

    #[test]
    fn legacy_v1_baselines_parse_as_single_samples() {
        let v1 = r#"{"entries": [{"compiler": "enola", "benchmark": "BV-14",
            "fidelity": 0.8, "execution_time_us": 1000.0, "compile_time_s": 2.0,
            "stages": 10, "transfers": 40, "cz_gates": 15}]}"#;
        let parsed = Baseline::parse(v1).unwrap();
        assert_eq!(parsed.entries.len(), 1);
        let entry = &parsed.entries[0];
        assert_eq!(entry.shard, "", "v1 carries no shard labels");
        assert_eq!(entry.compile_time, SampleStats::single(2.0));
        assert_eq!(entry.compile_time.ci(), (2.0, 2.0));
    }

    #[test]
    fn unknown_schema_versions_are_rejected() {
        let err = Baseline::parse(r#"{"version": 99, "entries": []}"#).unwrap_err();
        assert!(err.to_string().contains("version 99"), "{err}");
    }

    #[test]
    fn parse_reports_missing_and_mistyped_fields() {
        assert!(matches!(
            Baseline::parse("not json"),
            Err(GateError::Parse(_))
        ));
        assert!(matches!(
            Baseline::parse(r#"{"no_entries": []}"#),
            Err(GateError::Parse(_))
        ));
        let missing = r#"{"entries": [{"compiler": "x"}]}"#;
        let err = Baseline::parse(missing).unwrap_err();
        assert!(err.to_string().contains("benchmark"));
        let mistyped = r#"{"entries": [{"compiler": "x", "benchmark": "y",
            "fidelity": "high", "execution_time_us": 1.0, "compile_time_s": 1.0,
            "stages": 1, "transfers": 1, "cz_gates": 1}]}"#;
        let err = Baseline::parse(mistyped).unwrap_err();
        assert!(err.to_string().contains("fidelity"));
        let negative = r#"{"entries": [{"compiler": "x", "benchmark": "y",
            "fidelity": 1.0, "execution_time_us": 1.0, "compile_time_s": 1.0,
            "stages": -1, "transfers": 1, "cz_gates": 1}]}"#;
        assert!(Baseline::parse(negative).is_err());
        let bad_samples = r#"{"version": 2, "entries": [{"compiler": "x",
            "benchmark": "y", "shard": "s", "fidelity": 1.0,
            "execution_time_us": 1.0, "compile_time": {"samples": []},
            "stages": 1, "transfers": 1, "cz_gates": 1}]}"#;
        let err = Baseline::parse(bad_samples).unwrap_err();
        assert!(err.to_string().contains("compile_time"), "{err}");
    }

    #[test]
    fn scoped_keeps_only_the_given_cells() {
        let base = baseline();
        let cells = vec![("enola".to_string(), "BV-14".to_string())];
        let scoped = base.scoped(&cells);
        assert_eq!(scoped.entries.len(), 1);
        assert_eq!(scoped.entries[0].compiler, "enola");
        assert!(base.scoped(&[]).entries.is_empty());
    }

    #[test]
    fn tolerance_defaults_are_sane() {
        let tol = GateTolerance::default();
        assert!(tol.fidelity > 0.0 && tol.fidelity < 0.5);
        assert!(tol.exec_time > 0.0 && tol.exec_time < 0.5);
        assert!(
            tol.compile_time > 0.0 && tol.compile_time < 3.0,
            "statistical gating shrank the wall-clock slack below the old 4x"
        );
        assert!(tol.compile_time_floor_s > 0.0);
    }

    #[test]
    fn empty_baseline_vs_empty_run_passes() {
        let report = compare(&Baseline::default(), &[], &GateTolerance::default());
        assert!(report.passed());
        assert!(report.checks.is_empty());
    }

    #[test]
    fn merged_update_replaces_only_fresh_cells_and_keeps_other_shards() {
        let shards = ShardRegistry::standard(crate::DEFAULT_SEED);
        let mut large = entry("enola", "BV-70");
        large.shard = "table2/large".to_string();
        let old = Baseline {
            entries: vec![entry("enola", "BV-14"), large],
        };
        let mut fresh = entry("enola", "BV-14");
        fresh.fidelity = 0.95;
        let updated = old.merged_update(vec![fresh], &["table2/small".to_string()], &shards);
        assert_eq!(updated.entries.len(), 2);
        assert_eq!(updated.entry("enola", "BV-14").unwrap().fidelity, 0.95);
        assert!(
            updated.entry("enola", "BV-70").is_some(),
            "updating one shard must never drop another shard's entries"
        );
    }

    #[test]
    fn merged_update_prunes_stale_cells_of_selected_shards_only() {
        let shards = ShardRegistry::standard(crate::DEFAULT_SEED);
        let mut stale = entry("enola", "GONE-99");
        stale.shard = "table2/small".to_string();
        let mut untouched = entry("enola", "ALSO-GONE-99");
        untouched.shard = "table2/large".to_string();
        let old = Baseline {
            entries: vec![stale, untouched],
        };
        let updated = old.merged_update(Vec::new(), &["table2/small".to_string()], &shards);
        assert!(
            updated.entry("enola", "GONE-99").is_none(),
            "stale cell pruned"
        );
        assert!(
            updated.entry("enola", "ALSO-GONE-99").is_some(),
            "unselected shard untouched"
        );
    }

    #[test]
    fn full_merged_update_prunes_orphaned_cells_even_with_unknown_labels() {
        let shards = ShardRegistry::standard(crate::DEFAULT_SEED);
        // A legacy v1 entry (empty shard label) whose benchmark left the
        // suite: no shard gates it and no run will ever replace it.
        let mut orphan = entry("enola", "REMOVED-99");
        orphan.shard = String::new();
        let mut live_v1 = entry("enola", "BV-14");
        live_v1.shard = String::new();
        let old = Baseline {
            entries: vec![orphan.clone(), live_v1.clone()],
        };

        // A per-shard update must leave both untouched (conservative) …
        let kept = old
            .clone()
            .merged_update(Vec::new(), &["table2/small".to_string()], &shards);
        assert_eq!(kept.entries.len(), 2);

        // … but a full update (every shard selected) prunes the orphan
        // while keeping the live cell for its re-run entry to replace.
        let all_shards: Vec<String> = shards.names().iter().map(|n| n.to_string()).collect();
        let mut fresh = entry("enola", "BV-14");
        fresh.fidelity = 0.9;
        let updated = old.merged_update(vec![fresh], &all_shards, &shards);
        assert!(updated.entry("enola", "REMOVED-99").is_none());
        assert_eq!(updated.entry("enola", "BV-14").unwrap().fidelity, 0.9);
        assert_eq!(updated.entries.len(), 1);
    }

    #[test]
    fn merged_update_sorts_into_canonical_cell_order() {
        let shards = ShardRegistry::standard(crate::DEFAULT_SEED);
        let old = Baseline {
            entries: vec![entry("powermove-storage", "BV-14"), entry("enola", "BV-14")],
        };
        let updated = old.merged_update(Vec::new(), &[], &shards);
        let compilers: Vec<&str> = updated
            .entries
            .iter()
            .map(|e| e.compiler.as_str())
            .collect();
        assert_eq!(compilers, vec!["enola", "powermove-storage"]);
    }
}
