//! The benchmark-regression gate behind the `bench-gate` binary.
//!
//! CI runs the full backend × suite matrix ([`run_matrix`]), converts the
//! results into [`BaselineEntry`] records, and compares them against the
//! checked-in `bench/baseline.json` with a configurable [`GateTolerance`]:
//!
//! * **fidelity** — higher is better, relative tolerance;
//! * **execution time** — lower is better, relative tolerance;
//! * **compile wall-clock** — lower is better, generous relative tolerance
//!   plus an absolute floor below which runs are considered noise (compile
//!   times of small instances are microseconds and meaningless to compare
//!   across machines);
//! * **stages / transfers** — lower is better, exact (the compilers are
//!   deterministic, so any drift is a real behaviour change);
//! * **CZ gate count** — must match exactly (a mismatch means the benchmark
//!   suite itself changed and the baseline needs a refresh).
//!
//! Every metric gets a [`Verdict`]; entries present on only one side are
//! reported as missing. The gate passes only when there is no regression
//! and no missing entry — improvements pass (with a nudge to refresh the
//! baseline via `bench-gate --update`).
//!
//! [`run_matrix`]: crate::run_matrix

use crate::RunResult;
use serde::{Serialize, Value};
use std::fmt;
use std::path::Path;

/// Default relative tolerance for fidelity comparisons.
pub const DEFAULT_FIDELITY_TOLERANCE: f64 = 0.02;
/// Default relative tolerance for execution-time comparisons.
pub const DEFAULT_EXEC_TIME_TOLERANCE: f64 = 0.05;
/// Default relative tolerance for compile wall-clock comparisons (generous:
/// CI machines vary widely).
pub const DEFAULT_COMPILE_TIME_TOLERANCE: f64 = 3.0;
/// Compile times where both sides sit below this floor (seconds) are treated
/// as noise and pass unconditionally. The floor is deliberately high:
/// sub-second wall clocks on shared CI runners are dominated by scheduler
/// noise and core-count differences (the matrix itself runs multi-threaded),
/// while real algorithmic regressions push compiles well past a second.
pub const DEFAULT_COMPILE_TIME_FLOOR_S: f64 = 1.0;

/// Tolerances applied by [`compare`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct GateTolerance {
    /// Relative slack on fidelity (higher is better): a current value below
    /// `baseline * (1 - fidelity)` regresses.
    pub fidelity: f64,
    /// Relative slack on execution time (lower is better): a current value
    /// above `baseline * (1 + exec_time)` regresses.
    pub exec_time: f64,
    /// Relative slack on compile wall-clock time (lower is better).
    pub compile_time: f64,
    /// Absolute compile-time floor in seconds; if both baseline and current
    /// are below it, the comparison passes regardless of ratio.
    pub compile_time_floor_s: f64,
}

impl Default for GateTolerance {
    fn default() -> Self {
        GateTolerance {
            fidelity: DEFAULT_FIDELITY_TOLERANCE,
            exec_time: DEFAULT_EXEC_TIME_TOLERANCE,
            compile_time: DEFAULT_COMPILE_TIME_TOLERANCE,
            compile_time_floor_s: DEFAULT_COMPILE_TIME_FLOOR_S,
        }
    }
}

/// One benchmark × compiler cell of the baseline.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct BaselineEntry {
    /// Registry id of the backend, e.g. `"powermove-storage"`.
    pub compiler: String,
    /// Benchmark name, e.g. `"QAOA-regular3-30"`.
    pub benchmark: String,
    /// Output fidelity excluding the 1Q factor.
    pub fidelity: f64,
    /// Execution time in microseconds.
    pub execution_time_us: f64,
    /// Compilation wall-clock time in seconds.
    pub compile_time_s: f64,
    /// Number of Rydberg stages.
    pub stages: usize,
    /// Number of SLM↔AOD transfers.
    pub transfers: usize,
    /// Number of CZ gates (identity check: drift means the suite changed).
    pub cz_gates: usize,
}

impl From<&RunResult> for BaselineEntry {
    fn from(result: &RunResult) -> Self {
        BaselineEntry {
            compiler: result.compiler.clone(),
            benchmark: result.benchmark.clone(),
            fidelity: result.fidelity,
            execution_time_us: result.execution_time_us,
            compile_time_s: result.compile_time_s,
            stages: result.stages,
            transfers: result.transfers,
            cz_gates: result.cz_gates,
        }
    }
}

/// A parsed `bench/baseline.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Default)]
pub struct Baseline {
    /// The recorded entries, in matrix order.
    pub entries: Vec<BaselineEntry>,
}

/// Errors produced while loading a baseline file.
#[derive(Debug)]
pub enum GateError {
    /// The file could not be read.
    Io(String),
    /// The JSON was malformed or missing required fields.
    Parse(String),
}

impl fmt::Display for GateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GateError::Io(msg) => write!(f, "baseline I/O error: {msg}"),
            GateError::Parse(msg) => write!(f, "baseline parse error: {msg}"),
        }
    }
}

impl std::error::Error for GateError {}

fn field<'v>(object: &'v Value, key: &str, index: usize) -> Result<&'v Value, GateError> {
    object
        .get(key)
        .ok_or_else(|| GateError::Parse(format!("entry {index}: missing field `{key}`")))
}

fn f64_field(object: &Value, key: &str, index: usize) -> Result<f64, GateError> {
    field(object, key, index)?
        .as_f64()
        .ok_or_else(|| GateError::Parse(format!("entry {index}: `{key}` is not a number")))
}

fn usize_field(object: &Value, key: &str, index: usize) -> Result<usize, GateError> {
    let value = field(object, key, index)?
        .as_i64()
        .ok_or_else(|| GateError::Parse(format!("entry {index}: `{key}` is not an integer")))?;
    usize::try_from(value)
        .map_err(|_| GateError::Parse(format!("entry {index}: `{key}` is negative")))
}

fn str_field(object: &Value, key: &str, index: usize) -> Result<String, GateError> {
    Ok(field(object, key, index)?
        .as_str()
        .ok_or_else(|| GateError::Parse(format!("entry {index}: `{key}` is not a string")))?
        .to_string())
}

impl Baseline {
    /// Captures the gate metrics of a matrix run as a new baseline.
    #[must_use]
    pub fn from_results(results: &[RunResult]) -> Self {
        Baseline {
            entries: results.iter().map(BaselineEntry::from).collect(),
        }
    }

    /// Parses the JSON text of a baseline file.
    ///
    /// The expected shape is the one [`Baseline`] serializes to:
    /// `{"entries": [{"compiler": ..., "benchmark": ..., ...}, ...]}`.
    ///
    /// # Errors
    ///
    /// Returns [`GateError::Parse`] on malformed JSON or missing/mistyped
    /// fields.
    pub fn parse(text: &str) -> Result<Self, GateError> {
        let root = serde_json::from_str(text).map_err(|e| GateError::Parse(e.to_string()))?;
        let entries = root
            .get("entries")
            .and_then(Value::as_array)
            .ok_or_else(|| GateError::Parse("missing top-level `entries` array".to_string()))?;
        let entries = entries
            .iter()
            .enumerate()
            .map(|(index, entry)| {
                Ok(BaselineEntry {
                    compiler: str_field(entry, "compiler", index)?,
                    benchmark: str_field(entry, "benchmark", index)?,
                    fidelity: f64_field(entry, "fidelity", index)?,
                    execution_time_us: f64_field(entry, "execution_time_us", index)?,
                    compile_time_s: f64_field(entry, "compile_time_s", index)?,
                    stages: usize_field(entry, "stages", index)?,
                    transfers: usize_field(entry, "transfers", index)?,
                    cz_gates: usize_field(entry, "cz_gates", index)?,
                })
            })
            .collect::<Result<Vec<_>, GateError>>()?;
        Ok(Baseline { entries })
    }

    /// Loads and parses a baseline file.
    ///
    /// # Errors
    ///
    /// Returns [`GateError::Io`] if the file cannot be read and
    /// [`GateError::Parse`] if its contents are malformed.
    pub fn load(path: &Path) -> Result<Self, GateError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| GateError::Io(format!("{}: {e}", path.display())))?;
        Baseline::parse(&text)
    }

    /// Looks up the entry for one compiler × benchmark cell.
    #[must_use]
    pub fn entry(&self, compiler: &str, benchmark: &str) -> Option<&BaselineEntry> {
        self.entries
            .iter()
            .find(|e| e.compiler == compiler && e.benchmark == benchmark)
    }
}

/// Outcome of one metric comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Verdict {
    /// Within tolerance of the baseline.
    Pass,
    /// Better than the baseline by more than the tolerance. Worth a
    /// `bench-gate --update` so future regressions are caught from the new
    /// level.
    Improved,
    /// Worse than the baseline by more than the tolerance: the gate fails.
    Regressed,
}

/// One metric of one matrix cell compared against the baseline.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct MetricCheck {
    /// Registry id of the backend.
    pub compiler: String,
    /// Benchmark name.
    pub benchmark: String,
    /// Metric name, e.g. `"fidelity"`.
    pub metric: &'static str,
    /// The recorded baseline value.
    pub baseline: f64,
    /// The value measured by this run.
    pub current: f64,
    /// The comparison outcome.
    pub verdict: Verdict,
}

/// The full comparison produced by [`compare`].
#[derive(Debug, Clone, PartialEq, Serialize, Default)]
pub struct GateReport {
    /// Every metric comparison, in matrix order.
    pub checks: Vec<MetricCheck>,
    /// `(compiler, benchmark)` cells recorded in the baseline but absent
    /// from the current run — the suite shrank, which fails the gate.
    pub missing_in_current: Vec<(String, String)>,
    /// `(compiler, benchmark)` cells produced by the current run but absent
    /// from the baseline — new coverage that needs `--update` to be gated.
    pub missing_in_baseline: Vec<(String, String)>,
}

impl GateReport {
    /// The checks that regressed.
    pub fn regressions(&self) -> impl Iterator<Item = &MetricCheck> {
        self.checks
            .iter()
            .filter(|c| c.verdict == Verdict::Regressed)
    }

    /// The checks that improved beyond tolerance.
    pub fn improvements(&self) -> impl Iterator<Item = &MetricCheck> {
        self.checks
            .iter()
            .filter(|c| c.verdict == Verdict::Improved)
    }

    /// Whether the gate passes: no regression and no missing entry on
    /// either side. Improvements do not fail the gate.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.regressions().next().is_none()
            && self.missing_in_current.is_empty()
            && self.missing_in_baseline.is_empty()
    }
}

/// Higher-is-better comparison with relative tolerance.
fn check_higher(baseline: f64, current: f64, tolerance: f64) -> Verdict {
    if current < baseline * (1.0 - tolerance) {
        Verdict::Regressed
    } else if current > baseline * (1.0 + tolerance) {
        Verdict::Improved
    } else {
        Verdict::Pass
    }
}

/// Lower-is-better comparison with relative tolerance.
fn check_lower(baseline: f64, current: f64, tolerance: f64) -> Verdict {
    if current > baseline * (1.0 + tolerance) {
        Verdict::Regressed
    } else if current < baseline * (1.0 - tolerance) {
        Verdict::Improved
    } else {
        Verdict::Pass
    }
}

/// Exact comparison for deterministic integer metrics (lower is better).
fn check_exact_lower(baseline: f64, current: f64) -> Verdict {
    if current > baseline {
        Verdict::Regressed
    } else if current < baseline {
        Verdict::Improved
    } else {
        Verdict::Pass
    }
}

/// Compares a matrix run against a recorded baseline.
///
/// Every `(compiler, benchmark)` cell present on both sides contributes one
/// [`MetricCheck`] per gated metric; cells present on only one side land in
/// the report's missing lists. See the module docs for the metric policy.
#[must_use]
pub fn compare(baseline: &Baseline, current: &[BaselineEntry], tol: &GateTolerance) -> GateReport {
    let mut report = GateReport::default();
    for entry in current {
        let Some(base) = baseline.entry(&entry.compiler, &entry.benchmark) else {
            report
                .missing_in_baseline
                .push((entry.compiler.clone(), entry.benchmark.clone()));
            continue;
        };
        let mut push = |metric: &'static str, baseline: f64, current: f64, verdict: Verdict| {
            report.checks.push(MetricCheck {
                compiler: entry.compiler.clone(),
                benchmark: entry.benchmark.clone(),
                metric,
                baseline,
                current,
                verdict,
            });
        };
        push(
            "fidelity",
            base.fidelity,
            entry.fidelity,
            check_higher(base.fidelity, entry.fidelity, tol.fidelity),
        );
        push(
            "execution_time_us",
            base.execution_time_us,
            entry.execution_time_us,
            check_lower(
                base.execution_time_us,
                entry.execution_time_us,
                tol.exec_time,
            ),
        );
        let compile_verdict =
            if base.compile_time_s.max(entry.compile_time_s) < tol.compile_time_floor_s {
                Verdict::Pass
            } else {
                check_lower(base.compile_time_s, entry.compile_time_s, tol.compile_time)
            };
        push(
            "compile_time_s",
            base.compile_time_s,
            entry.compile_time_s,
            compile_verdict,
        );
        push(
            "stages",
            base.stages as f64,
            entry.stages as f64,
            check_exact_lower(base.stages as f64, entry.stages as f64),
        );
        push(
            "transfers",
            base.transfers as f64,
            entry.transfers as f64,
            check_exact_lower(base.transfers as f64, entry.transfers as f64),
        );
        // CZ gates are an identity check: any drift (either direction)
        // means the generated suite changed and the baseline is stale.
        let cz_verdict = if entry.cz_gates == base.cz_gates {
            Verdict::Pass
        } else {
            Verdict::Regressed
        };
        push(
            "cz_gates",
            base.cz_gates as f64,
            entry.cz_gates as f64,
            cz_verdict,
        );
    }
    for base in &baseline.entries {
        if !current
            .iter()
            .any(|e| e.compiler == base.compiler && e.benchmark == base.benchmark)
        {
            report
                .missing_in_current
                .push((base.compiler.clone(), base.benchmark.clone()));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(compiler: &str, benchmark: &str) -> BaselineEntry {
        BaselineEntry {
            compiler: compiler.to_string(),
            benchmark: benchmark.to_string(),
            fidelity: 0.8,
            execution_time_us: 1000.0,
            compile_time_s: 2.0,
            stages: 10,
            transfers: 40,
            cz_gates: 15,
        }
    }

    fn baseline() -> Baseline {
        Baseline {
            entries: vec![entry("powermove-storage", "BV-14"), entry("enola", "BV-14")],
        }
    }

    #[test]
    fn identical_runs_pass() {
        let report = compare(&baseline(), &baseline().entries, &GateTolerance::default());
        assert!(report.passed());
        assert_eq!(report.checks.len(), 12);
        assert!(report.checks.iter().all(|c| c.verdict == Verdict::Pass));
    }

    #[test]
    fn fidelity_regression_fails_and_within_tolerance_passes() {
        let tol = GateTolerance::default();
        let mut current = baseline().entries;
        current[0].fidelity = 0.8 * (1.0 - tol.fidelity) - 1e-9;
        let report = compare(&baseline(), &current, &tol);
        assert!(!report.passed());
        let regression = report.regressions().next().unwrap();
        assert_eq!(regression.metric, "fidelity");
        assert_eq!(regression.compiler, "powermove-storage");

        current[0].fidelity = 0.8 * (1.0 - tol.fidelity) + 1e-9;
        assert!(compare(&baseline(), &current, &tol).passed());
    }

    #[test]
    fn fidelity_improvement_is_reported_but_passes() {
        let mut current = baseline().entries;
        current[0].fidelity = 0.9;
        let report = compare(&baseline(), &current, &GateTolerance::default());
        assert!(report.passed());
        let improvement = report.improvements().next().unwrap();
        assert_eq!(improvement.metric, "fidelity");
        assert_eq!(improvement.verdict, Verdict::Improved);
    }

    #[test]
    fn execution_time_regression_fails() {
        let tol = GateTolerance::default();
        let mut current = baseline().entries;
        current[1].execution_time_us = 1000.0 * (1.0 + tol.exec_time) + 1e-6;
        let report = compare(&baseline(), &current, &tol);
        assert!(!report.passed());
        assert_eq!(
            report.regressions().next().unwrap().metric,
            "execution_time_us"
        );
    }

    #[test]
    fn compile_time_noise_below_floor_passes() {
        let mut base = baseline();
        base.entries[0].compile_time_s = 0.001;
        let mut current = base.entries.clone();
        // 100x slower, but both sides below the floor: noise, not signal.
        current[0].compile_time_s = 0.1;
        assert!(compare(&base, &current, &GateTolerance::default()).passed());
    }

    #[test]
    fn compile_time_regression_above_floor_fails() {
        let tol = GateTolerance::default();
        let mut current = baseline().entries;
        current[0].compile_time_s = 2.0 * (1.0 + tol.compile_time) + 0.1;
        let report = compare(&baseline(), &current, &tol);
        assert!(!report.passed());
        assert_eq!(
            report.regressions().next().unwrap().metric,
            "compile_time_s"
        );
    }

    #[test]
    fn stage_count_drift_is_exact() {
        let mut current = baseline().entries;
        current[0].stages = 11;
        let report = compare(&baseline(), &current, &GateTolerance::default());
        assert_eq!(report.regressions().next().unwrap().metric, "stages");

        current[0].stages = 9;
        let report = compare(&baseline(), &current, &GateTolerance::default());
        assert!(report.passed());
        assert_eq!(report.improvements().next().unwrap().metric, "stages");
    }

    #[test]
    fn cz_gate_drift_fails_in_both_directions() {
        for cz in [14, 16] {
            let mut current = baseline().entries;
            current[0].cz_gates = cz;
            let report = compare(&baseline(), &current, &GateTolerance::default());
            assert!(!report.passed(), "cz_gates {cz} must fail");
            assert_eq!(report.regressions().next().unwrap().metric, "cz_gates");
        }
    }

    #[test]
    fn missing_entries_are_reported_on_both_sides() {
        let current = vec![
            entry("powermove-storage", "BV-14"),
            entry("powermove-storage", "QFT-18"),
        ];
        let report = compare(&baseline(), &current, &GateTolerance::default());
        assert!(!report.passed());
        assert_eq!(
            report.missing_in_current,
            vec![("enola".to_string(), "BV-14".to_string())]
        );
        assert_eq!(
            report.missing_in_baseline,
            vec![("powermove-storage".to_string(), "QFT-18".to_string())]
        );
    }

    #[test]
    fn baseline_serializes_and_parses_back() {
        let original = baseline();
        let json = serde_json::to_string_pretty(&original).unwrap();
        let parsed = Baseline::parse(&json).unwrap();
        assert_eq!(parsed, original);
        assert_eq!(parsed.entry("enola", "BV-14").unwrap().stages, 10);
        assert!(parsed.entry("enola", "nope").is_none());
    }

    #[test]
    fn parse_reports_missing_and_mistyped_fields() {
        assert!(matches!(
            Baseline::parse("not json"),
            Err(GateError::Parse(_))
        ));
        assert!(matches!(
            Baseline::parse(r#"{"no_entries": []}"#),
            Err(GateError::Parse(_))
        ));
        let missing = r#"{"entries": [{"compiler": "x"}]}"#;
        let err = Baseline::parse(missing).unwrap_err();
        assert!(err.to_string().contains("benchmark"));
        let mistyped = r#"{"entries": [{"compiler": "x", "benchmark": "y",
            "fidelity": "high", "execution_time_us": 1.0, "compile_time_s": 1.0,
            "stages": 1, "transfers": 1, "cz_gates": 1}]}"#;
        let err = Baseline::parse(mistyped).unwrap_err();
        assert!(err.to_string().contains("fidelity"));
        let negative = r#"{"entries": [{"compiler": "x", "benchmark": "y",
            "fidelity": 1.0, "execution_time_us": 1.0, "compile_time_s": 1.0,
            "stages": -1, "transfers": 1, "cz_gates": 1}]}"#;
        assert!(Baseline::parse(negative).is_err());
    }

    #[test]
    fn tolerance_defaults_are_sane() {
        let tol = GateTolerance::default();
        assert!(tol.fidelity > 0.0 && tol.fidelity < 0.5);
        assert!(tol.exec_time > 0.0 && tol.exec_time < 0.5);
        assert!(tol.compile_time >= 1.0, "wall clock needs generous slack");
        assert!(tol.compile_time_floor_s > 0.0);
    }

    #[test]
    fn empty_baseline_vs_empty_run_passes() {
        let report = compare(&Baseline::default(), &[], &GateTolerance::default());
        assert!(report.passed());
        assert!(report.checks.is_empty());
    }
}
